"""Legacy setup shim.

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on offline machines that lack the
``wheel`` package (PEP 660 editable installs require it).
"""

from setuptools import setup

setup()
