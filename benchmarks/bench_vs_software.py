"""E14 — systolic arrays vs the sequential host (the paper's raison d'être).

The paper's pitch: a sequential processor performs ``n²`` tuple
comparisons one element at a time, while the array performs the same
work in ``O(n + m)`` pulses.  This bench measures both sides in the
units the paper uses — element-comparison steps for the host,
pulses for the array — and converts through the §8 technology model,
reproducing the *shape*: the array's advantage grows linearly with n,
with parallelism bounded by the array size.
"""

from __future__ import annotations

from repro.arrays import systolic_intersection
from repro.perf import PAPER_CONSERVATIVE
from repro.relational import ComparisonCounter, algebra
from repro.relational.algebra import nested_loop_intersection
from repro.workloads import overlapping_pair


def test_sequential_vs_systolic_steps(benchmark, experiment_report):
    """E14: step counts — O(n²·m) sequential vs O(n) pulses."""
    rows = []
    speedups = {}
    for n in (4, 8, 16, 32):
        a, b = overlapping_pair(n, n, n // 2, arity=3, seed=140 + n)
        counter = ComparisonCounter()
        sequential = nested_loop_intersection(a, b, counter)
        result = systolic_intersection(a, b)
        assert result.relation == sequential
        speedup = counter.element_comparisons / result.run.pulses
        speedups[n] = speedup
        rows.append((
            f"n = {n:>2}",
            f"{counter.element_comparisons:>6} seq. steps",
            f"{result.run.pulses:>4} pulses -> {speedup:,.0f}x",
        ))
    a, b = overlapping_pair(16, 16, 8, arity=3, seed=156)
    benchmark(lambda: systolic_intersection(a, b))
    experiment_report(
        "E14 sequential element steps vs systolic pulses (intersection)",
        rows,
    )
    # The advantage grows ~linearly with n (n² work over O(n) pulses).
    assert speedups[32] > 3 * speedups[8]


def test_wall_clock_model(benchmark, experiment_report):
    """E14b: the same comparison in §8 seconds.

    Host modelled at 1 µs per element comparison (a generous ~1-MIPS
    1980 minicomputer); the array at one 350 ns pulse per wavefront.
    """
    host_step_seconds = 1e-6
    rows = []
    for n in (16, 64):
        a, b = overlapping_pair(n, n, n // 4, arity=3, seed=150 + n)
        counter = ComparisonCounter()
        nested_loop_intersection(a, b, counter)
        result = systolic_intersection(a, b)
        host_seconds = counter.element_comparisons * host_step_seconds
        array_seconds = PAPER_CONSERVATIVE.pulses_to_seconds(result.run.pulses)
        rows.append((
            f"n = {n:>3}",
            f"host {host_seconds * 1e3:8.3f} ms",
            f"array {array_seconds * 1e6:8.2f} µs "
            f"({host_seconds / array_seconds:,.0f}x)",
        ))
    a, b = overlapping_pair(32, 32, 8, arity=3, seed=199)
    benchmark(lambda: systolic_intersection(a, b))
    experiment_report("E14b modelled wall clock (host 1 µs/step vs array)",
                      rows)


def test_simulation_cost_note(benchmark, experiment_report):
    """E14c: honest accounting — simulating the array costs real time.

    The *simulated* array is slower than native Python sets (every cell
    is stepped in software); the claim under test is about the modelled
    hardware, not the simulator.  This bench records both so nobody
    mistakes one for the other.
    """
    a, b = overlapping_pair(24, 24, 8, arity=2, seed=160)

    import time

    start = time.perf_counter()
    algebra.intersection(a, b)
    software_wall = time.perf_counter() - start

    start = time.perf_counter()
    result = systolic_intersection(a, b)
    simulated_wall = time.perf_counter() - start

    benchmark(lambda: algebra.intersection(a, b))
    experiment_report("E14c simulator overhead (not a hardware claim)", [
        ("python set-based intersection", "-",
         f"{software_wall * 1e6:.0f} µs wall"),
        ("pulse-level array simulation", "-",
         f"{simulated_wall * 1e3:.1f} ms wall"),
        ("modelled hardware time", "-",
         f"{PAPER_CONSERVATIVE.pulses_to_seconds(result.run.pulses) * 1e6:.1f} µs"),
    ])
