"""E16 — the hexagonally connected alternative (§2.1, ref [5]).

"Hexagonally connected arrays as in [5] would work as well in many
instances."  Verified: the Kung–Leiserson hex matrix-product array,
instantiated over the (AND, =) semiring, computes the §3.3 comparison
matrix identically — with the hex design's characteristic ≤ 1/3 peak
cell activity, versus ~1/2 for the orthogonal counter-streaming array.
"""

from __future__ import annotations

from repro.arrays import compare_all_pairs
from repro.arrays.hexagonal import hex_compare_all_pairs
from repro.workloads import overlapping_pair


def test_hexagonal_matches_orthogonal(benchmark, experiment_report):
    """E16: identical T matrix from the hex mesh."""
    a, b = overlapping_pair(6, 6, 3, arity=3, seed=160)
    orthogonal = compare_all_pairs(a.tuples, b.tuples)
    hexagonal = benchmark(lambda: hex_compare_all_pairs(a.tuples, b.tuples))
    assert hexagonal.t_matrix == orthogonal.t_matrix

    hex_peak_fraction = hexagonal.peak_firing / hexagonal.run.cells
    experiment_report("E16 §2.1 hexagonal vs orthogonal comparison array", [
        ("T matrices identical", "yes",
         "yes" if hexagonal.t_matrix == orthogonal.t_matrix else "NO"),
        ("orthogonal cells / pulses",
         f"{orthogonal.run.cells} / {orthogonal.run.pulses}",
         f"{orthogonal.run.cells} / {orthogonal.run.pulses}"),
        ("hexagonal cells / pulses", "larger mesh / fewer pulses",
         f"{hexagonal.run.cells} / {hexagonal.run.pulses}"),
        ("hex peak busy fraction", "<= 1/3 (Kung-Leiserson)",
         f"{hex_peak_fraction:.2f}"),
    ])
    assert hex_peak_fraction <= 1 / 3 + 1e-9
    assert hexagonal.run.pulses < orthogonal.run.pulses
