"""E19 — a transaction mix on the §9 machine.

"To process all of the operations required in a single transaction or
a **set of transactions**, an integrated system containing several
systolic arrays is needed."  This study submits a seeded mix of
transactions at staggered arrival times and measures how the machine's
device complement absorbs the load — the capacity-planning question
§9's architecture raises.
"""

from __future__ import annotations

import numpy as np

from repro.lang import parse
from repro.machine import SystolicDatabaseMachine
from repro.machine.plan import DEVICE_COMPARISON, DEVICE_DIVISION, DEVICE_JOIN
from repro.workloads import join_pair, overlapping_pair

#: The mix: intersections dominate, with joins and dedups sprinkled in.
_TEMPLATES = [
    "intersect(A{i}, B{i})",
    "difference(A{i}, B{i})",
    "join(JA{i}, JB{i}, key == key)",
    "dedup(A{i})",
]


def _run_mix(
    transactions: int, comparison_devices: int, mean_gap_ms: float, seed: int
):
    machine = SystolicDatabaseMachine(
        memories=16,
        devices=(
            (DEVICE_COMPARISON, comparison_devices),
            (DEVICE_JOIN, 1),
            (DEVICE_DIVISION, 1),
        ),
    )
    rng = np.random.default_rng(seed)
    plans = []
    for index in range(transactions):
        a, b = overlapping_pair(60, 50, 20, arity=2, seed=seed + index)
        ja, jb = join_pair(40, 36, 12, seed=seed + 100 + index)
        machine.preload(f"A{index}", a)
        machine.preload(f"B{index}", b)
        machine.preload(f"JA{index}", ja)
        machine.preload(f"JB{index}", jb)
        template = _TEMPLATES[index % len(_TEMPLATES)]
        plans.append(parse(template.format(i=index)))
    gaps = rng.exponential(mean_gap_ms / 1e3, size=transactions)
    arrivals = [float(sum(gaps[:index])) for index in range(transactions)]
    results, report = machine.run_many(plans, arrivals=arrivals)
    assert all(relation is not None for relation in results)
    latencies = []
    for plan, arrival in zip(plans, arrivals):
        finish = max(
            step.end for step in report.steps
            if step.label == plan.describe() and step.start >= arrival
        )
        latencies.append(finish - arrival)
    return report, latencies


def test_transaction_mix(benchmark, experiment_report):
    """E19: mean latency and makespan vs device complement."""
    rows = []
    baseline_latency = None
    for devices in (1, 2, 4):
        report, latencies = _run_mix(
            transactions=8, comparison_devices=devices,
            mean_gap_ms=0.05, seed=190,
        )
        mean_latency = sum(latencies) / len(latencies)
        if baseline_latency is None:
            baseline_latency = mean_latency
        rows.append((
            f"{devices} comparison device(s)",
            "latency falls with devices",
            f"makespan {report.makespan * 1e3:6.2f} ms, "
            f"mean latency {mean_latency * 1e3:6.2f} ms",
        ))
    benchmark(lambda: _run_mix(8, 2, 0.05, 190))
    experiment_report(
        "E19 §9 transaction mix (8 transactions, staggered arrivals)", rows
    )
    _, latencies = _run_mix(8, 4, 0.05, 190)
    assert sum(latencies) / len(latencies) <= baseline_latency
