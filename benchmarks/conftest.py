"""Shared reporting helpers for the experiment benchmarks.

Each ``bench_*.py`` module regenerates one row of the DESIGN.md
experiment index (E1–E14): it measures the paper's quantity on the
simulated hardware and prints a paper-value vs measured-value table.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables
live; EXPERIMENTS.md records the same numbers.
"""

from __future__ import annotations

import pytest


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured table for one experiment."""
    label_w = max(len(r[0]) for r in rows)
    paper_w = max(len("paper"), max(len(r[1]) for r in rows))
    measured_w = max(len("measured"), max(len(r[2]) for r in rows))
    line = "=" * (label_w + paper_w + measured_w + 8)
    print()
    print(line)
    print(title)
    print(line)
    print(f"{'':<{label_w}}  | {'paper':>{paper_w}} | {'measured':>{measured_w}}")
    print(f"{'-' * label_w}--+-{'-' * paper_w}-+-{'-' * measured_w}")
    for label, paper, measured in rows:
        print(f"{label:<{label_w}}  | {paper:>{paper_w}} | {measured:>{measured_w}}")
    print(line)


@pytest.fixture
def experiment_report():
    """Fixture form of :func:`report` for use inside benchmarks."""
    return report
