"""E6 — the join array of Fig 6-1 and its §6.3 generalizations.

Claims reproduced: the array emits exactly the TRUE t_ij's off its
right edge; multi-column joins use one processor column per joined
column; non-equi-joins are the same array with a preloaded comparison
operator; output size can reach |A|·|B| in the degenerate case.
"""

from __future__ import annotations

from repro.arrays import systolic_join, systolic_theta_join
from repro.arrays.schedule import CounterStreamSchedule
from repro.relational import Relation, algebra
from repro.workloads import integer_schema, join_pair


def test_single_column_equi_join(benchmark, experiment_report):
    """E6: the Fig 6-1 single-column join."""
    a, b = join_pair(12, 10, 6, seed=66)
    result = benchmark(lambda: systolic_join(a, b, [("key", "key")]))
    assert result.relation == algebra.join(a, b, [("key", "key")])
    schedule = CounterStreamSchedule(12, 10, 1)
    experiment_report("E6  Fig 6-1 join array (single column)", [
        ("t_ij produced", "120", str(12 * 10)),
        ("TRUE matches", "6", str(len(result.matches))),
        ("pulses", str(schedule.comparison_pulses), str(result.run.pulses)),
        ("processor columns", "1", str(result.run.cols)),
    ])


def test_degenerate_join_reaches_product_size(benchmark, experiment_report):
    """E6b: §6.2 — |C| may be as large as |A|·|B|."""
    schema = integer_schema(2)
    a = Relation(schema, [(1, i) for i in range(8)])
    b = Relation(schema, [(1, 100 + j) for j in range(8)])
    result = benchmark(lambda: systolic_join(a, b, [(0, 0)]))
    experiment_report("E6b degenerate join (all keys equal)", [
        ("|A|·|B|", "64", str(len(a) * len(b))),
        ("|C|", "64", str(len(result.relation))),
    ])
    assert len(result.relation) == 64


def test_multi_column_join(benchmark, experiment_report):
    """E6c: §6.3.1 — one processor column per joined column pair."""
    schema = integer_schema(3)
    a = Relation(schema, [(i % 3, i % 2, i) for i in range(12)])
    b = Relation(schema, [(j % 3, j % 2, 100 + j) for j in range(9)])
    on = [(0, 0), (1, 1)]
    result = benchmark(lambda: systolic_join(a, b, on))
    assert result.relation == algebra.join(a, b, on)
    experiment_report("E6c join over two columns (§6.3.1)", [
        ("processor columns", "2", str(result.run.cols)),
        ("matches", str(len(algebra.join(a, b, on))),
         str(len(result.matches))),
    ])


def test_non_equi_join(benchmark, experiment_report):
    """E6d: §6.3.2 — a greater-than-join on the same hardware."""
    schema = integer_schema(2)
    a = Relation(schema, [(i, 0) for i in range(0, 20, 2)])
    b = Relation(schema, [(j, 1) for j in range(5, 15, 3)])
    result = benchmark(
        lambda: systolic_theta_join(a, b, [(0, 0)], [">"])
    )
    expected = algebra.theta_join(a, b, [(0, 0)], [">"])
    assert result.relation == expected
    experiment_report("E6d greater-than-join (§6.3.2)", [
        ("operator preloaded", ">", ">"),
        ("matches", str(len(expected)), str(len(result.matches))),
        ("output arity (no column dropped)", "4",
         str(result.relation.arity)),
    ])
