"""E17 — §9's streaming pipeline: operator chains without store-and-forward.

"The data is pipelined from the memories through the switch and through
the processor array.  The output of the array is pipelined back into
another memory."  When chained operators stream into each other
instead, fills serialize but streams overlap — the transaction finishes
in Σ fill + max stream rather than Σ (fill + stream).
"""

from __future__ import annotations

from repro.arrays.schedule import CounterStreamSchedule
from repro.machine.pipelining import StageCost, analyze_chain
from repro.perf import PAPER_CONSERVATIVE


def _chain_for(n: int) -> list[StageCost]:
    """select → join → dedup over n-tuple relations, costs from schedules."""
    join = CounterStreamSchedule(n_a=n, n_b=n, arity=1)
    dedup = CounterStreamSchedule(n_a=n, n_b=n, arity=3)
    return [
        StageCost("join", fill=join.rows, stream=join.comparison_pulses),
        StageCost("dedup", fill=dedup.rows, stream=dedup.total_pulses),
        StageCost("intersect", fill=dedup.rows, stream=dedup.total_pulses),
    ]


def test_pipelined_chain(benchmark, experiment_report):
    """E17: chain makespans under both disciplines."""
    rows = []
    for n in (100, 1_000, 10_000):
        timing = analyze_chain(_chain_for(n))
        saf_ms = PAPER_CONSERVATIVE.pulses_to_seconds(
            timing.store_and_forward) * 1e3
        pipe_ms = PAPER_CONSERVATIVE.pulses_to_seconds(timing.pipelined) * 1e3
        rows.append((
            f"3-op chain, n = {n:>6}",
            f"store&fwd {saf_ms:8.3f} ms",
            f"pipelined {pipe_ms:8.3f} ms ({timing.speedup:.2f}x)",
        ))
    timing = benchmark(lambda: analyze_chain(_chain_for(10_000)))
    experiment_report("E17 §9 pipelined operator chains", rows)
    # Counter-stream fills scale with n too, capping this chain at ~1.7×.
    assert timing.speedup > 1.5
    assert timing.bottleneck.name in ("dedup", "intersect")
