"""E13 — the integrated systolic system of Fig 9-1 (§9).

Claims reproduced: a multi-operation transaction pipelines through the
crossbar from memories to devices and back; independent operations run
concurrently ("due to the crossbar structure, several operations may be
run concurrently"); the tree machine (ref [9]) is a comparable but
differently-shaped alternative.
"""

from __future__ import annotations

from repro.lang import parse
from repro.machine import SystolicDatabaseMachine, TreeMachine
from repro.relational import algebra
from repro.workloads import join_pair, overlapping_pair


def _loaded_machine():
    machine = SystolicDatabaseMachine()
    a, b = overlapping_pair(40, 36, 14, arity=3, seed=130)
    ja, jb = join_pair(32, 28, 12, seed=131)
    machine.store("A", a)
    machine.store("B", b)
    machine.store("JA", ja)
    machine.store("JB", jb)
    return machine, a, b, ja, jb


def test_transaction_concurrency(benchmark, experiment_report):
    """E13: independent ops overlap on the crossbar."""

    def run():
        machine, a, b, ja, jb = _loaded_machine()
        plans = [
            parse("intersect(A, B)"),
            parse("join(JA, JB, key == key)"),
            parse("difference(A, B)"),
        ]
        results, report = machine.run_many(plans)
        return machine, results, report, a, b, ja, jb

    machine, results, report, a, b, ja, jb = benchmark(run)
    assert results[0] == algebra.intersection(a, b)
    assert results[1] == algebra.join(ja, jb, [("key", "key")])
    assert results[2] == algebra.difference(a, b)

    experiment_report("E13 Fig 9-1 machine: 3-operation transaction", [
        ("operations + loads scheduled", "7", str(len(report.steps))),
        ("makespan", "< serial sum",
         f"{report.makespan * 1e3:.2f} ms"),
        ("serial sum", "-", f"{report.serial_seconds * 1e3:.2f} ms"),
        ("concurrency speedup", "> 1",
         f"{report.concurrency_speedup:.2f}x"),
        ("peak concurrent crossbar links", ">= 2",
         str(machine.crossbar.concurrency_profile())),
        ("crossbar reconfigurations", "per §9, one per op stream",
         str(machine.crossbar.configurations())),
    ])
    assert report.makespan <= report.serial_seconds
    assert machine.crossbar.concurrency_profile() >= 2


def test_pipeline_through_multiple_devices(benchmark, experiment_report):
    """E13b: one plan crossing join → comparison devices."""

    def run():
        machine, *_ , ja, jb = _loaded_machine()
        plan = parse("project(join(JA, JB, key == key), key, a0)")
        result, report = machine.run(plan)
        return result, report, ja, jb

    result, report, ja, jb = benchmark(run)
    expected = algebra.project(
        algebra.join(ja, jb, [("key", "key")]), ["key", "a0"]
    )
    assert result == expected
    devices = [step.device for step in report.steps]
    experiment_report("E13b multi-device pipeline (join → project)", [
        ("devices visited", "disk, join0, comparison0",
         ", ".join(sorted(set(devices)))),
        ("result tuples", str(len(expected)), str(len(result))),
        ("makespan", "-", f"{report.makespan * 1e3:.2f} ms"),
    ])


def test_tree_machine_comparison(benchmark, experiment_report):
    """E13c: §9's comparison target — Song's tree machine.

    Same answers; the architectural contrast the paper defers to future
    work: the tree serializes result extraction through its root, while
    the systolic join array emits matches along its whole edge.
    """
    _, a, b, ja, jb = _loaded_machine()
    tree = TreeMachine(leaves=64)

    inter_run = benchmark(lambda: tree.intersection(a, b))
    join_run = tree.join(ja, jb, [(0, 0)])
    assert inter_run.relation == algebra.intersection(a, b)
    assert join_run.relation == algebra.join(ja, jb, [(0, 0)])

    from repro.arrays.schedule import CounterStreamSchedule

    systolic_pulses = CounterStreamSchedule(len(a), len(b), a.arity).total_pulses
    experiment_report("E13c tree machine (ref [9]) vs systolic array", [
        ("intersection answers agree", "yes", "yes"),
        ("tree cycles (intersection)", "-", str(inter_run.cycles)),
        ("systolic pulses (intersection)", "-", str(systolic_pulses)),
        ("tree join pays per-match extraction", "+|C| cycles",
         f"+{len(join_run.relation)} cycles"),
        ("tree comparisons", str(len(a) * len(b)),
         str(inter_run.comparisons)),
    ])


def test_device_scaling_throughput(benchmark, experiment_report):
    """E13d: more devices of a kind absorb a burst of transactions.

    Four comparison-heavy plans arrive together; the §9 machine with
    one intersection device serializes them, with two it overlaps.
    """
    from repro.machine import SystolicDatabaseMachine
    from repro.machine.plan import (
        DEVICE_COMPARISON, DEVICE_DIVISION, DEVICE_JOIN,
    )

    def burst(comparison_devices: int):
        machine = SystolicDatabaseMachine(
            memories=12,
            devices=(
                (DEVICE_COMPARISON, comparison_devices),
                (DEVICE_JOIN, 1),
                (DEVICE_DIVISION, 1),
            ),
        )
        # Disjoint inputs, already resident in memories (outputs of an
        # earlier transaction, §9) — so the devices, not the single
        # disk channel or shared memory ports, are the bottleneck.
        for index in range(4):
            a, b = overlapping_pair(120, 110, 40, arity=3, seed=132 + index)
            machine.preload(f"A{index}", a)
            machine.preload(f"B{index}", b)
        plans = [
            parse(f"intersect(A{index}, B{index})") for index in range(4)
        ]
        _, report = machine.run_many(plans)
        device_busy = {
            name: busy for name, busy in report.device_busy_seconds().items()
            if name.startswith("comparison")
        }
        return report.makespan, len(device_busy)

    single_span, _ = burst(1)
    double_span, used = burst(2)
    benchmark(lambda: burst(2))
    experiment_report("E13d device scaling (4 comparison ops in a burst)", [
        ("1 comparison device", "ops serialize",
         f"{single_span * 1e3:.3f} ms makespan"),
        ("2 comparison devices", "ops overlap",
         f"{double_span * 1e3:.3f} ms makespan ({used} devices used)"),
        ("improvement", "~2x", f"{single_span / double_span:.2f}x"),
    ])
    assert double_span < single_span
    assert used == 2


def test_transaction_arrivals(benchmark, experiment_report):
    """E13e: §9's "set of transactions" arriving over time."""
    from repro.machine import SystolicDatabaseMachine

    def staggered():
        machine = SystolicDatabaseMachine()
        a, b = overlapping_pair(30, 30, 10, arity=2, seed=133)
        machine.store("A", a)
        machine.store("B", b)
        plans = [
            parse("intersect(A, B)"),
            parse("difference(A, B)"),
            parse("union(A, B)"),
        ]
        arrivals = [0.0, 0.040, 0.080]
        _, report = machine.run_many(plans, arrivals=arrivals)
        return report, arrivals

    report, arrivals = benchmark(staggered)
    rows = []
    labels = ["intersect", "difference", "union"]
    for label, arrival in zip(labels, arrivals):
        step = next(s for s in report.steps if s.label == label)
        rows.append((
            f"{label} arrives at {arrival * 1e3:.0f} ms",
            "starts after arrival",
            f"starts {step.start * 1e3:.1f} ms, ends {step.end * 1e3:.1f} ms",
        ))
        assert step.start >= arrival
    experiment_report("E13e staggered transaction arrivals (§9)", rows)
