"""E3 + E4 — the intersection array of Fig 4-1, and difference (§4.3).

Claims reproduced: the intersection array computes A ∩ B with the full
|A|·|B| pairwise comparison in O(n) pulses; the 3×3 walkthrough of
Fig 4-1 behaves as drawn; difference is the same hardware with the
output bit inverted.
"""

from __future__ import annotations

from repro.arrays import systolic_difference, systolic_intersection
from repro.arrays.schedule import CounterStreamSchedule
from repro.relational import algebra
from repro.workloads import overlapping_pair, three_by_three_pair


def test_fig_41_walkthrough(benchmark, experiment_report):
    """E3: the paper's 3×3 running example."""
    a, b = three_by_three_pair()
    result = benchmark(lambda: systolic_intersection(a, b))
    assert result.relation == algebra.intersection(a, b)
    experiment_report("E3  Fig 4-1 intersection array (3×3 example)", [
        ("|A ∩ B|", "1", str(len(result.relation))),
        ("t vector", "F,T,F",
         ",".join("T" if t else "F" for t in result.t_vector)),
        ("array rows (2n-1)", "5", str(result.run.rows)),
        ("columns (m + accumulator)", "4", str(result.run.cols)),
        ("pulses", str(CounterStreamSchedule(3, 3, 3).total_pulses),
         str(result.run.pulses)),
    ])


def test_intersection_sweep(benchmark, experiment_report):
    """E3b: correctness and pulse counts across sizes and selectivities."""
    rows = []
    for n, overlap in ((8, 0), (8, 4), (8, 8), (16, 8), (24, 12)):
        a, b = overlapping_pair(n, n, overlap, arity=3, seed=n + overlap)
        result = systolic_intersection(a, b)
        assert result.relation == algebra.intersection(a, b)
        assert len(result.relation) == overlap
        schedule = CounterStreamSchedule(n, n, 3)
        rows.append((
            f"n={n:>2} overlap={overlap:>2}",
            f"{schedule.total_pulses} pulses",
            f"{result.run.pulses} pulses, |C|={len(result.relation)}",
        ))
    a, b = overlapping_pair(16, 16, 8, arity=3, seed=99)
    benchmark(lambda: systolic_intersection(a, b))
    experiment_report("E3b intersection sweep (pulses are O(n), not O(n²m))",
                      rows)


def test_difference_is_inverted_intersection(benchmark, experiment_report):
    """E4: §4.3 — same array, keep the FALSE rows."""
    a, b = overlapping_pair(10, 10, 4, arity=2, seed=77)
    inter = systolic_intersection(a, b)
    diff = benchmark(lambda: systolic_difference(a, b))
    assert diff.relation == algebra.difference(a, b)
    assert diff.t_vector == inter.t_vector  # identical hardware output
    experiment_report("E4  difference via inverted accumulation (§4.3)", [
        ("|A|", "10", str(len(a))),
        ("|A ∩ B|", "4", str(len(inter.relation))),
        ("|A − B|", "6", str(len(diff.relation))),
        ("t vectors identical", "yes",
         "yes" if diff.t_vector == inter.t_vector else "NO"),
        ("partition of A", "|∩| + |−| = |A|",
         f"{len(inter.relation)} + {len(diff.relation)} = "
         f"{len(inter.relation) + len(diff.relation)}"),
    ])


def test_semijoin_on_membership_hardware(benchmark, experiment_report):
    """E4b: semi-/anti-join — the §4 hardware fed with key columns only.

    Not an operator the paper names, but exactly its membership test
    applied to join columns: the array narrows from the full tuple
    width to the key width, and the §4.3 inverter flips semi into anti.
    """
    from repro.arrays.intersection import systolic_antijoin, systolic_semijoin
    from repro.relational.algebra import antijoin, semijoin
    from repro.workloads import join_pair

    a, b = join_pair(14, 10, 6, payload_arity=4, seed=88)
    on = [("key", "key")]
    semi = benchmark(lambda: systolic_semijoin(a, b, on))
    anti = systolic_antijoin(a, b, on)
    assert semi.relation == semijoin(a, b, on)
    assert anti.relation == antijoin(a, b, on)
    experiment_report("E4b semi-/anti-join on the §4 membership hardware", [
        ("|A| (5 columns wide)", "14", str(len(a))),
        ("|A ⋉ B|", "6", str(len(semi.relation))),
        ("|A ▷ B|", "8", str(len(anti.relation))),
        ("array width (keys only + acc)", "2", str(semi.run.cols)),
        ("partition of A", "⋉ + ▷ = |A|",
         f"{len(semi.relation)} + {len(anti.relation)} = "
         f"{len(semi.relation) + len(anti.relation)}"),
    ])
