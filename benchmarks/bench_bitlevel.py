#!/usr/bin/env python3
"""E12/E21 — the word→bit-level design transformation (§8, ref [3]).

Claims reproduced: partitioning word processors into bit processors
changes the implementation, not the answer — the bit-level arrays
compute identical results, and their size is expressible directly in
§8's bit-comparator unit, feeding the E8 area arithmetic.

E21 measures what the packed-bitplane engine buys on *wide* tuples:
the same bit-level intersection, pulse-simulated cell by cell vs
evaluated as uint64 bitplane kernels, with identical results and pulse
counts.  Run standalone to (re)generate ``BENCH_bitlevel.json`` at the
repo root — CI's benchmark smoke job does exactly this::

    python benchmarks/bench_bitlevel.py [--out BENCH_bitlevel.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.arrays import ArrayCapacity, compare_all_pairs
from repro.bitlevel import (
    bit_array_stats,
    bit_level_compare_all_pairs,
    bit_level_intersection,
    bit_level_three_way_compare,
)
from repro.machine.device import SystolicDevice
from repro.machine.plan import DEVICE_COMPARISON, Base, Intersect
from repro.perf import PAPER_CONSERVATIVE, estimate_array_area
from repro.perf.cost import bit_comparison_cost
from repro.workloads import overlapping_pair


def test_bit_level_equivalence(benchmark, experiment_report):
    """E12: identical T matrices from word- and bit-level arrays."""
    width = 6
    a, b = overlapping_pair(6, 6, 3, arity=2, universe=60, seed=120)
    word = compare_all_pairs(a.tuples, b.tuples)
    bit = benchmark(
        lambda: bit_level_compare_all_pairs(a.tuples, b.tuples, width=width)
    )
    assert bit.t_matrix == word.t_matrix
    stats = bit_array_stats(word.run.rows, word.run.cols, width)
    experiment_report("E12 word→bit transformation (§8, ref [3])", [
        ("T matrices identical", "yes",
         "yes" if bit.t_matrix == word.t_matrix else "NO"),
        ("word array", f"{word.run.rows}×{word.run.cols}",
         f"{word.run.rows}×{word.run.cols}"),
        ("bit array", f"{word.run.rows}×{word.run.cols * width}",
         f"{bit.run.rows}×{bit.run.cols}"),
        ("bit comparators", str(stats.bit_cells),
         str(bit.run.cells)),
        ("extra pulses (additive, (w-1)·m)",
         f"+{(width - 1) * word.run.cols}",
         f"+{bit.run.pulses - word.run.pulses}"),
    ])


def test_bit_comparator_area_feeds_section8(benchmark, experiment_report):
    """E12b: bit-cell counts → chips, closing the loop with E8."""
    width = 32
    rows, cols = 63, 8  # the default machine device
    estimate = benchmark(
        lambda: estimate_array_area(rows, cols, PAPER_CONSERVATIVE, width)
    )
    experiment_report("E12b device area on §8 technology", [
        ("word processors", f"{rows}×{cols}", f"{rows * cols}"),
        ("bit comparators", f"{rows * cols * width:,}",
         f"{estimate.bit_comparators:,}"),
        ("chips (1000 comparators/chip)",
         f"{-(-rows * cols * width // 1000)}", str(estimate.chips)),
        ("silicon", "-", f"{estimate.silicon_mm2:.0f} mm²"),
    ])


def test_magnitude_comparator_chain(benchmark, experiment_report):
    """E12c: MSB-first bit-serial magnitude comparison (for θ-joins)."""
    correct = 0
    total = 0
    for x in range(0, 64, 7):
        for y in range(0, 64, 5):
            total += 1
            if bit_level_three_way_compare(x, y, width=6) == (x > y) - (x < y):
                correct += 1
    benchmark(lambda: bit_level_three_way_compare(45, 23, width=6))
    experiment_report("E12c bit-serial magnitude comparator", [
        ("three-way results correct", f"{total}/{total}",
         f"{correct}/{total}"),
        ("pulses per comparison", "width = 6", "6"),
    ])
    assert correct == total


# -- E21: packed bitplanes vs the pulse-simulated bit-level array --------------

#: Element width for the wide-tuple workloads: two 32-bit columns make
#: a 64-bit tuple — §8's "1000-bit" regime scaled to one plane set.
_WIDTH = 32


def _time(thunk, repeats: int = 1):
    """Best-of-``repeats`` wall-clock (same discipline as bench_engines)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - start)
    return best, result


def _wide_pair(n: int, seed: int):
    return overlapping_pair(n, n, n // 2, arity=2, seed=seed)


def run_wide_matrix():
    """E21: time the bit-level intersection both ways.

    The pulse engine steps every bit-comparator cell once per pulse, so
    it is only run at calibration size; the measured cell-pulse rate
    projects its wall-clock at scale (reported, never gated).
    """
    entries = []

    # Calibration: small enough for the pulse engine, wide enough that
    # the 64 bit columns dominate.  Both backends run the *same*
    # expanded bit-level array, so pulse counts must agree exactly.
    a, b = _wide_pair(48, seed=21)
    pulse_seconds, pulse_result = _time(
        lambda: bit_level_intersection(a, b, width=_WIDTH, backend="pulse")
    )
    plane_seconds, plane_result = _time(
        lambda: bit_level_intersection(a, b, width=_WIDTH, backend="bitplane"),
        repeats=5,
    )
    assert plane_result.relation == pulse_result.relation
    assert plane_result.run.pulses == pulse_result.run.pulses
    speedup = pulse_seconds / plane_seconds
    entries.append({
        "experiment": "E21",
        "operation": "wide-intersection",
        "n": len(a),
        "tuple_bits": a.arity * _WIDTH,
        "pulses": pulse_result.run.pulses,
        "result_tuples": len(pulse_result.relation),
        "pulse_seconds": round(pulse_seconds, 6),
        "bitplane_seconds": round(plane_seconds, 6),
        "speedup": round(speedup, 1),
    })
    calibration = (pulse_seconds, pulse_result.run)

    # At scale the pulse engine is out of reach; the bitplane engine
    # sweeps the same arrays in bulk.
    for n in (4096,):
        a, b = _wide_pair(n, seed=n)
        seconds, result = _time(
            lambda: bit_level_intersection(
                a, b, width=_WIDTH, backend="bitplane"
            ),
            repeats=3,
        )
        entries.append({
            "experiment": "E21",
            "operation": "wide-intersection",
            "n": n,
            "tuple_bits": a.arity * _WIDTH,
            "pulses": result.run.pulses,
            "result_tuples": len(result.relation),
            "bitplane_seconds": round(seconds, 6),
        })
        scale_run = result.run

    return entries, calibration, scale_run


def _projection(calibration, scale_run):
    """Projected pulse-engine wall-clock at scale (informational)."""
    pulse_seconds, run = calibration
    work = run.pulses * run.rows * run.cols
    scale_work = scale_run.pulses * scale_run.rows * scale_run.cols
    projected = pulse_seconds * scale_work / work
    return {
        "cell_pulses_calibration": work,
        "cell_pulses_at_scale": scale_work,
        "pulse_engine_projected_hours": round(projected / 3600.0, 2),
    }


def _device_prediction():
    """The planner's bit-comparator cost terms vs an executed device."""
    a, b = _wide_pair(200, seed=7)
    capacity = ArrayCapacity(max_rows=63, max_cols=128)
    device = SystolicDevice(
        "bit0", DEVICE_COMPARISON, capacity, element_bits=_WIDTH,
        backend="bitplane",
    )
    predicted = bit_comparison_cost(
        len(a), len(b), a.arity, _WIDTH,
        capacity.max_rows, capacity.max_cols,
    )
    run = device.execute(Intersect(Base("A"), Base("B")), [a, b])
    assert predicted.total_pulses == run.pulses, (
        f"bit cost model predicted {predicted.total_pulses} pulses, "
        f"device executed {run.pulses}"
    )
    return {
        "n": len(a),
        "tuple_bits": a.arity * _WIDTH,
        "device_cols": capacity.max_cols,
        "predicted_pulses": predicted.total_pulses,
        "simulated_pulses": run.pulses,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parents[1] / "BENCH_bitlevel.json"
        ),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    entries, calibration, scale_run = run_wide_matrix()
    prediction = _device_prediction()
    report = {
        "description": "E21 packed-bitplane engine vs pulse-simulated "
                       "bit-level arrays, identical results and pulse "
                       "counts (see docs/ENGINES.md)",
        "entries": entries,
        "pulse_projection": _projection(calibration, scale_run),
        "cost_model": prediction,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for e in entries:
        pulse = (f"pulse {e['pulse_seconds']:>9.4f}s  "
                 if "pulse_seconds" in e else " " * 22)
        tail = f"{e['speedup']:>8.1f}x" if "speedup" in e else ""
        print(f"{e['experiment']} {e['operation']:<18} n={e['n']:>5}  "
              f"{pulse}bitplane {e['bitplane_seconds']:>9.6f}s  {tail}")
    print(f"cost model: predicted {prediction['predicted_pulses']} == "
          f"simulated {prediction['simulated_pulses']} pulses")
    print(f"wrote {args.out}")
    # The tentpole claim: two orders of magnitude on wide tuples.
    calib = entries[0]
    assert calib["speedup"] >= 100, (
        f"bitplane only {calib['speedup']}x faster than the pulse "
        f"bit-level array on n={calib['n']}"
    )
    return 0


def test_bitplane_matches_pulse_on_wide_tuples(benchmark, experiment_report):
    """E21: packed bitplanes — identical answer, bulk speed."""
    a, b = _wide_pair(32, seed=5)
    pulse = bit_level_intersection(a, b, width=_WIDTH, backend="pulse")
    result = benchmark(
        lambda: bit_level_intersection(a, b, width=_WIDTH, backend="bitplane")
    )
    assert result.relation == pulse.relation
    assert result.run.pulses == pulse.run.pulses
    pulse_seconds, _ = _time(
        lambda: bit_level_intersection(a, b, width=_WIDTH, backend="pulse")
    )
    plane_seconds, _ = _time(
        lambda: bit_level_intersection(a, b, width=_WIDTH, backend="bitplane"),
        repeats=3,
    )
    experiment_report("E21 packed bitplanes vs pulse bit-level (n=32)", [
        ("identical relation + pulses", "yes", "yes"),
        ("tuple width", "64 bits", f"{a.arity * _WIDTH} bits"),
        ("pulse bit-level array", "O(bit-cells×pulses)",
         f"{pulse_seconds:.4f}s"),
        ("bitplane kernels", "uint64 planes", f"{plane_seconds:.6f}s"),
        ("speedup", ">100x", f"{pulse_seconds / plane_seconds:.0f}x"),
    ])
    assert pulse_seconds > plane_seconds


if __name__ == "__main__":
    raise SystemExit(main())
