"""E12 — the word→bit-level design transformation (§8, ref [3]).

Claims reproduced: partitioning word processors into bit processors
changes the implementation, not the answer — the bit-level arrays
compute identical results, and their size is expressible directly in
§8's bit-comparator unit, feeding the E8 area arithmetic.
"""

from __future__ import annotations

from repro.arrays import compare_all_pairs
from repro.bitlevel import (
    bit_array_stats,
    bit_level_compare_all_pairs,
    bit_level_three_way_compare,
)
from repro.perf import PAPER_CONSERVATIVE, estimate_array_area
from repro.workloads import overlapping_pair


def test_bit_level_equivalence(benchmark, experiment_report):
    """E12: identical T matrices from word- and bit-level arrays."""
    width = 6
    a, b = overlapping_pair(6, 6, 3, arity=2, universe=60, seed=120)
    word = compare_all_pairs(a.tuples, b.tuples)
    bit = benchmark(
        lambda: bit_level_compare_all_pairs(a.tuples, b.tuples, width=width)
    )
    assert bit.t_matrix == word.t_matrix
    stats = bit_array_stats(word.run.rows, word.run.cols, width)
    experiment_report("E12 word→bit transformation (§8, ref [3])", [
        ("T matrices identical", "yes",
         "yes" if bit.t_matrix == word.t_matrix else "NO"),
        ("word array", f"{word.run.rows}×{word.run.cols}",
         f"{word.run.rows}×{word.run.cols}"),
        ("bit array", f"{word.run.rows}×{word.run.cols * width}",
         f"{bit.run.rows}×{bit.run.cols}"),
        ("bit comparators", str(stats.bit_cells),
         str(bit.run.cells)),
        ("extra pulses (additive, (w-1)·m)",
         f"+{(width - 1) * word.run.cols}",
         f"+{bit.run.pulses - word.run.pulses}"),
    ])


def test_bit_comparator_area_feeds_section8(benchmark, experiment_report):
    """E12b: bit-cell counts → chips, closing the loop with E8."""
    width = 32
    rows, cols = 63, 8  # the default machine device
    estimate = benchmark(
        lambda: estimate_array_area(rows, cols, PAPER_CONSERVATIVE, width)
    )
    experiment_report("E12b device area on §8 technology", [
        ("word processors", f"{rows}×{cols}", f"{rows * cols}"),
        ("bit comparators", f"{rows * cols * width:,}",
         f"{estimate.bit_comparators:,}"),
        ("chips (1000 comparators/chip)",
         f"{-(-rows * cols * width // 1000)}", str(estimate.chips)),
        ("silicon", "-", f"{estimate.silicon_mm2:.0f} mm²"),
    ])


def test_magnitude_comparator_chain(benchmark, experiment_report):
    """E12c: MSB-first bit-serial magnitude comparison (for θ-joins)."""
    correct = 0
    total = 0
    for x in range(0, 64, 7):
        for y in range(0, 64, 5):
            total += 1
            if bit_level_three_way_compare(x, y, width=6) == (x > y) - (x < y):
                correct += 1
    benchmark(lambda: bit_level_three_way_compare(45, 23, width=6))
    experiment_report("E12c bit-serial magnitude comparator", [
        ("three-way results correct", f"{total}/{total}",
         f"{correct}/{total}"),
        ("pulses per comparison", "width = 6", "6"),
    ])
    assert correct == total
