"""E7 — the division array of Fig 7-2 on the Fig 7-1 example and beyond.

Claims reproduced: the dividend/divisor array pair computes relational
division; the paper's worked example yields quotient {i}; the pulse
count is linear in |A| + P + |B| (one pass of the pair stream).
"""

from __future__ import annotations

from repro.arrays import systolic_divide
from repro.relational import algebra
from repro.workloads import division_example, division_workload


def test_fig_71_example(benchmark, experiment_report):
    """E7: the paper's division example."""
    a, b, expected = division_example()
    result = benchmark(lambda: systolic_divide(a, b))
    assert result.relation == expected
    experiment_report("E7  Fig 7-1/7-2 division example", [
        ("dividend pairs |A|", "8", str(len(a))),
        ("distinct A1 values", "3 (i,j,k)", str(len(result.distinct_x))),
        ("divisor |B|", "4 (a,b,c,d)", str(len(b))),
        ("quotient", "{i}",
         "{" + ",".join(str(v[0]) for v in result.relation.decoded()) + "}"),
        ("quotient bits", "T,F,F",
         ",".join("T" if q else "F" for q in result.quotient_bits)),
    ])


def test_division_scales_linearly(benchmark, experiment_report):
    """E7b: pulses grow with |A| + P + |B|, not |A|·|B|."""
    rows = []
    for n_groups, divisor_size in ((4, 3), (8, 3), (16, 3), (8, 6)):
        a, b, expected = division_workload(
            n_groups, divisor_size, n_groups // 2, seed=n_groups
        )
        result = systolic_divide(a, b)
        assert result.relation == algebra.divide(a, b)
        assert len(result.relation) == expected
        formula = len(a) + len(result.distinct_x) + divisor_size + 1
        rows.append((
            f"groups={n_groups:>2} divisor={divisor_size}",
            f"|A|+P+|B|+1 = {formula}",
            f"{result.run.pulses} pulses, |C|={len(result.relation)}",
        ))
    a, b, _ = division_workload(8, 4, 4, seed=70)
    benchmark(lambda: systolic_divide(a, b))
    experiment_report("E7b division pulse counts (single stream pass)", rows)
