"""E5 — remove-duplicates, union, and projection on the §5 array.

Claims reproduced: the intersection hardware with a triangular
initial-t mask removes duplicates keeping first occurrences; union is
dedup of a concatenation; projection is a column drop plus dedup.
"""

from __future__ import annotations

from repro.arrays import (
    systolic_projection,
    systolic_remove_duplicates,
    systolic_union,
)
from repro.relational import algebra
from repro.workloads import overlapping_pair, relation_with_duplicates


def test_remove_duplicates(benchmark, experiment_report):
    """E5: dedup via the masked intersection array."""
    multi = relation_with_duplicates(10, 2.5, arity=3, seed=55)
    result = benchmark(lambda: systolic_remove_duplicates(multi))
    assert result.relation == algebra.remove_duplicates(multi)
    experiment_report("E5  remove-duplicates array (§5)", [
        ("input tuples", str(len(multi)), str(len(multi))),
        ("distinct tuples", "10", str(len(result.relation))),
        ("tuples dropped", str(len(multi) - 10),
         str(sum(result.drop_vector))),
        ("survivors are first occurrences", "yes",
         "yes" if result.relation == multi.distinct() else "NO"),
    ])


def test_union_via_concatenation(benchmark, experiment_report):
    """E5b: A ∪ B = remove-duplicates(A + B)."""
    a, b = overlapping_pair(12, 10, 5, arity=2, seed=56)
    result = benchmark(lambda: systolic_union(a, b))
    assert result.relation == algebra.union(a, b)
    experiment_report("E5b union = dedup(A + B) (§5)", [
        ("|A| + |B|", "22", str(len(a) + len(b))),
        ("|A ∪ B|", "17", str(len(result.relation))),
        ("duplicates removed", "5", str(sum(result.drop_vector))),
    ])


def test_projection(benchmark, experiment_report):
    """E5c: projection = column drop during retrieval + dedup."""
    a, _ = overlapping_pair(20, 5, 0, arity=3, universe=4, seed=57)
    result = benchmark(lambda: systolic_projection(a, ["c0", "c1"]))
    expected = algebra.project(a, ["c0", "c1"])
    assert result.relation == expected
    experiment_report("E5c projection over two of three columns (§5)", [
        ("input tuples", "20", str(len(a))),
        ("projected distinct tuples", str(len(expected)),
         str(len(result.relation))),
        ("array arity (reduced)", "2 + accumulator",
         str(result.run.cols)),
    ])
