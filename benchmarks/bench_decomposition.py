"""E10 — §8's problem decomposition on fixed-size devices.

Claims reproduced: a problem whose T matrix exceeds the device is
partitioned into device-sized sub-problems; the combined answer is
identical; the overhead (extra fill/drain per block) is measurable and
shrinks as the device grows.
"""

from __future__ import annotations

from repro.arrays import (
    ArrayCapacity,
    blocked_intersection,
    blocked_join,
    systolic_intersection,
)
from repro.relational import algebra
from repro.workloads import join_pair, overlapping_pair


def test_blocked_intersection_overhead(benchmark, experiment_report):
    """E10: same answer, block_runs × fill/drain overhead."""
    a, b = overlapping_pair(24, 24, 8, arity=2, seed=80)
    unblocked = systolic_intersection(a, b)
    rows = []
    for max_rows in (7, 15, 31, 63):
        capacity = ArrayCapacity(max_rows=max_rows, max_cols=2)
        result, report = blocked_intersection(a, b, capacity)
        assert result == algebra.intersection(a, b)
        rows.append((
            f"device rows = {max_rows:>2}",
            "identical result",
            f"{report.block_runs:>3} runs, {report.total_pulses:>5} pulses",
        ))
    rows.append((
        "unbounded device", "baseline",
        f"  1 run,  {unblocked.run.pulses:>5} pulses",
    ))
    capacity = ArrayCapacity(max_rows=15, max_cols=2)
    benchmark(lambda: blocked_intersection(a, b, capacity))
    experiment_report(
        "E10 §8 decomposition: intersect 24×24 on bounded devices", rows
    )


def test_blocked_join_overhead(benchmark, experiment_report):
    """E10b: join decomposition across tuple blocks."""
    a, b = join_pair(20, 16, 8, seed=81)
    expected = algebra.join(a, b, [("key", "key")])
    rows = []
    for max_rows in (5, 11, 39):
        capacity = ArrayCapacity(max_rows=max_rows, max_cols=1)
        result, report = blocked_join(a, b, [("key", "key")], capacity)
        assert result == expected
        rows.append((
            f"device rows = {max_rows:>2}",
            f"|C| = {len(expected)}",
            f"{report.block_runs:>2} runs, |C| = {len(result)}",
        ))
    benchmark(lambda: blocked_join(
        a, b, [("key", "key")], ArrayCapacity(max_rows=11, max_cols=1)
    ))
    experiment_report("E10b §8 decomposition: join 20×16", rows)
