"""E18a — skewed workloads: §6.2's degenerate-output warning, measured.

"The size of the join, |C|, might be as large as the product |A||B|.
(This happens in the degenerate case where all tuples in A match all
tuples in B in the specified columns.)  However, for most applications
the number of TRUE t_ij's in T is far less than this product."

Zipf-distributed join keys interpolate between those regimes: light
skew behaves like "most applications", heavy skew approaches the
degenerate bound — while the array's *pulse count* stays O(n), because
the t_ij's all emerge from the edge in the same schedule regardless of
how many are TRUE.
"""

from __future__ import annotations

from repro.arrays import systolic_join, systolic_remove_duplicates
from repro.relational import algebra
from repro.workloads import skewed_join_pair, zipf_relation


def test_join_output_vs_skew(benchmark, experiment_report):
    """E18a: output size explodes with skew; pulses don't."""
    n = 24
    rows = []
    for skew in (4.0, 2.0, 1.3):
        a, b = skewed_join_pair(n, n, skew=skew, seed=int(skew * 10))
        result = systolic_join(a, b, [("key", "key")])
        assert result.relation == algebra.join(a, b, [("key", "key")])
        rows.append((
            f"zipf skew = {skew}",
            f"|C| <= |A||B| = {n * n}",
            f"|C| = {len(result.relation):>3}, {result.run.pulses} pulses",
        ))
    a, b = skewed_join_pair(n, n, skew=1.3, seed=13)
    benchmark(lambda: systolic_join(a, b, [("key", "key")]))
    experiment_report("E18a §6.2 join output vs key skew (n = 24 each side)",
                      rows)


def test_dedup_under_skew(benchmark, experiment_report):
    """E18b: heavy skew = many duplicates; the §5 array absorbs them."""
    rows = []
    for skew in (3.0, 1.5, 1.2):
        multi = zipf_relation(20, arity=2, skew=skew, universe=8,
                              seed=int(skew * 100))
        result = systolic_remove_duplicates(multi)
        assert result.relation == algebra.remove_duplicates(multi)
        rows.append((
            f"zipf skew = {skew}",
            "fewer distinct as skew grows",
            f"{len(result.relation)} distinct of {len(multi)}",
        ))
    multi = zipf_relation(20, arity=2, skew=2.0, universe=8, seed=55)
    benchmark(lambda: systolic_remove_duplicates(multi))
    experiment_report("E18b §5 dedup under value skew", rows)
