#!/usr/bin/env python3
"""E18 — the cost-based physical planner on a 3-op transaction.

``divide(project(join(JA, JB)), D)`` compiles to a PhysicalPlan whose
three array stages fuse into one §9 pipelined chain: intermediates
stream device → switch → device and never touch a memory.  The chain's
simulated span must match ``machine.pipelining.analyze_chain``'s
Σ fill + max stream law exactly, and beat the store-and-forward
discipline where every stage runs to completion before the next.

Run standalone to (re)generate ``BENCH_planner.json`` at the repo
root — CI's benchmark smoke job does exactly this::

    python benchmarks/bench_planner.py [--out BENCH_planner.json]

or run under pytest-benchmark with the rest of the experiment suite.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path

from repro.arrays import ArrayCapacity
from repro.machine import (
    Base,
    Divide,
    EnginePool,
    Intersect,
    Join,
    Project,
    StageCost,
    SystolicDatabaseMachine,
    analyze_chain,
)
from repro.machine.physical import actual_cost
from repro.relational import algebra
from repro.systolic.engine import LatticeEngine
from repro.workloads import division_example, join_pair, overlapping_pair

CHAIN_LABELS = ("join[key==key]", "project[a0,b0]", "divide")


def _scenario(n_a: int, n_b: int, n_keys: int, seed: int):
    ja, jb = join_pair(n_a, n_b, n_keys, seed=seed)
    catalog = {"JA": ja, "JB": jb, "D": algebra.project(jb, ["b0"])}
    plan = Divide(
        Project(Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
                ("a0", "b0")),
        Base("D"), a_value="b0", a_group="a0",
    )
    return catalog, plan


def _machine(catalog):
    machine = SystolicDatabaseMachine()
    for name, relation in catalog.items():
        machine.preload(name, relation)
    return machine


def _law_stages(machine, catalog, plan, report):
    """Independent stage costs: stand-alone times from the
    store-and-forward run, fills from the schedule arithmetic."""
    joined = algebra.join(catalog["JA"], catalog["JB"], [("key", "key")])
    inputs = {
        CHAIN_LABELS[0]: [catalog["JA"], catalog["JB"]],
        CHAIN_LABELS[1]: [joined],
        CHAIN_LABELS[2]: [algebra.project(joined, ["a0", "b0"]),
                          catalog["D"]],
    }
    nodes = {
        CHAIN_LABELS[0]: plan.left.child,
        CHAIN_LABELS[1]: plan.left,
        CHAIN_LABELS[2]: plan,
    }
    stages = []
    for label in CHAIN_LABELS:
        [step] = [s for s in report.steps if s.label == label]
        device = next(d for d in machine.devices if d.name == step.device)
        cost = actual_cost(nodes[label], inputs[label],
                           device.capacity.max_rows, device.capacity.max_cols)
        fill = min(device.technology.pulses_to_seconds(cost.fill_pulses),
                   step.duration)
        stages.append(StageCost(name=label, fill=fill,
                                stream=step.duration - fill))
    return stages


def run_scenario(n_a: int, n_b: int, n_keys: int, seed: int) -> dict:
    """Run the transaction both ways; check the E17 law holds for real."""
    catalog, plan = _scenario(n_a, n_b, n_keys, seed)

    pipelined = _machine(catalog)
    physical = pipelined.compile(plan)
    (result_p,), report_p = pipelined.run_physical(physical)

    forward = _machine(catalog)
    result_s, report_s = forward.run(plan, pipeline=False)

    expected = algebra.divide(
        algebra.project(
            algebra.join(catalog["JA"], catalog["JB"], [("key", "key")]),
            ["a0", "b0"],
        ),
        catalog["D"], a_value="b0", a_group="a0",
    )
    assert result_p == expected and result_s == expected

    timing = analyze_chain(_law_stages(forward, catalog, plan, report_s))
    chain_steps = [s for s in report_p.steps if s.device != "disk"]
    chain_span = (max(s.end for s in chain_steps)
                  - min(s.start for s in chain_steps))
    assert abs(chain_span - timing.pipelined) < 1e-12, (
        f"chain span {chain_span} != law {timing.pipelined}"
    )
    assert report_p.makespan < report_s.makespan

    fused = max((len(c) for c in physical.chains), default=1)
    return {
        "n_a": n_a, "n_b": n_b, "n_keys": n_keys,
        "chain_stages": fused,
        "pipelined_ms": round(report_p.makespan * 1e3, 6),
        "store_and_forward_ms": round(report_s.makespan * 1e3, 6),
        "law_pipelined_ms": round(timing.pipelined * 1e3, 6),
        "predicted_ms": round(physical.predicted_makespan * 1e3, 6),
        "speedup": round(report_s.makespan / report_p.makespan, 3),
    }


def _overlap_machine(n: int, plans: int):
    """A roster of big lattice-backed join arrays running ``plans``
    independent equi-joins — the host-overlap workload.  The lattice
    chunk is raised so each join is one long GIL-releasing numpy
    broadcast that host threads can genuinely overlap."""
    capacity = ArrayCapacity(max_rows=4 * n, max_cols=8)
    machine = SystolicDatabaseMachine(
        devices=(("join", plans, capacity),),
        capacity=capacity,
        memory_bytes=256 * 1024 * 1024,
        backend=LatticeEngine(chunk_bytes=128 * 1024 * 1024),
    )
    transaction = []
    for k in range(plans):
        ja, jb = join_pair(n, n, n // 2, seed=100 + k)
        machine.store(f"JA{k}", ja)
        machine.store(f"JB{k}", jb)
        transaction.append(
            Join(Base(f"JA{k}"), Base(f"JB{k}"), on=(("key", "key"),))
        )
    return machine, transaction


def run_overlap(n: int, plans: int) -> dict:
    """Wall-clock of run_physical's compute phase, serial vs threaded.

    Host wall-clock is machine-dependent (core count, numpy build), so
    these numbers live outside the regression-gated ``entries`` list;
    the assertion only requires parallel not to *lose* badly.
    """

    def run(parallel):
        machine, transaction = _overlap_machine(n, plans)
        physical = machine.compile(transaction)
        start = time.perf_counter()
        results, report = machine.run_physical(physical, parallel=parallel)
        return time.perf_counter() - start, results, report

    serial_s, serial_results, serial_report = run(False)
    parallel_s, parallel_results, parallel_report = run(True)
    assert parallel_results == serial_results
    assert parallel_report.steps == serial_report.steps
    assert parallel_s < serial_s * 1.25, (
        f"host-parallel run slower than serial: {parallel_s:.3f}s vs "
        f"{serial_s:.3f}s"
    )
    return {
        "n": n, "plans": plans,
        "serial_wall_ms": round(serial_s * 1e3, 3),
        "parallel_wall_ms": round(parallel_s * 1e3, 3),
        "overlap": round(serial_s / parallel_s, 3),
    }


def _tenant_plans():
    """One tenant's 3-query mix (join/project, intersect, divide).

    Fresh node objects per call: tenants share base *names* (so the
    shared timeline dedups the disk loads) but never plan subtrees (so
    no computation is accidentally shared)."""
    return [
        Project(Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
                ("a0", "b0")),
        Intersect(Base("A"), Base("B")),
        Divide(Base("DA"), Base("DB"), a_value="A2", a_group="A1"),
    ]


def _store_service_bases(store) -> None:
    ja, jb = join_pair(48, 40, 24, seed=21)
    oa, ob = overlapping_pair(36, 30, 18, arity=2, seed=22)
    da, db, _ = division_example()
    store("JA", ja)
    store("JB", jb)
    store("A", oa)
    store("B", ob)
    store("DA", da)
    store("DB", db)


def run_multi_tenant(tenants: int = 4) -> dict:
    """Aggregate throughput: 4 concurrent tenant sessions vs one.

    The deterministic measure is *simulated*: all tenants' transactions
    absorbed into one shared §9 timeline (base loads dedup, devices and
    disk overlap) versus serializing every query through one session
    (each on its own fresh machine state, so every query re-loads its
    bases).  Host wall-clock through the actual EnginePool is reported
    alongside, but it is machine-dependent (core count, GIL) and not
    gated.
    """
    per_tenant = len(_tenant_plans())

    # -- simulated: one shared timeline vs one-at-a-time ------------------
    shared = SystolicDatabaseMachine()
    _store_service_bases(shared.store)
    all_plans = [p for _ in range(tenants) for p in _tenant_plans()]
    shared_results, shared_report = shared.run_many(all_plans)
    shared_ms = shared_report.makespan * 1e3

    serial_ms = 0.0
    serial_results = []
    for plan in all_plans:
        machine = SystolicDatabaseMachine()
        _store_service_bases(machine.store)
        result, report = machine.run(plan)
        serial_results.append(result)
        serial_ms += report.makespan * 1e3
    assert shared_results == serial_results
    throughput = serial_ms / shared_ms

    # -- host wall-clock through the pool (informational) ------------------
    def pooled_session(pool, tenant):
        session = pool.session(tenant)
        _store_service_bases(session.store)
        return session

    pool = EnginePool(max_concurrent=tenants)
    one = pooled_session(pool, "solo")
    start = time.perf_counter()
    for _ in range(tenants):
        for plan in _tenant_plans():
            one.run(plan)
    one_session_s = time.perf_counter() - start

    pool = EnginePool(max_concurrent=tenants)
    sessions = [pooled_session(pool, f"tenant{i}") for i in range(tenants)]

    def tenant_work(session):
        for plan in _tenant_plans():
            session.run(plan)

    start = time.perf_counter()
    threads = [threading.Thread(target=tenant_work, args=(s,))
               for s in sessions]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    concurrent_s = time.perf_counter() - start
    cache = pool.plan_cache_info()
    assert cache["hits"] > 0, "tenants never shared a compiled plan"

    return {
        "tenants": tenants,
        "queries_per_tenant": per_tenant,
        "serialized_sim_ms": round(serial_ms, 6),
        "shared_timeline_sim_ms": round(shared_ms, 6),
        "throughput_x": round(throughput, 3),
        "one_session_wall_ms": round(one_session_s * 1e3, 3),
        "concurrent_wall_ms": round(concurrent_s * 1e3, 3),
        "plan_cache_hits": cache["hits"],
        "plan_cache_misses": cache["misses"],
    }


def run_plan_cache() -> dict:
    """Compile-cache hit vs cold planner run on the E18 transaction."""
    catalog, plan = _scenario(80, 70, 40, seed=6)
    machine = _machine(catalog)

    start = time.perf_counter()
    cold_plan = machine.compile(plan)
    cold_s = time.perf_counter() - start

    best_hit = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        hit_plan = machine.compile(plan)
        best_hit = min(best_hit, time.perf_counter() - start)
    assert hit_plan is cold_plan, "structurally identical plan missed"
    info = machine.plan_cache_info()
    assert info["hits"] == 5 and info["misses"] == 1
    return {
        "cold_compile_ms": round(cold_s * 1e3, 6),
        "cached_compile_ms": round(best_hit * 1e3, 6),
        "speedup": round(cold_s / best_hit, 1),
        "hits": info["hits"],
        "misses": info["misses"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_planner.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    entries = [
        run_scenario(40, 35, 20, seed=5),
        run_scenario(80, 70, 40, seed=6),
        run_scenario(160, 140, 80, seed=7),
    ]
    overlap = [run_overlap(2048, plans=4)]
    plan_cache = run_plan_cache()
    multi_tenant = run_multi_tenant(tenants=4)
    report = {
        "description": "cost-based physical planner: pipelined chain vs "
                       "store-and-forward on divide(project(join)) "
                       "(see docs/PLANNER.md and docs/PERF.md)",
        "entries": entries,
        "host_execution": {
            "description": "run_physical compute phase, serial vs host "
                           "threads (wall-clock; machine-dependent, not "
                           "regression-gated)",
            "entries": overlap,
        },
        "plan_cache": plan_cache,
        "multi_tenant": {
            "description": "4 tenant sessions' transactions on one "
                           "shared §9 timeline vs serialized through "
                           "one session (simulated, deterministic); "
                           "wall-clock via EnginePool is informational",
            "entry": multi_tenant,
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for e in entries:
        print(f"E18 |JA|={e['n_a']:>3}  chain={e['chain_stages']} stages  "
              f"s&f {e['store_and_forward_ms']:>8.3f} ms  "
              f"pipelined {e['pipelined_ms']:>8.3f} ms  "
              f"{e['speedup']:.2f}x  (law {e['law_pipelined_ms']:.3f} ms)")
    for e in overlap:
        print(f"run_many overlap  n={e['n']} x{e['plans']} joins  "
              f"serial {e['serial_wall_ms']:>9.1f} ms  "
              f"parallel {e['parallel_wall_ms']:>9.1f} ms  "
              f"{e['overlap']:.2f}x")
    print(f"plan cache  cold {plan_cache['cold_compile_ms']:.3f} ms  "
          f"hit {plan_cache['cached_compile_ms']:.6f} ms  "
          f"{plan_cache['speedup']:.0f}x")
    mt = multi_tenant
    print(f"multi-tenant  {mt['tenants']} tenants x "
          f"{mt['queries_per_tenant']} queries  "
          f"serialized {mt['serialized_sim_ms']:>9.3f} ms  "
          f"shared {mt['shared_timeline_sim_ms']:>9.3f} ms  "
          f"{mt['throughput_x']:.2f}x  (wall: 1 session "
          f"{mt['one_session_wall_ms']:.0f} ms, concurrent "
          f"{mt['concurrent_wall_ms']:.0f} ms)")
    print(f"wrote {args.out}")
    assert all(e["speedup"] > 1.0 for e in entries)
    assert plan_cache["speedup"] > 10
    assert multi_tenant["throughput_x"] >= 2.0, (
        f"aggregate multi-tenant throughput below 2x: "
        f"{multi_tenant['throughput_x']}"
    )
    return 0


def test_planner_pipelines_the_transaction(benchmark, experiment_report):
    """E18: compiled chain obeys Σ fill + max stream and beats s&f."""
    entry = run_scenario(40, 35, 20, seed=5)
    catalog, plan = _scenario(40, 35, 20, seed=5)
    machine = _machine(catalog)
    benchmark(lambda: machine.compile(plan))
    experiment_report(
        "E18 cost-based planner: 3-op transaction, pipelined vs s&f",
        [
            ("fused chain", "3 array stages", f"{entry['chain_stages']} stages"),
            ("store-and-forward", "Σ (fill + stream)",
             f"{entry['store_and_forward_ms']:.3f} ms"),
            ("pipelined chain", "Σ fill + max stream",
             f"{entry['pipelined_ms']:.3f} ms"),
            ("law (analyze_chain)", "== simulated span",
             f"{entry['law_pipelined_ms']:.3f} ms"),
            ("speedup", "> 1x", f"{entry['speedup']:.2f}x"),
        ],
    )
    assert entry["chain_stages"] == 3
    assert entry["speedup"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
