"""E15 — the pattern-match chip (§8, ref [3]).

The one systolic design the paper reports as *fabricated and working*:
"The pattern-match chip can be viewed as a scaled-down version of the
comparison array in Section 3."  Reproduced here at full size: exact
and wildcard matching over streaming text, all alignments (including
overlapping ones), one text character consumed per pulse.
"""

from __future__ import annotations

from repro.patterns import match_pattern
from repro.perf import PAPER_CONSERVATIVE


def test_pattern_chip(benchmark, experiment_report):
    """E15: streaming match with wildcards, one char per pulse."""
    text = "the rain in spain falls mainly on the plain" * 4
    pattern = "?ain"
    result = benchmark(lambda: match_pattern(text, pattern))

    reference = [
        i for i in range(len(text) - len(pattern) + 1)
        if all(p == "?" or text[i + k] == p for k, p in enumerate(pattern))
    ]
    assert result.matches == reference

    seconds = PAPER_CONSERVATIVE.pulses_to_seconds(result.run.pulses)
    experiment_report("E15 §8 pattern-match chip (scaled-down comparison array)", [
        ("text length", str(len(text)), str(len(text))),
        ("pattern", "'?ain' (wildcard)", "'?ain'"),
        ("matches found", str(len(reference)), str(len(result.matches))),
        ("cells (m + m-1 latches)", "7", str(result.run.cells)),
        ("pulses (≈ one char/pulse)", f"n + 2(m-1) = {len(text) + 6}",
         str(result.run.pulses)),
        ("§8 NMOS wall clock", "-", f"{seconds * 1e6:.1f} µs"),
    ])


def test_pattern_chip_throughput_scales(benchmark, experiment_report):
    """E15b: pulses grow linearly with text length (streaming)."""
    rows = []
    for scale in (1, 4, 16):
        text = "abracadabra" * scale
        result = match_pattern(text, "abra")
        assert result.matches[:2] == [0, 7]
        rows.append((
            f"text = {len(text):>4} chars",
            f"n + 2(m-1) = {len(text) + 6}",
            f"{result.run.pulses} pulses, {len(result.matches)} matches",
        ))
    benchmark(lambda: match_pattern("abracadabra" * 8, "abra"))
    experiment_report("E15b pattern-chip streaming throughput", rows)
