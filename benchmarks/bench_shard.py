#!/usr/bin/env python3
"""E20 — shard-aware execution: a co-partitioned million-tuple equi-join
scales near-linearly across a cluster of 1/2/4 systolic machines.

Both relations are hash-partitioned on the join key, so the shard
planner proves the join distributive and every shard runs the complete
§6 pipeline on its own machine with **zero cross-shard traffic**.  The
cluster's simulated makespan is the slowest shard's makespan; with the
array work and the disk load both dividing by the shard count, the
aggregate simulated throughput grows near-linearly (the residual gap is
the per-shard disk-revolution floor).

A second, informational section exercises the costed exchange path: a
θ-join (broadcast) and a non-key equi-join (re-partition both sides)
through the simulated interconnect.

All ``entries`` numbers are *simulated* and deterministic — same seed,
same cost model, same timeline on every machine.  Host wall-clock lives
in the informational ``host_execution`` section and is not gated.

Run standalone to (re)generate ``BENCH_shard.json`` at the repo root —
CI's benchmark smoke job does exactly this::

    python benchmarks/bench_shard.py [--out BENCH_shard.json]

or run under pytest-benchmark with the rest of the experiment suite.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.arrays import ArrayCapacity
from repro.machine import Base, EnginePool, Join
from repro.shard import BROADCAST, REPARTITION
from repro.systolic.engine import LatticeEngine
from repro.workloads import join_pair

SHARD_COUNTS = (1, 2, 4)


def _pool(rows: int) -> EnginePool:
    """A lattice-backed pool whose single join array holds ``rows``
    tuples, so each shard's join streams in a handful of long,
    GIL-releasing blocks."""
    capacity = ArrayCapacity(max_rows=rows, max_cols=8)
    return EnginePool(
        devices=(("join", 1, capacity),),
        capacity=capacity,
        memory_bytes=512 * 1024 * 1024,
        backend=LatticeEngine(chunk_bytes=128 * 1024 * 1024),
    )


def run_scaling(n_a: int, n_b: int, rows: int = 4096):
    """The tentpole measurement: one equi-join, shard counts 1/2/4.

    Every configuration must return the identical relation; sharded
    configurations must plan zero exchanges (the inputs co-partition);
    and the compile-time prediction must equal the simulated makespan
    exactly — for a base-relation join every cardinality the cost model
    sees is catalog truth, so prediction and simulation coincide.
    """
    ja, jb = join_pair(n_a, n_b, n_b, universe=n_a + n_b, seed=19)
    plan = Join(Base("JA"), Base("JB"), on=(("key", "key"),))

    entries, walls = [], []
    baseline = None
    base_ms = 0.0
    for shards in SHARD_COUNTS:
        session = _pool(rows).session(
            "bench", shards=shards, parallel=True
        )
        session.store("JA", ja, key="key")
        session.store("JB", jb, key="key")
        compiled = session.compile(plan)
        start = time.perf_counter()
        results, report = session.run_many([plan])
        wall = time.perf_counter() - start

        if baseline is None:
            baseline = results
            base_ms = report.makespan * 1e3
        assert results == baseline, f"shards={shards} changed the result"
        if shards > 1:
            assert report.shards == shards
            assert report.exchange_seconds == 0.0, (
                "co-partitioned join crossed the interconnect"
            )
        sim_ms = report.makespan * 1e3
        predicted_ms = compiled.predicted_makespan * 1e3
        assert abs(predicted_ms - sim_ms) <= 1e-6 * sim_ms, (
            f"prediction {predicted_ms} drifted from simulation {sim_ms}"
        )
        entries.append({
            "rows_a": n_a,
            "rows_b": n_b,
            "shards": shards,
            "sim_makespan_ms": round(sim_ms, 6),
            "predicted_ms": round(predicted_ms, 6),
            "throughput_x": round(base_ms / sim_ms, 3),
        })
        walls.append({
            "shards": shards,
            "wall_ms": round(wall * 1e3, 3),
            "result_rows": len(results[0]),
        })
    return entries, walls


def run_exchange(shards: int = 4) -> list[dict]:
    """Informational: joins that *cannot* stay shard-local.

    A non-key equi-join re-partitions both sides by the joined column;
    a θ-join broadcasts the smaller side.  Results must still match the
    single machine exactly, with the interconnect time on the timeline.
    """
    ja, jb = join_pair(2048, 2048, 1024, seed=23)
    theta_a, theta_b = join_pair(128, 128, 64, seed=29)
    cases = [
        ("repartition", {"A": ja, "B": jb},
         Join(Base("A"), Base("B"), on=(("a0", "b0"),)), REPARTITION),
        ("broadcast", {"A": theta_a, "B": theta_b},
         Join(Base("A"), Base("B"), on=(("a0", "b0"),), ops=("<=",)),
         BROADCAST),
    ]
    entries = []
    for name, catalog, plan, kind in cases:
        solo = _pool(4096).session(f"solo-{name}")
        cluster = _pool(4096).session(
            f"cluster-{name}", shards=shards, parallel=True
        )
        for store in (solo.store, cluster.store):
            for rel_name, relation in catalog.items():
                store(rel_name, relation, key="key")
        expected, solo_report = solo.run_many([plan])
        got, report = cluster.run_many([plan])
        assert got == expected, f"{name} join diverged when sharded"
        assert kind in {step.kind for step in report.exchanges}, (
            f"{name} join did not plan a {kind} exchange"
        )
        assert report.exchange_seconds > 0.0
        entries.append({
            "case": name,
            "shards": shards,
            "exchanges": len(report.exchanges),
            "solo_sim_ms": round(solo_report.makespan * 1e3, 6),
            "sharded_sim_ms": round(report.makespan * 1e3, 6),
            "interconnect_ms": round(report.exchange_seconds * 1e3, 6),
        })
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_shard.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    entries, walls = run_scaling(1 << 20, 64)
    exchange = run_exchange()
    report = {
        "description": "shard-aware execution: co-partitioned "
                       "million-tuple equi-join on 1/2/4 systolic "
                       "machines, simulated makespans "
                       "(see docs/SHARDING.md)",
        "entries": entries,
        "host_execution": {
            "description": "host wall-clock per configuration "
                           "(machine-dependent, not regression-gated)",
            "entries": walls,
        },
        "exchange": {
            "description": "joins that need the interconnect: "
                           "re-partition vs broadcast, 4 shards vs one "
                           "machine (simulated, informational)",
            "entries": exchange,
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for e in entries:
        print(f"E20 shards={e['shards']}  |A|={e['rows_a']:>8}  "
              f"sim {e['sim_makespan_ms']:>10.3f} ms  "
              f"{e['throughput_x']:.2f}x")
    for e in exchange:
        print(f"exchange {e['case']:<11}  solo {e['solo_sim_ms']:>9.3f} ms  "
              f"{e['shards']} shards {e['sharded_sim_ms']:>9.3f} ms  "
              f"(interconnect {e['interconnect_ms']:.3f} ms)")
    print(f"wrote {args.out}")

    by_shards = {e["shards"]: e["throughput_x"] for e in entries}
    assert by_shards[2] >= 1.5, (
        f"2-shard throughput below 1.5x: {by_shards[2]}"
    )
    assert by_shards[4] >= 3.0, (
        f"4-shard throughput below 3x: {by_shards[4]}"
    )
    return 0


def test_sharded_join_scales(benchmark, experiment_report):
    """E20: sharding a co-partitioned equi-join divides the makespan."""
    entries, _ = run_scaling(1 << 14, 64, rows=1024)
    by_shards = {e["shards"]: e for e in entries}

    session = _pool(1024).session("bench-compile", shards=4)
    ja, jb = join_pair(1 << 14, 64, 64, universe=(1 << 14) + 64, seed=19)
    session.store("JA", ja, key="key")
    session.store("JB", jb, key="key")
    plan = Join(Base("JA"), Base("JB"), on=(("key", "key"),))
    benchmark(lambda: session.compile(plan))

    experiment_report(
        "E20 shard-aware execution: 16k-row co-partitioned equi-join",
        [
            ("1 machine", "baseline",
             f"{by_shards[1]['sim_makespan_ms']:.3f} ms"),
            ("2 shards", "~2x",
             f"{by_shards[2]['sim_makespan_ms']:.3f} ms "
             f"({by_shards[2]['throughput_x']:.2f}x)"),
            ("4 shards", "~4x",
             f"{by_shards[4]['sim_makespan_ms']:.3f} ms "
             f"({by_shards[4]['throughput_x']:.2f}x)"),
            ("cross-shard traffic", "0 bytes", "0 bytes"),
        ],
    )
    assert by_shards[4]["throughput_x"] > by_shards[2]["throughput_x"] >= 1.0
    assert by_shards[4]["sim_makespan_ms"] < by_shards[1]["sim_makespan_ms"]


if __name__ == "__main__":
    raise SystemExit(main())
