#!/usr/bin/env python3
"""E22 — out-of-core storage: grid-file pruning at the million-tuple scale.

Claim reproduced: the paper's machine reads base relations from mass
storage in blocks (§8); with the columnar store's grid-file index, a
selective predicate reads **strictly fewer chunks** than a full scan —
and the machine's answer over the pruned scan is bit-identical to the
in-memory path, on the lattice and bitplane engines alike.

Run standalone to (re)generate ``BENCH_storage.json`` at the repo root —
CI's benchmark smoke job does exactly this::

    python benchmarks/bench_storage.py [--out BENCH_storage.json]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.machine import Base, Select, SystolicDatabaseMachine
from repro.machine.disk import MachineDisk
from repro.relational.domain import IntegerDomain
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.store import DEFAULT_CHUNK_ROWS, RelationStore

_INT = IntegerDomain("int")

#: The scaled suppliers-parts workload: a million (s, p, qty) tuples.
N_ROWS = 1_000_000

#: Selective probes: ~0.1% (equality) and ~5% (range) of the relation.
PROBES = [
    ("equality s=123 (~0.1%)", ("s", "==", 123)),
    ("range p<100 (~5%)", ("p", "<", 100)),
]


def _sp_schema() -> Schema:
    return Schema.of(("s", _INT), ("p", _INT), ("qty", _INT))


def _sp_array(n: int, seed: int = 22) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.stack(
        [
            rng.integers(0, 1000, n),
            rng.integers(0, 2000, n),
            np.arange(n),  # keeps full rows distinct under set semantics
        ],
        axis=1,
    )


def build_store(root, n: int = N_ROWS, chunk_rows: int = DEFAULT_CHUNK_ROWS):
    """Write the scaled workload; returns (store, raw rows array)."""
    rows = _sp_array(n)
    store = RelationStore(root)
    store.write_array(
        "SP", rows, _sp_schema(), chunk_rows=chunk_rows,
        index_columns=("s", "p"),
    )
    return store, rows


def _time(thunk, repeats: int = 1):
    """Best-of-``repeats`` wall-clock (same discipline as bench_engines)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - start)
    return best, result


def _brute(rows: np.ndarray, position: int, op: str, value: int) -> int:
    ufunc = {"==": np.equal, "<": np.less}[op]
    return int(ufunc(rows[:, position], value).sum())


def run_scan_matrix(store: RelationStore, rows: np.ndarray) -> list[dict]:
    """Host-side scans: pruned reads vs the full sweep, same answers."""
    handle = store.open("SP")
    disk = MachineDisk()
    disk.attach_store(store)
    elem = (disk.element_bits + 7) // 8
    entries = []

    full_seconds, full_scan = _time(lambda: handle.read())
    assert full_scan.chunks_read == handle.n_chunks
    entries.append({
        "experiment": "E22",
        "operation": "full scan",
        "rows": handle.rows,
        "chunks_total": handle.n_chunks,
        "chunks_read": full_scan.chunks_read,
        "chunks_pruned": 0,
        "rows_scanned": full_scan.rows_scanned,
        "host_seconds": round(full_seconds, 6),
        "simulated_ms": round(
            disk.model.read_seconds(
                full_scan.rows_scanned * handle.arity * elem
            ) * 1e3, 3,
        ),
    })

    for label, (column, op, value) in PROBES:
        position = handle.schema.resolve(column)
        seconds, scan = _time(
            lambda: handle.read((column, op, value)), repeats=3
        )
        # The pruning contract, at scale: strictly fewer chunks read,
        # bit-identical row set.
        assert scan.chunks_read < scan.chunks_total, (
            f"{label}: read {scan.chunks_read}/{scan.chunks_total} chunks "
            f"— the grid index pruned nothing"
        )
        assert scan.chunks_pruned > 0
        assert len(scan.relation) == _brute(rows, position, op, value)
        _, sim_seconds = disk.read("SP", (column, op, value))
        entries.append({
            "experiment": "E22",
            "operation": label,
            "rows": handle.rows,
            "chunks_total": scan.chunks_total,
            "chunks_read": scan.chunks_read,
            "chunks_pruned": scan.chunks_pruned,
            "rows_scanned": scan.rows_scanned,
            "result_tuples": len(scan.relation),
            "host_seconds": round(seconds, 6),
            "host_speedup_vs_full": round(full_seconds / seconds, 1),
            "simulated_ms": round(sim_seconds * 1e3, 3),
        })
    return entries


def run_machine_matrix(store: RelationStore, rows: np.ndarray) -> list[dict]:
    """The machine over the stored relation, both engines, checked
    against a straight numpy filter of the raw rows."""
    entries = []
    plan = Select(Base("SP"), column="s", op="==", value=123)
    expected = sorted(
        tuple(map(int, row)) for row in rows[rows[:, 0] == 123]
    )
    answers = {}
    for backend in ("lattice", "bitplane"):
        machine = SystolicDatabaseMachine(backend=backend)
        machine.attach_store(store)
        seconds, (result, report) = _time(lambda: machine.run(plan))
        assert sorted(result.tuples) == expected, (
            f"{backend}: store-backed select disagrees with numpy filter"
        )
        answers[backend] = sorted(result.tuples)
        (scan,) = [
            op.scan for op in machine.compile(plan).ops
            if op.scan is not None
        ]
        entries.append({
            "experiment": "E22",
            "operation": "machine select s=123",
            "backend": backend,
            "rows": len(rows),
            "chunks_total": scan.chunks_total,
            "chunks_read": scan.chunks_read,
            "chunks_pruned": scan.chunks_pruned,
            "result_tuples": len(result),
            "host_seconds": round(seconds, 6),
            "simulated_makespan_ms": round(report.makespan * 1e3, 3),
        })
    assert answers["lattice"] == answers["bitplane"]
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parents[1] / "BENCH_storage.json"
        ),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--rows", type=int, default=N_ROWS,
        help="workload size (default: one million tuples)",
    )
    args = parser.parse_args(argv)
    # Scaled-down runs (--rows) keep the default's 16-chunk layout, so
    # the pruning asserts stay meaningful at any size.
    chunk_rows = (
        DEFAULT_CHUNK_ROWS
        if args.rows >= N_ROWS
        else min(DEFAULT_CHUNK_ROWS, max(1, -(-args.rows // 16)))
    )
    with tempfile.TemporaryDirectory(prefix="bench-storage-") as tmp:
        write_seconds, (store, rows) = _time(
            lambda: build_store(tmp, n=args.rows, chunk_rows=chunk_rows)
        )
        handle = store.open("SP")
        scans = run_scan_matrix(store, rows)
        machine = run_machine_matrix(store, rows)
    report = {
        "description": "E22 out-of-core columnar store: grid-file chunk "
                       "pruning on a scaled suppliers-parts workload "
                       "(see docs/STORAGE.md)",
        "rows": args.rows,
        "chunk_rows": handle.chunk_rows,
        "chunks": handle.n_chunks,
        "write_seconds": round(write_seconds, 3),
        "entries": scans + machine,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for e in report["entries"]:
        backend = f" [{e['backend']}]" if "backend" in e else ""
        sim = e.get("simulated_ms", e.get("simulated_makespan_ms"))
        print(
            f"{e['experiment']} {e['operation']:<24}{backend:<12} "
            f"chunks {e['chunks_read']:>3}/{e['chunks_total']:<3} "
            f"host {e['host_seconds']:>9.4f}s  sim {sim:>10.3f}ms"
        )
    print(f"wrote {args.out}")
    return 0


# -- tier-visible smoke (pytest benchmarks/ --benchmark-only) ------------------


def test_pruned_scan_matches_full_scan(benchmark, experiment_report, tmp_path):
    """E22 at smoke scale: pruning reads less and changes nothing."""
    store, rows = build_store(tmp_path, n=20_000, chunk_rows=1024)
    handle = store.open("SP")
    scan = benchmark(lambda: handle.read(("s", "==", 123)))
    assert scan.chunks_read < scan.chunks_total
    assert scan.chunks_pruned > 0
    assert len(scan.relation) == _brute(rows, 0, "==", 123)
    experiment_report("E22 grid-file chunk pruning (smoke, n=20k)", [
        ("answers identical", "yes", "yes"),
        ("chunks read", f"< {scan.chunks_total}",
         f"{scan.chunks_read}/{scan.chunks_total}"),
        ("rows scanned", f"< {handle.rows}", f"{scan.rows_scanned}"),
    ])


def test_machine_agrees_across_backends(benchmark, experiment_report, tmp_path):
    """E22: store-backed machine select, lattice == bitplane == numpy."""
    store, rows = build_store(tmp_path, n=5_000, chunk_rows=512)
    plan = Select(Base("SP"), column="s", op="==", value=123)
    expected = sorted(tuple(map(int, r)) for r in rows[rows[:, 0] == 123])
    results = {}
    for backend in ("lattice", "bitplane"):
        machine = SystolicDatabaseMachine(backend=backend)
        machine.attach_store(store)
        result, _ = machine.run(plan)
        results[backend] = sorted(result.tuples)
    benchmark(lambda: SystolicDatabaseMachine(backend="lattice"))
    assert results["lattice"] == results["bitplane"] == expected
    experiment_report("E22 store-backed select across engines (n=5k)", [
        ("lattice == bitplane", "yes", "yes"),
        ("matches numpy filter", "yes", "yes"),
        ("result tuples", "-", str(len(expected))),
    ])


if __name__ == "__main__":
    raise SystemExit(main())
