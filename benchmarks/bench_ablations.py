"""Ablations — what breaks (or slows) when a design rule is violated.

DESIGN.md calls out the load-bearing choices in the paper's schedules;
each ablation here removes one and measures the consequence:

* **two-pulse tuple spacing** (§3.2) — at one pulse, counter-moving
  tuples collide in the latches;
* **meeting-aligned t injection** (§3.1) — shift the stagger by one
  pulse and the partial result arrives without its element pair;
* **triangular masking** (§5) — feed all-TRUE inits to the dedup array
  and every tuple matches itself, so *everything* is dropped;
* **fixed-variant density** (§8) — feeding the fixed array at the
  counter-stream's two-pulse spacing still works but wastes half the
  pulses.
"""

from __future__ import annotations

import pytest

from repro.arrays.base import (
    attach_accumulation_column,
    build_counter_stream_grid,
    build_fixed_relation_grid,
    cmp_name,
    run_array,
)
from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.errors import SimulationError
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.streams import PeriodicFeeder, ScheduleFeeder
from repro.systolic.values import Token
from repro.workloads import overlapping_pair, relation_with_duplicates


def test_tuple_spacing_violation_detected(benchmark, experiment_report):
    """Feeding tuples 1 pulse apart makes counter-moving tokens collide."""
    a, b = overlapping_pair(4, 4, 2, arity=1, seed=170)
    schedule = CounterStreamSchedule(4, 4, 1)

    def broken_run():
        network, _ = build_counter_stream_grid(
            a.tuples, b.tuples, schedule, t_init=lambda i, j: True
        )
        # Overdrive the A feed: period 1 instead of the required 2.
        cell = cmp_name(0, 0)
        fresh, _ = build_counter_stream_grid(
            a.tuples, b.tuples, schedule, t_init=lambda i, j: True,
            name="overdriven",
        )
        # Build a new network by hand with the dense feeder.
        from repro.systolic.wiring import Network
        from repro.systolic.cells import ComparisonCell

        dense = Network("dense")
        for row in range(schedule.rows):
            dense.add(ComparisonCell(cmp_name(row, 0), require_t=False))
        for row in range(schedule.rows - 1):
            dense.connect(cmp_name(row, 0), "a_out", cmp_name(row + 1, 0), "a_in")
            dense.connect(cmp_name(row + 1, 0), "b_out", cmp_name(row, 0), "b_in")
        dense.feed(cmp_name(0, 0), "a_in",
                   PeriodicFeeder([Token(v[0]) for v in a.tuples], 0, 1))
        dense.feed(cmp_name(0, 0), "b_in",  # same end: collide head-on
                   PeriodicFeeder([Token(v[0]) for v in b.tuples], 0, 1))
        SystolicSimulator(dense).run(schedule.total_pulses)

    with pytest.raises(SimulationError, match="two tokens|already driven"):
        broken_run()

    result = benchmark(lambda: run_array(
        _intersection_network(a, b, schedule), schedule.total_pulses
    ))
    experiment_report("ABL1 tuple spacing (two pulses, §3.2)", [
        ("spacing = 1 pulse", "latch collision",
         "detected (SimulationError)"),
        ("spacing = 2 pulses", "correct", "correct"),
    ])
    assert result is not None


def _intersection_network(a, b, schedule):
    network, _ = build_counter_stream_grid(
        a.tuples, b.tuples, schedule, t_init=lambda i, j: True
    )
    attach_accumulation_column(network, schedule)
    return network


def test_misaligned_t_injection_detected(benchmark, experiment_report):
    """Shifting the t-inits one pulse breaks §3.1's right-place-right-time."""
    a, b = overlapping_pair(3, 3, 1, arity=2, seed=171)
    schedule = CounterStreamSchedule(3, 3, 2)

    def misaligned():
        network, _ = build_counter_stream_grid(
            a.tuples, b.tuples, schedule, t_init=None
        )
        for row in range(schedule.rows):
            injections = {
                schedule.t_init_pulse(i, j) + 1: Token(True)  # off by one!
                for i, j in schedule.row_pairs(row)
            }
            if injections:
                network.feed(cmp_name(row, 0), "t_in",
                             ScheduleFeeder(injections))
        SystolicSimulator(network).run(schedule.comparison_pulses + 2)

    with pytest.raises(SimulationError, match="mis-staggered|missed this meeting"):
        misaligned()

    benchmark(lambda: run_array(
        _intersection_network(a, b, schedule), schedule.total_pulses
    ))
    experiment_report("ABL2 t-injection alignment (§3.1)", [
        ("inits shifted +1 pulse", "partial result meets no pair",
         "detected (SimulationError)"),
        ("inits on meeting pulses", "correct", "correct"),
    ])


def test_triangular_mask_is_load_bearing(benchmark, experiment_report):
    """Dedup without the §5 mask drops every tuple (self-matches)."""
    multi = relation_with_duplicates(6, 2.0, arity=2, seed=172)
    schedule = CounterStreamSchedule(len(multi), len(multi), 2)

    def run_with_init(t_init):
        network, _ = build_counter_stream_grid(
            multi.tuples, multi.tuples, schedule, t_init=t_init
        )
        attach_accumulation_column(network, schedule)
        simulator = run_array(network, schedule.total_pulses)
        drop = {}
        for pulse, token in simulator.collector("t_i"):
            drop[schedule.tuple_from_accumulator_exit(pulse)] = bool(token.value)
        return [drop[i] for i in range(len(multi))]

    masked = run_with_init(lambda i, j: j < i)
    unmasked = run_with_init(lambda i, j: True)
    benchmark(lambda: run_with_init(lambda i, j: j < i))

    kept_masked = sum(1 for d in masked if not d)
    kept_unmasked = sum(1 for d in unmasked if not d)
    experiment_report("ABL3 triangular masking in dedup (§5)", [
        ("with mask (j < i)", "6 distinct kept", f"{kept_masked} kept"),
        ("without mask", "0 kept (every tuple equals itself)",
         f"{kept_unmasked} kept"),
    ])
    assert kept_masked == 6
    assert kept_unmasked == 0


def test_fixed_variant_feeding_density(benchmark, experiment_report):
    """Feeding the fixed array at 2-pulse spacing works but wastes pulses."""
    a, b = overlapping_pair(12, 6, 3, arity=2, seed=173)
    schedule = FixedRelationSchedule(12, 6, 2)

    def run_with_period(period):
        network, _ = build_fixed_relation_grid(
            a.tuples, b.tuples, schedule, t_init=None,
        )
        # Rebuild by hand with the chosen A period and per-meeting inits.
        from repro.systolic.wiring import Network
        from repro.systolic.cells import ComparisonCell
        from repro.systolic.streams import ConstantFeeder

        net = Network(f"fixed-period-{period}")
        rows, cols = schedule.rows, schedule.arity
        for row in range(rows):
            for col in range(cols):
                net.add(ComparisonCell(cmp_name(row, col)))
                net.feed(cmp_name(row, col), "b_in",
                         ConstantFeeder(Token(b.tuples[row][col])))
        for row in range(rows):
            for col in range(cols):
                if row + 1 < rows:
                    net.connect(cmp_name(row, col), "a_out",
                                cmp_name(row + 1, col), "a_in")
                if col + 1 < cols:
                    net.connect(cmp_name(row, col), "t_out",
                                cmp_name(row, col + 1), "t_in")
        for col in range(cols):
            net.feed(cmp_name(0, col), "a_in", PeriodicFeeder(
                [Token(row[col]) for row in a.tuples], start=col,
                period=period,
            ))
        for row in range(rows):
            net.feed(cmp_name(row, 0), "t_in", ScheduleFeeder({
                period * i + row: Token(True) for i in range(len(a))
            }))
        net.tap("last", cmp_name(rows - 1, cols - 1), "t_out")
        pulses = period * (len(a) - 1) + rows + cols + 2
        simulator = SystolicSimulator(net)
        simulator.run(pulses)
        return len(simulator.collector("last")), pulses

    dense_results, dense_pulses = run_with_period(1)
    sparse_results, sparse_pulses = run_with_period(2)
    benchmark(lambda: run_with_period(1))
    experiment_report("ABL4 fixed-variant feeding density (§8)", [
        ("period 1 (dense)", "correct, fewest pulses",
         f"{dense_results} results in {dense_pulses} pulses"),
        ("period 2 (counter-stream spacing)", "correct, ~2× pulses",
         f"{sparse_results} results in {sparse_pulses} pulses"),
    ])
    assert dense_results == sparse_results  # same last-row result count
    assert sparse_pulses > 1.5 * dense_pulses
