#!/usr/bin/env python3
"""Pulse vs lattice engine timings on the E3/E6/E7 workloads.

Both engines produce bit-identical relations and pulse counts; this
module measures what that costs.  The pulse engine steps every cell of
the simulated array once per pulse (O(cells × pulses) Python work);
the lattice engine evaluates the same wavefronts as numpy bulk
operations.

Run standalone to (re)generate ``BENCH_engines.json`` at the repo
root — CI's benchmark smoke job does exactly this::

    python benchmarks/bench_engines.py [--out BENCH_engines.json]

or run under pytest-benchmark with the rest of the experiment suite.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.arrays import systolic_divide, systolic_intersection, systolic_join
from repro.workloads import division_workload, join_pair, overlapping_pair

#: (experiment, operation, size label, thunk factory) — sizes chosen so
#: the pulse engine finishes in seconds, not minutes.
def _cases():
    cases = []
    for n in (64, 256):
        a, b = overlapping_pair(n, n, n // 2, arity=3, seed=n)
        cases.append((
            "E3", "intersection", n,
            lambda backend, a=a, b=b: systolic_intersection(
                a, b, backend=backend
            ),
        ))
    for n in (32, 96, 256, 512):
        ja, jb = join_pair(n, n, n // 2, seed=n)
        cases.append((
            "E6", "equi-join", n,
            lambda backend, ja=ja, jb=jb: systolic_join(
                ja, jb, [("key", "key")], backend=backend
            ),
        ))
    for groups in (12, 32, 64):
        da, db, _ = division_workload(groups, 4, 8, seed=groups)
        cases.append((
            "E7", "division", groups,
            lambda backend, da=da, db=db: systolic_divide(
                da, db, backend=backend
            ),
        ))
    return cases


def _time(thunk, repeats: int = 1):
    """Best-of-``repeats`` wall-clock; extra repeats cost little on the
    fast engine and keep first-call warmup out of the numbers."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_matrix():
    """Time every case on both engines; verify identical answers."""
    entries = []
    for experiment, operation, size, run in _cases():
        pulse_seconds, pulse_result = _time(lambda: run("pulse"))
        lattice_seconds, lattice_result = _time(lambda: run("lattice"),
                                                repeats=3)
        assert lattice_result.relation == pulse_result.relation
        assert lattice_result.run.pulses == pulse_result.run.pulses
        entries.append({
            "experiment": experiment,
            "operation": operation,
            "n": size,
            "pulses": pulse_result.run.pulses,
            "result_tuples": len(pulse_result.relation),
            "pulse_seconds": round(pulse_seconds, 6),
            "lattice_seconds": round(lattice_seconds, 6),
            "speedup": round(pulse_seconds / lattice_seconds, 1),
        })
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_engines.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    entries = run_matrix()
    report = {
        "description": "pulse vs lattice engine wall-clock, identical "
                       "results and pulse counts (see docs/ENGINES.md)",
        "entries": entries,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for e in entries:
        print(f"{e['experiment']} {e['operation']:<12} n={e['n']:>3}  "
              f"pulse {e['pulse_seconds']:>9.4f}s  "
              f"lattice {e['lattice_seconds']:>9.4f}s  "
              f"{e['speedup']:>7.1f}x")
    print(f"wrote {args.out}")
    # The lattice engine must beat pulse decisively at scale (E3, n=256).
    big = next(e for e in entries
               if e["experiment"] == "E3" and e["n"] >= 256)
    assert big["speedup"] >= 5, (
        f"lattice only {big['speedup']}x faster on E3 n={big['n']}"
    )
    # The columnar fast path keeps the join lattice well clear of the
    # Token-built era (7x at n=96 before collectors went columnar).
    join = next(e for e in entries
                if e["experiment"] == "E6" and e["n"] == 96)
    assert join["speedup"] >= 35, (
        f"join lattice only {join['speedup']}x faster on E6 n=96"
    )
    return 0


def test_engines_agree_and_lattice_wins(benchmark, experiment_report):
    """E3/E6/E7 on both engines: identical answers, lattice faster at scale."""
    a, b = overlapping_pair(64, 64, 32, arity=3, seed=64)
    pulse = systolic_intersection(a, b, backend="pulse")
    result = benchmark(
        lambda: systolic_intersection(a, b, backend="lattice")
    )
    assert result.relation == pulse.relation
    assert result.run.pulses == pulse.run.pulses

    pulse_seconds, _ = _time(lambda: systolic_intersection(a, b))
    lattice_seconds, _ = _time(
        lambda: systolic_intersection(a, b, backend="lattice")
    )
    experiment_report("E3/E6/E7 engine split: pulse vs lattice (n=64)", [
        ("identical relation + pulses", "yes", "yes"),
        ("pulse engine", "O(cells×pulses)", f"{pulse_seconds:.4f}s"),
        ("lattice engine", "vectorized", f"{lattice_seconds:.4f}s"),
        ("speedup", ">1x", f"{pulse_seconds / lattice_seconds:.1f}x"),
    ])
    assert pulse_seconds > lattice_seconds


if __name__ == "__main__":
    raise SystemExit(main())
