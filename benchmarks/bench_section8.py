"""E8 + E9 — the §8 performance predictions and the disk comparison.

Every number §8 quotes, regenerated from the technology model:

* 1000 bit-comparators per chip; 10⁶ parallel comparisons;
* 1.5 × 10¹¹ bit comparisons to intersect two 10⁴-tuple relations of
  1500-bit tuples;
* ≈50 ms conservative (350 ns, 1000 chips) and ≈10 ms aggressive
  (200 ns, 3000 chips);
* the array keeps up with a 3600-rpm disk delivering 500 KB per
  17 ms revolution — intersecting two ~2 MB relations in comparable
  time.
"""

from __future__ import annotations

from repro.perf import (
    PAPER_AGGRESSIVE,
    PAPER_CONSERVATIVE,
    PAPER_DISK,
    PAPER_WORKLOAD,
    intersect_vs_read_report,
    intersection_bit_comparisons,
    largest_intersectable_relation_bytes,
    paper_aggressive_prediction,
    paper_conservative_prediction,
)


def test_section8_intersection_predictions(benchmark, experiment_report):
    """E8: the headline 50 ms / 10 ms predictions."""
    conservative = benchmark(paper_conservative_prediction)
    aggressive = paper_aggressive_prediction()
    experiment_report("E8  §8 intersection-time predictions", [
        ("bit-comparator area", "240µ × 150µ",
         f"{PAPER_CONSERVATIVE.bit_comparator_area_um2:.0f} µm²"),
        ("comparators per chip", "about 1000",
         str(PAPER_CONSERVATIVE.comparators_per_chip)),
        ("parallel comparisons", "10^6",
         f"{PAPER_CONSERVATIVE.parallel_comparisons:.0e}"),
        ("bits multiplexed per pin", "about 10",
         str(PAPER_CONSERVATIVE.bits_per_pin_multiplex)),
        ("bit comparisons (10^4 × 10^4 × 1500)", "1.5 × 10^11",
         f"{intersection_bit_comparisons(PAPER_WORKLOAD):.1e}"),
        ("conservative time (350 ns, 1000 chips)", "about 50 ms",
         f"{conservative * 1e3:.1f} ms"),
        ("aggressive time (200 ns, 3000 chips)", "about 10 ms",
         f"{aggressive * 1e3:.1f} ms"),
    ])
    assert 0.045 <= conservative <= 0.055
    assert abs(aggressive - 0.010) < 1e-9


def test_section8_disk_rate_comparison(benchmark, experiment_report):
    """E9: "the processing speed ... can keep up with the data rate"."""
    report = benchmark(lambda: intersect_vs_read_report(PAPER_CONSERVATIVE))
    aggressive = intersect_vs_read_report(PAPER_AGGRESSIVE)
    window = PAPER_DISK.read_seconds(2_000_000)
    largest = largest_intersectable_relation_bytes(PAPER_CONSERVATIVE, window)
    experiment_report("E9  §8 array vs moving-head disk", [
        ("disk revolution", "about 17 ms",
         f"{report['revolution_seconds'] * 1e3:.1f} ms"),
        ("cylinder rate", "500,000 B / 17 ms",
         f"{PAPER_DISK.cylinder_bytes:,} B / rev"),
        ("read one 2 MB relation", "4 revolutions",
         f"{report['read_seconds'] * 1e3:.1f} ms"),
        ("intersect two 2 MB relations (cons.)", "comparable",
         f"{report['intersect_seconds'] * 1e3:.1f} ms"),
        ("intersect two 2 MB relations (aggr.)", "faster",
         f"{aggressive['intersect_seconds'] * 1e3:.1f} ms"),
        ("largest relation within read window", "about 2 MB",
         f"{largest / 1e6:.2f} MB"),
    ])
    assert report["intersect_seconds"] <= report["read_seconds"]
    assert largest >= 2_000_000


def test_section8_sensitivity_grid(benchmark, experiment_report):
    """E8b: the two §8 data points embedded in a technology grid.

    The paper quotes (350 ns, 1000 chips) → ~50 ms and (200 ns, 3000
    chips) → ~10 ms; the model interpolates the whole plane.
    """
    from repro.perf import TechnologyModel, intersection_time_seconds

    rows = []
    for comparison_ns in (350.0, 200.0):
        for chips in (1000, 3000):
            model = TechnologyModel(
                comparison_time_ns=comparison_ns, chips=chips
            )
            milliseconds = intersection_time_seconds(model) * 1e3
            marker = ""
            if (comparison_ns, chips) == (350.0, 1000):
                marker = "  <- paper 'about 50ms'"
            if (comparison_ns, chips) == (200.0, 3000):
                marker = "  <- paper 'about 10ms'"
            rows.append((
                f"{comparison_ns:.0f} ns, {chips} chips",
                "-" if not marker else marker.strip(" <-"),
                f"{milliseconds:.1f} ms",
            ))
    benchmark(lambda: intersection_time_seconds(
        TechnologyModel(comparison_time_ns=200.0, chips=3000)
    ))
    experiment_report("E8b §8 sensitivity grid (10^4-tuple intersection)",
                      rows)


def test_section8_floorplan(benchmark, experiment_report):
    """E8c: area vs pin limits for the machine's device complement."""
    from repro.perf import ChipPackage, PAPER_CONSERVATIVE, plan_system

    package = ChipPackage(PAPER_CONSERVATIVE)
    plans = benchmark(lambda: plan_system(
        [("intersect", 63, 8), ("join", 63, 2), ("divide", 16, 6)],
        package, element_bits=8,
    ))
    rows = []
    for name, plan in plans.items():
        binding = (
            "area" if plan.area_limited else
            "pins" if plan.pin_limited else "fits one chip"
        )
        rows.append((
            f"{name} array ({plan.rows}×{plan.cols} @ 8b)",
            f"{plan.bit_comparators} comparators",
            f"{plan.chips} chips ({binding})",
        ))
    rows.append((
        "package", "about 1000 comparators, ~10 bits/pin",
        f"{package.comparators} comparators, "
        f"{package.bits_per_pin} bits/pin",
    ))
    experiment_report("E8c §8 floorplan: the Fig 9-1 device complement",
                      rows)
