"""E11 — §8's utilization remark.

"In some of the schemes presented in this paper, it is the case that
only half of the processors in a systolic array are busy at any one
time.  This inefficiency can be avoided ... rather than marching two
relations against each other along the systolic array, we let only one
relation move while the other remains fixed."

Measured here with the :class:`ComparisonWorkMeter`: the fraction of
comparison processors emitting a partial result per pulse, in the
steady (loaded) state, for both designs.
"""

from __future__ import annotations

from repro.arrays.base import (
    attach_accumulation_column,
    build_counter_stream_grid,
    build_fixed_relation_grid,
)
from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.systolic.metrics import ComparisonWorkMeter
from repro.systolic.simulator import SystolicSimulator
from repro.workloads import overlapping_pair


def _measure(variant: str, n: int, arity: int) -> tuple[float, float, int]:
    """Returns (peak busy fraction, mean busy fraction, total pulses)."""
    a, b = overlapping_pair(n, n, n // 2, arity=arity, seed=n)
    if variant == "counter":
        schedule = CounterStreamSchedule(n, n, arity)
        network, _ = build_counter_stream_grid(
            a.tuples, b.tuples, schedule, t_init=lambda i, j: True
        )
    else:
        schedule = FixedRelationSchedule(n, n, arity)
        network, _ = build_fixed_relation_grid(
            a.tuples, b.tuples, schedule, t_init=lambda i, j: True
        )
    attach_accumulation_column(network, schedule)
    meter = ComparisonWorkMeter()
    simulator = SystolicSimulator(network, observer=meter)
    simulator.run(schedule.total_pulses)
    comparison_cells = schedule.rows * schedule.arity
    peak = meter.peak / comparison_cells
    mean = meter.utilization(comparison_cells)
    return peak, mean, schedule.total_pulses


def test_utilization_counter_vs_fixed(benchmark, experiment_report):
    """E11: ≈½ busy counter-streaming vs fully busy fixed-relation.

    §8's "busy at any one time" is the instantaneous (peak) fraction;
    the mean over the run includes fill and drain ramps.
    """
    n, arity = 16, 2
    counter_peak, counter_mean, counter_pulses = _measure("counter", n, arity)
    fixed_peak, fixed_mean, fixed_pulses = _measure("fixed", n, arity)
    benchmark(lambda: _measure("fixed", n, arity))
    experiment_report(f"E11 §8 processor utilization (n={n}, m={arity})", [
        ("counter-streaming peak busy fraction", "about 1/2",
         f"{counter_peak:.2f}"),
        ("fixed-relation peak busy fraction", "about 1",
         f"{fixed_peak:.2f}"),
        ("peak improvement", "about 2×",
         f"{fixed_peak / counter_peak:.2f}x"),
        ("mean busy fraction (counter / fixed)", "lower / higher",
         f"{counter_mean:.2f} / {fixed_mean:.2f}"),
        ("pulses (counter / fixed)", "longer / shorter",
         f"{counter_pulses} / {fixed_pulses}"),
    ])
    # The paper's quantitative claim: only ~half the processors busy in
    # the counter-streaming design; fixing one relation removes that.
    assert 0.40 <= counter_peak <= 0.60
    assert fixed_peak > 0.95
    assert fixed_peak > 1.8 * counter_peak


def _measure_streaming(n_a: int, n_b: int, arity: int) -> float:
    """Mean busy fraction when A streams through a fixed B-loaded array."""
    a, _ = overlapping_pair(n_a, n_a, 0, arity=arity, seed=n_a)
    b, _ = overlapping_pair(n_b, n_b, 0, arity=arity, seed=n_b + 1)
    schedule = FixedRelationSchedule(n_a, n_b, arity)
    network, _ = build_fixed_relation_grid(
        a.tuples, b.tuples, schedule, t_init=lambda i, j: True
    )
    attach_accumulation_column(network, schedule)
    meter = ComparisonWorkMeter()
    SystolicSimulator(network, observer=meter).run(schedule.total_pulses)
    return meter.utilization(schedule.rows * schedule.arity)


def test_fill_drain_amortizes_for_long_streams(benchmark, experiment_report):
    """E11b: mean utilization → 1 as the moving relation lengthens.

    The fill/drain ramp is proportional to the (fixed) array height, so
    streaming a long relation through a small preloaded array keeps
    every processor busy almost all the time.
    """
    n_b = 4
    rows = []
    means = {}
    for n_a in (4, 16, 64):
        mean = _measure_streaming(n_a, n_b, arity=2)
        means[n_a] = mean
        rows.append((
            f"|A| = {n_a:>3} streamed past |B| = {n_b}",
            "→ 1 as |A| grows",
            f"{mean:.2f}",
        ))
    benchmark(lambda: _measure_streaming(16, n_b, 2))
    experiment_report("E11b mean utilization vs stream length (fixed array)",
                      rows)
    assert means[64] > means[4]
    assert means[64] > 0.85
