"""E1 + E2 — the comparison arrays of Fig 3-1 and Fig 3-3.

Paper claims reproduced:

* a linear array compares an m-element tuple pair in exactly m pulses
  (§3.1);
* the 2-D array pipelines all n_A·n_B comparisons and finishes in
  O(n + m) pulses, not O(n²·m) (§3.2);
* the data movement matches the Fig 3-4 snapshot discipline.
"""

from __future__ import annotations

from repro.arrays import compare_all_pairs, compare_tuples
from repro.arrays.schedule import CounterStreamSchedule
from repro.workloads import random_relation


def test_linear_comparison_pulse_count(benchmark, experiment_report):
    """E1: one tuple comparison in m pulses."""
    arity = 8
    a = list(range(arity))

    result = benchmark(lambda: compare_tuples(a, a))
    assert result.equal
    experiment_report("E1  Fig 3-1 linear comparison array (m = 8)", [
        ("pulses to compare one pair", "m = 8", str(result.run.pulses)),
        ("result exits on pulse", "m - 1 = 7", str(result.result_pulse)),
        ("processors used", "m = 8", str(result.run.cells)),
    ])


def test_two_dimensional_pipelining(benchmark, experiment_report):
    """E2: n² comparisons in O(n + m) pulses on the Fig 3-3 array."""
    n, arity = 12, 4
    a = random_relation(n, arity, seed=101)
    b = random_relation(n, arity, seed=202)
    schedule = CounterStreamSchedule(n, n, arity)

    result = benchmark(lambda: compare_all_pairs(a.tuples, b.tuples))

    total_pairs = n * n
    sequential_steps = total_pairs * arity  # one comparison per step
    experiment_report(f"E2  Fig 3-3 2-D comparison array ({n}×{n}, m={arity})", [
        ("tuple pairs compared", str(total_pairs), str(total_pairs)),
        ("pulses (pipelined)", f"O(n+m) = {schedule.comparison_pulses}",
         str(result.run.pulses)),
        ("sequential element steps", str(sequential_steps),
         str(sequential_steps)),
        ("pipelining speedup", "~n²m/(4n+m)",
         f"{sequential_steps / result.run.pulses:.1f}x"),
        ("processor rows", f"2n-1 = {2 * n - 1}", str(result.run.rows)),
    ])
    assert result.run.pulses == schedule.comparison_pulses
    # The whole point: quadratic work in linear pulses.
    assert result.run.pulses < total_pairs


def test_comparison_scaling_is_linear_in_n(benchmark, experiment_report):
    """E2b: doubling n doubles pulses (and quadruples comparisons)."""
    arity = 3
    pulses = {}
    for n in (4, 8, 16):
        a = random_relation(n, arity, seed=n)
        b = random_relation(n, arity, seed=n + 1)
        pulses[n] = compare_all_pairs(a.tuples, b.tuples).run.pulses

    benchmark(lambda: compare_all_pairs(
        random_relation(16, arity, seed=16).tuples,
        random_relation(16, arity, seed=17).tuples,
    ))
    experiment_report("E2b pulse count vs n (m = 3)", [
        (f"n = {n}", f"3n+m-3 = {3 * n + arity - 3}", str(p))
        for n, p in pulses.items()
    ])
    for n in (4, 8):
        assert pulses[2 * n] < 2.2 * pulses[n]
