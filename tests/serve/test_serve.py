"""The serving front-end: protocol, server loop, blocking client."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import ReproError
from repro.relational import algebra
from repro.serve import (
    ReproServer,
    ServiceClient,
    decode_line,
    encode_line,
    relation_from_wire,
    relation_to_wire,
)
from repro.workloads import join_pair, overlapping_pair


class TestProtocol:
    def test_line_round_trip(self):
        payload = {"op": "query", "expr": "intersect(A, B)", "priority": 2}
        assert decode_line(encode_line(payload)) == payload

    def test_malformed_line_raises(self):
        with pytest.raises(ReproError, match="malformed"):
            decode_line(b"not json\n")
        with pytest.raises(ReproError, match="JSON objects"):
            decode_line(b"[1, 2]\n")

    def test_relation_round_trip_preserves_rows_and_domains(self):
        a, _ = join_pair(10, 8, 4, seed=31)
        registry = {}
        back = relation_from_wire(relation_to_wire(a), registry)
        assert sorted(back.decoded()) == sorted(a.decoded())
        assert back.schema.names == a.schema.names
        assert [d.name for d in back.schema.domains] == [
            d.name for d in a.schema.domains
        ]

    def test_shared_registry_keeps_relations_compatible(self):
        """Two relations wired separately but naming the same domains
        stay join/intersect-compatible — the CSV-registry behaviour."""
        a, b = overlapping_pair(8, 6, 4, arity=2, seed=7)
        registry = {}
        wired_a = relation_from_wire(relation_to_wire(a), registry)
        wired_b = relation_from_wire(relation_to_wire(b), registry)
        expected = sorted(algebra.intersection(a, b).decoded())
        assert sorted(
            algebra.intersection(wired_a, wired_b).decoded()
        ) == expected

    def test_wire_relation_needs_columns_and_rows(self):
        with pytest.raises(ReproError, match="columns"):
            relation_from_wire({"rows": []}, {})


class _ServerHarness:
    """Runs a ReproServer on a private event-loop thread."""

    def __init__(self, **pool_kwargs):
        self.pool_kwargs = pool_kwargs
        self.address = None
        self._loop = None
        self._server = None
        self._thread = None
        self._ready = threading.Event()

    def __enter__(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server never started"
        return self

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main():
            self._server = ReproServer(**self.pool_kwargs)
            self.address = await self._server.start()
            self._ready.set()
            self._stop = asyncio.Event()
            await self._stop.wait()
            await self._server.stop()

        self._loop.run_until_complete(main())
        self._loop.close()

    def __exit__(self, exc_type, exc, tb):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10.0)
        assert not self._thread.is_alive(), "server thread leaked"


class TestServer:
    def test_store_query_stats_over_the_wire(self):
        ja, jb = join_pair(10, 8, 4, seed=31)
        with _ServerHarness() as harness:
            host, port = harness.address
            with ServiceClient(host, port, tenant="acme") as db:
                assert db.ping()
                db.store("R", ja)
                db.store("S", jb)
                reply = db.query("project(join(R, S, #0 == #0), #0, #1)")
                assert reply["rows"] == len(reply["relation"]["rows"])
                assert reply["makespan_ms"] > 0
                stats = db.stats()
                assert stats["tenants"] == ["acme"]
                assert stats["tenant_queries"] == {"acme": 1}

    def test_query_matches_in_process_execution(self):
        a, b = overlapping_pair(10, 8, 5, arity=2, seed=9)
        expected = sorted(algebra.intersection(a, b).decoded())
        with _ServerHarness() as harness:
            host, port = harness.address
            with ServiceClient(host, port) as db:
                db.store("A", a)
                db.store("B", b)
                reply = db.query("intersect(A, B)")
                got = sorted(tuple(r) for r in reply["relation"]["rows"])
                assert got == expected

    def test_tenants_are_isolated(self):
        a, b = overlapping_pair(10, 8, 5, arity=2, seed=9)
        with _ServerHarness() as harness:
            host, port = harness.address
            with ServiceClient(host, port, tenant="one") as one:
                one.store("A", a)
                one.store("B", b)
                with ServiceClient(host, port, tenant="two") as two:
                    # Tenant two never stored anything.
                    with pytest.raises(ReproError):
                        two.query("intersect(A, B)")
                    # Tenant one is unaffected.
                    assert one.query("intersect(A, B)")["ok"]

    def test_concurrent_clients_get_identical_answers(self):
        a, b = overlapping_pair(12, 10, 5, arity=2, seed=11)
        expected = sorted(algebra.intersection(a, b).decoded())
        with _ServerHarness(max_concurrent=2) as harness:
            host, port = harness.address
            results = {}

            def client(tag: str):
                with ServiceClient(host, port, tenant=tag) as db:
                    db.store("A", a)
                    db.store("B", b)
                    reply = db.query("intersect(A, B)")
                    results[tag] = sorted(
                        tuple(r) for r in reply["relation"]["rows"]
                    )

            threads = [
                threading.Thread(target=client, args=(f"t{i}",))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 3
            for rows in results.values():
                assert rows == expected

    def test_unknown_op_and_bad_query_report_errors(self):
        with _ServerHarness() as harness:
            host, port = harness.address
            with ServiceClient(host, port) as db:
                with pytest.raises(ReproError, match="unknown op"):
                    db._request({"op": "explode"})
                with pytest.raises(ReproError):
                    db.query("this is not algebra")
                # The connection survives both errors.
                assert db.ping()


class TestPersistence:
    """``--store-dir``: persisted relations survive a server restart."""

    def test_persisted_relations_survive_restart(self, tmp_path):
        a, b = overlapping_pair(10, 8, 5, arity=2, seed=9)
        expected = sorted(algebra.intersection(a, b).decoded())
        root = tmp_path / "srv"

        with _ServerHarness(store_dir=root) as harness:
            host, port = harness.address
            with ServiceClient(host, port, tenant="acme") as db:
                reply = db.store("A", a, persist=True)
                assert reply["persisted"]
                db.store("B", b, persist=True)

        # A brand-new server process (fresh pool, same store_dir):
        # nothing survives but the columnar files on disk.
        with _ServerHarness(store_dir=root) as harness:
            host, port = harness.address
            with ServiceClient(host, port, tenant="acme") as db:
                reply = db.query("intersect(A, B)")
                got = sorted(tuple(r) for r in reply["relation"]["rows"])
                assert got == expected
        assert (root / "acme" / "A" / "manifest.json").is_file()

    def test_tenants_get_separate_store_directories(self, tmp_path):
        a, b = overlapping_pair(8, 6, 4, arity=2, seed=7)
        with _ServerHarness(store_dir=tmp_path / "srv") as harness:
            host, port = harness.address
            with ServiceClient(host, port, tenant="one") as db:
                db.store("A", a, persist=True)
            with ServiceClient(host, port, tenant="two") as db:
                db.store("A", b, persist=True)
        assert (tmp_path / "srv" / "one" / "A").is_dir()
        assert (tmp_path / "srv" / "two" / "A").is_dir()

    def test_persist_without_store_dir_is_refused(self):
        a, _ = overlapping_pair(6, 4, 3, arity=2, seed=3)
        with _ServerHarness() as harness:
            host, port = harness.address
            with ServiceClient(host, port) as db:
                with pytest.raises(ReproError, match="persistence root"):
                    db.store("A", a, persist=True)
                # Plain (memory-only) stores still work.
                assert db.store("A", a)["ok"]

    def test_persist_on_sharded_server_is_refused(self):
        a, _ = overlapping_pair(6, 4, 3, arity=2, seed=3)
        with _ServerHarness(shards=2) as harness:
            host, port = harness.address
            with ServiceClient(host, port) as db:
                with pytest.raises(ReproError, match="sharded"):
                    db.store("A", a, persist=True)

    def test_unsafe_tenant_name_is_refused_when_persistent(self, tmp_path):
        with _ServerHarness(store_dir=tmp_path / "srv") as harness:
            host, port = harness.address
            client = ServiceClient(host, port, retries=0)
            with pytest.raises(ReproError, match="filesystem-safe"):
                with client as db:
                    db.hello("../escape")
