"""Serving-layer robustness: protocol fuzzing, desync-safe timeouts,
mid-query disconnects, deadlines, and the health heartbeat."""

from __future__ import annotations

import socket
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    AdmissionError,
    DeadlineError,
    ParseError,
    PlanError,
    ReproError,
    ServiceRetryableError,
    error_class,
)
from repro.faults import parse_faults
from repro.serve import ServiceClient, decode_line, encode_line
from repro.serve.protocol import MAX_LINE_BYTES
from repro.workloads import join_pair, overlapping_pair

from .test_serve import _ServerHarness

FUZZ = settings(max_examples=50, deadline=None)


class TestDecodeLineFuzz:
    @FUZZ
    @given(line=st.binary(max_size=256))
    def test_arbitrary_bytes_never_escape_repro_error(self, line):
        """decode_line either parses a dict or raises ReproError —
        never UnicodeDecodeError, JSONDecodeError, or anything else."""
        try:
            payload = decode_line(line)
        except ReproError:
            return
        assert isinstance(payload, dict)

    @FUZZ
    @given(text=st.text(max_size=256))
    def test_arbitrary_text_never_escapes_repro_error(self, text):
        try:
            payload = decode_line(text)
        except ReproError:
            return
        assert isinstance(payload, dict)

    @FUZZ
    @given(
        payload=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(), st.text(max_size=16), st.booleans()),
            max_size=4,
        ),
        cut=st.integers(min_value=1, max_value=64),
    )
    def test_truncated_lines_raise_not_crash(self, payload, cut):
        line = encode_line(payload)
        truncated = line[:max(0, len(line) - cut)]
        try:
            decoded = decode_line(truncated)
        except ReproError:
            return
        assert isinstance(decoded, dict)

    def test_oversized_line_is_refused_before_parsing(self):
        huge = b"x" * (MAX_LINE_BYTES + 1)
        with pytest.raises(ReproError, match="exceeds"):
            decode_line(huge)
        with pytest.raises(ReproError, match="exceeds"):
            decode_line("y" * (MAX_LINE_BYTES + 1))

    def test_largest_allowed_line_still_parses(self):
        padding = "z" * (MAX_LINE_BYTES - 100)
        line = encode_line({"op": "ping", "pad": padding})
        assert len(line) <= MAX_LINE_BYTES
        assert decode_line(line)["op"] == "ping"


class TestErrorMapping:
    def test_error_class_maps_kinds_to_repro_errors(self):
        assert error_class("PlanError") is PlanError
        assert error_class("ParseError") is ParseError
        assert error_class("AdmissionError") is AdmissionError
        assert error_class("DeadlineError") is DeadlineError
        # Unknown or non-error kinds degrade to the base class.
        assert error_class("NoSuchError") is ReproError
        assert error_class("Relation") is ReproError
        assert error_class("") is ReproError

    def test_server_errors_keep_their_class_across_the_wire(self):
        with _ServerHarness() as harness:
            host, port = harness.address
            with ServiceClient(host, port) as db:
                with pytest.raises(ParseError):
                    db.query("this is not algebra")
                with pytest.raises(PlanError):
                    db.query("intersect(NO_SUCH, RELATION)")
                # The connection survives both mapped errors.
                assert db.ping()


class TestClientTimeoutDesync:
    def test_timeout_tears_down_and_reconnect_recovers(self):
        """A socket timeout mid-request poisons the stream (the late
        reply would answer the *next* request); the client must tear
        the connection down, raise retryable, and recover by
        reconnecting — never read the stale reply."""
        a, b = overlapping_pair(10, 8, 5, arity=2, seed=9)
        ja, jb = join_pair(10, 8, 4, seed=31)
        faults = parse_faults("slow:join0:1.5", seed=0)
        with _ServerHarness(faults=faults) as harness:
            host, port = harness.address
            db = ServiceClient(host, port, timeout=0.4, retries=0)
            db.connect()
            try:
                db.store("A", a)
                db.store("B", b)
                db.store("R", ja)
                db.store("S", jb)
                with pytest.raises(ServiceRetryableError, match="torn down"):
                    db.query("join(R, S, #0 == #0)")   # slowed past 0.4s
                assert db._sock is None                # connection dropped
                # The next request reconnects (fresh hello) and gets
                # *its own* answer, not the slow query's late reply.
                reply = db.query("intersect(A, B)")
                assert reply["ok"]
                assert db.ping()
            finally:
                db.close()

    def test_retry_policy_survives_a_server_restart(self):
        """ServiceRetryableError retries on a fresh connection: kill
        the socket out from under the client and the next request
        reconnects transparently."""
        a, b = overlapping_pair(10, 8, 5, arity=2, seed=9)
        with _ServerHarness() as harness:
            host, port = harness.address
            with ServiceClient(host, port, retries=2) as db:
                db.store("A", a)
                db.store("B", b)
                db._sock.close()                  # simulate a dead peer
                reply = db.query("intersect(A, B)")
                assert reply["rows"] >= 0


class TestMidQueryDisconnect:
    def test_disconnect_mid_query_does_not_wedge_the_pool(self):
        """A client that sends a query and vanishes must not leak its
        admission slot: the next client's query still runs."""
        ja, jb = join_pair(10, 8, 4, seed=31)
        a, b = overlapping_pair(10, 8, 5, arity=2, seed=9)
        faults = parse_faults("slow:join0:0.3", seed=0)
        with _ServerHarness(max_concurrent=1, faults=faults) as harness:
            host, port = harness.address
            rude = ServiceClient(host, port, tenant="acme")
            rude.connect()
            rude.store("R", ja)
            rude.store("S", jb)
            # Fire the slow query and slam the connection shut without
            # ever reading the reply.
            rude._sock.sendall(
                encode_line({"op": "query", "expr": "join(R, S, #0 == #0)"})
            )
            rude._teardown()
            # The abandoned query finishes server-side and releases its
            # slot; a polite client then gets the only slot and answers.
            with ServiceClient(host, port, tenant="acme") as db:
                db.store("A", a)
                db.store("B", b)
                reply = db.query("intersect(A, B)", timeout=10.0)
                assert reply["ok"]


class TestDeadlineOverTheWire:
    def test_hung_query_raises_deadline_error_and_server_survives(self):
        ja, jb = join_pair(10, 8, 4, seed=31)
        a, b = overlapping_pair(10, 8, 5, arity=2, seed=9)
        faults = parse_faults("slow:join0:30", seed=0)
        with _ServerHarness(
            max_concurrent=1, faults=faults, query_deadline=0.3,
        ) as harness:
            host, port = harness.address
            with ServiceClient(host, port, tenant="acme") as db:
                db.store("R", ja)
                db.store("S", jb)
                db.store("A", a)
                db.store("B", b)
                with pytest.raises(DeadlineError, match="deadline"):
                    db.query("join(R, S, #0 == #0)")
                # The slot came back; an unslowed query still runs.
                reply = db.query("intersect(A, B)")
                assert reply["ok"]


class TestHealthVerb:
    def test_health_reports_gate_deadline_and_fault_ledger(self):
        faults = parse_faults("device:join0:1", seed=0)
        with _ServerHarness(
            faults=faults, query_deadline=5.0,
        ) as harness:
            host, port = harness.address
            with ServiceClient(host, port) as db:
                health = db.health()
                assert health["status"] == "ok"
                assert health["query_deadline"] == 5.0
                assert health["shards"] == 1
                assert health["admission"]["active"] == 0
                assert health["faults"]["rules"] == ["device:join0"]

    def test_health_without_faults_reports_none(self):
        with _ServerHarness() as harness:
            host, port = harness.address
            with ServiceClient(host, port) as db:
                assert db.health()["faults"] is None
