"""Shared fixtures: small schemas and relations used across test modules."""

from __future__ import annotations

import pytest

from repro.relational import Domain, MultiRelation, Relation, Schema


@pytest.fixture
def int_domain() -> Domain:
    return Domain("d", values=range(100))


@pytest.fixture
def pair_schema(int_domain: Domain) -> Schema:
    return Schema.of(("x", int_domain), ("y", int_domain))


@pytest.fixture
def triple_schema(int_domain: Domain) -> Schema:
    return Schema.of(("x", int_domain), ("y", int_domain), ("z", int_domain))


@pytest.fixture
def small_pair(pair_schema: Schema) -> tuple[Relation, Relation]:
    """Two union-compatible relations with a known 2-tuple intersection."""
    a = Relation(pair_schema, [(1, 2), (3, 4), (5, 6), (7, 8)])
    b = Relation(pair_schema, [(3, 4), (9, 9), (7, 8)])
    return a, b


@pytest.fixture
def dup_multi(pair_schema: Schema) -> MultiRelation:
    """A multi-relation with duplicate groups {(1,1)×3, (2,2)×2, (3,3)×1}."""
    return MultiRelation(
        pair_schema, [(1, 1), (2, 2), (1, 1), (3, 3), (2, 2), (1, 1)]
    )
