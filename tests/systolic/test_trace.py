"""Trace recording and Fig 3-4-style grid rendering."""

import pytest

from repro.errors import SimulationError
from repro.systolic.cells import LatchCell
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.streams import ScheduleFeeder
from repro.systolic.trace import TraceRecorder, render_grid
from repro.systolic.values import tok
from repro.systolic.wiring import Network


@pytest.fixture
def traced_line():
    network = Network()
    for index in range(3):
        network.add(LatchCell(f"l{index}"))
    network.connect("l0", "d_out", "l1", "d_in")
    network.connect("l1", "d_out", "l2", "d_in")
    network.feed("l0", "d_in", ScheduleFeeder({0: tok("x"), 2: tok("y")}))
    recorder = TraceRecorder()
    simulator = SystolicSimulator(network, observer=recorder)
    simulator.run(5)
    return recorder


class TestTraceRecorder:
    def test_snapshots_track_token_motion(self, traced_line):
        assert "l0" in traced_line.at(0)
        assert "l1" in traced_line.at(1)
        assert "l2" in traced_line.at(2)
        assert traced_line.at(2)["l0"]["d_in"].value == "y"

    def test_only_busy_cells_stored(self, traced_line):
        assert list(traced_line.at(1)) == ["l1"]

    def test_cell_history(self, traced_line):
        history = traced_line.cell_history("l0")
        assert [pulse for pulse, _ in history] == [0, 2]

    def test_missing_snapshot_raises(self, traced_line):
        with pytest.raises(SimulationError, match="no snapshot"):
            traced_line.at(99)

    def test_window_evicts_old_pulses(self):
        recorder = TraceRecorder(window=2)
        for pulse in range(5):
            recorder(pulse, {"c": {"p": tok(pulse)}}, {})
        assert recorder.pulses == [3, 4]

    def test_window_must_be_positive(self):
        with pytest.raises(SimulationError):
            TraceRecorder(window=0)


class TestRenderGrid:
    def test_layout_places_cells(self, traced_line):
        layout = {"l0": (0, 0), "l1": (0, 1), "l2": (0, 2)}
        text = render_grid(traced_line.at(1), layout)
        columns = text.split()
        assert columns == [".", "x", "."]

    def test_custom_formatter(self, traced_line):
        layout = {"l0": (0, 0)}
        text = render_grid(
            traced_line.at(0), layout, fmt=lambda ports: "BUSY"
        )
        assert "BUSY" in text

    def test_two_dimensional_layout(self):
        snapshot = {"a": {"p": tok(1)}, "d": {"p": tok(4)}}
        layout = {"a": (0, 0), "b": (0, 1), "c": (1, 0), "d": (1, 1)}
        lines = render_grid(snapshot, layout).splitlines()
        assert len(lines) == 2
        assert lines[0].split() == ["1", "."]
        assert lines[1].split() == [".", "4"]

    def test_empty_layout(self):
        assert render_grid({}, {}) == ""
