"""The columnar fast path: lattice taps vs pulse Token collectors.

The lattice engine now returns :class:`ColumnarTap` arrays instead of
eagerly building a Token per record; ``EngineRun`` materializes
collectors only when asked.  These tests pin the contract down:

* tap arrays are **bit-identical** to the pulse engine's collectors —
  pulse stamps, values, and ghost tags — for join grids (tagged and
  untagged), dedup ``t_init`` masks, and division;
* the canonical ``t_init`` callables carry whole-grid masks that agree
  with their per-element form;
* materialization is lazy and per-tap;
* the comparison chunk size is configurable (kwarg and environment).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.errors import SimulationError
from repro.systolic.engine import (
    DEFAULT_CHUNK_BYTES,
    ColumnarTap,
    DivisionPlan,
    GridPlan,
    LatticeEngine,
    PulseEngine,
    t_init_strict_lower,
    t_init_true,
)

SMALL = settings(max_examples=25, deadline=None)

tuples2 = st.tuples(st.integers(0, 3), st.integers(0, 3))
tuple_lists = st.lists(tuples2, min_size=1, max_size=5)
ops_strategy = st.lists(
    st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    min_size=2, max_size=2,
)


def grid_schedule(variant, n_a, n_b, arity=2):
    if variant == "counter":
        return CounterStreamSchedule(n_a=n_a, n_b=n_b, arity=arity)
    return FixedRelationSchedule(n_a=n_a, n_b=n_b, arity=arity)


def pulse_dump(run):
    """Pulse-engine ground truth: {tap: [(pulse, value, tag), ...]}."""
    return {
        name: [(p, t.value, t.tag) for p, t in collector]
        for name, collector in sorted(run.collectors.items())
    }


def tap_dump(run):
    """The lattice run's taps through ``to_collector`` — must round-trip
    to exactly the pulse representation, native Python types included."""
    dumped = {}
    for name in run.tap_names():
        tap = run.tap(name)
        assert isinstance(tap, ColumnarTap)
        collector = tap.to_collector()
        dumped[name] = [(p, t.value, t.tag) for p, t in collector]
        for pulse, token in collector:
            assert type(pulse) is int  # noqa: E721 — bit-identity incl. type
            assert not isinstance(token.value, np.generic)
    return dumped


def assert_columnar_identical(plan):
    pulse_run = PulseEngine().run(plan)
    lattice_run = LatticeEngine().run(plan)
    assert tap_dump(lattice_run) == pulse_dump(pulse_run)
    assert lattice_run.pulses == pulse_run.pulses
    return lattice_run


class TestJoinTaps:
    @SMALL
    @given(a=tuple_lists, b=tuple_lists, ops=ops_strategy,
           variant=st.sampled_from(["counter", "fixed"]),
           tagged=st.booleans())
    def test_join_row_taps(self, a, b, ops, variant, tagged):
        plan = GridPlan(
            a, b, grid_schedule(variant, len(a), len(b)),
            ops=tuple(ops), row_taps=True, tagged=tagged,
        )
        run = assert_columnar_identical(plan)
        # Exit pulses within a row tap are non-decreasing, as a stream
        # of Tokens out of one physical edge must be.
        for name in run.tap_names():
            pulses = run.tap(name).pulses
            assert (np.diff(pulses) >= 0).all()

    @SMALL
    @given(a=tuple_lists, b=tuple_lists, tagged=st.booleans(),
           accumulate=st.booleans())
    def test_equijoin_with_accumulator(self, a, b, tagged, accumulate):
        plan = GridPlan(
            a, b, grid_schedule("counter", len(a), len(b)),
            t_init=t_init_true, accumulate=accumulate,
            row_taps=True, tagged=tagged,
        )
        assert_columnar_identical(plan)


class TestDedupMasks:
    @SMALL
    @given(a=tuple_lists, variant=st.sampled_from(["counter", "fixed"]),
           tagged=st.booleans())
    def test_strict_lower_mask(self, a, variant, tagged):
        plan = GridPlan(
            a, a, grid_schedule(variant, len(a), len(a)),
            t_init=t_init_strict_lower, accumulate=True, tagged=tagged,
        )
        assert_columnar_identical(plan)

    def test_canonical_masks_match_per_element(self):
        for n_a, n_b in [(1, 1), (3, 5), (4, 4), (6, 2)]:
            mask = t_init_strict_lower.lattice_mask(n_a, n_b)
            expected = [
                [t_init_strict_lower(i, j) for j in range(n_b)]
                for i in range(n_a)
            ]
            assert mask.tolist() == expected
        assert t_init_true.lattice_mask(3, 4) is None
        assert t_init_true(0, 0) is True
        assert t_init_strict_lower(2, 1) and not t_init_strict_lower(1, 2)


class TestDivisionTaps:
    @SMALL
    @given(
        pairs=st.lists(tuples2, min_size=1, max_size=6),
        divisor=st.lists(st.integers(0, 3), min_size=1, max_size=3,
                         unique=True),
        tagged=st.booleans(),
    )
    def test_division(self, pairs, divisor, tagged):
        distinct_x = sorted({x for x, _ in pairs})
        plan = DivisionPlan(pairs, distinct_x, divisor, tagged=tagged)
        run = assert_columnar_identical(plan)
        # One AND token per dividend row, stamped by the §7 result law.
        for row in range(len(distinct_x)):
            tap = run.tap(f"and_row[{row}]")
            assert len(tap) == 1
            assert int(tap.pulses[0]) == plan.schedule.result_pulse(row)


class TestLazyMaterialization:
    def _run(self):
        plan = GridPlan(
            [(0, 1), (2, 3)], [(0, 1), (2, 2)],
            grid_schedule("counter", 2, 2),
            t_init=t_init_true, accumulate=True, row_taps=True,
        )
        return LatticeEngine().run(plan)

    def test_taps_do_not_materialize_tokens(self):
        run = self._run()
        assert run._collectors is None
        assert run.tap("t_i") is not None
        assert run.tap("missing") is None
        assert run._collectors is None

    def test_single_collector_materializes_one_tap(self):
        run = self._run()
        collector = run.collector("t_i")
        assert list(run._collectors) == ["t_i"]
        assert run.collector("t_i") is collector  # cached, not rebuilt
        with pytest.raises(SimulationError, match="no tap named"):
            run.collector("nope")

    def test_collectors_property_materializes_all(self):
        run = self._run()
        assert sorted(run.collectors) == run.tap_names()


class TestChunkConfiguration:
    def test_default(self):
        assert LatticeEngine().chunk_bytes == DEFAULT_CHUNK_BYTES

    def test_kwarg(self):
        assert LatticeEngine(chunk_bytes=4096).chunk_bytes == 4096

    def test_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATTICE_CHUNK_BYTES", "1234")
        assert LatticeEngine().chunk_bytes == 1234

    def test_kwarg_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATTICE_CHUNK_BYTES", "1234")
        assert LatticeEngine(chunk_bytes=99).chunk_bytes == 99

    def test_invalid_rejected(self):
        with pytest.raises(SimulationError, match="chunk_bytes"):
            LatticeEngine(chunk_bytes=0)

    @SMALL
    @given(a=tuple_lists, b=tuple_lists, ops=ops_strategy)
    def test_tiny_chunks_change_nothing(self, a, b, ops):
        plan = GridPlan(
            a, b, grid_schedule("counter", len(a), len(b)),
            ops=tuple(ops), row_taps=True, tagged=True,
        )
        big = LatticeEngine().run(plan)
        tiny = LatticeEngine(chunk_bytes=1).run(plan)
        assert tap_dump(tiny) == tap_dump(big)
