"""Activity and comparison-work meters (the E11 instrumentation)."""

import pytest

from repro.systolic.metrics import (
    ActivityMeter,
    ComparisonWorkMeter,
    UtilizationReport,
)
from repro.systolic.values import tok


class TestUtilizationReport:
    def test_fraction(self):
        report = UtilizationReport(pulses=10, cells=4, busy_cell_pulses=20)
        assert report.cell_pulses == 40
        assert report.utilization == 0.5

    def test_zero_slots(self):
        assert UtilizationReport(0, 0, 0).utilization == 0.0


class TestActivityMeter:
    def test_counts_busy_pulses_per_cell(self):
        meter = ActivityMeter()
        meter.observe(0, {"a", "b"}, all_cells=3)
        meter.observe(1, {"a"}, all_cells=3)
        assert meter.busy_pulses == {"a": 2, "b": 1}
        report = meter.report()
        assert report.pulses == 2
        assert report.cells == 3
        assert report.utilization == pytest.approx(3 / 6)

    def test_busiest_ranking(self):
        meter = ActivityMeter()
        for pulse in range(3):
            meter.observe(pulse, {"hot"}, all_cells=2)
        meter.observe(3, {"cold", "hot"}, all_cells=2)
        assert meter.busiest(1) == [("hot", 4)]

    def test_explicit_cell_count(self):
        meter = ActivityMeter()
        meter.observe(0, {"a"}, all_cells=5)
        assert meter.report(cells=10).cells == 10


class TestComparisonWorkMeter:
    def _observe(self, meter, counts):
        for pulse, count in enumerate(counts):
            outputs = {
                f"c{n}": {"t_out": tok(True)} for n in range(count)
            }
            meter(pulse, {}, outputs)

    def test_counts_cells_emitting_t(self):
        meter = ComparisonWorkMeter()
        self._observe(meter, [0, 2, 3, 1, 0])
        assert meter.per_pulse == [0, 2, 3, 1, 0]
        assert meter.peak == 3

    def test_steady_state_mean_ignores_idle_pulses(self):
        meter = ComparisonWorkMeter()
        self._observe(meter, [0, 0, 4, 4, 0])
        assert meter.steady_state_mean() == 4.0

    def test_utilization_modes(self):
        meter = ComparisonWorkMeter()
        self._observe(meter, [0, 2, 2])
        assert meter.utilization(4, steady=True) == pytest.approx(0.5)
        assert meter.utilization(4, steady=False) == pytest.approx(4 / 12)

    def test_empty_run(self):
        meter = ComparisonWorkMeter()
        assert meter.peak == 0
        assert meter.steady_state_mean() == 0.0
        assert meter.utilization(8) == 0.0
        assert meter.utilization(0) == 0.0

    def test_custom_port(self):
        meter = ComparisonWorkMeter(port="and_out")
        meter(0, {}, {"c": {"and_out": tok(True)}, "d": {"t_out": tok(True)}})
        assert meter.per_pulse == [1]
