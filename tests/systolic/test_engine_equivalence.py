"""Differential equivalence: every engine equals the pulse engine.

The :class:`~repro.systolic.engine.LatticeEngine` and
:class:`~repro.systolic.engine.BitplaneEngine` promise bit-identical
edge outputs, pulse counts, and utilization without simulating cells.
Hypothesis drives randomized workloads through every plan type and
through every operator, running each on all engines and comparing the
complete observable surface: collector dumps (pulse, value, tag),
pulses, cells, busy counts, utilization, and hex peak firing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import (
    ArrayCapacity,
    blocked_divide,
    blocked_intersection,
    blocked_join,
    blocked_remove_duplicates,
    compare_all_pairs,
    compare_tuples,
    hex_compare_all_pairs,
    hex_matrix_product,
    systolic_difference,
    systolic_divide,
    systolic_dynamic_theta_join,
    systolic_intersection,
    systolic_join,
    systolic_remove_duplicates,
    systolic_theta_join,
    systolic_union,
)
from repro.arrays.hexagonal import BOOLEAN_SEMIRING, COMPARISON_SEMIRING
from repro.arrays.intersection import systolic_antijoin, systolic_semijoin
from repro.arrays.schedule import (
    CounterStreamSchedule,
    DivisionSchedule,
    FixedRelationSchedule,
)
from repro.errors import SimulationError
from repro.relational import Domain, MultiRelation, Relation, Schema
from repro.systolic.engine import (
    BitplaneEngine,
    DivisionPlan,
    GridPlan,
    HexPlan,
    LatticeEngine,
    LinearPlan,
    PulseEngine,
    resolve_backend,
)
from repro.systolic.metrics import ActivityMeter

SMALL = settings(max_examples=25, deadline=None)
FEWER = settings(max_examples=10, deadline=None)

_DOMAIN = Domain("eq", values=range(4))
_SCHEMA2 = Schema.of(("x", _DOMAIN), ("y", _DOMAIN))

tuples2 = st.tuples(st.integers(0, 3), st.integers(0, 3))
tuple_lists = st.lists(tuples2, min_size=1, max_size=5)
relations = st.lists(tuples2, min_size=0, max_size=6).map(
    lambda rows: Relation(_SCHEMA2, rows)
)
multis = st.lists(tuples2, min_size=0, max_size=7).map(
    lambda rows: MultiRelation(_SCHEMA2, rows)
)
ops_strategy = st.lists(
    st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    min_size=2, max_size=2,
)


def run_both(plan):
    """Run one plan on every engine (fresh meters) and return the runs."""
    # The lattice-family engines decline to meter the hexagonal mesh
    # (it needs the cell network), so hex equivalence is checked
    # meterless.
    meterable = not isinstance(plan, HexPlan)
    runs = []
    for engine in (PulseEngine(), LatticeEngine(), BitplaneEngine()):
        meter = ActivityMeter() if meterable else None
        runs.append((engine.run(plan, meter=meter), meter))
    return runs


def dump(run):
    """Every collector as {tap: [(pulse, value, tag), ...]}."""
    return {
        name: [(p, t.value, t.tag) for p, t in collector]
        for name, collector in sorted(run.collectors.items())
    }


def assert_identical(plan):
    (pulse_run, pulse_meter), *others = run_both(plan)
    for other_run, other_meter in others:
        assert dump(other_run) == dump(pulse_run)
        assert other_run.pulses == pulse_run.pulses
        assert other_run.cells == pulse_run.cells
        if pulse_meter is not None:
            assert other_meter.busy_pulses == pulse_meter.busy_pulses
            assert other_meter.pulses_observed == pulse_meter.pulses_observed
            assert (other_meter.report().utilization
                    == pulse_meter.report().utilization)
        assert other_run.peak_firing == pulse_run.peak_firing
    return pulse_run, others[0][0]


def grid_schedule(variant, n_a, n_b, arity):
    if variant == "counter":
        return CounterStreamSchedule(n_a=n_a, n_b=n_b, arity=arity)
    return FixedRelationSchedule(n_a=n_a, n_b=n_b, arity=arity)


class TestGridPlans:
    @SMALL
    @given(
        a=tuple_lists, b=tuple_lists,
        variant=st.sampled_from(["counter", "fixed"]),
        accumulate=st.booleans(),
        row_taps=st.booleans(),
        triangular=st.booleans(),
        tagged=st.booleans(),
    )
    def test_comparison_grids(
        self, a, b, variant, accumulate, row_taps, triangular, tagged
    ):
        schedule = grid_schedule(variant, len(a), len(b), 2)
        t_init = (lambda i, j: j < i) if triangular else (lambda i, j: True)
        plan = GridPlan(
            a, b, schedule, t_init=t_init, accumulate=accumulate,
            row_taps=row_taps or not accumulate, tagged=tagged,
        )
        assert_identical(plan)

    @SMALL
    @given(a=tuple_lists, b=tuple_lists, ops=ops_strategy,
           dynamic=st.booleans(), tagged=st.booleans())
    def test_join_grids(self, a, b, ops, dynamic, tagged):
        schedule = CounterStreamSchedule(n_a=len(a), n_b=len(b), arity=2)
        plan = GridPlan(
            a, b, schedule, ops=tuple(ops), dynamic_ops=dynamic,
            row_taps=True, tagged=tagged,
        )
        assert_identical(plan)


class TestDivisionPlans:
    @SMALL
    @given(
        pairs=st.lists(tuples2, min_size=1, max_size=6),
        divisor=st.lists(st.integers(0, 3), min_size=1, max_size=3,
                         unique=True),
        tagged=st.booleans(),
    )
    def test_division(self, pairs, divisor, tagged):
        distinct_x = sorted({x for x, _ in pairs})
        plan = DivisionPlan(pairs, distinct_x, divisor, tagged=tagged)
        assert_identical(plan)


class TestLinearPlans:
    @SMALL
    @given(
        a=st.lists(st.integers(0, 3), min_size=1, max_size=5),
        b_same=st.booleans(),
        seed=st.booleans(),
        tagged=st.booleans(),
    )
    def test_linear(self, a, b_same, seed, tagged):
        b = list(a) if b_same else [(v + 1) % 4 for v in a]
        plan = LinearPlan(a, b, seed=seed, tagged=tagged)
        assert_identical(plan)


class TestHexPlans:
    @FEWER
    @given(
        a=st.lists(st.lists(st.integers(0, 3), min_size=2, max_size=2),
                   min_size=1, max_size=4),
        b=st.lists(st.lists(st.integers(0, 3), min_size=2, max_size=2),
                   min_size=1, max_size=4),
        semiring=st.sampled_from([COMPARISON_SEMIRING, BOOLEAN_SEMIRING]),
        tagged=st.booleans(),
    )
    def test_hex(self, a, b, semiring, tagged):
        if semiring is BOOLEAN_SEMIRING:
            a = [[bool(v % 2) for v in row] for row in a]
            b = [[bool(v % 2) for v in row] for row in b]
        plan = HexPlan(a, b, semiring, tagged=tagged)
        pulse_run, _ = assert_identical(plan)
        assert pulse_run.peak_firing is not None


class TestOperatorsAcrossBackends:
    """Operator-level: identical relations and run stats per backend."""

    BACKENDS = ("pulse", "lattice", "bitplane")

    def _pair(self, op, *args, **kwargs):
        return [
            op(*args, backend=backend, **kwargs)
            for backend in self.BACKENDS
        ]

    @SMALL
    @given(a=relations, b=relations,
           variant=st.sampled_from(["counter", "fixed"]))
    def test_set_operators(self, a, b, variant):
        for op in (systolic_intersection, systolic_difference):
            pulse, *others = self._pair(op, a, b, variant=variant, tagged=True)
            for other in others:
                assert other.relation == pulse.relation
                assert other.run.pulses == pulse.run.pulses
                assert other.t_vector == pulse.t_vector

    @SMALL
    @given(a=relations, b=relations)
    def test_union(self, a, b):
        pulse, *others = self._pair(systolic_union, a, b, tagged=True)
        for other in others:
            assert other.relation == pulse.relation
            assert other.run.pulses == pulse.run.pulses

    @SMALL
    @given(multi=multis, variant=st.sampled_from(["counter", "fixed"]))
    def test_remove_duplicates(self, multi, variant):
        pulse, *others = self._pair(
            systolic_remove_duplicates, multi, variant=variant, tagged=True
        )
        for other in others:
            assert other.relation == pulse.relation
            assert other.drop_vector == pulse.drop_vector

    @SMALL
    @given(a=relations, b=relations)
    def test_semijoin_antijoin(self, a, b):
        on = [("x", "x"), ("y", "y")]
        for op in (systolic_semijoin, systolic_antijoin):
            pulse, *others = self._pair(op, a, b, on, tagged=True)
            for other in others:
                assert other.relation == pulse.relation

    @SMALL
    @given(a=relations, b=relations, ops=ops_strategy)
    def test_joins(self, a, b, ops):
        on = [("x", "x"), ("y", "y")]
        for op, extra in (
            (systolic_join, ()),
            (systolic_theta_join, (ops,)),
            (systolic_dynamic_theta_join, (ops,)),
        ):
            pulse, *others = self._pair(op, a, b, on, *extra, tagged=True)
            for other in others:
                assert other.relation == pulse.relation
                assert other.run.pulses == pulse.run.pulses

    @SMALL
    @given(a=relations, b=st.lists(st.integers(0, 3), min_size=0,
                                   max_size=3, unique=True))
    def test_division(self, a, b):
        divisor = Relation(
            Schema.of(("y", _DOMAIN)), [(value,) for value in b]
        )
        pulse, *others = self._pair(systolic_divide, a, divisor, tagged=True)
        for other in others:
            assert other.relation == pulse.relation
            assert other.run.pulses == pulse.run.pulses

    @SMALL
    @given(a=tuple_lists, b=tuple_lists)
    def test_comparison_matrices(self, a, b):
        pulse, *others = self._pair(compare_all_pairs, a, b, tagged=True)
        for other in others:
            assert other.t_matrix == pulse.t_matrix
        hex_pulse, *hex_others = self._pair(
            hex_compare_all_pairs, a, b, tagged=True
        )
        for hex_other in hex_others:
            assert hex_other.t_matrix == hex_pulse.t_matrix
            assert hex_other.peak_firing == hex_pulse.peak_firing
        assert hex_pulse.t_matrix == pulse.t_matrix

    @SMALL
    @given(a=tuples2, b=tuples2, seed=st.booleans())
    def test_linear_comparison(self, a, b, seed):
        pulse, *others = self._pair(compare_tuples, a, b, seed=seed)
        for other in others:
            assert other.equal == pulse.equal
            assert other.run.pulses == pulse.run.pulses


class TestBlockedAcrossBackends:
    CAP = ArrayCapacity(max_rows=5, max_cols=2)

    @FEWER
    @given(a=relations, b=relations)
    def test_blocked_set_ops(self, a, b):
        runs = [
            blocked_intersection(a, b, self.CAP, backend=backend)
            for backend in ("pulse", "lattice", "bitplane")
        ]
        for run in runs[1:]:
            assert runs[0][0] == run[0]
            assert runs[0][1].total_pulses == run[1].total_pulses
            assert runs[0][1].block_runs == run[1].block_runs

    @FEWER
    @given(multi=multis)
    def test_blocked_dedup(self, multi):
        runs = [
            blocked_remove_duplicates(multi, self.CAP, backend=backend)
            for backend in ("pulse", "lattice", "bitplane")
        ]
        for run in runs[1:]:
            assert runs[0][0] == run[0]
            assert runs[0][1].total_pulses == run[1].total_pulses

    @FEWER
    @given(a=relations, b=relations)
    def test_blocked_join(self, a, b):
        on = [("x", "x")]
        runs = [
            blocked_join(a, b, on, self.CAP, backend=backend)
            for backend in ("pulse", "lattice", "bitplane")
        ]
        for run in runs[1:]:
            assert runs[0][0] == run[0]
            assert runs[0][1].total_pulses == run[1].total_pulses

    @FEWER
    @given(a=relations, b=st.lists(st.integers(0, 3), min_size=1,
                                   max_size=3, unique=True))
    def test_blocked_divide(self, a, b):
        divisor = Relation(
            Schema.of(("y", _DOMAIN)), [(value,) for value in b]
        )
        capacity = ArrayCapacity(max_rows=5, max_cols=4)
        runs = [
            blocked_divide(a, divisor, capacity, backend=backend)
            for backend in ("pulse", "lattice", "bitplane")
        ]
        for run in runs[1:]:
            assert runs[0][0] == run[0]
            assert runs[0][1].total_pulses == run[1].total_pulses


class TestBackendResolution:
    def test_default_is_pulse(self):
        assert resolve_backend(None).name == "pulse"

    def test_names_resolve(self):
        assert isinstance(resolve_backend("pulse"), PulseEngine)
        assert isinstance(resolve_backend("lattice"), LatticeEngine)
        assert isinstance(resolve_backend("bitplane"), BitplaneEngine)

    def test_engine_instances_pass_through(self):
        engine = LatticeEngine()
        assert resolve_backend(engine) is engine

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(SimulationError, match="lattice"):
            resolve_backend("warp")

    def test_lattice_refuses_trace(self):
        from repro.systolic.trace import TraceRecorder

        schedule = CounterStreamSchedule(n_a=1, n_b=1, arity=2)
        plan = GridPlan(
            [(0, 1)], [(0, 1)], schedule, t_init=lambda i, j: True,
            accumulate=True,
        )
        with pytest.raises(SimulationError, match="pulse"):
            LatticeEngine().run(plan, trace=TraceRecorder())
