"""Feeders (the staggering machinery of §3.1) and collectors."""

import pytest

from repro.errors import SimulationError
from repro.systolic.streams import (
    Collector,
    ConstantFeeder,
    PeriodicFeeder,
    ScheduleFeeder,
    silent,
)
from repro.systolic.values import tok


class TestScheduleFeeder:
    def test_emits_at_scheduled_pulses_only(self):
        feeder = ScheduleFeeder({2: tok("x"), 5: tok("y")})
        assert feeder(2).value == "x"
        assert feeder(5).value == "y"
        assert feeder(0) is None
        assert feeder(3) is None

    def test_negative_pulse_rejected(self):
        with pytest.raises(SimulationError):
            ScheduleFeeder({-1: tok(1)})

    def test_last_pulse(self):
        assert ScheduleFeeder({2: tok(1), 7: tok(2)}).last_pulse == 7
        assert ScheduleFeeder({}).last_pulse == -1


class TestPeriodicFeeder:
    def test_two_pulse_spacing(self):
        # §3.2's "each tuple is two steps behind" pattern.
        feeder = PeriodicFeeder([tok(10), tok(11), tok(12)], start=3, period=2)
        assert feeder(3).value == 10
        assert feeder(5).value == 11
        assert feeder(7).value == 12
        assert feeder(4) is None
        assert feeder(9) is None

    def test_unit_period(self):
        feeder = PeriodicFeeder([tok(0), tok(1)], start=0, period=1)
        assert [feeder(p) and feeder(p).value for p in range(3)] == [0, 1, None]

    def test_none_slots_allowed(self):
        feeder = PeriodicFeeder([tok(0), None, tok(2)], start=0, period=1)
        assert feeder(1) is None
        assert feeder(2).value == 2

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            PeriodicFeeder([tok(1)], start=0, period=0)
        with pytest.raises(SimulationError):
            PeriodicFeeder([tok(1)], start=-1, period=1)

    def test_last_pulse(self):
        assert PeriodicFeeder([tok(1)] * 3, start=4, period=2).last_pulse == 8
        assert PeriodicFeeder([], start=4, period=2).last_pulse == -1


class TestConstantFeeder:
    def test_always_on(self):
        feeder = ConstantFeeder(tok(9))
        assert feeder(0).value == 9
        assert feeder(1000).value == 9

    def test_window(self):
        feeder = ConstantFeeder(tok(9), start=2, stop=4)
        assert feeder(1) is None
        assert feeder(2).value == 9
        assert feeder(3).value == 9
        assert feeder(4) is None

    def test_silent_never_emits(self):
        assert all(silent(p) is None for p in range(10))


class TestCollector:
    def test_records_in_pulse_order(self):
        collector = Collector("c")
        collector.record(3, tok("a"))
        collector.record(7, tok("b"))
        assert collector.pulses() == [3, 7]
        assert collector.values() == ["a", "b"]
        assert collector.tokens()[0].value == "a"

    def test_at(self):
        collector = Collector("c")
        collector.record(3, tok("a"))
        assert collector.at(3).value == "a"
        assert collector.at(4) is None

    def test_double_record_same_pulse_rejected(self):
        collector = Collector("c")
        collector.record(3, tok("a"))
        with pytest.raises(SimulationError, match="two tokens"):
            collector.record(3, tok("b"))

    def test_len_and_iteration(self):
        collector = Collector("c")
        collector.record(1, tok("a"))
        collector.record(2, tok("b"))
        assert len(collector) == 2
        assert [(p, t.value) for p, t in collector] == [(1, "a"), (2, "b")]
