"""The synchronous pulse simulator: two-phase semantics, taps, draining."""

import pytest

from repro.errors import SimulationError
from repro.systolic.cell import Cell
from repro.systolic.cells import InverterCell, LatchCell
from repro.systolic.metrics import ActivityMeter
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.streams import ConstantFeeder, ScheduleFeeder
from repro.systolic.values import Token, tok
from repro.systolic.wiring import Network


def delay_line(n: int, schedule: dict[int, Token]) -> Network:
    network = Network("delay-line")
    for index in range(n):
        network.add(LatchCell(f"l{index}"))
    for index in range(n - 1):
        network.connect(f"l{index}", "d_out", f"l{index + 1}", "d_in")
    network.feed("l0", "d_in", ScheduleFeeder(schedule))
    network.tap("out", f"l{n - 1}", "d_out")
    return network


class TestPulseSemantics:
    def test_one_hop_per_pulse(self):
        # A token fed at pulse 0 exits an n-cell line at pulse n-1.
        simulator = SystolicSimulator(delay_line(4, {0: tok("x")}))
        simulator.run(4)
        assert simulator.collector("out").pulses() == [3]

    def test_stream_preserves_spacing(self):
        simulator = SystolicSimulator(
            delay_line(3, {0: tok("a"), 2: tok("b"), 4: tok("c")})
        )
        simulator.run(7)
        assert simulator.collector("out").pulses() == [2, 4, 6]
        assert simulator.collector("out").values() == ["a", "b", "c"]

    def test_latch_holds_for_exactly_one_pulse(self):
        # Data not re-emitted is gone: the line outputs nothing extra.
        simulator = SystolicSimulator(delay_line(2, {0: tok("x")}))
        simulator.run(10)
        assert len(simulator.collector("out")) == 1

    def test_pulse_counter(self):
        simulator = SystolicSimulator(delay_line(2, {}))
        simulator.run(5)
        assert simulator.pulse == 5

    def test_negative_run_rejected(self):
        simulator = SystolicSimulator(delay_line(2, {}))
        with pytest.raises(SimulationError):
            simulator.run(-1)


class TestTapsAndCollectors:
    def test_unknown_collector(self):
        simulator = SystolicSimulator(delay_line(2, {}))
        with pytest.raises(SimulationError, match="no tap"):
            simulator.collector("nope")

    def test_two_taps_on_one_port(self):
        network = delay_line(2, {0: tok("x")})
        network.tap("dup", "l1", "d_out")
        simulator = SystolicSimulator(network)
        simulator.run(3)
        assert simulator.collector("out").values() == ["x"]
        assert simulator.collector("dup").values() == ["x"]


class TestRunUntilQuiet:
    def test_drains_after_feeders_exhaust(self):
        simulator = SystolicSimulator(delay_line(3, {0: tok("x"), 2: tok("y")}))
        simulator.run_until_quiet()
        assert simulator.collector("out").values() == ["x", "y"]

    def test_limit_guards_against_constant_feeders(self):
        network = delay_line(2, {})
        # Replace with an always-on feeder: never quiesces.
        network2 = Network("noisy")
        network2.add(LatchCell("l0"))
        network2.feed("l0", "d_in", ConstantFeeder(tok(1)))
        simulator = SystolicSimulator(network2)
        with pytest.raises(SimulationError, match="did not quiesce"):
            simulator.run_until_quiet(limit=50)

    def test_limit_error_names_the_network(self):
        network = Network("noisy")
        network.add(LatchCell("l0"))
        network.feed("l0", "d_in", ConstantFeeder(tok(1)))
        simulator = SystolicSimulator(network)
        with pytest.raises(SimulationError, match="noisy"):
            simulator.run_until_quiet(limit=7)
        # The simulator is still usable after the failed drain.
        simulator.run(1)

    def test_empty_network_quiesces_immediately(self):
        simulator = SystolicSimulator(Network("empty"))
        assert simulator.run_until_quiet(settle=3) == 3
        assert simulator.pulse == 3

    def test_idle_network_runs_exactly_settle_pulses(self):
        simulator = SystolicSimulator(delay_line(2, {}))
        assert simulator.run_until_quiet(settle=5) == 5

    def test_small_settle_stops_inside_a_stream_gap(self):
        # Tokens at pulses 0 and 3 leave two idle pulses in between; a
        # 1-pulse settle declares quiescence inside the gap and misses
        # the second token, while the default rides it out.
        schedule = {0: tok("x"), 3: tok("y")}
        early = SystolicSimulator(delay_line(1, schedule))
        early.run_until_quiet(settle=1)
        assert early.collector("out").values() == ["x"]

        patient = SystolicSimulator(delay_line(1, schedule))
        patient.run_until_quiet(settle=4)
        assert patient.collector("out").values() == ["x", "y"]


class _BadCell(Cell):
    IN_PORTS = ("d_in",)
    OUT_PORTS = ("d_out",)

    def step(self, inputs):
        return {"undeclared": tok(1)}


class TestErrorHandling:
    def test_undeclared_output_port_detected(self):
        network = Network()
        network.add(_BadCell("bad"))
        simulator = SystolicSimulator(network)
        with pytest.raises(SimulationError, match="undeclared output"):
            simulator.step_once()

    def test_cell_error_annotated_with_pulse(self):
        from repro.systolic.cells import ComparisonCell

        network = Network()
        network.add(ComparisonCell("c"))
        network.feed("c", "t_in", ScheduleFeeder({4: tok(True)}))
        simulator = SystolicSimulator(network)
        with pytest.raises(SimulationError, match="pulse 4"):
            simulator.run(5)

    def test_strict_mode_propagates_to_network(self):
        network = delay_line(2, {})
        # l0 is fed; fine. Remove feeder scenario: build unfed chain.
        unfed = Network("unfed")
        unfed.add(LatchCell("a"))
        with pytest.raises(Exception, match="unconnected"):
            SystolicSimulator(unfed, strict=True)

    def test_cells_reset_on_simulator_construction(self):
        from repro.systolic.cells import DivisorCell

        network = Network()
        cell = DivisorCell("d", stored=1)
        cell.seen = True
        network.add(cell)
        SystolicSimulator(network)
        assert cell.seen is False


class TestMeterIntegration:
    def test_busy_cells_counted(self):
        meter = ActivityMeter()
        simulator = SystolicSimulator(delay_line(3, {0: tok("x")}), meter=meter)
        simulator.run(3)
        # The token visits l0, l1, l2 on pulses 0, 1, 2: one busy pulse each.
        assert meter.busy_pulses == {"l0": 1, "l1": 1, "l2": 1}
        report = meter.report()
        assert report.pulses == 3
        assert report.cells == 3
        assert report.utilization == pytest.approx(3 / 9)


class TestObserver:
    def test_observer_sees_inputs_and_outputs(self):
        seen = []

        def observer(pulse, inputs, outputs):
            seen.append((pulse, inputs["l0"]["d_in"], outputs["l0"].get("d_out")))

        simulator = SystolicSimulator(
            delay_line(1, {1: tok("z")}), observer=observer
        )
        simulator.run(2)
        assert seen[0][1] is None
        assert seen[1][1].value == "z"
        assert seen[1][2].value == "z"


class TestMergedFeeders:
    def _merged_network(self, wire_pulse, feed_pulse):
        from repro.systolic.streams import ScheduleFeeder

        network = Network("merged")
        network.add(LatchCell("src"))
        network.add(LatchCell("dst"))
        network.connect("src", "d_out", "dst", "d_in")
        network.feed("src", "d_in", ScheduleFeeder({wire_pulse: tok("w")}))
        network.feed("dst", "d_in", ScheduleFeeder({feed_pulse: tok("f")}),
                     merge=True)
        network.tap("out", "dst", "d_out")
        return network

    def test_wire_and_feeder_interleave(self):
        simulator = SystolicSimulator(self._merged_network(0, 3))
        simulator.run(5)
        # Wire token arrives at dst on pulse 1; feeder token on pulse 3.
        assert simulator.collector("out").values() == ["w", "f"]

    def test_same_pulse_collision_detected(self):
        # Wire token fed to src at pulse 0 reaches dst at pulse 1 — the
        # same pulse the merged feeder fires: collision.
        simulator = SystolicSimulator(self._merged_network(0, 1))
        with pytest.raises(SimulationError, match="feeder and wire both"):
            simulator.run(3)
