"""Tokens, the explicit null, and ghost tags."""

from repro.systolic.values import (
    FALSE,
    NULL_VALUE,
    TRUE,
    Token,
    tag_of,
    tok,
    value_of,
)


class TestToken:
    def test_tok_shorthand(self):
        token = tok(5, ("a", 0, 1))
        assert token.value == 5
        assert token.tag == ("a", 0, 1)

    def test_with_value_keeps_tag(self):
        token = tok(5, "tag").with_value(6)
        assert (token.value, token.tag) == (6, "tag")

    def test_with_tag_keeps_value(self):
        token = tok(5).with_tag("t2")
        assert (token.value, token.tag) == (5, "t2")

    def test_frozen_and_hashable(self):
        assert tok(1, "a") == tok(1, "a")
        assert len({tok(1), tok(1), tok(2)}) == 2

    def test_boolean_constants(self):
        assert TRUE.value is True
        assert FALSE.value is False

    def test_repr_with_and_without_tag(self):
        assert "tag" not in repr(tok(1))
        assert "tag" in repr(tok(1, "x"))


class TestNullValue:
    def test_singleton(self):
        from repro.systolic.values import _NullValue

        assert _NullValue() is NULL_VALUE

    def test_falsy(self):
        assert not NULL_VALUE

    def test_distinct_from_empty_wire(self):
        token = tok(NULL_VALUE)
        assert token is not None
        assert value_of(token) is NULL_VALUE

    def test_never_equals_integers(self):
        assert NULL_VALUE != 0
        assert NULL_VALUE != False  # noqa: E712 — deliberate comparison


class TestAccessors:
    def test_value_of_none(self):
        assert value_of(None) is None

    def test_tag_of_none(self):
        assert tag_of(None) is None

    def test_accessors_on_token(self):
        token = tok(9, "g")
        assert value_of(token) == 9
        assert tag_of(token) == "g"
