"""Unit tests for every processor type — the Fig 2-2 prototypes."""

import pytest

from repro.errors import SimulationError
from repro.systolic.cells import (
    AccumulationCell,
    ComparisonCell,
    DividendGateCell,
    DividendMatchCell,
    DivisorCell,
    InverterCell,
    LatchCell,
    ThetaCell,
)
from repro.systolic.values import NULL_VALUE, Token, tok


def step(cell, **inputs):
    """Run one pulse with named inputs, absent ports filled with None."""
    full = {port: inputs.get(port) for port in cell.IN_PORTS}
    return cell.step(full)


class TestComparisonCell:
    def test_equal_elements_keep_true(self):
        out = step(ComparisonCell("c"), a_in=tok(5), b_in=tok(5), t_in=tok(True))
        assert out["t_out"].value is True

    def test_unequal_elements_force_false(self):
        out = step(ComparisonCell("c"), a_in=tok(5), b_in=tok(6), t_in=tok(True))
        assert out["t_out"].value is False

    def test_false_in_false_out_even_on_match(self):
        # §3.1: "if the initial input is FALSE, the output ... is
        # guaranteed to be false" — the hook §5's masking relies on.
        out = step(ComparisonCell("c"), a_in=tok(5), b_in=tok(5), t_in=tok(False))
        assert out["t_out"].value is False

    def test_elements_pass_through_unchanged(self):
        a, b = tok(1, "ta"), tok(2, "tb")
        out = step(ComparisonCell("c", require_t=False), a_in=a, b_in=b)
        assert out["a_out"] is a
        assert out["b_out"] is b

    def test_lone_element_passes_without_comparison(self):
        out = step(ComparisonCell("c"), a_in=tok(1))
        assert out["a_out"].value == 1
        assert "t_out" not in out

    def test_idle_pulse_emits_nothing(self):
        assert step(ComparisonCell("c")) == {}

    def test_t_without_elements_is_schedule_violation(self):
        with pytest.raises(SimulationError, match="mis-staggered"):
            step(ComparisonCell("c"), t_in=tok(True))

    def test_meeting_without_t_is_violation_when_required(self):
        with pytest.raises(SimulationError, match="injection schedule"):
            step(ComparisonCell("c"), a_in=tok(1), b_in=tok(1))

    def test_tag_propagates_from_t(self):
        out = step(
            ComparisonCell("c"),
            a_in=tok(5, ("a", 2, 0)), b_in=tok(5, ("b", 3, 0)),
            t_in=tok(True, ("t", 2, 3)),
        )
        assert out["t_out"].tag == ("t", 2, 3)

    def test_tag_mismatch_detected(self):
        with pytest.raises(SimulationError, match="claims tuple"):
            step(
                ComparisonCell("c"),
                a_in=tok(5, ("a", 9, 0)), b_in=tok(5, ("b", 3, 0)),
                t_in=tok(True, ("t", 2, 3)),
            )

    def test_element_position_mismatch_detected(self):
        with pytest.raises(SimulationError, match="positions disagree"):
            step(
                ComparisonCell("c"),
                a_in=tok(5, ("a", 2, 0)), b_in=tok(5, ("b", 3, 1)),
                t_in=tok(True, ("t", 2, 3)),
            )


class TestAccumulationCell:
    def test_or_accumulates(self):
        out = step(AccumulationCell("a"), t_left=tok(True), t_top=tok(False))
        assert out["t_bottom"].value is True

    def test_false_or_false(self):
        out = step(AccumulationCell("a"), t_left=tok(False), t_top=tok(False))
        assert out["t_bottom"].value is False

    def test_idle_passes_descending_value(self):
        # §4.2: processors that aren't busy "simply pass on the t_i".
        descending = tok(True, ("acc", 1))
        out = step(AccumulationCell("a"), t_top=descending)
        assert out["t_bottom"] is descending

    def test_idle_pulse(self):
        assert step(AccumulationCell("a")) == {}

    def test_left_without_slot_is_violation(self):
        with pytest.raises(SimulationError, match="misaligned"):
            step(AccumulationCell("a"), t_left=tok(True))

    def test_tag_cross_check(self):
        with pytest.raises(SimulationError, match="merged into"):
            step(
                AccumulationCell("a"),
                t_left=tok(True, ("t", 5, 0)), t_top=tok(False, ("acc", 4)),
            )

    def test_result_keeps_accumulator_tag(self):
        out = step(
            AccumulationCell("a"),
            t_left=tok(True, ("t", 4, 0)), t_top=tok(False, ("acc", 4)),
        )
        assert out["t_bottom"].tag == ("acc", 4)


class TestThetaCell:
    def test_equality_default(self):
        out = step(ThetaCell("j"), a_in=tok(5), b_in=tok(5))
        assert out["t_out"].value is True

    @pytest.mark.parametrize("op,a,b,expected", [
        ("<", 1, 2, True), ("<", 2, 1, False),
        (">", 2, 1, True), (">=", 2, 2, True),
        ("<=", 3, 2, False), ("!=", 1, 2, True), ("==", 1, 2, False),
    ])
    def test_programmable_operator(self, op, a, b, expected):
        out = step(ThetaCell("j", op=op), a_in=tok(a), b_in=tok(b))
        assert out["t_out"].value is expected

    def test_unknown_operator_rejected_at_preload(self):
        with pytest.raises(SimulationError, match="unknown comparison"):
            ThetaCell("j", op="~=")

    def test_chains_with_incoming_t(self):
        out = step(ThetaCell("j"), a_in=tok(5), b_in=tok(5), t_in=tok(False))
        assert out["t_out"].value is False

    def test_derives_pair_tag_from_elements(self):
        out = step(
            ThetaCell("j"), a_in=tok(5, ("a", 1, 0)), b_in=tok(5, ("b", 2, 0))
        )
        assert out["t_out"].tag == ("t", 1, 2)

    def test_t_without_elements_is_violation(self):
        with pytest.raises(SimulationError):
            step(ThetaCell("j"), t_in=tok(True))

    def test_passthrough_without_meeting(self):
        out = step(ThetaCell("j"), b_in=tok(7))
        assert out["b_out"].value == 7
        assert "t_out" not in out


class TestDivisionCells:
    def test_match_cell_true_on_stored_element(self):
        out = step(DividendMatchCell("m", stored=3), x_in=tok(3, ("pair", 0)))
        assert out["t_out"].value is True
        assert out["t_out"].tag == ("pair", 0)
        assert out["x_out"].value == 3

    def test_match_cell_false_otherwise(self):
        out = step(DividendMatchCell("m", stored=3), x_in=tok(4))
        assert out["t_out"].value is False

    def test_match_cell_idle(self):
        assert step(DividendMatchCell("m", stored=3)) == {}

    def test_gate_passes_y_on_true(self):
        out = step(DividendGateCell("g"), y_in=tok(7), t_in=tok(True))
        assert out["y_pass"].value == 7
        assert out["y_out"].value == 7

    def test_gate_emits_explicit_null_on_false(self):
        # §7: "Otherwise, some null value is output."
        out = step(DividendGateCell("g"), y_in=tok(7), t_in=tok(False))
        assert out["y_pass"].value is NULL_VALUE
        assert out["y_out"].value == 7  # the y keeps travelling upward

    def test_gate_requires_both(self):
        with pytest.raises(SimulationError, match="together"):
            step(DividendGateCell("g"), y_in=tok(7))
        with pytest.raises(SimulationError, match="together"):
            step(DividendGateCell("g"), t_in=tok(True))

    def test_gate_pair_tag_mismatch(self):
        with pytest.raises(SimulationError, match="pair"):
            step(
                DividendGateCell("g"),
                y_in=tok(7, ("pair", 1)), t_in=tok(True, ("pair", 2)),
            )

    def test_divisor_cell_latches_sighting(self):
        cell = DivisorCell("d", stored=9)
        step(cell, y_in=tok(9))
        assert cell.seen
        out = step(cell, and_in=tok(True))
        assert out["and_out"].value is True

    def test_divisor_cell_ignores_nulls(self):
        cell = DivisorCell("d", stored=9)
        step(cell, y_in=tok(NULL_VALUE))
        assert not cell.seen

    def test_divisor_and_false_without_sighting(self):
        cell = DivisorCell("d", stored=9)
        step(cell, y_in=tok(8))
        out = step(cell, and_in=tok(True))
        assert out["and_out"].value is False

    def test_divisor_and_propagates_false(self):
        cell = DivisorCell("d", stored=9)
        step(cell, y_in=tok(9))
        out = step(cell, and_in=tok(False))
        assert out["and_out"].value is False

    def test_divisor_reset_clears_flag(self):
        cell = DivisorCell("d", stored=9)
        step(cell, y_in=tok(9))
        cell.reset()
        assert not cell.seen

    def test_divisor_handles_y_and_sweep_same_pulse(self):
        cell = DivisorCell("d", stored=9)
        out = step(cell, y_in=tok(9), and_in=tok(True))
        assert out["y_out"].value == 9
        assert out["and_out"].value is True  # sighting latches before the AND


class TestUtilityCells:
    def test_latch_forwards(self):
        token = tok(3, "g")
        assert step(LatchCell("l"), d_in=token) == {"d_out": token}

    def test_latch_idle(self):
        assert step(LatchCell("l")) == {}

    def test_inverter(self):
        out = step(InverterCell("i"), t_in=tok(True, "g"))
        assert out["t_out"].value is False
        assert out["t_out"].tag == "g"

    def test_inverter_idle(self):
        assert step(InverterCell("i")) == {}

    def test_cell_requires_name(self):
        with pytest.raises(SimulationError):
            LatchCell("")
