"""Network construction: regular local interconnection, validated."""

import pytest

from repro.errors import WiringError
from repro.systolic.cells import LatchCell
from repro.systolic.streams import silent
from repro.systolic.wiring import Endpoint, Network


def chain(n: int) -> Network:
    network = Network("chain")
    for index in range(n):
        network.add(LatchCell(f"l{index}"))
    for index in range(n - 1):
        network.connect(f"l{index}", "d_out", f"l{index + 1}", "d_in")
    return network


class TestConstruction:
    def test_duplicate_cell_name_rejected(self):
        network = Network()
        network.add(LatchCell("x"))
        with pytest.raises(WiringError, match="duplicate cell"):
            network.add(LatchCell("x"))

    def test_connect_unknown_cell(self):
        with pytest.raises(WiringError, match="unknown cell"):
            Network().connect("a", "d_out", "b", "d_in")

    def test_connect_unknown_port(self):
        network = chain(2)
        with pytest.raises(WiringError, match="no output port"):
            network.connect("l0", "bogus", "l1", "d_in")
        with pytest.raises(WiringError, match="no input port"):
            network.connect("l0", "d_out", "l1", "bogus")

    def test_input_single_driver(self):
        network = chain(3)
        with pytest.raises(WiringError, match="already driven"):
            network.connect("l2", "d_out", "l1", "d_in")

    def test_feeder_conflicts_with_wire(self):
        network = chain(2)
        with pytest.raises(WiringError, match="already driven"):
            network.feed("l1", "d_in", silent)

    def test_wire_conflicts_with_feeder(self):
        network = Network()
        network.add(LatchCell("a"))
        network.add(LatchCell("b"))
        network.feed("b", "d_in", silent)
        with pytest.raises(WiringError, match="already driven by a feeder"):
            network.connect("a", "d_out", "b", "d_in")

    def test_fanout_allowed(self):
        network = Network()
        for name in ("src", "d1", "d2"):
            network.add(LatchCell(name))
        network.connect("src", "d_out", "d1", "d_in")
        network.connect("src", "d_out", "d2", "d_in")
        assert len(network.wires) == 2

    def test_duplicate_tap_name(self):
        network = chain(1)
        network.tap("out", "l0", "d_out")
        with pytest.raises(WiringError, match="duplicate tap"):
            network.tap("out", "l0", "d_out")


class TestIntrospection:
    def test_unconnected_inputs_listed(self):
        network = chain(3)
        assert network.unconnected_inputs() == [Endpoint("l0", "d_in")]

    def test_strict_validation_fails_on_dangling(self):
        network = chain(2)
        with pytest.raises(WiringError, match="unconnected"):
            network.validate(strict=True)

    def test_strict_validation_passes_when_fed(self):
        network = chain(2)
        network.feed("l0", "d_in", silent)
        network.validate(strict=True)

    def test_lenient_validation_always_passes(self):
        chain(2).validate(strict=False)

    def test_driver_of(self):
        network = chain(2)
        assert network.driver_of("l1", "d_in") == Endpoint("l0", "d_out")
        assert network.driver_of("l0", "d_in") is None

    def test_cell_lookup(self):
        network = chain(1)
        assert network.cell("l0").name == "l0"
        with pytest.raises(WiringError):
            network.cell("zz")

    def test_len_and_iter(self):
        network = chain(3)
        assert len(network) == 3
        assert sorted(c.name for c in network) == ["l0", "l1", "l2"]


class TestMergeFeeders:
    def test_merge_allows_feeder_on_wired_port(self):
        from repro.systolic.streams import ScheduleFeeder
        from repro.systolic.values import tok

        network = chain(2)
        network.feed("l1", "d_in", ScheduleFeeder({0: tok("x")}), merge=True)
        assert len(network.feeders) == 1

    def test_two_feeders_never_allowed(self):
        network = chain(1)
        network.feed("l0", "d_in", silent)
        with pytest.raises(WiringError, match="already driven by a feeder"):
            network.feed("l0", "d_in", silent, merge=True)
