"""Differential tests: the sharded machine vs. the single machine.

The shard layer's whole contract is *transparency*: for any relations,
any shard count, either partitioning strategy, and either array
backend, a sharded session must produce results equal (as sets — the
relation's equality) to the single unsharded machine, with per-shard
``machine.run`` span trees identical to a standalone machine run on
that shard's piece of the data.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import obs
from repro.machine import Base, Divide, EnginePool, Intersect, Join
from repro.relational import Domain, Relation, Schema

SMALL = settings(max_examples=10, deadline=None)

_DOMAIN = Domain("shard-diff", values=range(12))
_PAIR = Schema.of(("k", _DOMAIN), ("v", _DOMAIN))
_ONE = Schema.of(("v", _DOMAIN))

rows = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)),
    min_size=1, max_size=16,
)
divisor_rows = st.lists(
    st.tuples(st.integers(0, 11)), min_size=1, max_size=4,
)


def _run(shards, strategy, backend, stored, plans, parallel=None):
    pool = EnginePool(backend=backend)
    session = pool.session(
        "diff", shards=shards, shard_strategy=strategy, parallel=parallel,
    )
    for name, (relation, key) in stored.items():
        session.store(name, relation, key=key)
    return session.run_many(plans)


class TestResultEquality:
    @SMALL
    @given(a=rows, b=rows)
    def test_equi_join_and_intersection(self, a, b):
        stored = {
            "A": (Relation(_PAIR, a), "k"),
            "B": (Relation(_PAIR, b), "k"),
        }
        plans = [
            Join(Base("A"), Base("B"), on=(("k", "k"),)),
            Join(Base("A"), Base("B"), on=(("v", "v"),)),  # re-partition
            Intersect(Base("A"), Base("B")),
        ]
        expected, _ = _run(1, "hash", None, stored, plans)
        for shards in (2, 3, 4):
            for strategy in ("hash", "range"):
                got, _ = _run(shards, strategy, None, stored, plans)
                assert got == expected, (shards, strategy)

    @SMALL
    @given(a=rows, d=divisor_rows)
    def test_division(self, a, d):
        stored = {
            "SP": (Relation(_PAIR, a), "k"),
            "D": (Relation(_ONE, d), "v"),
        }
        plans = [Divide(Base("SP"), Base("D"), a_value="v", a_group="k",
                        b_value="v")]
        expected, _ = _run(1, "hash", None, stored, plans)
        for shards in (2, 3, 4):
            for strategy in ("hash", "range"):
                got, _ = _run(shards, strategy, None, stored, plans)
                assert got == expected, (shards, strategy)

    def test_both_backends_agree_when_sharded(self):
        a = [(i % 8, i % 5) for i in range(24)]
        b = [(i % 8, i % 3) for i in range(18)]
        stored = {
            "A": (Relation(_PAIR, a), "k"),
            "B": (Relation(_PAIR, b), "k"),
        }
        plans = [
            Join(Base("A"), Base("B"), on=(("k", "k"),)),
            Join(Base("A"), Base("B"), on=(("v", "v"),), ops=("<=",)),
        ]
        expected, _ = _run(1, "hash", "pulse", stored, plans)
        for backend in ("pulse", "lattice"):
            got, _ = _run(4, "hash", backend, stored, plans)
            assert got == expected, backend


class TestDeterminism:
    def test_parallel_run_is_bit_identical_to_serial(self):
        a = [(i % 9, i % 6) for i in range(30)]
        b = [(i % 9, i % 4) for i in range(20)]
        stored = {
            "A": (Relation(_PAIR, a), "k"),
            "B": (Relation(_PAIR, b), "k"),
        }
        plans = [
            Join(Base("A"), Base("B"), on=(("k", "k"),)),
            Join(Base("A"), Base("B"), on=(("v", "v"),)),
        ]

        def traced(parallel):
            tracer = obs.start(obs.Tracer())
            try:
                results, report = _run(
                    4, "hash", None, stored, plans, parallel=parallel,
                )
            finally:
                obs.stop()
            return results, report, [
                root.structure() for root in tracer.roots
            ]

        serial_results, serial_report, serial_trace = traced(False)
        parallel_results, parallel_report, parallel_trace = traced(True)
        assert parallel_results == serial_results
        assert [
            (s.label, s.device, s.start, s.end) for s in
            parallel_report.steps
        ] == [
            (s.label, s.device, s.start, s.end) for s in
            serial_report.steps
        ]
        assert parallel_trace == serial_trace

    def test_repeated_sharded_queries_stay_identical(self):
        stored = {
            "A": (Relation(_PAIR, [(i % 5, i % 7) for i in range(15)]),
                  "k"),
            "B": (Relation(_PAIR, [(i % 5, i % 3) for i in range(10)]),
                  "k"),
        }
        plans = [Join(Base("A"), Base("B"), on=(("k", "k"),))]
        pool = EnginePool()
        session = pool.session("rep", shards=3)
        for name, (relation, key) in stored.items():
            session.store(name, relation, key=key)
        first, first_report = session.run_many(plans)
        for _ in range(3):
            again, report = session.run_many(plans)
            assert again == first
            assert report.makespan == first_report.makespan


class TestSpanIdentity:
    def test_per_shard_run_spans_match_a_standalone_machine(self):
        """Each shard's ``machine.run`` subtree is bit-identical to a
        fresh unsharded session run on that shard's piece alone."""
        a = Relation(_PAIR, [(i % 10, i % 6) for i in range(40)])
        b = Relation(_PAIR, [(i % 10, i % 4) for i in range(28)])
        plans = [Join(Base("A"), Base("B"), on=(("k", "k"),))]

        pool = EnginePool()
        cluster = pool.session("spans", shards=2)
        cluster.store("A", a, key="k")
        cluster.store("B", b, key="k")

        tracer = obs.start(obs.Tracer())
        try:
            cluster.run_many(plans)
        finally:
            obs.stop()
        shard_runs = tracer.find("machine.run")
        assert len(shard_runs) == 2

        sharded = cluster.sharded_catalog
        for index in range(2):
            solo_pool = EnginePool()
            solo = solo_pool.session("solo")
            solo.store("A", sharded.shards[index].relation("A"))
            solo.store("B", sharded.shards[index].relation("B"))
            solo_tracer = obs.start(obs.Tracer())
            try:
                solo.run_many(plans)
            finally:
                obs.stop()
            (solo_run,) = solo_tracer.find("machine.run")
            assert shard_runs[index].structure() == solo_run.structure()
