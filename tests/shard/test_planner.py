"""The shard planner: locality proofs and exchange strategy choice."""

from __future__ import annotations

import pytest

from repro.machine.device import SystolicDevice
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    Project,
    Select,
    Union,
)
from repro.relational import Domain, Relation, Schema
from repro.shard import (
    BROADCAST,
    PARTITIONED,
    REPARTITION,
    REPLICATED,
    SCATTERED,
    ShardPlanner,
    ShardedCatalog,
)

_DOMAIN = Domain("shard-plan", values=range(60))
_SCHEMA = Schema.of(("k", _DOMAIN), ("v", _DOMAIN))


def _catalog(shards=4) -> ShardedCatalog:
    cat = ShardedCatalog(shards=shards)
    cat.store("R", Relation(
        _SCHEMA, [(i % 20, i % 7) for i in range(40)]), key="k")
    cat.store("S", Relation(
        _SCHEMA, [(i % 20, i % 5) for i in range(30)]), key="k")
    cat.store("T", Relation(
        _SCHEMA, [(i % 7, i % 20) for i in range(30)]), key="v")
    cat.store("D", Relation(_SCHEMA, [(1, 1), (2, 2)]), replicate=True)
    return cat


def _planner(cat=None) -> ShardPlanner:
    cat = cat or _catalog()
    devices = [
        SystolicDevice("cmp0", "comparison"),
        SystolicDevice("join0", "join"),
        SystolicDevice("div0", "division"),
    ]
    return ShardPlanner(cat, devices=devices)


class TestLocalOperators:
    def test_co_partitioned_equi_join_is_exchange_free(self):
        plan = _planner().lower(
            Join(Base("R"), Base("S"), on=(("k", "k"),))
        )
        assert plan.exchanges == []
        assert plan.local_joins == 1
        assert plan.distributions[0].kind == PARTITIONED
        assert plan.distributions[0].key == 0

    def test_replicated_side_join_is_exchange_free(self):
        plan = _planner().lower(
            Join(Base("R"), Base("D"), on=(("v", "v"),))
        )
        assert plan.exchanges == []
        assert plan.local_joins == 1

    def test_select_dedup_project_union_stay_local(self):
        plan = _planner().lower(
            Union(
                Project(Dedup(Select(Base("R"), column="v", op="<",
                                     value=5)), ("k",)),
                Project(Base("S"), ("k",)),
            )
        )
        assert plan.exchanges == []

    def test_project_keeps_the_partition_key_position(self):
        planner = _planner()
        plan = planner.lower(Project(Base("R"), ("v", "k")))
        dist = plan.distributions[0]
        assert dist.kind == PARTITIONED
        assert dist.key == 1  # "k" moved to position 1

    def test_project_dropping_the_key_scatters(self):
        plan = _planner().lower(Project(Base("R"), ("v",)))
        assert plan.distributions[0].kind == SCATTERED
        assert plan.exchanges == []

    def test_co_partitioned_intersection_is_local(self):
        for op in (Intersect, Difference):
            plan = _planner().lower(op(Base("R"), Base("S")))
            assert plan.exchanges == []

    def test_intersect_against_replicated_right_is_local(self):
        plan = _planner().lower(Intersect(Base("R"), Base("D")))
        assert plan.exchanges == []


class TestExchanges:
    def test_mismatched_keys_repartition(self):
        plan = _planner().lower(Intersect(Base("R"), Base("T")))
        assert [e.kind for e in plan.exchanges] == [REPARTITION]
        assert plan.exchanges[0].key == 0

    def test_difference_with_replicated_left_still_exchanges(self):
        """A − Bᵢ is NOT distributive: shard i lacks B's other pieces."""
        plan = _planner().lower(Difference(Base("D"), Base("R")))
        assert plan.exchanges

    def test_theta_join_broadcasts(self):
        plan = _planner().lower(
            Join(Base("R"), Base("S"), on=(("v", "v"),), ops=("<=",))
        )
        assert [e.kind for e in plan.exchanges] == [BROADCAST]
        assert plan.broadcasts == 1

    def test_non_key_equi_join_repartitions_both_sides(self):
        plan = _planner().lower(
            Join(Base("R"), Base("S"), on=(("v", "v"),))
        )
        assert [e.kind for e in plan.exchanges] == [
            REPARTITION, REPARTITION,
        ]
        assert plan.local_joins == 1  # local after the shuffle
        assert plan.distributions[0].kind == PARTITIONED

    def test_cross_position_key_match_counts_as_co_partitioned(self):
        """R is partitioned on k, T on v; joining R.k to T.v already
        co-locates matches (equal values hash alike), so no exchange."""
        plan = _planner().lower(
            Join(Base("R"), Base("T"), on=(("k", "v"),))
        )
        assert plan.exchanges == []
        assert plan.local_joins == 1

    def test_repartition_skips_an_already_aligned_side(self):
        """R.k is already the partition key; joining it to S.v (not
        S's key) only moves S."""
        plan = _planner().lower(
            Join(Base("R"), Base("S"), on=(("k", "v"),))
        )
        assert [e.kind for e in plan.exchanges] == [REPARTITION]

    def test_divide_broadcasts_a_partitioned_divisor(self):
        plan = _planner().lower(
            Divide(Base("R"), Project(Base("S"), ("v",)),
                   a_value="v", a_group="k", b_value="v")
        )
        assert [e.kind for e in plan.exchanges] == [BROADCAST]
        assert plan.distributions[0].kind == PARTITIONED

    def test_divide_with_replicated_divisor_is_local(self):
        plan = _planner().lower(
            Divide(Base("R"), Project(Base("D"), ("v",)),
                   a_value="v", a_group="k", b_value="v")
        )
        assert plan.exchanges == []

    def test_divide_repartitions_a_scattered_dividend_by_group(self):
        plan = _planner().lower(
            Divide(Base("T"), Project(Base("D"), ("v",)),
                   a_value="v", a_group="k", b_value="v")
        )
        assert [e.kind for e in plan.exchanges] == [REPARTITION]
        assert plan.exchanges[0].key == 0  # the group column

    def test_explain_mentions_every_exchange(self):
        plan = _planner().lower(Intersect(Base("R"), Base("T")))
        text = plan.explain()
        assert "repartition" in text
        assert "local joins" in text

    def test_exchange_costs_are_positive(self):
        plan = _planner().lower(
            Join(Base("R"), Base("S"), on=(("v", "v"),), ops=("<=",))
        )
        assert plan.exchange_seconds > 0
        for step in plan.exchanges:
            assert step.cost.nbytes > 0


class TestSharedSubplans:
    def test_shared_subtree_is_lowered_once(self):
        shared = Select(Base("T"), column="k", op="<", value=5)
        planner = _planner()
        plan = planner.lower(
            Intersect(Dedup(shared), Dedup(shared))
        )
        lowered = plan.roots[0]
        assert lowered.left.child is lowered.right.child
