"""Partitioners: determinism, disjoint-union coverage, boundaries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.relational import Domain, Relation, Schema
from repro.shard import HashPartitioner, RangePartitioner, STRATEGIES

SMALL = settings(max_examples=25, deadline=None)

_DOMAIN = Domain("part-prop", values=range(100))
_SCHEMA = Schema.of(("k", _DOMAIN), ("v", _DOMAIN))


def _relation(rows):
    return Relation(_SCHEMA, rows)


class TestHashPartitioner:
    def test_shard_of_is_deterministic_and_in_range(self):
        p = HashPartitioner()
        for shards in (1, 2, 3, 4, 7):
            for value in range(200):
                index = p.shard_of(value, shards)
                assert 0 <= index < shards
                assert index == HashPartitioner().shard_of(value, shards)

    def test_consecutive_keys_spread(self):
        """Fibonacci mixing must not stripe dictionary-encoded keys
        onto one shard."""
        p = HashPartitioner()
        buckets = [0] * 4
        for value in range(1000):
            buckets[p.shard_of(value, 4)] += 1
        assert min(buckets) > 150  # near-uniform, not degenerate

    def test_fingerprints_agree(self):
        assert HashPartitioner().fingerprint() == (
            HashPartitioner().fingerprint()
        )
        assert HashPartitioner().fingerprint() != RangePartitioner(
            (5,)
        ).fingerprint()


class TestRangePartitioner:
    def test_documented_boundary_semantics(self):
        p = RangePartitioner((10, 20))
        assert p.shard_of(0, 3) == 0
        assert p.shard_of(10, 3) == 0   # values <= cuts[0] → shard 0
        assert p.shard_of(11, 3) == 1
        assert p.shard_of(20, 3) == 1
        assert p.shard_of(21, 3) == 2
        assert p.shard_of(10_000, 3) == 2

    def test_cuts_must_strictly_increase(self):
        with pytest.raises(PlanError, match="strictly increasing"):
            RangePartitioner((3, 3))
        with pytest.raises(PlanError, match="strictly increasing"):
            RangePartitioner((5, 2))

    def test_from_values_is_deterministic_equi_depth(self):
        values = [7, 1, 9, 3, 5, 1, 7, 3]
        p = RangePartitioner.from_values(values, 2)
        assert p.cuts == RangePartitioner.from_values(values, 2).cuts
        left = [v for v in set(values) if p.shard_of(v, 2) == 0]
        right = [v for v in set(values) if p.shard_of(v, 2) == 1]
        assert max(left) < min(right)  # ranges stay contiguous
        assert abs(len(left) - len(right)) <= 1  # equi-depth

    def test_fewer_distinct_values_than_shards(self):
        p = RangePartitioner.from_values([4, 4, 4], 4)
        assert p.shard_of(4, 4) == 0  # degenerate but well-defined


class TestPartition:
    def test_pieces_reassemble_to_the_relation(self):
        rows = [(i % 10, i % 7) for i in range(40)]
        relation = _relation(rows)
        for partitioner in (HashPartitioner(), RangePartitioner((3, 6))):
            pieces = partitioner.partition(relation, "k", 3)
            assert len(pieces) == 3
            assert sum(len(p) for p in pieces) == len(relation)
            merged = Relation(
                _SCHEMA, [t for p in pieces for t in p.tuples]
            )
            assert merged == relation

    def test_same_key_lands_on_the_same_shard(self):
        relation = _relation([(5, i) for i in range(6)])
        pieces = HashPartitioner().partition(relation, 0, 4)
        assert sum(1 for p in pieces if len(p)) == 1

    def test_invalid_shard_count_raises(self):
        with pytest.raises(PlanError, match=">= 1"):
            HashPartitioner().partition(_relation([(1, 2)]), 0, 0)

    def test_strategy_registry(self):
        assert STRATEGIES == ("hash", "range")

    @SMALL
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 99), st.integers(0, 99)),
            min_size=0, max_size=30,
        ),
        shards=st.integers(1, 5),
    )
    def test_partition_is_a_disjoint_cover(self, rows, shards):
        relation = _relation(rows)
        pieces = HashPartitioner().partition(relation, 0, shards)
        seen = [t for p in pieces for t in p.tuples]
        assert sorted(seen) == sorted(relation.tuples)
        p = HashPartitioner()
        for index, piece in enumerate(pieces):
            for row in piece.tuples:
                assert p.shard_of(row[0], shards) == index
