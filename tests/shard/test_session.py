"""Session/pool/serving integration of the shard layer, and the
``REPRO_SHARD_COUNT`` / ``REPRO_SHARD_STRATEGY`` environment knobs."""

from __future__ import annotations

import pytest

from repro.config import env_choice, env_int
from repro.errors import ConfigError
from repro.machine import Base, EnginePool, Join
from repro.relational import Domain, Relation, Schema
from repro.serve import ServiceClient
from repro.shard import STRATEGIES, ShardedExecutionReport

from tests.serve.test_serve import _ServerHarness

_DOMAIN = Domain("shard-sess", values=range(20))
_SCHEMA = Schema.of(("k", _DOMAIN), ("v", _DOMAIN))


def _pair():
    a = Relation(_SCHEMA, [(i % 10, i % 6) for i in range(30)])
    b = Relation(_SCHEMA, [(i % 10, i % 4) for i in range(20)])
    return a, b


class TestEnvironmentKnobs:
    def test_defaults(self):
        assert env_int("REPRO_SHARD_COUNT", 1, minimum=1, environ={}) == 1
        assert env_choice(
            "REPRO_SHARD_STRATEGY", "hash", STRATEGIES, environ={}
        ) == "hash"

    def test_malformed_count_raises(self):
        with pytest.raises(ConfigError, match="REPRO_SHARD_COUNT"):
            env_int("REPRO_SHARD_COUNT", 1, minimum=1,
                    environ={"REPRO_SHARD_COUNT": "many"})
        with pytest.raises(ConfigError, match=">= 1"):
            env_int("REPRO_SHARD_COUNT", 1, minimum=1,
                    environ={"REPRO_SHARD_COUNT": "0"})

    def test_malformed_strategy_raises(self):
        with pytest.raises(ConfigError, match="REPRO_SHARD_STRATEGY"):
            env_choice("REPRO_SHARD_STRATEGY", "hash", STRATEGIES,
                       environ={"REPRO_SHARD_STRATEGY": "zigzag"})

    def test_strategy_is_case_insensitive(self):
        assert env_choice(
            "REPRO_SHARD_STRATEGY", "hash", STRATEGIES,
            environ={"REPRO_SHARD_STRATEGY": " Range "},
        ) == "range"

    def test_session_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_COUNT", "3")
        monkeypatch.setenv("REPRO_SHARD_STRATEGY", "range")
        session = EnginePool().session("env")
        assert session.shards == 3
        assert session.shard_strategy == "range"

    def test_bad_environment_surfaces_at_session_open(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_COUNT", "-2")
        with pytest.raises(ConfigError, match="REPRO_SHARD_COUNT"):
            EnginePool().session("env")


class TestSessionWiring:
    def test_one_shard_is_a_literal_pass_through(self):
        session = EnginePool().session("solo", shards=1)
        assert session._sharded is None
        assert session.sharded_catalog is None
        a, b = _pair()
        session.store("A", a, key="k")  # placement knobs are no-ops
        session.store("B", b)
        result, report = session.run(
            Join(Base("A"), Base("B"), on=(("k", "k"),))
        )
        assert not isinstance(report, ShardedExecutionReport)
        assert len(result)

    def test_sharded_session_reports_cluster_shape(self):
        pool = EnginePool()
        session = pool.session("multi", shards=4)
        a, b = _pair()
        session.store("A", a, key="k")
        session.store("B", b, key="k")
        result, report = session.run(
            Join(Base("A"), Base("B"), on=(("k", "k"),))
        )
        assert isinstance(report, ShardedExecutionReport)
        assert report.shards == 4
        assert len(report.shard_reports) == 4
        assert "shards=4" in repr(session)
        assert {s.label.split(":")[0] for s in report.steps} == {
            f"shard{i}" for i in range(4)
        }

    def test_sessions_share_the_tenant_sharded_catalog(self):
        pool = EnginePool()
        first = pool.session("twin", shards=2)
        second = pool.session("twin", shards=2)
        a, _ = _pair()
        first.store("A", a, key="k")
        assert "A" in second.sharded_catalog

    def test_sharded_compile_predicts_and_caches(self):
        pool = EnginePool()
        session = pool.session("compile", shards=2)
        a, b = _pair()
        session.store("A", a, key="k")
        session.store("B", b, key="k")
        plan = Join(Base("A"), Base("B"), on=(("k", "k"),))
        compiled = session.compile(plan)
        assert compiled.shards == 2
        assert compiled.predicted_makespan > 0
        assert compiled.plan.exchanges == []

    def test_sharded_query_counts_once_in_tenant_stats(self):
        pool = EnginePool()
        session = pool.session("acct", shards=3)
        a, b = _pair()
        session.store("A", a, key="k")
        session.store("B", b, key="k")
        session.run(Join(Base("A"), Base("B"), on=(("k", "k"),)))
        assert pool.tenant_stats() == {"acct": 1}


class TestShardedServing:
    def test_sharded_server_round_trip_matches_unsharded(self):
        a, b = _pair()
        query = "join(A, B, k == k)"

        def serve_and_query(**server_kwargs):
            with _ServerHarness(**server_kwargs) as harness:
                host, port = harness.address
                with ServiceClient(host, port, tenant="acme") as db:
                    db.store("A", a)
                    db.store("B", b)
                    reply = db.query(query)
                    return sorted(
                        tuple(r) for r in reply["relation"]["rows"]
                    )

        assert serve_and_query(shards=4) == serve_and_query()

    def test_server_store_accepts_placement_fields(self):
        a, b = _pair()
        with _ServerHarness(shards=2) as harness:
            host, port = harness.address
            with ServiceClient(host, port, tenant="acme") as db:
                db.store("A", a, key="k")
                db.store("B", b, replicate=True)
                reply = db.query("join(A, B, k == k)")
                assert reply["ok"]
                assert reply["rows"] > 0
