"""The sharded catalog: placement records, fingerprints, validation."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.relational import Domain, Relation, Schema
from repro.shard import (
    PARTITIONED,
    REPLICATED,
    RangePartitioner,
    ShardedCatalog,
)

_DOMAIN = Domain("shard-cat", values=range(50))
_SCHEMA = Schema.of(("k", _DOMAIN), ("v", _DOMAIN))


def _relation(rows):
    return Relation(_SCHEMA, rows)


class TestPlacement:
    def test_partitioned_store_splits_by_key(self):
        cat = ShardedCatalog(shards=3)
        cat.store("R", _relation([(i, i) for i in range(30)]), key="k")
        placement = cat.placement("R")
        assert placement.kind == PARTITIONED
        assert placement.key == 0
        total = sum(
            len(shard.relation("R")) for shard in cat.shards
        )
        assert total == 30
        assert cat.cardinalities()["R"] == 30

    def test_replicated_store_copies_everywhere(self):
        cat = ShardedCatalog(shards=3)
        relation = _relation([(1, 2), (3, 4)])
        cat.store("D", relation, replicate=True)
        assert cat.placement("D").kind == REPLICATED
        for shard in cat.shards:
            assert shard.relation("D") == relation

    def test_default_key_is_column_zero(self):
        cat = ShardedCatalog(shards=2)
        cat.store("R", _relation([(i, 0) for i in range(10)]))
        assert cat.placement("R").key == 0

    def test_unknown_relation_raises(self):
        cat = ShardedCatalog(shards=2)
        with pytest.raises(PlanError, match="no relation named"):
            cat.placement("ghost")

    def test_contains_and_names(self):
        cat = ShardedCatalog(shards=2)
        cat.store("R", _relation([(1, 1)]))
        assert "R" in cat and "S" not in cat
        assert cat.names() == ["R"]


class TestValidation:
    def test_bad_shard_count(self):
        with pytest.raises(PlanError, match=">= 1"):
            ShardedCatalog(shards=0)

    def test_bad_strategy(self):
        with pytest.raises(PlanError, match="unknown shard strategy"):
            ShardedCatalog(strategy="round-robin")


class TestRangeStrategy:
    def test_partitioner_derived_from_first_relation(self):
        cat = ShardedCatalog(shards=2, strategy="range")
        assert cat.partitioner is None
        cat.store("R", _relation([(i, 0) for i in range(20)]), key="k")
        derived = cat.partitioner
        assert isinstance(derived, RangePartitioner)
        # A second relation over the same key domain co-partitions.
        cat.store("S", _relation([(i, 1) for i in range(20)]), key="k")
        assert cat.placement("R").fp == cat.placement("S").fp


class TestFingerprint:
    def test_shard_count_changes_the_fingerprint(self):
        rows = [(i, i) for i in range(12)]
        two = ShardedCatalog(shards=2)
        four = ShardedCatalog(shards=4)
        for cat in (two, four):
            cat.store("R", _relation(rows))
        assert two.content_fingerprint() != four.content_fingerprint()

    def test_placement_changes_the_fingerprint(self):
        rows = [(i, i) for i in range(12)]
        part = ShardedCatalog(shards=2)
        part.store("R", _relation(rows))
        repl = ShardedCatalog(shards=2)
        repl.store("R", _relation(rows), replicate=True)
        assert part.content_fingerprint() != repl.content_fingerprint()

    def test_equal_layouts_agree(self):
        rows = [(i, i) for i in range(12)]
        a = ShardedCatalog(shards=2)
        b = ShardedCatalog(shards=2)
        for cat in (a, b):
            cat.store("R", _relation(rows))
        assert a.content_fingerprint() == b.content_fingerprint()
