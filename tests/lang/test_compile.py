"""Plan evaluation: software and systolic engines agree."""

import pytest

from repro.errors import PlanError
from repro.lang import execute_plan, parse, query
from repro.relational import algebra
from repro.workloads import division_example, join_pair, overlapping_pair


@pytest.fixture
def catalog():
    a, b = overlapping_pair(7, 6, 3, arity=2, seed=50)
    ja, jb = join_pair(6, 5, 3, seed=51)
    da, db, _ = division_example()
    return {"A": a, "B": b, "JA": ja, "JB": jb, "DA": da, "DB": db}


QUERIES = [
    "intersect(A, B)",
    "difference(A, B)",
    "union(A, B)",
    "dedup(A)",
    "project(A, c0)",
    "project(A, #1, #0)",
    "join(JA, JB, key == key)",
    "join(JA, JB, key <= key)",
    "project(join(JA, JB, key == key), key, a0)",
    "divide(DA, DB, group = A1, value = A2, by = B1)",
    "select(A, c0 >= 0)",
    "intersect(union(A, B), A)",
    "difference(A, intersect(A, B))",
]


class TestEngineAgreement:
    @pytest.mark.parametrize("source", QUERIES)
    def test_software_vs_systolic(self, catalog, source):
        software = query(source, catalog, engine="software")
        systolic = query(source, catalog, engine="systolic")
        assert software == systolic, source


class TestAgainstDirectAlgebra:
    def test_intersect(self, catalog):
        assert query("intersect(A, B)", catalog) == algebra.intersection(
            catalog["A"], catalog["B"]
        )

    def test_nested(self, catalog):
        result = query("difference(A, intersect(A, B))", catalog)
        expected = algebra.difference(
            catalog["A"], algebra.intersection(catalog["A"], catalog["B"])
        )
        assert result == expected


class TestErrors:
    def test_missing_relation(self, catalog):
        with pytest.raises(PlanError, match="no relation named"):
            query("intersect(A, GHOST)", catalog)

    def test_unknown_engine(self, catalog):
        with pytest.raises(PlanError, match="unknown engine"):
            execute_plan(parse("dedup(A)"), catalog, engine="quantum")


class TestMachineParity:
    def test_parsed_plan_runs_on_the_machine(self, catalog):
        from repro.machine import SystolicDatabaseMachine

        machine = SystolicDatabaseMachine()
        for name, relation in catalog.items():
            machine.store(name, relation)
        plan = parse("project(join(JA, JB, key == key), key, a0)")
        machine_result, _ = machine.run(plan)
        assert machine_result == execute_plan(plan, catalog, "software")
