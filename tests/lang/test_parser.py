"""Parser: expression text → plan AST."""

import pytest

from repro.errors import ParseError
from repro.lang import parse
from repro.machine import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    Project,
    Select,
    Union,
)


class TestBasicForms:
    def test_bare_name_is_base(self):
        plan = parse("EMPLOYEES")
        assert isinstance(plan, Base)
        assert plan.name == "EMPLOYEES"

    def test_intersect(self):
        plan = parse("intersect(A, B)")
        assert isinstance(plan, Intersect)
        assert plan.left == Base("A")
        assert plan.right == Base("B")

    def test_difference_union_dedup(self):
        assert isinstance(parse("difference(A, B)"), Difference)
        assert isinstance(parse("union(A, B)"), Union)
        assert isinstance(parse("dedup(A)"), Dedup)

    def test_nesting(self):
        plan = parse("intersect(union(A, B), difference(C, D))")
        assert isinstance(plan, Intersect)
        assert isinstance(plan.left, Union)
        assert isinstance(plan.right, Difference)


class TestProject:
    def test_named_columns(self):
        plan = parse("project(A, name, salary)")
        assert isinstance(plan, Project)
        assert plan.columns == ("name", "salary")

    def test_positional_columns(self):
        assert parse("project(A, #0, #2)").columns == (0, 2)

    def test_requires_columns(self):
        with pytest.raises(ParseError, match="at least one column"):
            parse("project(A)")


class TestJoin:
    def test_equi_join(self):
        plan = parse("join(A, B, dept == dept)")
        assert isinstance(plan, Join)
        assert plan.on == (("dept", "dept"),)
        assert plan.ops is None  # pure equality

    def test_multi_column(self):
        plan = parse("join(A, B, x == x, y == y)")
        assert plan.on == (("x", "x"), ("y", "y"))

    def test_theta_join(self):
        plan = parse("join(A, B, qty < limit)")
        assert plan.ops == ("<",)

    def test_mixed_ops(self):
        plan = parse("join(A, B, k == k, v >= w)")
        assert plan.ops == ("==", ">=")

    def test_positional_join_columns(self):
        plan = parse("join(A, B, #0 == #1)")
        assert plan.on == ((0, 1),)

    def test_requires_condition(self):
        with pytest.raises(ParseError, match="condition"):
            parse("join(A, B)")


class TestSelectAndDivide:
    def test_select(self):
        plan = parse("select(A, salary >= 50000)")
        assert isinstance(plan, Select)
        assert (plan.column, plan.op, plan.value) == ("salary", ">=", 50000)

    def test_divide_defaults(self):
        plan = parse("divide(A, B)")
        assert isinstance(plan, Divide)
        assert plan.a_value == 1
        assert plan.a_group is None
        assert plan.b_value == 0

    def test_divide_keywords(self):
        plan = parse("divide(A, B, group = student, value = course, by = cid)")
        assert plan.a_group == "student"
        assert plan.a_value == "course"
        assert plan.b_value == "cid"

    def test_divide_unknown_keyword(self):
        with pytest.raises(ParseError, match="group/value/by"):
            parse("divide(A, B, bogus = x)")


class TestErrors:
    def test_unknown_function(self):
        with pytest.raises(ParseError, match="unknown function"):
            parse("teleport(A, B)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="expected EOF"):
            parse("intersect(A, B) extra")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse("intersect(A, B")

    def test_missing_comma(self):
        with pytest.raises(ParseError):
            parse("intersect(A B)")

    def test_error_mentions_position(self):
        with pytest.raises(ParseError, match="position"):
            parse("intersect(A,)")
