"""Tokenizer for the expression language."""

import pytest

from repro.errors import ParseError
from repro.lang import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokenizer:
    def test_simple_call(self):
        assert kinds("intersect(A, B)") == [
            "NAME", "LPAREN", "NAME", "COMMA", "NAME", "RPAREN", "EOF"
        ]

    def test_comparison_operators(self):
        assert texts("a == b != c <= d >= e < f > g") == [
            "a", "==", "b", "!=", "c", "<=", "d", ">=", "e", "<", "f", ">", "g"
        ]

    def test_longest_operator_wins(self):
        tokens = tokenize("x<=1")
        assert [t.text for t in tokens[:-1]] == ["x", "<=", "1"]

    def test_assign_vs_equality(self):
        assert [t.kind for t in tokenize("a = b == c")[:-1]] == [
            "NAME", "ASSIGN", "NAME", "OP", "NAME"
        ]

    def test_hash_column(self):
        assert kinds("#3")[:2] == ["HASH", "INT"]

    def test_integers(self):
        tokens = tokenize("select(A, x >= 50000)")
        assert tokens[-2].kind == "RPAREN"
        assert any(t.kind == "INT" and t.text == "50000" for t in tokens)

    def test_underscored_names(self):
        assert tokenize("my_rel_2")[0].text == "my_rel_2"

    def test_whitespace_insensitive(self):
        assert kinds(" intersect ( A , B ) ") == kinds("intersect(A,B)")

    def test_position_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_bad_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("intersect(A; B)")

    def test_empty_source(self):
        assert kinds("") == ["EOF"]
