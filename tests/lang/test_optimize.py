"""Plan rewrites: applied where legal, semantics always preserved."""

import pytest

from repro.lang import execute_plan, parse
from repro.lang.optimize import optimize, share_common_subplans
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Intersect,
    Join,
    Project,
    Select,
    Union,
    walk,
)
from repro.workloads import join_pair, overlapping_pair


@pytest.fixture
def catalog():
    a, b = overlapping_pair(8, 7, 3, arity=2, seed=300)
    return {"A": a, "B": b}


@pytest.fixture
def join_catalog():
    ja, jb = join_pair(10, 9, 5, seed=44)
    return {"JA": ja, "JB": jb}


def assert_equivalent(source: str, catalog) -> None:
    plan = parse(source)
    optimized = optimize(plan)
    assert execute_plan(plan, catalog, "software") == (
        execute_plan(optimized, catalog, "software")
    )


class TestRedundancyRules:
    def test_dedup_dedup(self):
        plan = optimize(Dedup(Dedup(Base("A"))))
        assert plan == Dedup(Base("A"))

    def test_dedup_over_project(self):
        plan = optimize(Dedup(Project(Base("A"), ("x",))))
        assert plan == Project(Base("A"), ("x",))

    def test_dedup_over_set_operator(self):
        plan = optimize(Dedup(Intersect(Base("A"), Base("B"))))
        assert plan == Intersect(Base("A"), Base("B"))

    def test_self_intersection(self):
        assert optimize(Intersect(Base("A"), Base("A"))) == Base("A")

    def test_self_union(self):
        assert optimize(Union(Base("A"), Base("A"))) == Base("A")

    def test_structural_not_just_identity(self):
        left = Dedup(Base("A"))
        right = Dedup(Base("A"))  # distinct objects, equal structure
        assert optimize(Union(left, right)) == Dedup(Base("A"))


class TestProjectionComposition:
    def test_composes_names(self):
        plan = optimize(
            Project(Project(Base("A"), ("x", "y", "z")), ("z", "x"))
        )
        assert plan == Project(Base("A"), ("z", "x"))

    def test_composes_outer_indices(self):
        plan = optimize(Project(Project(Base("A"), ("x", "y")), (1,)))
        assert plan == Project(Base("A"), ("y",))

    def test_bails_on_unresolvable(self):
        # Outer name not present in the inner list: leave untouched.
        original = Project(Project(Base("A"), (0, 1)), ("x",))
        assert optimize(original) == original


class TestSelectionPushdown:
    def test_through_intersection(self):
        plan = optimize(Select(Intersect(Base("A"), Base("B")), "c0", ">=", 3))
        assert plan == Intersect(
            Select(Base("A"), "c0", ">=", 3), Base("B")
        )

    def test_through_union_duplicates_the_select(self):
        plan = optimize(Select(Union(Base("A"), Base("B")), "c0", "<", 5))
        assert isinstance(plan, Union)
        assert isinstance(plan.left, Select)
        assert isinstance(plan.right, Select)

    def test_through_difference_filters_minuend_only(self):
        plan = optimize(Select(Difference(Base("A"), Base("B")), "c0", "==", 1))
        assert plan == Difference(
            Select(Base("A"), "c0", "==", 1), Base("B")
        )

    def test_through_dedup(self):
        plan = optimize(Select(Dedup(Base("A")), "c0", "!=", 0))
        assert plan == Dedup(Select(Base("A"), "c0", "!=", 0))

    def test_pushes_all_the_way_down(self):
        plan = optimize(
            Select(Dedup(Union(Base("A"), Base("B"))), "c0", ">", 2)
        )
        # select sank below both dedup and union, reaching the bases.
        selects = [n for n in walk(plan) if isinstance(n, Select)]
        assert len(selects) == 2
        assert all(isinstance(s.child, Base) for s in selects)


class TestJoinPushdown:
    """σ(A ⋈ B) sinks to whichever side owns the selected column."""

    def schemas(self, join_catalog):
        return {name: rel.schema for name, rel in join_catalog.items()}

    def test_pushes_to_the_left_side(self, join_catalog):
        plan = Select(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
            "a0", ">=", 2,
        )
        optimized = optimize(plan, schemas=self.schemas(join_catalog))
        # a0 is JA's second column → filter JA before the join.
        assert optimized == Join(
            Select(Base("JA"), column=1, op=">=", value=2),
            Base("JB"), on=(("key", "key"),),
        )

    def test_pushes_to_the_right_side_via_kept_columns(self, join_catalog):
        plan = Select(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
            "b0", "<", 7,
        )
        optimized = optimize(plan, schemas=self.schemas(join_catalog))
        # b0 sits after JA's columns in the join output; the equi-join
        # dropped JB's key, so output position maps back to JB position 1.
        assert optimized == Join(
            Base("JA"),
            Select(Base("JB"), column=1, op="<", value=7),
            on=(("key", "key"),),
        )

    def test_join_column_pushes_left(self, join_catalog):
        plan = Select(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
            "key", "==", 3,
        )
        optimized = optimize(plan, schemas=self.schemas(join_catalog))
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select)

    def test_theta_join_keeps_b_join_column(self, join_catalog):
        # A θ-join on "<" keeps JB's key column in the output, shifting
        # the kept-column mapping relative to the equi-join case.
        plan = Select(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),),
                 ops=("<",)),
            "b0", ">", 0,
        )
        optimized = optimize(plan, schemas=self.schemas(join_catalog))
        assert isinstance(optimized, Join)
        assert optimized.right == Select(
            Base("JB"), column=1, op=">", value=0
        )

    def test_without_schemas_nothing_happens(self, join_catalog):
        plan = Select(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
            "a0", ">=", 2,
        )
        assert optimize(plan) == plan

    def test_unknown_column_left_for_execution(self, join_catalog):
        plan = Select(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
            "nope", ">=", 2,
        )
        assert optimize(plan, schemas=self.schemas(join_catalog)) == plan

    @pytest.mark.parametrize("column,op,value", [
        ("a0", ">=", 2),
        ("b0", "<", 7),
        ("key", "==", 3),
    ])
    def test_semantics_preserved(self, join_catalog, column, op, value):
        plan = Select(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
            column, op, value,
        )
        optimized = optimize(plan, schemas=self.schemas(join_catalog))
        assert optimized != plan  # the rule actually fired
        assert execute_plan(plan, join_catalog, "software",
                            optimize=False) == (
            execute_plan(optimized, join_catalog, "software",
                         optimize=False)
        )

    def test_theta_semantics_preserved(self, join_catalog):
        plan = Select(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),),
                 ops=("<",)),
            "b0", ">", 0,
        )
        optimized = optimize(plan, schemas=self.schemas(join_catalog))
        assert execute_plan(plan, join_catalog, "software",
                            optimize=False) == (
            execute_plan(optimized, join_catalog, "software",
                         optimize=False)
        )


class TestDefaultOptimization:
    """execute_plan/query rewrite by default; optimize=False is verbatim."""

    SOURCES = [
        "dedup(dedup(A))",
        "select(union(A, B), c0 >= 1)",
        "difference(union(A, B), intersect(A, B))",
        "project(project(A, c0, c1), c1)",
    ]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("source", SOURCES)
    def test_default_equals_verbatim_on_random_catalogs(self, source, seed):
        a, b = overlapping_pair(9, 8, 4, arity=2, seed=seed)
        catalog = {"A": a, "B": b}
        plan = parse(source)
        assert execute_plan(plan, catalog, "software") == (
            execute_plan(plan, catalog, "software", optimize=False)
        )

    def test_query_optimizes_by_default(self, join_catalog):
        from repro.lang import query

        source = "select(join(JA, JB, key == key), a0 >= 2)"
        assert query(source, join_catalog, engine="software") == (
            query(source, join_catalog, engine="software", optimize=False)
        )

    def test_default_path_uses_catalog_schemas(self, join_catalog):
        # The join-pushdown rule needs schemas; execute_plan must supply
        # them from the catalog so it fires on the default path.
        from repro.lang.optimize import optimize as optimize_plan

        plan = parse("select(join(JA, JB, key == key), b0 < 7)")
        schemas = {n: r.schema for n, r in join_catalog.items()}
        rewritten = optimize_plan(plan, schemas=schemas)
        assert rewritten != plan
        assert execute_plan(plan, join_catalog, "software") == (
            execute_plan(rewritten, join_catalog, "software",
                         optimize=False)
        )


class TestSharing:
    def test_equal_subtrees_become_one_object(self):
        plan = Union(
            Intersect(Base("A"), Base("B")),
            Intersect(Base("A"), Base("B")),
        )
        shared = share_common_subplans(plan)
        # Self-union then collapses entirely under full optimize():
        assert shared.left is shared.right

    def test_sharing_counts_in_walk(self):
        plan = share_common_subplans(Union(
            Difference(Base("A"), Base("B")),
            Difference(Base("A"), Base("B")),
        ))
        labels = [n.describe() for n in walk(plan)]
        assert labels.count("difference") == 1


class TestSemanticPreservation:
    @pytest.mark.parametrize("source", [
        "dedup(dedup(A))",
        "dedup(project(A, c0))",
        "intersect(A, A)",
        "union(dedup(A), dedup(A))",
        "project(project(A, c0, c1), c1)",
        "select(intersect(A, B), c0 >= 0)",
        "select(union(A, B), c1 < 9999)",
        "select(difference(A, B), c0 != 3)",
        "select(dedup(union(A, B)), c0 > 1)",
        "difference(union(A, B), intersect(A, B))",
    ])
    def test_optimized_plan_gives_identical_answer(self, source, catalog):
        assert_equivalent(source, catalog)

    def test_systolic_engine_agrees_too(self, catalog):
        source = "select(dedup(union(A, B)), c0 >= 0)"
        plan = optimize(parse(source))
        assert execute_plan(plan, catalog, "systolic") == (
            execute_plan(parse(source), catalog, "software")
        )

    def test_machine_benefits_from_pushdown(self, catalog):
        # On a logic-per-track disk, the pushed-down selects fuse into
        # the reads: no CPU steps remain.
        from repro.machine import MachineDisk, SystolicDatabaseMachine

        machine = SystolicDatabaseMachine(
            disk=MachineDisk(logic_per_track=True)
        )
        for name, relation in catalog.items():
            machine.store(name, relation)
        plan = optimize(parse("select(union(A, B), c0 >= 0)"))
        result, report = machine.run(plan)
        assert result == execute_plan(plan, catalog, "software")
        assert all(step.device != "cpu" for step in report.steps)
