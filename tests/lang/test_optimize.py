"""Plan rewrites: applied where legal, semantics always preserved."""

import pytest

from repro.lang import execute_plan, parse
from repro.lang.optimize import optimize, share_common_subplans
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Intersect,
    Project,
    Select,
    Union,
    walk,
)
from repro.workloads import overlapping_pair


@pytest.fixture
def catalog():
    a, b = overlapping_pair(8, 7, 3, arity=2, seed=300)
    return {"A": a, "B": b}


def assert_equivalent(source: str, catalog) -> None:
    plan = parse(source)
    optimized = optimize(plan)
    assert execute_plan(plan, catalog, "software") == (
        execute_plan(optimized, catalog, "software")
    )


class TestRedundancyRules:
    def test_dedup_dedup(self):
        plan = optimize(Dedup(Dedup(Base("A"))))
        assert plan == Dedup(Base("A"))

    def test_dedup_over_project(self):
        plan = optimize(Dedup(Project(Base("A"), ("x",))))
        assert plan == Project(Base("A"), ("x",))

    def test_dedup_over_set_operator(self):
        plan = optimize(Dedup(Intersect(Base("A"), Base("B"))))
        assert plan == Intersect(Base("A"), Base("B"))

    def test_self_intersection(self):
        assert optimize(Intersect(Base("A"), Base("A"))) == Base("A")

    def test_self_union(self):
        assert optimize(Union(Base("A"), Base("A"))) == Base("A")

    def test_structural_not_just_identity(self):
        left = Dedup(Base("A"))
        right = Dedup(Base("A"))  # distinct objects, equal structure
        assert optimize(Union(left, right)) == Dedup(Base("A"))


class TestProjectionComposition:
    def test_composes_names(self):
        plan = optimize(
            Project(Project(Base("A"), ("x", "y", "z")), ("z", "x"))
        )
        assert plan == Project(Base("A"), ("z", "x"))

    def test_composes_outer_indices(self):
        plan = optimize(Project(Project(Base("A"), ("x", "y")), (1,)))
        assert plan == Project(Base("A"), ("y",))

    def test_bails_on_unresolvable(self):
        # Outer name not present in the inner list: leave untouched.
        original = Project(Project(Base("A"), (0, 1)), ("x",))
        assert optimize(original) == original


class TestSelectionPushdown:
    def test_through_intersection(self):
        plan = optimize(Select(Intersect(Base("A"), Base("B")), "c0", ">=", 3))
        assert plan == Intersect(
            Select(Base("A"), "c0", ">=", 3), Base("B")
        )

    def test_through_union_duplicates_the_select(self):
        plan = optimize(Select(Union(Base("A"), Base("B")), "c0", "<", 5))
        assert isinstance(plan, Union)
        assert isinstance(plan.left, Select)
        assert isinstance(plan.right, Select)

    def test_through_difference_filters_minuend_only(self):
        plan = optimize(Select(Difference(Base("A"), Base("B")), "c0", "==", 1))
        assert plan == Difference(
            Select(Base("A"), "c0", "==", 1), Base("B")
        )

    def test_through_dedup(self):
        plan = optimize(Select(Dedup(Base("A")), "c0", "!=", 0))
        assert plan == Dedup(Select(Base("A"), "c0", "!=", 0))

    def test_pushes_all_the_way_down(self):
        plan = optimize(
            Select(Dedup(Union(Base("A"), Base("B"))), "c0", ">", 2)
        )
        # select sank below both dedup and union, reaching the bases.
        selects = [n for n in walk(plan) if isinstance(n, Select)]
        assert len(selects) == 2
        assert all(isinstance(s.child, Base) for s in selects)


class TestSharing:
    def test_equal_subtrees_become_one_object(self):
        plan = Union(
            Intersect(Base("A"), Base("B")),
            Intersect(Base("A"), Base("B")),
        )
        shared = share_common_subplans(plan)
        # Self-union then collapses entirely under full optimize():
        assert shared.left is shared.right

    def test_sharing_counts_in_walk(self):
        plan = share_common_subplans(Union(
            Difference(Base("A"), Base("B")),
            Difference(Base("A"), Base("B")),
        ))
        labels = [n.describe() for n in walk(plan)]
        assert labels.count("difference") == 1


class TestSemanticPreservation:
    @pytest.mark.parametrize("source", [
        "dedup(dedup(A))",
        "dedup(project(A, c0))",
        "intersect(A, A)",
        "union(dedup(A), dedup(A))",
        "project(project(A, c0, c1), c1)",
        "select(intersect(A, B), c0 >= 0)",
        "select(union(A, B), c1 < 9999)",
        "select(difference(A, B), c0 != 3)",
        "select(dedup(union(A, B)), c0 > 1)",
        "difference(union(A, B), intersect(A, B))",
    ])
    def test_optimized_plan_gives_identical_answer(self, source, catalog):
        assert_equivalent(source, catalog)

    def test_systolic_engine_agrees_too(self, catalog):
        source = "select(dedup(union(A, B)), c0 >= 0)"
        plan = optimize(parse(source))
        assert execute_plan(plan, catalog, "systolic") == (
            execute_plan(parse(source), catalog, "software")
        )

    def test_machine_benefits_from_pushdown(self, catalog):
        # On a logic-per-track disk, the pushed-down selects fuse into
        # the reads: no CPU steps remain.
        from repro.machine import MachineDisk, SystolicDatabaseMachine

        machine = SystolicDatabaseMachine(
            disk=MachineDisk(logic_per_track=True)
        )
        for name, relation in catalog.items():
            machine.store(name, relation)
        plan = optimize(parse("select(union(A, B), c0 >= 0)"))
        result, report = machine.run(plan)
        assert result == execute_plan(plan, catalog, "software")
        assert all(step.device != "cpu" for step in report.steps)
