"""Store-backed execution: planner pruning, differential correctness.

The contract under test: a machine whose disk is backed by the
columnar store must produce **bit-identical results** to a machine
holding the same relation in memory, while reading strictly fewer
chunks for selective predicates — on the lattice and bitplane engines
alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlanError
from repro.machine import (
    Base,
    EnginePool,
    Join,
    Project,
    Select,
    SystolicDatabaseMachine,
)
from repro.obs import metrics
from repro.perf.cost import ScanCost
from repro.relational.domain import IntegerDomain
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.store import RelationStore

_INT = IntegerDomain("int")

N_ROWS = 3000
CHUNK_ROWS = 250


def _sp_schema() -> Schema:
    return Schema.of(("s", _INT), ("p", _INT), ("qty", _INT))


def _sp_rows(n: int = N_ROWS) -> list[tuple[int, int, int]]:
    rng = np.random.default_rng(7)
    s = rng.integers(0, 50, n)
    p = rng.integers(0, 80, n)
    qty = np.arange(n)  # keeps full rows distinct
    return [tuple(map(int, row)) for row in np.stack([s, p, qty], axis=1)]


@pytest.fixture(scope="module")
def sp_rows():
    return _sp_rows()


@pytest.fixture()
def stored(tmp_path, sp_rows):
    store = RelationStore(tmp_path / "relations")
    store.write(
        "SP", Relation(_sp_schema(), sp_rows),
        chunk_rows=CHUNK_ROWS, index_columns=("s", "p"),
    )
    return store


def _machine(backend=None) -> SystolicDatabaseMachine:
    return SystolicDatabaseMachine(backend=backend)


SELECT_PLANS = [
    ("eq", Select(Base("SP"), column="s", op="==", value=17)),
    ("lt", Select(Base("SP"), column="p", op="<", value=9)),
    ("ge", Select(Base("SP"), column="s", op=">=", value=44)),
]


class TestDifferential:
    @pytest.mark.parametrize("backend", [None, "lattice", "bitplane"])
    @pytest.mark.parametrize(
        "plan", [p for _, p in SELECT_PLANS], ids=[k for k, _ in SELECT_PLANS]
    )
    def test_store_backed_select_matches_in_memory(
        self, stored, sp_rows, backend, plan
    ):
        reference = _machine(backend)
        reference.store("SP", Relation(_sp_schema(), sp_rows))
        expected, _ = reference.run(plan)

        disk_backed = _machine(backend)
        disk_backed.attach_store(stored)
        actual, report = disk_backed.run(plan)

        assert actual == expected
        assert sorted(actual.tuples) == sorted(expected.tuples)
        assert report.makespan > 0

    @pytest.mark.parametrize("backend", ["lattice", "bitplane"])
    def test_store_backed_join_matches_in_memory(self, stored, sp_rows, backend):
        supplier_rows = [(i, i % 5) for i in range(50)]
        s_schema = Schema.of(("s", _INT), ("city", _INT))
        plan = Project(
            Join(
                Select(Base("SP"), column="s", op="<", value=6),
                Base("S"),
                on=((0, 0),),
            ),
            (0, 1, 3),
        )

        reference = _machine(backend)
        reference.store("SP", Relation(_sp_schema(), sp_rows))
        reference.store("S", Relation(s_schema, supplier_rows))
        expected, _ = reference.run(plan)

        disk_backed = _machine(backend)
        disk_backed.attach_store(stored)
        disk_backed.store("S", Relation(s_schema, supplier_rows))
        actual, _ = disk_backed.run(plan)

        assert actual == expected
        assert len(expected) > 0

    def test_selective_query_records_pruning(self, stored):
        machine = _machine()
        machine.attach_store(stored)
        metrics.enable()
        try:
            machine.run(SELECT_PLANS[0][1])
            assert metrics.counter("store.chunks_pruned") > 0
            assert metrics.counter("store.chunks_read") > 0
        finally:
            metrics.disable()
            metrics.reset()


class TestPlanner:
    def test_fused_select_prunes_chunks(self, stored):
        machine = _machine()
        machine.attach_store(stored)
        plan = Select(Base("SP"), column="s", op="==", value=17)
        physical = machine.compile(plan)
        scans = [op.scan for op in physical.ops if op.scan is not None]
        assert len(scans) == 1
        scan = scans[0]
        assert isinstance(scan, ScanCost)
        assert 0 < scan.chunks_read < scan.chunks_total
        assert scan.chunks_pruned > 0
        assert scan.rows_scanned < N_ROWS
        assert "pruned" in physical.explain()

    def test_full_scan_reads_every_chunk(self, stored):
        machine = _machine()
        machine.attach_store(stored)
        physical = machine.compile(Base("SP"))
        scans = [op.scan for op in physical.ops if op.scan is not None]
        assert len(scans) == 1
        assert scans[0].chunks_read == scans[0].chunks_total
        assert scans[0].chunks_pruned == 0

    def test_pruned_scan_is_estimated_cheaper(self, stored):
        machine = _machine()
        machine.attach_store(stored)
        full = machine.compile(Base("SP"))
        pruned = machine.compile(
            Select(Base("SP"), column="s", op="==", value=17)
        )

        def scan_of(physical):
            (op,) = [o for o in physical.ops if o.scan is not None]
            return op.scan, op.est_end - op.est_start

        full_scan, full_seconds = scan_of(full)
        pruned_scan, pruned_seconds = scan_of(pruned)
        assert pruned_scan.nbytes < full_scan.nbytes
        assert pruned_scan.rows_scanned < full_scan.rows_scanned
        # Small scans can both sit on the disk model's latency floor,
        # so billed time is monotone but not necessarily strict.
        assert pruned_seconds <= full_seconds

    def test_in_memory_relation_shadows_the_store(self, stored, sp_rows):
        """A store()d relation wins over a stored one of the same name,
        and its scan carries no chunk accounting."""
        tiny = Relation(_sp_schema(), sp_rows[:10])
        machine = _machine()
        machine.attach_store(stored)
        machine.store("SP", tiny)
        result, _ = machine.run(Base("SP"))
        assert sorted(result.tuples) == sorted(tiny.tuples)
        physical = machine.compile(Base("SP"))
        assert all(op.scan is None for op in physical.ops)


class TestCatalog:
    def test_persist_round_trips_through_the_pool(self, tmp_path, sp_rows):
        pool = EnginePool()
        catalog = pool.catalog("acme")
        catalog.attach_store(RelationStore(tmp_path / "acme"))
        catalog.persist(
            "SP", Relation(_sp_schema(), sp_rows[:200]), chunk_rows=32
        )
        plan = Select(Base("SP"), column="s", op="==", value=17)
        results, report = pool.execute(catalog, plan)
        brute = sorted(t for t in sp_rows[:200] if t[0] == 17)
        assert sorted(results[0].tuples) == brute
        assert report.makespan > 0

    def test_persist_without_store_raises(self, sp_rows):
        catalog = EnginePool().catalog("acme")
        with pytest.raises(PlanError, match="no persistent store"):
            catalog.persist("SP", Relation(_sp_schema(), sp_rows[:5]))

    def test_fingerprint_changes_when_store_contents_change(
        self, tmp_path, sp_rows
    ):
        pool = EnginePool()
        catalog = pool.catalog("acme")
        store = RelationStore(tmp_path / "acme")
        catalog.attach_store(store)
        catalog.persist("SP", Relation(_sp_schema(), sp_rows[:50]))
        before = catalog.content_fingerprint()
        store.write("SP", Relation(_sp_schema(), sp_rows[:60]))
        after = catalog.content_fingerprint()
        assert before != after

    def test_plan_cache_invalidates_on_rewrite(self, tmp_path, sp_rows):
        """Rewriting a stored relation changes its chunking, so cached
        physical plans (which bake in chunk pruning) must not be
        reused across the rewrite."""
        machine = _machine()
        store = RelationStore(tmp_path / "relations")
        store.write(
            "SP", Relation(_sp_schema(), sp_rows), chunk_rows=CHUNK_ROWS,
            index_columns=("s", "p"),
        )
        machine.attach_store(store)
        plan = Select(Base("SP"), column="s", op="==", value=17)
        first = machine.compile(plan)
        # Rewrite with one giant chunk: nothing left to prune.
        store.write("SP", Relation(_sp_schema(), sp_rows),
                    chunk_rows=N_ROWS)
        machine.attach_store(store)  # bumps the catalog version
        second = machine.compile(plan)
        (scan1,) = [o.scan for o in first.ops if o.scan is not None]
        (scan2,) = [o.scan for o in second.ops if o.scan is not None]
        assert scan1.chunks_total > 1
        assert scan2.chunks_total == 1
