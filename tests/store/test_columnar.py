"""The persistent columnar store: round trips, pruning, durability."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, StoreError
from repro.obs import metrics
from repro.relational.domain import Domain, IntegerDomain
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.store import (
    DEFAULT_CHUNK_ROWS,
    GridIndex,
    RelationStore,
    build_scales,
    cluster_order,
)

_INT = IntegerDomain("int")

SMALL = settings(max_examples=30, deadline=None)

#: Full signed-64-bit range, with the extremes always reachable.
int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
extreme_rows = st.lists(
    st.tuples(
        st.one_of(int64s, st.sampled_from([-(2**63), 2**63 - 1, 0])),
        int64s,
    ),
    min_size=0,
    max_size=40,
)


def _schema(arity: int) -> Schema:
    return Schema.of(*((f"c{i}", _INT) for i in range(arity)))


class TestRoundTrip:
    @SMALL
    @given(rows=extreme_rows, chunk_rows=st.integers(1, 7))
    def test_write_reopen_read_is_bit_identical(
        self, tmp_path_factory, rows, chunk_rows
    ):
        root = tmp_path_factory.mktemp("store")
        relation = Relation(_schema(2), rows)
        store = RelationStore(root)
        store.write("R", relation, chunk_rows=chunk_rows)
        # A *fresh* store object: nothing survives but the files.
        back = RelationStore(root).open("R").read().relation
        assert back == relation
        assert sorted(back.tuples) == sorted(relation.tuples)

    def test_empty_relation_round_trips(self, tmp_path):
        relation = Relation(_schema(3), ())
        store = RelationStore(tmp_path)
        handle = store.write("empty", relation)
        assert handle.rows == 0
        assert handle.n_chunks == 0
        scan = store.open("empty").read()
        assert scan.relation == relation
        assert scan.chunks_read == scan.chunks_total == 0

    def test_signed_extremes_survive(self, tmp_path):
        rows = [(-(2**63), 2**63 - 1), (0, -1)]
        store = RelationStore(tmp_path)
        store.write("edge", Relation(_schema(2), rows), chunk_rows=1)
        back = store.open("edge").read().relation
        assert sorted(back.tuples) == sorted(rows)

    def test_dictionary_domains_round_trip(self, tmp_path):
        city = Domain("city", ["basel", "pisa", "kyoto"], frozen=True)
        schema = Schema.of(("name", city), ("rank", _INT))
        relation = Relation.from_values(
            schema, [("pisa", 2), ("kyoto", 1)]
        )
        store = RelationStore(tmp_path)
        store.write("T", relation)
        back = RelationStore(tmp_path).open("T")
        assert sorted(back.read().relation.decoded()) == sorted(
            relation.decoded()
        )
        assert [d.name for d in back.schema.domains] == ["city", "int"]
        assert back.schema.column("name").domain.frozen

    def test_shared_domains_stay_shared_after_reload(self, tmp_path):
        shared = Domain("shared", ["x", "y"])
        schema = Schema.of(("a", shared), ("b", shared))
        store = RelationStore(tmp_path)
        store.write("S", Relation.from_values(schema, [("x", "y")]))
        back = RelationStore(tmp_path).open("S").schema
        assert back.column("a").domain is back.column("b").domain


class TestValidation:
    def test_out_of_range_element_raises(self, tmp_path):
        relation = Relation(_schema(1), [(2**63,)])
        with pytest.raises(StoreError, match="64-bit"):
            RelationStore(tmp_path).write("big", relation)

    def test_bad_names_raise(self, tmp_path):
        store = RelationStore(tmp_path)
        relation = Relation(_schema(1), [(1,)])
        for name in ("", "../up", "a/b", ".hidden"):
            with pytest.raises(StoreError, match="name"):
                store.write(name, relation)

    def test_non_json_domain_value_raises(self, tmp_path):
        weird = Domain("weird", [("tu", "ple")])
        schema = Schema.of(("w", weird))
        with pytest.raises(StoreError, match="JSON"):
            RelationStore(tmp_path).write(
                "W", Relation.from_values(schema, [(("tu", "ple"),)])
            )

    def test_missing_relation_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no stored relation"):
            RelationStore(tmp_path).open("ghost")

    def test_corrupt_manifest_raises(self, tmp_path):
        store = RelationStore(tmp_path)
        store.write("R", Relation(_schema(1), [(1,)]))
        (tmp_path / "R" / "manifest.json").write_text("{not json")
        with pytest.raises(StoreError, match="corrupt"):
            RelationStore(tmp_path).open("R")

    def test_store_needs_a_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        with pytest.raises(ConfigError, match="REPRO_STORE_DIR"):
            RelationStore()

    def test_env_var_names_the_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-root"))
        store = RelationStore()
        store.write("R", Relation(_schema(1), [(7,)]))
        assert (tmp_path / "env-root" / "R" / "manifest.json").is_file()


class TestCatalogue:
    def test_names_holds_drop(self, tmp_path):
        store = RelationStore(tmp_path)
        r = Relation(_schema(1), [(1,)])
        store.write("B", r)
        store.write("A", r)
        assert store.names() == ["A", "B"]
        assert store.holds("A") and not store.holds("Z")
        store.drop("A")
        assert store.names() == ["B"]
        store.drop("A")  # idempotent

    def test_fingerprint_tracks_rewrites(self, tmp_path):
        store = RelationStore(tmp_path)
        store.write("R", Relation(_schema(1), [(1,)]))
        before = store.fingerprint()
        store.write("R", Relation(_schema(1), [(2,)]))
        after = store.fingerprint()
        assert before != after
        assert [name for name, _ in after] == ["R"]
        # Same bytes again -> same digest (manifests are deterministic).
        store.write("R", Relation(_schema(1), [(2,)]))
        assert store.fingerprint() == after

    def test_default_chunk_rows_is_the_documented_knob(self):
        assert DEFAULT_CHUNK_ROWS == 65536


def _brute(rows: np.ndarray, position: int, op: str, value: int):
    import operator

    ops = {"==": operator.eq, "!=": operator.ne, "<": operator.lt,
           "<=": operator.le, ">": operator.gt, ">=": operator.ge}
    return sorted(
        tuple(row) for row in rows.tolist() if ops[op](row[position], value)
    )


class TestPruning:
    def _stored(self, tmp_path, n=4096, chunk_rows=256):
        rng = np.random.default_rng(11)
        rows = np.stack(
            [
                rng.integers(0, 64, n),
                rng.integers(0, 128, n),
                np.arange(n),
            ],
            axis=1,
        )
        store = RelationStore(tmp_path)
        store.write_array(
            "SP", rows, _schema(3), chunk_rows=chunk_rows,
            index_columns=("c0", "c1"),
        )
        return store, rows

    def test_selective_equality_reads_fewer_chunks(self, tmp_path):
        store, rows = self._stored(tmp_path)
        metrics.enable()
        try:
            scan = store.open("SP").read(("c0", "==", 17))
            assert scan.chunks_read < scan.chunks_total
            assert scan.chunks_pruned > 0
            assert metrics.counter("store.chunks_pruned") > 0
            assert metrics.counter("store.index_probes") == 1
            assert metrics.counter("store.bytes_read") == scan.nbytes
            assert sorted(scan.relation.tuples) == _brute(rows, 0, "==", 17)
        finally:
            metrics.disable()
            metrics.reset()

    def test_both_grid_axes_prune(self, tmp_path):
        """Morton clustering means the *second* indexed column prunes
        too, not just the primary sort key."""
        store, rows = self._stored(tmp_path)
        scan = store.open("SP").read(("c1", "<", 16))
        assert scan.chunks_read < scan.chunks_total
        assert sorted(scan.relation.tuples) == _brute(rows, 1, "<", 16)

    def test_zone_maps_answer_unindexed_columns(self, tmp_path):
        store, rows = self._stored(tmp_path)
        handle = store.open("SP")
        # c2 is not grid-indexed; an impossible predicate still prunes
        # every chunk via the per-chunk min/max stats.
        scan = handle.read(("c2", ">", int(rows[:, 2].max())))
        assert scan.chunks_read == 0
        assert len(scan.relation) == 0

    @SMALL
    @given(
        op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        column=st.integers(0, 2),
        value=st.integers(-4, 132),
    )
    def test_pruned_scan_equals_full_scan(
        self, tmp_path_factory, op, column, value
    ):
        """The pruning contract: chunk skipping never changes results."""
        root = tmp_path_factory.mktemp("prune")
        store, rows = self._stored(root, n=1024, chunk_rows=128)
        handle = store.open("SP")
        scan = handle.read((column, op, value))
        assert sorted(scan.relation.tuples) == _brute(rows, column, op, value)

    def test_unknown_operator_raises(self, tmp_path):
        store, _ = self._stored(tmp_path, n=64, chunk_rows=32)
        with pytest.raises(StoreError, match="operator"):
            store.open("SP").read(("c0", "~=", 3))


class TestGridIndex:
    def test_scales_are_balanced_quantiles(self):
        values = np.arange(1000)
        scales = build_scales(values, 4)
        assert len(scales) == 3
        assert scales == tuple(sorted(scales))

    def test_single_cell_axis_has_no_scales(self):
        assert build_scales(np.arange(10), 1) == ()

    def test_cluster_order_is_a_permutation(self):
        coords = np.array([[1, 0], [0, 1], [3, 3], [0, 0]])
        order = cluster_order(coords)
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_json_round_trip(self):
        index = GridIndex(
            columns=(0, 1),
            scales=((10, 20), (5,)),
            directory={(0, 0): (0,), (1, 1): (0, 1)},
        )
        back = GridIndex.from_json(
            json.loads(json.dumps(index.to_json()))
        )
        assert back.columns == index.columns
        assert back.scales == index.scales
        assert back.directory == index.directory

    def test_candidate_chunks_is_a_superset(self):
        index = GridIndex(
            columns=(0,),
            scales=((10,),),
            directory={(0,): (0,), (1,): (1, 2)},
        )
        assert index.candidate_chunks(0, "==", 5) == frozenset({0})
        assert index.candidate_chunks(0, ">", 10) == frozenset({1, 2})
        assert index.candidate_chunks(0, "<=", 10) == frozenset({0, 1, 2})
        assert index.candidate_chunks(0, "!=", 5) is None  # no pruning
        assert index.candidate_chunks(1, "==", 5) is None  # unindexed
