"""The load-bearing invariant, differentially: a run that recovers
from injected faults is bit-identical — results, timeline, span
structure — to the fault-free run, across both word backends and
shard counts 1–4 (docs/ROBUSTNESS.md)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import obs
from repro.faults import parse_faults
from repro.machine import Base, EnginePool, Join
from repro.relational import Domain, Relation, Schema

SMALL = settings(max_examples=5, deadline=None)

_DOMAIN = Domain("fault-diff", values=range(12))
_PAIR = Schema.of(("k", _DOMAIN), ("v", _DOMAIN))

rows = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)),
    min_size=1, max_size=12,
)

#: Transient chaos across every layer: device faults, disk-read
#: errors, shard crashes, and dropped exchanges.  No kills — the
#: baseline for bit-identity is the same (full) roster.
CHAOS = (
    "device:join0:1,device:comparison0:1,disk:*:1,"
    "shard:0:1,shard:2:1,exchange:*:2"
)


def _traced_run(backend, shards, stored, plans, spec=None):
    faults = parse_faults(spec, seed=11) if spec else None
    pool = EnginePool(backend=backend, faults=faults)
    session = pool.session("diff", shards=shards)
    for name, (relation, key) in stored.items():
        session.store(name, relation, key=key)
    tracer = obs.start(obs.Tracer())
    try:
        results, report = session.run_many(plans)
    finally:
        obs.stop()
    steps = [
        (s.label, s.device, s.start, s.end) for s in report.steps
    ]
    return results, steps, [root.structure() for root in tracer.roots], faults


class TestRecoveredRunsAreBitIdentical:
    @SMALL
    @given(a=rows, b=rows)
    def test_across_backends_and_shard_counts(self, a, b):
        stored = {
            "A": (Relation(_PAIR, a), "k"),
            "B": (Relation(_PAIR, b), "k"),
        }
        plans = [
            Join(Base("A"), Base("B"), on=(("k", "k"),)),   # co-partitioned
            Join(Base("A"), Base("B"), on=(("v", "v"),)),   # re-partition
        ]
        for backend in ("pulse", "lattice"):
            for shards in (1, 2, 3, 4):
                clean = _traced_run(backend, shards, stored, plans)
                chaos = _traced_run(
                    backend, shards, stored, plans, spec=CHAOS
                )
                where = (backend, shards)
                assert chaos[0] == clean[0], where    # results
                assert chaos[1] == clean[1], where    # timeline steps
                assert chaos[2] == clean[2], where    # span structures
                faults = chaos[3]
                assert faults.injected > 0, where
                assert faults.retries == faults.injected, where
                assert faults.quarantined() == [], where

    def test_exchange_drops_hit_repartition_joins(self):
        """The exchange rule actually fires: a join on the non-key
        column forces cross-shard redistribution, and every dropped
        send is re-sent to a bit-identical result."""
        a = [(i % 7, i % 5) for i in range(21)]
        b = [(i % 7, i % 3) for i in range(15)]
        stored = {
            "A": (Relation(_PAIR, a), "k"),
            "B": (Relation(_PAIR, b), "k"),
        }
        plans = [Join(Base("A"), Base("B"), on=(("v", "v"),))]
        clean = _traced_run(None, 3, stored, plans)
        chaos = _traced_run(None, 3, stored, plans, spec="exchange:*:2")
        assert chaos[:3] == clean[:3]
        assert chaos[3].snapshot()["injected"].get("exchange", 0) > 0

    def test_shard_crashes_recover_bit_identically(self):
        a = [(i % 9, i % 4) for i in range(27)]
        b = [(i % 9, i % 6) for i in range(18)]
        stored = {
            "A": (Relation(_PAIR, a), "k"),
            "B": (Relation(_PAIR, b), "k"),
        }
        plans = [Join(Base("A"), Base("B"), on=(("k", "k"),))]
        clean = _traced_run(None, 4, stored, plans)
        chaos = _traced_run(None, 4, stored, plans, spec="shard:1:2,shard:3:1")
        assert chaos[:3] == clean[:3]
        assert chaos[3].snapshot()["injected"] == {"shard": 3}
