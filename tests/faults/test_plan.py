"""FaultPlan: the spec grammar, deterministic injection, the ledger."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigError,
    DeviceFaultError,
    DiskFaultError,
    ExchangeFaultError,
    ShardFaultError,
)
from repro.faults import FaultPlan, FaultRule, parse_faults
from repro.faults.plan import ALWAYS


class TestGrammar:
    def test_every_kind_parses(self):
        plan = parse_faults(
            "device:join0:2,block:join0:1:3,shard:1:2,exchange:*,"
            "disk:R,slow:join0:0.5"
        )
        kinds = [rule.kind for rule in plan.rules]
        assert kinds == [
            "device", "block", "shard", "exchange", "disk", "slow",
        ]
        device, block, shard, exchange, disk, slow = plan.rules
        assert (device.target, device.count) == ("join0", 2)
        assert (block.target, block.block, block.count) == ("join0", 1, 3)
        assert (shard.target, shard.count) == ("1", 2)
        assert (exchange.target, exchange.count) == ("*", 1)
        assert (disk.target, disk.count) == ("R", 1)
        assert (slow.target, slow.seconds) == ("join0", 0.5)

    def test_kill_is_permanent(self):
        (rule,) = parse_faults("device:join1:kill").rules
        assert rule.count == ALWAYS
        assert rule.describe() == "device:join1:kill"

    def test_probability_rule(self):
        (rule,) = parse_faults("device:join0:p0.25").rules
        assert rule.probability == 0.25
        assert rule.describe() == "device:join0:p0.25"

    def test_describe_round_trips(self):
        spec = (
            "device:join0:3,block:join0:2:kill,shard:0,exchange:x,"
            "disk:*:4,slow:disk:0.01,device:comparison0:p0.5"
        )
        first = parse_faults(spec)
        again = parse_faults(
            ",".join(rule.describe() for rule in first.rules)
        )
        assert again.rules == first.rules

    @pytest.mark.parametrize("bad", [
        "",
        "device",
        "meteor:join0",
        "device::2",
        "shard:1:kill",           # only device faults can be permanent
        "exchange:*:kill",
        "device:join0:p1.5",      # probability out of range
        "device:join0:pxyz",
        "device:join0:-1",
        "device:join0:two",
        "device:join0:2:3",       # too many fields
        "block:join0",            # block needs an index
        "block:join0:x",
        "block:join0:-1:2",
        "slow:join0",             # slow needs seconds
        "slow:join0:fast",
        "slow:join0:-1",
    ])
    def test_bad_specs_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            parse_faults(bad)


class TestDeterministicInjection:
    def test_count_rule_fires_exactly_n_times_per_site(self):
        plan = parse_faults("device:join0:2")
        fired = [
            plan.device_fault("join0", "op0:join") is not None
            for _ in range(5)
        ]
        assert fired == [True, True, False, False, False]
        # A different op key is a different site with its own budget.
        assert plan.device_fault("join0", "op1:join") is not None
        # A different device never matches at all.
        assert plan.device_fault("comparison0", "op0:join") is None

    def test_fault_carries_the_device_name(self):
        plan = parse_faults("device:join0:1")
        fault = plan.device_fault("join0", "op0:join", scope="tenant")
        assert isinstance(fault, DeviceFaultError)
        assert fault.device == "join0"
        assert not fault.quarantined

    def test_probability_rule_is_seed_reproducible(self):
        def firing_sequence(seed):
            plan = parse_faults("device:join0:p0.5", seed=seed)
            return [
                plan.device_fault("join0", "op0") is not None
                for _ in range(32)
            ]

        assert firing_sequence(7) == firing_sequence(7)
        assert True in firing_sequence(7)
        assert False in firing_sequence(7)
        # Some seed pair must disagree, or the coin is not a coin.
        assert any(
            firing_sequence(0) != firing_sequence(seed)
            for seed in range(1, 5)
        )

    def test_block_rule_only_fires_when_the_block_exists(self):
        plan = parse_faults("block:join0:3:1")
        # The op decomposes into 2 blocks: block 3 never runs.
        assert plan.device_fault("join0", "op0", blocks=2) is None
        fault = plan.device_fault("join0", "op0", blocks=5)
        assert isinstance(fault, DeviceFaultError)
        assert "block 3" in str(fault)

    def test_disk_exchange_shard_and_wildcards(self):
        plan = parse_faults("disk:*,exchange:*,shard:2")
        assert isinstance(plan.disk_fault("R"), DiskFaultError)
        assert plan.disk_fault("R") is None          # budget spent
        assert isinstance(plan.disk_fault("S"), DiskFaultError)
        assert isinstance(
            plan.exchange_fault("__shard_x0"), ExchangeFaultError
        )
        assert isinstance(plan.shard_fault(2, "stage0"), ShardFaultError)
        assert plan.shard_fault(1, "stage0") is None

    def test_slowness_is_unconditional_and_per_device(self):
        plan = parse_faults("slow:join0:0.25")
        assert plan.slowness("join0") == 0.25
        assert plan.slowness("join0") == 0.25        # no budget to spend
        assert plan.slowness("comparison0") == 0.0


class TestLedger:
    def test_quarantine_is_idempotent_and_sorted(self):
        plan = parse_faults("device:join0:kill")
        assert plan.quarantine("join1")
        assert not plan.quarantine("join1")
        assert plan.quarantine("join0")
        assert plan.quarantined() == ["join0", "join1"]
        assert plan.is_quarantined("join0")
        assert not plan.is_quarantined("comparison0")

    def test_snapshot_counts_injections_by_kind(self):
        plan = parse_faults("device:join0:2,disk:R", seed=3)
        plan.device_fault("join0", "op0")
        plan.device_fault("join0", "op0")
        plan.disk_fault("R")
        plan.note_retry()
        plan.note_retry()
        snap = plan.snapshot()
        assert snap["injected"] == {"device": 2, "disk": 1}
        assert snap["retries"] == 2
        assert snap["seed"] == 3
        assert snap["rules"] == ["device:join0:2", "disk:R"]
        assert plan.injected == 3
        assert plan.retries == 2

    def test_summary_is_one_human_line(self):
        plan = parse_faults("device:join0:1")
        plan.device_fault("join0", "op0")
        plan.note_retry()
        plan.quarantine("join0")
        line = plan.summary()
        assert "1 injected" in line
        assert "1 retries" in line
        assert "join0" in line

    def test_repr_round_trips_the_rules(self):
        plan = parse_faults("device:join0:2,slow:disk:0.1", seed=5)
        assert "device:join0:2" in repr(plan)
        assert "seed=5" in repr(plan)

    def test_plan_accepts_explicit_rules(self):
        plan = FaultPlan([FaultRule(kind="disk", target="R")], seed=1)
        assert isinstance(plan.disk_fault("R"), DiskFaultError)
