"""Recovery through the machine and pool: bit-identity, quarantine,
graceful degradation, and deadlines."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import DeadlineError, DeviceFaultError
from repro.faults import parse_faults
from repro.machine import Base, EnginePool, Join, SystolicDatabaseMachine
from repro.machine.plan import (
    DEVICE_COMPARISON,
    DEVICE_DIVISION,
    DEVICE_JOIN,
)
from repro.workloads import join_pair

#: A roster with a spare join array — quarantine can degrade onto it.
REDUNDANT = (
    (DEVICE_COMPARISON, 1), (DEVICE_JOIN, 2), (DEVICE_DIVISION, 1),
)


def _machine(faults=None, devices=None):
    kwargs = {"faults": faults}
    if devices is not None:
        kwargs["devices"] = devices
    machine = SystolicDatabaseMachine(**kwargs)
    a, b = join_pair(30, 24, 8, seed=13)
    machine.store("A", a)
    machine.store("B", b)
    return machine


def _plans():
    return [Join(Base("A"), Base("B"), on=((0, 0),))]


def _traced_run(machine):
    tracer = obs.start(obs.Tracer())
    try:
        results, report = machine.run_many(_plans())
    finally:
        obs.stop()
    steps = [
        (s.label, s.device, s.start, s.end) for s in report.steps
    ]
    return results, steps, [root.structure() for root in tracer.roots]


class TestTransientRecovery:
    def test_device_and_disk_faults_recover_bit_identically(self):
        clean = _traced_run(_machine())
        faults = parse_faults("device:join0:2,disk:A:1", seed=5)
        faulted = _traced_run(_machine(faults=faults))
        assert faulted[0] == clean[0]       # results
        assert faulted[1] == clean[1]       # timeline steps
        assert faulted[2] == clean[2]       # span structures
        assert faults.injected == 3
        assert faults.retries == 3
        assert faults.quarantined() == []

    def test_block_fault_recovers(self):
        clean = _traced_run(_machine())
        faults = parse_faults("block:join0:0:1", seed=5)
        faulted = _traced_run(_machine(faults=faults))
        assert faulted == clean
        assert faults.injected == 1


class TestQuarantineAndReplan:
    def test_killed_device_degrades_onto_the_spare(self):
        clean_results, _, _ = _traced_run(_machine(devices=REDUNDANT))
        faults = parse_faults("device:join0:kill", seed=5)
        results, _, _ = _traced_run(
            _machine(faults=faults, devices=REDUNDANT)
        )
        assert results == clean_results
        assert faults.quarantined() == ["join0"]
        assert faults.injected > 0

    def test_killing_the_only_capable_device_fails_permanently(self):
        # The CPU only runs selections: with a single join array dead,
        # no healthy roster can compile the plan (docs/ROBUSTNESS.md).
        faults = parse_faults("device:join0:kill", seed=5)
        machine = _machine(faults=faults)
        with pytest.raises(DeviceFaultError) as caught:
            machine.run_many(_plans())
        assert caught.value.quarantined
        assert faults.quarantined() == ["join0"]


class TestPoolRecovery:
    def _pool(self, faults=None, **kwargs):
        pool = EnginePool(faults=faults, **kwargs)
        catalog = pool.catalog("acme")
        a, b = join_pair(30, 24, 8, seed=13)
        catalog.store("A", a)
        catalog.store("B", b)
        return pool, catalog

    def test_pool_recovers_transient_faults(self):
        pool, catalog = self._pool()
        (expected,), _ = pool.execute(catalog, _plans()[0])
        faults = parse_faults("device:join0:1,disk:B:1", seed=2)
        chaos_pool, chaos_catalog = self._pool(faults=faults)
        (result,), _ = chaos_pool.execute(chaos_catalog, _plans()[0])
        assert result == expected
        assert faults.injected == 2
        assert chaos_pool.stats()["faults"]["retries"] == 2

    def test_pool_replans_around_a_killed_device(self):
        pool, catalog = self._pool(devices=REDUNDANT)
        (expected,), _ = pool.execute(catalog, _plans()[0])
        faults = parse_faults("device:join0:kill", seed=2)
        chaos_pool, chaos_catalog = self._pool(
            faults=faults, devices=REDUNDANT
        )
        (result,), _ = chaos_pool.execute(chaos_catalog, _plans()[0])
        assert result == expected
        assert faults.quarantined() == ["join0"]
        # The degraded pool keeps serving: a second query replans
        # straight onto the healthy roster.
        (again,), _ = chaos_pool.execute(chaos_catalog, _plans()[0])
        assert again == expected


class TestDeadline:
    def test_hung_query_is_cancelled_and_the_slot_freed(self):
        faults = parse_faults("slow:join0:30", seed=0)
        pool = EnginePool(faults=faults, query_deadline=0.3)
        catalog = pool.catalog("acme")
        a, b = join_pair(30, 24, 8, seed=13)
        catalog.store("A", a)
        catalog.store("B", b)
        with pytest.raises(DeadlineError, match="deadline"):
            pool.execute(catalog, _plans()[0])
        # The admission slot came back: an immediate acquire succeeds.
        pool.gate.acquire(timeout=0.0)
        pool.gate.release()
        assert pool.stats()["query_deadline"] == 0.3

    def test_generous_deadline_leaves_queries_untouched(self):
        pool = EnginePool(query_deadline=30.0)
        catalog = pool.catalog("acme")
        a, b = join_pair(30, 24, 8, seed=13)
        catalog.store("A", a)
        catalog.store("B", b)
        (result,), _ = pool.execute(catalog, _plans()[0])
        reference = EnginePool()
        ref_catalog = reference.catalog("acme")
        ref_catalog.store("A", a)
        ref_catalog.store("B", b)
        (expected,), _ = reference.execute(ref_catalog, _plans()[0])
        assert result == expected

    def test_deadline_env_var_configures_the_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_DEADLINE", "2.5")
        assert EnginePool().query_deadline == 2.5
        monkeypatch.delenv("REPRO_QUERY_DEADLINE")
        assert EnginePool().query_deadline is None
