"""Recovery primitives: RetryPolicy, CancelToken, retry_call, deadlines."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    DeadlineError,
    DiskFaultError,
    FaultError,
    ReproError,
)
from repro.faults import (
    CancelToken,
    RetryPolicy,
    parse_faults,
    retry_call,
    run_with_deadline,
)


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_seconds=0.01, cap_seconds=0.05, multiplier=2.0, jitter=0.0,
        )
        assert policy.delay(1) == 0.01
        assert policy.delay(2) == 0.02
        assert policy.delay(3) == 0.04
        assert policy.delay(4) == 0.05   # capped
        assert policy.delay(10) == 0.05

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_seconds=0.01, jitter=0.5)
        first = policy.delay(1, "site-a")
        assert policy.delay(1, "site-a") == first
        assert 0.005 <= first <= 0.01
        # Different sites de-synchronize.
        assert {policy.delay(1, f"site-{i}") for i in range(8)} != {first}


class TestRetryCall:
    def test_recovers_after_transient_failures(self):
        plan = parse_faults("disk:R:2")
        calls = []

        def attempt():
            calls.append(1)
            fault = plan.disk_fault("R")
            if fault is not None:
                raise fault
            return "recovered"

        policy = RetryPolicy(attempts=4, base_seconds=0.0, jitter=0.0)
        assert retry_call(
            attempt, policy=policy, site="disk:R", plan=plan,
            retryable=(DiskFaultError,),
        ) == "recovered"
        assert len(calls) == 3
        assert plan.retries == 2

    def test_exhaustion_reraises_the_last_failure(self):
        failures = [DiskFaultError(f"attempt {i}") for i in range(3)]
        pending = iter(failures)

        def attempt():
            raise next(pending)

        policy = RetryPolicy(attempts=3, base_seconds=0.0, jitter=0.0)
        with pytest.raises(DiskFaultError) as caught:
            retry_call(attempt, policy=policy, retryable=(DiskFaultError,))
        assert caught.value is failures[2]

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def attempt():
            calls.append(1)
            raise ReproError("not a fault")

        with pytest.raises(ReproError, match="not a fault"):
            retry_call(attempt, retryable=(FaultError,))
        assert len(calls) == 1

    def test_cancelled_token_stops_the_loop(self):
        cancel = CancelToken()
        cancel.cancel("deadline hit")
        with pytest.raises(DeadlineError, match="deadline hit"):
            retry_call(lambda: "never", cancel=cancel)


class TestCancelToken:
    def test_check_raises_after_cancel(self):
        token = CancelToken()
        token.check()                      # not cancelled: no-op
        assert not token.cancelled()
        token.cancel("budget lapsed")
        assert token.cancelled()
        with pytest.raises(DeadlineError, match="budget lapsed"):
            token.check()

    def test_sleep_wakes_on_cancel(self):
        token = CancelToken()
        timer = threading.Timer(0.05, token.cancel)
        timer.start()
        started = time.monotonic()
        try:
            with pytest.raises(DeadlineError):
                token.sleep(10.0)
        finally:
            timer.cancel()
        assert time.monotonic() - started < 2.0


class TestRunWithDeadline:
    def test_none_deadline_runs_inline(self):
        caller = threading.get_ident()
        seen = {}

        def fn():
            seen["thread"] = threading.get_ident()
            return 42

        assert run_with_deadline(fn, None) == 42
        assert seen["thread"] == caller

    def test_result_and_errors_pass_through_the_worker(self):
        assert run_with_deadline(lambda: "value", 5.0) == "value"

        def boom():
            raise ReproError("worker failed")

        with pytest.raises(ReproError, match="worker failed"):
            run_with_deadline(boom, 5.0)

    def test_timeout_cancels_and_raises_deadline_error(self):
        token = CancelToken()
        stopped = threading.Event()

        def hung():
            try:
                token.sleep(30.0)
            except DeadlineError:
                stopped.set()
                raise

        started = time.monotonic()
        with pytest.raises(DeadlineError, match="deadline"):
            run_with_deadline(hung, 0.1, cancel=token, label="test")
        assert time.monotonic() - started < 5.0
        assert token.cancelled()
        # The cooperative worker notices the cancel and winds down.
        assert stopped.wait(2.0)
