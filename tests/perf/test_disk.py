"""The §8 disk model and the array-keeps-up-with-disk claim (E9)."""

import pytest

from repro.errors import ReproError
from repro.perf import (
    DiskModel,
    PAPER_AGGRESSIVE,
    PAPER_CONSERVATIVE,
    PAPER_DISK,
    intersect_vs_read_report,
    largest_intersectable_relation_bytes,
)


class TestDiskModel:
    def test_revolution_is_about_17ms(self):
        # "a moving-head disk rotates at about 3600 r.p.m., or about
        # once every 17ms"
        assert PAPER_DISK.revolution_seconds == pytest.approx(1 / 60)
        assert 0.016 <= PAPER_DISK.revolution_seconds <= 0.017

    def test_cylinder_rate(self):
        # "a rate of about 500,000 bytes in 17ms"
        assert PAPER_DISK.cylinder_bytes == 500_000
        assert PAPER_DISK.bytes_per_second == pytest.approx(500_000 * 60)

    def test_read_rounds_to_whole_revolutions(self):
        assert PAPER_DISK.read_seconds(1) == PAPER_DISK.revolution_seconds
        assert PAPER_DISK.read_seconds(500_001) == pytest.approx(
            2 * PAPER_DISK.revolution_seconds
        )
        assert PAPER_DISK.read_seconds(0) == 0

    def test_validation(self):
        with pytest.raises(ReproError):
            DiskModel(rpm=0)
        with pytest.raises(ReproError):
            PAPER_DISK.read_seconds(-5)


class TestArrayVsDisk:
    def test_two_megabyte_claim(self):
        # "In a comparable period of time, our systolic array can
        # process (for example, can intersect) two relations, each of
        # about 2 million bytes."  Reading a 2 MB relation takes 4
        # revolutions (~67 ms); intersecting two of them takes ~60 ms
        # conservative / ~11 ms aggressive — comparable or faster.
        report = intersect_vs_read_report(PAPER_CONSERVATIVE)
        assert report["read_seconds"] == pytest.approx(4 / 60)
        assert report["intersect_seconds"] <= report["read_seconds"]

        aggressive = intersect_vs_read_report(PAPER_AGGRESSIVE)
        assert aggressive["intersect_seconds"] < report["intersect_seconds"]

    def test_largest_relation_within_reading_window(self):
        # Within the time the disk needs to deliver 2 MB, the
        # conservative array can intersect relations of ≥ 2 MB.
        window = PAPER_DISK.read_seconds(2_000_000)
        largest = largest_intersectable_relation_bytes(
            PAPER_CONSERVATIVE, window
        )
        assert largest >= 2_000_000

    def test_largest_scales_with_sqrt_of_window(self):
        one = largest_intersectable_relation_bytes(PAPER_CONSERVATIVE, 0.01)
        four = largest_intersectable_relation_bytes(PAPER_CONSERVATIVE, 0.04)
        assert four / one == pytest.approx(2.0, rel=0.01)

    def test_window_validation(self):
        with pytest.raises(ReproError):
            largest_intersectable_relation_bytes(PAPER_CONSERVATIVE, 0)


class TestAreaModel:
    def test_chip_count_for_word_array(self):
        from repro.perf import estimate_array_area

        estimate = estimate_array_area(
            rows=5, cols=3, technology=PAPER_CONSERVATIVE, element_bits=32
        )
        assert estimate.bit_comparators == 5 * 3 * 32
        assert estimate.chips == 1  # 480 comparators < 1000/chip
        assert estimate.silicon_mm2 == pytest.approx(480 * 36_000 / 1e6)

    def test_large_array_needs_many_chips(self):
        from repro.perf import estimate_array_area

        estimate = estimate_array_area(
            rows=1999, cols=47, technology=PAPER_CONSERVATIVE,
            element_bits=32,
        )
        assert estimate.chips == -(-estimate.bit_comparators // 1000)

    def test_validation(self):
        from repro.perf import estimate_array_area

        with pytest.raises(ReproError):
            estimate_array_area(rows=0, cols=1, technology=PAPER_CONSERVATIVE)
