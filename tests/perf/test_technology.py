"""The §8 NMOS technology model — every number the paper quotes."""

import pytest

from repro.errors import ReproError
from repro.perf import PAPER_AGGRESSIVE, PAPER_CONSERVATIVE, TechnologyModel


class TestPaperNumbers:
    def test_comparators_per_chip_is_about_1000(self):
        # "Division gives us about 1000 bit-comparators per chip."
        assert PAPER_CONSERVATIVE.comparators_per_chip == 1000

    def test_parallel_comparisons_is_a_million(self):
        # "This gives us the capability of performing 10^6 comparisons
        # in parallel."
        assert PAPER_CONSERVATIVE.parallel_comparisons == 1_000_000

    def test_pin_multiplexing_about_ten(self):
        # "we can multiplex about 10 bits on a pin during a single
        # comparison" (350 / 30 = 11.67 → 11).
        assert 10 <= PAPER_CONSERVATIVE.bits_per_pin_multiplex <= 12

    def test_comparator_area(self):
        assert PAPER_CONSERVATIVE.bit_comparator_area_um2 == 240 * 150

    def test_chip_area(self):
        assert PAPER_CONSERVATIVE.chip_area_um2 == 6000 * 6000

    def test_aggressive_point(self):
        assert PAPER_AGGRESSIVE.comparison_time_ns == 200.0
        assert PAPER_AGGRESSIVE.chips == 3000
        assert PAPER_AGGRESSIVE.parallel_comparisons == 3_000_000


class TestDerivedQuantities:
    def test_throughput(self):
        # 10^6 comparators / 350 ns ≈ 2.86 × 10^12 comparisons/s.
        assert PAPER_CONSERVATIVE.comparisons_per_second == pytest.approx(
            1e6 / 350e-9
        )

    def test_time_for_work(self):
        model = PAPER_CONSERVATIVE
        assert model.time_for_bit_comparisons(0) == 0
        one_second_of_work = model.comparisons_per_second
        assert model.time_for_bit_comparisons(one_second_of_work) == (
            pytest.approx(1.0)
        )

    def test_negative_work_rejected(self):
        with pytest.raises(ReproError):
            PAPER_CONSERVATIVE.time_for_bit_comparisons(-1)

    def test_pulses_to_seconds(self):
        assert PAPER_CONSERVATIVE.pulses_to_seconds(1_000_000) == (
            pytest.approx(0.35)
        )

    def test_scaled_override(self):
        faster = PAPER_CONSERVATIVE.scaled(comparison_time_ns=100.0)
        assert faster.comparison_time_ns == 100.0
        assert faster.chips == PAPER_CONSERVATIVE.chips  # untouched

    def test_validation(self):
        with pytest.raises(ReproError):
            TechnologyModel(chips=0)
        with pytest.raises(ReproError):
            TechnologyModel(comparison_time_ns=-1)
