"""§8's intersection-time predictions (experiment E8)."""

import pytest

from repro.errors import ReproError
from repro.perf import (
    PAPER_WORKLOAD,
    RelationProfile,
    intersection_bit_comparisons,
    intersection_time_seconds,
    paper_aggressive_prediction,
    paper_conservative_prediction,
    PAPER_CONSERVATIVE,
)


class TestWorkload:
    def test_paper_tuple_is_about_200_characters(self):
        # "A tuple is of size 1500 bits (or about 200 characters)."
        assert PAPER_WORKLOAD.tuple_bits == 1500
        assert 180 <= PAPER_WORKLOAD.tuple_bytes <= 200

    def test_paper_relation_size(self):
        assert PAPER_WORKLOAD.cardinality == 10_000
        # 10^4 tuples × 187.5 B ≈ 1.9 MB — the "about 2 million bytes"
        # §8 closes with.
        assert PAPER_WORKLOAD.total_bytes == pytest.approx(1_875_000)

    def test_validation(self):
        with pytest.raises(ReproError):
            RelationProfile(tuple_bits=0)


class TestBitComparisonCount:
    def test_paper_count(self):
        # "The intersection requires a total of 1.5 × 10^11 bit
        # comparisons."
        assert intersection_bit_comparisons(PAPER_WORKLOAD) == 150_000_000_000

    def test_asymmetric_relations(self):
        a = RelationProfile(tuple_bits=100, cardinality=10)
        b = RelationProfile(tuple_bits=100, cardinality=20)
        assert intersection_bit_comparisons(a, b) == 100 * 10 * 20

    def test_width_mismatch_rejected(self):
        a = RelationProfile(tuple_bits=100, cardinality=10)
        b = RelationProfile(tuple_bits=200, cardinality=10)
        with pytest.raises(ReproError, match="tuple width"):
            intersection_bit_comparisons(a, b)


class TestHeadlinePredictions:
    def test_conservative_is_about_50ms(self):
        # "(1.5 × 10^11 comparisons) × (350ns / 10^6 comparisons)
        # ... about 50ms."  Strict arithmetic: 52.5 ms.
        seconds = paper_conservative_prediction()
        assert seconds == pytest.approx(0.0525)
        assert 0.045 <= seconds <= 0.055  # "about 50ms"

    def test_aggressive_is_10ms(self):
        # "200ns/comparison, and 3000 chips ... about 10ms" — exact here.
        assert paper_aggressive_prediction() == pytest.approx(0.010)

    def test_time_scales_quadratically_with_cardinality(self):
        half = RelationProfile(tuple_bits=1500, cardinality=5_000)
        t_full = intersection_time_seconds(PAPER_CONSERVATIVE)
        t_half = intersection_time_seconds(PAPER_CONSERVATIVE, half)
        assert t_full / t_half == pytest.approx(4.0)

    def test_time_scales_linearly_with_chips(self):
        doubled = PAPER_CONSERVATIVE.scaled(chips=2000)
        assert intersection_time_seconds(doubled) == pytest.approx(
            paper_conservative_prediction() / 2
        )
