"""Chip floorplanning: the two §8 constraints, area and pins."""

import pytest

from repro.errors import CapacityError, ReproError
from repro.perf import PAPER_CONSERVATIVE
from repro.perf.floorplan import ArrayFloorplan, ChipPackage, plan_array, plan_system


@pytest.fixture
def package():
    return ChipPackage(PAPER_CONSERVATIVE)


class TestChipPackage:
    def test_signal_pins(self, package):
        assert package.signal_pins == 112

    def test_multiplexed_bandwidth(self, package):
        # §8: ~10 bits per pin per comparison window (350/30 -> 11).
        assert package.boundary_bits_per_pulse == 112 * 11

    def test_comparator_budget_from_technology(self, package):
        assert package.comparators == 1000

    def test_validation(self):
        with pytest.raises(ReproError, match="signal pins"):
            ChipPackage(PAPER_CONSERVATIVE, pins=8, power_ground_pins=8)


class TestPlanArray:
    def test_small_array_fits_one_chip(self, package):
        plan = plan_array(rows=5, cols=3, package=package, element_bits=4)
        assert plan.chips == 1
        assert not plan.area_limited
        assert not plan.pin_limited

    def test_area_limited_array(self, package):
        # 8-bit elements, 4 columns: a row costs 32 comparators; area
        # allows 31 rows/chip while pins allow hundreds.
        plan = plan_array(rows=100, cols=4, package=package, element_bits=8)
        assert plan.rows_per_chip == 1000 // 32
        assert plan.chips == -(-100 // plan.rows_per_chip)
        assert plan.area_limited
        assert not plan.pin_limited

    def test_pin_limited_array(self):
        # A tiny-area but pin-starved package: 1-bit elements make rows
        # cheap in area, so the result-bit pins bind first.
        starved = ChipPackage(PAPER_CONSERVATIVE, pins=20, power_ground_pins=8)
        plan = plan_array(rows=500, cols=2, package=starved, element_bits=1)
        assert plan.pin_limited
        assert not plan.area_limited
        # budget 12 pins × 11 bits = 132; vertical 2·2·1 = 4; rows ≤ 64.
        assert plan.rows_per_chip == (132 - 4) // 2

    def test_row_too_wide_for_any_chip(self, package):
        with pytest.raises(CapacityError, match="narrow the array"):
            plan_array(rows=1, cols=100, package=package, element_bits=32)

    def test_vertical_streams_exceed_pins(self):
        starved = ChipPackage(PAPER_CONSERVATIVE, pins=10, power_ground_pins=8)
        with pytest.raises(CapacityError, match="vertical streams"):
            plan_array(rows=4, cols=8, package=starved, element_bits=32)

    def test_bit_comparator_total(self, package):
        plan = plan_array(rows=7, cols=2, package=package, element_bits=16)
        assert plan.bit_comparators == 7 * 2 * 16

    def test_geometry_validation(self, package):
        with pytest.raises(ReproError):
            plan_array(rows=0, cols=1, package=package)


class TestPlanSystem:
    def test_device_complement(self, package):
        plans = plan_system(
            [("intersect", 63, 8), ("join", 63, 2), ("divide", 16, 6)],
            package, element_bits=8,
        )
        assert set(plans) == {"intersect", "join", "divide"}
        assert all(isinstance(p, ArrayFloorplan) for p in plans.values())
        assert plans["intersect"].chips >= plans["join"].chips

    def test_duplicate_names_rejected(self, package):
        with pytest.raises(ReproError, match="duplicate"):
            plan_system([("x", 2, 2), ("x", 3, 3)], package)
