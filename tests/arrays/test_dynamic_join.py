"""§6.3.2's op-codes-with-the-data join variant."""

import pytest

from repro.arrays.join import systolic_dynamic_theta_join, systolic_theta_join
from repro.errors import SimulationError
from repro.relational import Relation, algebra
from repro.systolic.cells import DynamicThetaCell
from repro.systolic.values import tok
from repro.workloads import integer_schema, join_pair


class TestDynamicThetaCell:
    def _step(self, cell, **inputs):
        full = {port: inputs.get(port) for port in cell.IN_PORTS}
        return cell.step(full)

    @pytest.mark.parametrize("op,a,b,expected", [
        ("==", 3, 3, True), ("<", 1, 2, True), (">", 1, 2, False),
        ("!=", 4, 4, False), (">=", 5, 5, True),
    ])
    def test_op_arrives_with_data(self, op, a, b, expected):
        cell = DynamicThetaCell("d")
        out = self._step(cell, a_in=tok(a), b_in=tok(b), op_in=tok(op))
        assert out["t_out"].value is expected

    def test_op_forwarded_downward(self):
        cell = DynamicThetaCell("d")
        out = self._step(cell, a_in=tok(1), op_in=tok("<"))
        assert out["op_out"].value == "<"
        assert out["a_out"].value == 1
        assert "t_out" not in out  # no b: no comparison

    def test_a_without_op_is_violation(self):
        cell = DynamicThetaCell("d")
        with pytest.raises(SimulationError, match="travel with"):
            self._step(cell, a_in=tok(1), b_in=tok(2))

    def test_op_without_a_is_violation(self):
        cell = DynamicThetaCell("d")
        with pytest.raises(SimulationError, match="travel with"):
            self._step(cell, op_in=tok("<"))

    def test_unknown_op_code_detected_in_flight(self):
        cell = DynamicThetaCell("d")
        with pytest.raises(SimulationError, match="unknown op code"):
            self._step(cell, a_in=tok(1), b_in=tok(2), op_in=tok("~~"))

    def test_t_chains(self):
        cell = DynamicThetaCell("d")
        out = self._step(
            cell, a_in=tok(1), b_in=tok(1), op_in=tok("=="), t_in=tok(False)
        )
        assert out["t_out"].value is False


class TestDynamicJoin:
    def test_agrees_with_preloaded_variant(self):
        a, b = join_pair(8, 6, 3, seed=91)
        on = [("key", "key"), (1, 1)]
        ops = ["==", "<"]
        dynamic = systolic_dynamic_theta_join(a, b, on, ops, tagged=True)
        preloaded = systolic_theta_join(a, b, on, ops)
        assert dynamic.relation == preloaded.relation
        assert dynamic.matches == preloaded.matches
        assert dynamic.run.pulses == preloaded.run.pulses  # same schedule

    @pytest.mark.parametrize("op", ["==", "<", "<=", ">", ">=", "!="])
    def test_every_operator_against_oracle(self, op):
        schema = integer_schema(2)
        a = Relation(schema, [(i, 0) for i in range(5)])
        b = Relation(schema, [(j, 1) for j in range(2, 6)])
        result = systolic_dynamic_theta_join(a, b, [(0, 0)], [op], tagged=True)
        assert result.relation == algebra.theta_join(a, b, [(0, 0)], [op])

    def test_empty_operands(self):
        schema = integer_schema(2)
        empty = Relation(schema)
        full = Relation(schema, [(1, 2)])
        result = systolic_dynamic_theta_join(empty, full, [(0, 0)], ["=="])
        assert len(result.relation) == 0
        assert result.run.pulses == 0

    def test_ops_arity_checked(self):
        schema = integer_schema(2)
        a = Relation(schema, [(1, 2)])
        with pytest.raises(Exception, match="one op|one operator"):
            systolic_dynamic_theta_join(a, a, [(0, 0)], ["==", "<"])
