"""The two-dimensional comparison array of Fig 3-3 (experiment E2)."""

import pytest

from repro.arrays import compare_all_pairs
from repro.arrays.comparison_array import build_comparison_array
from repro.errors import SimulationError
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.trace import TraceRecorder, render_grid
from repro.workloads import three_by_three_pair


def reference_matrix(a_tuples, b_tuples):
    return [
        [tuple(ra) == tuple(rb) for rb in b_tuples] for ra in a_tuples
    ]


class TestMatrixCorrectness:
    def test_three_by_three_example(self):
        a, b = three_by_three_pair()
        result = compare_all_pairs(a.tuples, b.tuples, tagged=True)
        assert result.t_matrix == reference_matrix(a.tuples, b.tuples)
        # Exactly one common tuple in the workloads fixture.
        assert result.pairs_where_true() == [(1, 1)]

    @pytest.mark.parametrize("n_a,n_b,arity", [
        (1, 1, 1), (1, 5, 2), (5, 1, 2), (4, 4, 3), (3, 7, 1), (6, 2, 4),
    ])
    def test_shapes(self, n_a, n_b, arity):
        # Craft data with collisions: values drawn from a tiny universe.
        a_tuples = [tuple((i * 7 + k) % 3 for k in range(arity)) for i in range(n_a)]
        b_tuples = [tuple((j * 5 + k) % 3 for k in range(arity)) for j in range(n_b)]
        result = compare_all_pairs(a_tuples, b_tuples, tagged=True)
        assert result.t_matrix == reference_matrix(a_tuples, b_tuples)

    def test_all_equal_relations(self):
        tuples = [(1, 1)] * 3
        result = compare_all_pairs(tuples, tuples)
        assert all(all(row) for row in result.t_matrix)

    def test_disjoint_relations(self):
        result = compare_all_pairs([(1,), (2,)], [(3,), (4,)])
        assert not any(any(row) for row in result.t_matrix)

    def test_t_init_masking(self):
        # Feed FALSE for the diagonal: equal pairs there must vanish (§5).
        tuples = [(1,), (2,), (1,)]
        result = compare_all_pairs(
            tuples, tuples, t_init=lambda i, j: i != j
        )
        assert result.t_matrix == [
            [False, False, True],
            [False, False, False],
            [True, False, False],
        ]

    def test_empty_relations_rejected(self):
        with pytest.raises(SimulationError, match="non-empty"):
            compare_all_pairs([], [(1,)])


class TestOperationalShape:
    def test_run_length_is_linear_not_quadratic(self):
        # n² comparisons finish in O(n + m) pulses — the pipelining win.
        small = compare_all_pairs([(i,) for i in range(4)],
                                  [(i,) for i in range(4)])
        large = compare_all_pairs([(i,) for i in range(8)],
                                  [(i,) for i in range(8)])
        assert small.run.pulses == small.schedule.comparison_pulses
        # Doubling n roughly doubles (not quadruples) the pulse count.
        assert large.run.pulses < 3 * small.run.pulses

    def test_geometry_matches_schedule(self):
        result = compare_all_pairs([(1, 2)] * 3, [(3, 4)] * 5)
        assert result.run.rows == 2 * 5 - 1
        assert result.run.cols == 2
        assert result.run.cells == result.run.rows * result.run.cols


class TestFig34Trace:
    def test_snapshot_shows_counter_streaming_data(self):
        """Reproduce the Fig 3-4 view: a's and b's interleaved mid-array."""
        a, b = three_by_three_pair()
        network, schedule, layout = build_comparison_array(
            a.tuples, b.tuples, tagged=True
        )
        recorder = TraceRecorder()
        simulator = SystolicSimulator(network, observer=recorder)
        simulator.run(schedule.comparison_pulses)

        # At the central meeting pulse of (a0, b0), column 0, row M holds
        # both a[0][0] and b[0][0].
        mid = schedule.mid
        pulse = schedule.meeting_pulse(0, 0, 0)
        snapshot = recorder.at(pulse)
        cell = snapshot[f"cmp[{mid},0]"]
        values = {token.value for token in cell.values()}
        assert a.tuples[0][0] in values
        assert b.tuples[0][0] in values

        text = render_grid(snapshot, layout)
        assert text.count("\n") == schedule.rows - 1  # full grid rendered

    def test_trace_confirms_two_step_tuple_spacing(self):
        a, b = three_by_three_pair()
        network, schedule, _ = build_comparison_array(
            a.tuples, b.tuples, tagged=True
        )
        recorder = TraceRecorder()
        SystolicSimulator(network, observer=recorder).run(
            schedule.comparison_pulses
        )
        # Column 0 of the top row sees a0, a1, a2 at pulses 0, 2, 4.
        history = recorder.cell_history("cmp[0,0]")
        a_arrivals = [
            pulse for pulse, ports in history
            if "a_in" in ports and isinstance(ports["a_in"].tag, tuple)
            and ports["a_in"].tag[0] == "a"
        ]
        assert a_arrivals[:3] == [0, 2, 4]
