"""The division array of Fig 7-2 (E7)."""

import pytest

from repro.arrays import systolic_divide
from repro.arrays.division import DivisionSchedule
from repro.errors import SimulationError
from repro.relational import Relation, algebra
from repro.workloads import division_example, division_workload


class TestPaperExample:
    def test_fig_71(self):
        a, b, expected = division_example()
        result = systolic_divide(a, b, tagged=True)
        assert result.relation == expected
        assert result.distinct_x == [0, 1, 2]  # i, j, k in first-seen order
        assert result.quotient_bits == [True, False, False]

    def test_matches_oracle(self):
        a, b, _ = division_example()
        assert systolic_divide(a, b).relation == algebra.divide(a, b)


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("n_groups,divisor,covered", [
        (1, 1, 0), (1, 1, 1), (4, 3, 2), (5, 2, 0), (3, 4, 3), (6, 1, 4),
    ])
    def test_known_quotient_size(self, n_groups, divisor, covered):
        a, b, expected_size = division_workload(
            n_groups, divisor, covered,
            seed=n_groups * 100 + divisor * 10 + covered,
        )
        result = systolic_divide(a, b, tagged=True)
        assert result.relation == algebra.divide(a, b)
        assert len(result.relation) == expected_size

    def test_duplicate_pairs_are_harmless(self):
        a, b, expected = division_example()
        doubled = Relation(a.schema, list(a.tuples) + list(a.tuples))
        # Relation dedups, so force duplicates through a raw stream:
        result = systolic_divide(a, b)
        result2 = systolic_divide(doubled, b)
        assert result.relation == result2.relation


class TestColumnConventions:
    def test_swapped_columns(self):
        # Divide with the group in column 1 and values in column 0.
        a, b, expected = division_example()
        flipped = Relation(
            a.schema.project([1, 0]),
            [(y, x) for x, y in a.tuples],
        )
        result = systolic_divide(flipped, b, a_value=0, a_group=1)
        assert result.relation.tuples == expected.tuples

    def test_group_equals_value_rejected(self):
        a, b, _ = division_example()
        with pytest.raises(SimulationError):
            systolic_divide(a, b, a_value="A1", a_group="A1")

    def test_domain_mismatch_rejected(self):
        a, b, _ = division_example()
        with pytest.raises(SimulationError, match="different domains"):
            systolic_divide(a, b, a_value="A1", a_group="A2")


class TestEdgeCases:
    def test_empty_dividend(self):
        a, b, _ = division_example()
        empty = Relation(a.schema)
        result = systolic_divide(empty, b)
        assert len(result.relation) == 0
        assert result.run.pulses == 0

    def test_empty_divisor_vacuous_truth(self):
        a, b, _ = division_example()
        result = systolic_divide(a, Relation(b.schema))
        assert len(result.relation) == 3  # every distinct x qualifies
        assert result.run.pulses == 0

    def test_single_pair_single_divisor(self):
        a, b, _ = division_example()
        tiny_a = Relation(a.schema, [a.tuples[0]])
        tiny_b = Relation(b.schema, [(a.tuples[0][1],)])
        result = systolic_divide(tiny_a, tiny_b)
        assert result.quotient_bits == [True]

    def test_divisor_with_duplicates(self):
        a, b, expected = division_example()
        # Same element repeated in the divisor stream must not change
        # the answer (coverage is a set condition).
        result = systolic_divide(a, b)
        assert result.relation == expected


class TestDivisionSchedule:
    def test_result_pulses_distinct_per_row(self):
        schedule = DivisionSchedule(n_pairs=5, p_rows=3, n_divisor=2)
        pulses = [schedule.result_pulse(r) for r in range(3)]
        assert len(set(pulses)) == 3

    def test_and_sweep_trails_last_y(self):
        schedule = DivisionSchedule(n_pairs=4, p_rows=2, n_divisor=3)
        for row in range(2):
            last_gate = schedule.gate_pulse(schedule.n_pairs - 1, row)
            assert schedule.and_inject_pulse(row) == last_gate + 2

    def test_row_from_result_checks_pulse(self):
        schedule = DivisionSchedule(n_pairs=2, p_rows=2, n_divisor=2)
        with pytest.raises(SimulationError, match="expected"):
            schedule.row_from_result(0, schedule.result_pulse(0) + 1)

    def test_validation(self):
        with pytest.raises(SimulationError):
            DivisionSchedule(n_pairs=0, p_rows=1, n_divisor=1)


class TestGeneralCase:
    """§7: "The extension from this to the general case is
    straightforward" — multi-column groups and values via composite
    domains (§2.3)."""

    @pytest.fixture
    def staffing(self):
        from repro.relational import Domain, Schema

        teams = Domain("teams")
        sites = Domain("sites")
        skills = Domain("skills")
        a_schema = Schema.of(
            ("team", teams), ("site", sites),
            ("skill", skills), ("level", skills),
        )
        a = Relation.from_values(a_schema, [
            ("red", "hq", "sql", "junior"),
            ("red", "hq", "apl", "senior"),
            ("red", "lab", "sql", "junior"),
            ("blue", "hq", "sql", "junior"),
            ("blue", "hq", "apl", "senior"),
            ("green", "hq", "apl", "senior"),
        ])
        b_schema = Schema.of(("skill", skills), ("level", skills))
        b = Relation.from_values(b_schema, [
            ("sql", "junior"), ("apl", "senior"),
        ])
        return a, b

    def test_multi_column_matches_oracle(self, staffing):
        from repro.arrays.division import systolic_divide_general
        from repro.relational.algebra import divide_general

        a, b = staffing
        result = systolic_divide_general(
            a, b, ["team", "site"], ["skill", "level"], tagged=True
        )
        expected = divide_general(a, b, ["team", "site"], ["skill", "level"])
        assert result.relation == expected
        assert result.relation.decoded() == [("red", "hq"), ("blue", "hq")]
        assert result.relation.schema.names == ("team", "site")

    def test_single_column_general_equals_restricted(self):
        from repro.arrays.division import systolic_divide_general

        a, b, expected = division_example()
        result = systolic_divide_general(a, b, ["A1"], ["A2"], ["B1"])
        assert result.relation == expected

    def test_column_list_validation(self, staffing):
        from repro.arrays.division import systolic_divide_general

        a, b = staffing
        with pytest.raises(SimulationError, match="disjoint"):
            systolic_divide_general(a, b, ["team"], ["team"])
        with pytest.raises(SimulationError, match="column counts differ"):
            systolic_divide_general(a, b, ["team"], ["skill", "level"], ["skill"])
        with pytest.raises(SimulationError, match="non-empty"):
            systolic_divide_general(a, b, [], ["skill"])

    def test_oracle_validation(self, staffing):
        from repro.errors import SchemaError
        from repro.relational.algebra import divide_general

        a, b = staffing
        with pytest.raises(SchemaError, match="disjoint"):
            divide_general(a, b, ["team"], ["team"])
