"""The feeding-schedule arithmetic of §3.2 and §8."""

import pytest

from repro.arrays.schedule import CounterStreamSchedule, FixedRelationSchedule
from repro.errors import SimulationError


class TestCounterStreamGeometry:
    def test_rows_is_odd(self):
        # Counter-moving streams swap between cells unless R is odd.
        for n_a in range(1, 8):
            for n_b in range(1, 8):
                schedule = CounterStreamSchedule(n_a, n_b, arity=3)
                assert schedule.rows % 2 == 1
                assert schedule.rows == 2 * max(n_a, n_b) - 1

    def test_every_pair_meets_inside_the_array(self):
        schedule = CounterStreamSchedule(n_a=4, n_b=6, arity=2)
        for i in range(4):
            for j in range(6):
                assert 0 <= schedule.meeting_row(i, j) < schedule.rows

    def test_meetings_are_unique_per_cell_and_pulse(self):
        # No two pairs occupy the same (row, pulse) at the same column.
        schedule = CounterStreamSchedule(n_a=5, n_b=5, arity=1)
        seen = {}
        for i in range(5):
            for j in range(5):
                key = (schedule.meeting_row(i, j), schedule.meeting_pulse(i, j))
                assert key not in seen, f"collision: {seen[key]} vs {(i, j)}"
                seen[key] = (i, j)

    def test_element_stagger_is_one_pulse(self):
        schedule = CounterStreamSchedule(n_a=3, n_b=3, arity=4)
        assert schedule.a_entry_pulse(1, 2) == schedule.a_entry_pulse(1, 1) + 1

    def test_tuple_spacing_is_two_pulses(self):
        schedule = CounterStreamSchedule(n_a=3, n_b=3, arity=4)
        assert schedule.a_entry_pulse(2, 0) == schedule.a_entry_pulse(1, 0) + 2
        assert schedule.b_entry_pulse(2, 0) == schedule.b_entry_pulse(1, 0) + 2

    def test_row_pairs_cover_all_pairs_exactly_once(self):
        schedule = CounterStreamSchedule(n_a=4, n_b=3, arity=2)
        collected = [
            pair for row in range(schedule.rows) for pair in schedule.row_pairs(row)
        ]
        assert sorted(collected) == [
            (i, j) for i in range(4) for j in range(3)
        ]

    def test_row_pairs_match_meeting_row(self):
        schedule = CounterStreamSchedule(n_a=4, n_b=3, arity=2)
        for row in range(schedule.rows):
            for i, j in schedule.row_pairs(row):
                assert schedule.meeting_row(i, j) == row


class TestCounterStreamInverses:
    def test_pair_from_exit_inverts_exit_pulse(self):
        schedule = CounterStreamSchedule(n_a=4, n_b=5, arity=3)
        for i in range(4):
            for j in range(5):
                row = schedule.meeting_row(i, j)
                pulse = schedule.t_exit_pulse(i, j)
                assert schedule.pair_from_exit(row, pulse) == (i, j)

    def test_pair_from_exit_rejects_phantom_arrivals(self):
        # Within a row, legitimate exits are two pulses apart; an
        # off-parity pulse matches no pair.
        schedule = CounterStreamSchedule(n_a=2, n_b=2, arity=2)
        legit = schedule.t_exit_pulse(1, 0)  # the row-0 pair
        with pytest.raises(SimulationError, match="no pair"):
            schedule.pair_from_exit(0, legit + 1)

    def test_pair_from_exit_rejects_out_of_range(self):
        schedule = CounterStreamSchedule(n_a=2, n_b=2, arity=2)
        with pytest.raises(SimulationError, match="outside"):
            schedule.pair_from_exit(1, schedule.t_exit_pulse(1, 1) + 4)

    def test_accumulator_inverse(self):
        schedule = CounterStreamSchedule(n_a=5, n_b=3, arity=2)
        for i in range(5):
            pulse = schedule.accumulator_exit_pulse(i)
            assert schedule.tuple_from_accumulator_exit(pulse) == i

    def test_accumulator_inverse_rejects_bad_pulses(self):
        schedule = CounterStreamSchedule(n_a=2, n_b=2, arity=2)
        good = schedule.accumulator_exit_pulse(0)
        with pytest.raises(SimulationError):
            schedule.tuple_from_accumulator_exit(good + 1)
        with pytest.raises(SimulationError):
            schedule.tuple_from_accumulator_exit(good + 2 * 2)  # i = 2 too big

    def test_accumulator_alignment(self):
        # The descending slot for tuple i reaches the accumulator beside
        # the meeting row of (i, j) exactly when t_ij arrives from the left.
        schedule = CounterStreamSchedule(n_a=4, n_b=4, arity=3)
        for i in range(4):
            seed = schedule.accumulator_seed_pulse(i)
            for j in range(4):
                row = schedule.meeting_row(i, j)
                arrival_from_left = schedule.t_exit_pulse(i, j) + 1
                slot_at_row = seed + row
                assert slot_at_row == arrival_from_left

    def test_total_pulses_bound_everything(self):
        schedule = CounterStreamSchedule(n_a=4, n_b=6, arity=3)
        last_exit = max(
            schedule.t_exit_pulse(i, j) for i in range(4) for j in range(6)
        )
        assert schedule.comparison_pulses == last_exit + 1
        assert schedule.total_pulses > schedule.comparison_pulses


class TestCounterStreamValidation:
    def test_rejects_empty_relations(self):
        with pytest.raises(SimulationError, match="non-empty"):
            CounterStreamSchedule(n_a=0, n_b=3, arity=2)

    def test_rejects_zero_arity(self):
        with pytest.raises(SimulationError, match="arity"):
            CounterStreamSchedule(n_a=1, n_b=1, arity=0)


class TestFixedRelationSchedule:
    def test_rows_equals_n_b(self):
        assert FixedRelationSchedule(n_a=9, n_b=4, arity=2).rows == 4

    def test_tuples_one_pulse_apart(self):
        schedule = FixedRelationSchedule(n_a=3, n_b=3, arity=2)
        assert schedule.a_entry_pulse(1, 0) == schedule.a_entry_pulse(0, 0) + 1

    def test_pair_from_exit_inverse(self):
        schedule = FixedRelationSchedule(n_a=5, n_b=4, arity=3)
        for i in range(5):
            for row in range(4):
                pulse = schedule.t_exit_pulse(i, row)
                assert schedule.pair_from_exit(row, pulse) == (i, row)

    def test_accumulator_inverse(self):
        schedule = FixedRelationSchedule(n_a=5, n_b=4, arity=3)
        for i in range(5):
            pulse = schedule.accumulator_exit_pulse(i)
            assert schedule.tuple_from_accumulator_exit(pulse) == i

    def test_accumulator_alignment(self):
        schedule = FixedRelationSchedule(n_a=4, n_b=3, arity=2)
        for i in range(4):
            seed = schedule.accumulator_seed_pulse(i)
            for row in range(3):
                assert seed + row == schedule.t_exit_pulse(i, row) + 1

    def test_shorter_than_counter_stream(self):
        # The fixed design finishes sooner: denser feeding, fewer rows.
        counter = CounterStreamSchedule(n_a=8, n_b=8, arity=3)
        fixed = FixedRelationSchedule(n_a=8, n_b=8, arity=3)
        assert fixed.total_pulses < counter.total_pulses

    def test_validation(self):
        with pytest.raises(SimulationError):
            FixedRelationSchedule(n_a=0, n_b=1, arity=1)
        with pytest.raises(SimulationError):
            FixedRelationSchedule(n_a=1, n_b=1, arity=0)
