"""The join array of Fig 6-1, multi-column and θ variants (E6)."""

import pytest

from repro.arrays import systolic_join, systolic_theta_join
from repro.errors import SchemaError
from repro.relational import Domain, Relation, Schema, algebra
from repro.workloads import join_pair


@pytest.fixture
def emp_dept():
    depts = Domain("dept6")
    misc = Domain("misc6")
    emp = Relation.from_values(
        Schema.of(("name", misc), ("dept", depts)),
        [("ann", "sales"), ("bob", "eng"), ("cy", "sales"), ("dee", "hr")],
    )
    dept = Relation.from_values(
        Schema.of(("dept", depts), ("budget", misc)),
        [("sales", 100), ("eng", 200), ("ops", 70)],
    )
    return emp, dept


class TestEquiJoin:
    def test_single_column(self, emp_dept):
        emp, dept = emp_dept
        result = systolic_join(emp, dept, [("dept", "dept")], tagged=True)
        assert result.relation == algebra.join(emp, dept, [("dept", "dept")])
        assert len(result.matches) == 3

    @pytest.mark.parametrize("variant", ["counter", "fixed"])
    @pytest.mark.parametrize("n_a,n_b,matches", [
        (1, 1, 0), (1, 1, 1), (6, 4, 3), (4, 6, 0), (5, 5, 5),
    ])
    def test_randomized_against_oracle(self, variant, n_a, n_b, matches):
        a, b = join_pair(n_a, n_b, matches,
                         seed=n_a * 100 + n_b * 10 + matches)
        result = systolic_join(a, b, [("key", "key")],
                               variant=variant, tagged=True)
        assert result.relation == algebra.join(a, b, [("key", "key")])
        assert len(result.matches) == matches

    def test_degenerate_full_cross(self, pair_schema):
        # §6.2: |C| can reach |A|·|B| when every pair matches.
        a = Relation(pair_schema, [(1, 10), (1, 20)])
        b = Relation(pair_schema, [(1, 30), (1, 40), (1, 50)])
        result = systolic_join(a, b, [("x", "x")])
        assert len(result.matches) == 6
        assert result.relation == algebra.join(a, b, [("x", "x")])

    def test_multi_column_join(self, triple_schema):
        # §6.3.1: one processor column per joined column pair.
        a = Relation(triple_schema, [(1, 2, 9), (1, 3, 8), (2, 2, 7)])
        b = Relation(triple_schema, [(1, 2, 100), (2, 2, 200), (1, 9, 300)])
        on = [("x", "x"), ("y", "y")]
        result = systolic_join(a, b, on, tagged=True)
        assert result.relation == algebra.join(a, b, on)
        assert sorted(result.matches) == [(0, 0), (2, 1)]

    def test_output_schema_drops_redundant_column(self, emp_dept):
        emp, dept = emp_dept
        result = systolic_join(emp, dept, [("dept", "dept")])
        assert result.relation.schema.names == ("name", "dept", "budget")

    def test_empty_side_short_circuits(self, emp_dept):
        emp, dept = emp_dept
        empty = Relation(dept.schema)
        result = systolic_join(emp, empty, [("dept", "dept")])
        assert len(result.relation) == 0
        assert result.run.pulses == 0

    def test_domain_mismatch_rejected(self, emp_dept):
        emp, dept = emp_dept
        with pytest.raises(SchemaError):
            systolic_join(emp, dept, [("name", "dept")])


class TestThetaJoin:
    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "!="])
    def test_each_operator_matches_oracle(self, op, pair_schema):
        a = Relation(pair_schema, [(1, 0), (3, 0), (5, 0)])
        b = Relation(pair_schema, [(2, 0), (4, 0)])
        result = systolic_theta_join(a, b, [("x", "x")], [op], tagged=True)
        assert result.relation == algebra.theta_join(a, b, [("x", "x")], [op])

    def test_band_join_two_conditions(self, pair_schema):
        # a.x <= b.x AND a.y >= b.y — two programmed processor columns.
        a = Relation(pair_schema, [(1, 9), (5, 2), (3, 5)])
        b = Relation(pair_schema, [(4, 4), (2, 8)])
        on = [("x", "x"), ("y", "y")]
        ops = ["<=", ">="]
        result = systolic_theta_join(a, b, on, ops, tagged=True)
        assert result.relation == algebra.theta_join(a, b, on, ops)

    def test_mixed_eq_and_inequality(self, triple_schema):
        a = Relation(triple_schema, [(1, 5, 0), (1, 2, 0), (2, 5, 0)])
        b = Relation(triple_schema, [(1, 3, 0), (2, 9, 0)])
        on = [("x", "x"), ("y", "y")]
        ops = ["==", ">"]
        result = systolic_theta_join(a, b, on, ops)
        assert result.relation == algebra.theta_join(a, b, on, ops)

    def test_fixed_variant(self, pair_schema):
        a = Relation(pair_schema, [(1, 0), (7, 0)])
        b = Relation(pair_schema, [(3, 0), (5, 0)])
        counter = systolic_theta_join(a, b, [("x", "x")], ["<"], variant="counter")
        fixed = systolic_theta_join(a, b, [("x", "x")], ["<"], variant="fixed")
        assert counter.relation == fixed.relation

    def test_ops_arity_checked(self, pair_schema):
        a = Relation(pair_schema, [(1, 0)])
        with pytest.raises(SchemaError):
            systolic_theta_join(a, a, [("x", "x")], ["<", ">"])


class TestMatchOrdering:
    def test_matches_in_exit_order(self, pair_schema):
        # Exit pulse M+i+j+c−1 orders matches by i+j then row — verify
        # the collector reports them in arrival order.
        a = Relation(pair_schema, [(1, 0), (1, 1), (1, 2)])
        b = Relation(pair_schema, [(1, 5), (1, 6)])
        result = systolic_join(a, b, [("x", "x")])
        sums = [i + j for i, j in result.matches]
        assert sums == sorted(sums)
