"""Semi-join and anti-join on the §4 membership hardware."""

import pytest

from repro.arrays.intersection import systolic_antijoin, systolic_semijoin
from repro.errors import SchemaError
from repro.relational import Relation, algebra
from repro.relational.algebra import antijoin, semijoin
from repro.workloads import join_pair, suppliers_parts_database


class TestOracles:
    def test_semijoin_keeps_matching_tuples(self):
        a, b = join_pair(8, 6, 3, seed=510)
        result = semijoin(a, b, [("key", "key")])
        joined_keys = {row[0] for row in algebra.join(a, b, [("key", "key")])}
        assert {row[0] for row in result.tuples} == joined_keys
        assert result.schema == a.schema  # A's columns only

    def test_anti_partitions_a(self):
        a, b = join_pair(9, 5, 4, seed=511)
        on = [("key", "key")]
        semi = semijoin(a, b, on)
        anti = antijoin(a, b, on)
        assert set(semi.tuples) | set(anti.tuples) == set(a.tuples)
        assert not set(semi.tuples) & set(anti.tuples)

    def test_domain_checked(self):
        a, b = join_pair(3, 3, 1, seed=512)
        with pytest.raises(SchemaError):
            semijoin(a, b, [("a0", "key")])


class TestArrays:
    @pytest.mark.parametrize("variant", ["counter", "fixed"])
    @pytest.mark.parametrize("n_a,n_b,matches", [
        (1, 1, 0), (1, 1, 1), (7, 5, 3), (5, 7, 0), (6, 6, 6),
    ])
    def test_semijoin_vs_oracle(self, variant, n_a, n_b, matches):
        a, b = join_pair(n_a, n_b, matches,
                         seed=513 + n_a * 10 + n_b + matches)
        on = [("key", "key")]
        result = systolic_semijoin(a, b, on, variant=variant, tagged=True)
        assert result.relation == semijoin(a, b, on)
        assert sum(result.t_vector) == len(result.relation)

    @pytest.mark.parametrize("variant", ["counter", "fixed"])
    def test_antijoin_vs_oracle(self, variant):
        a, b = join_pair(8, 6, 3, seed=514)
        on = [("key", "key")]
        result = systolic_antijoin(a, b, on, variant=variant, tagged=True)
        assert result.relation == antijoin(a, b, on)

    def test_empty_cases(self):
        a, b = join_pair(4, 4, 2, seed=515)
        empty_a = Relation(a.schema)
        empty_b = Relation(b.schema)
        on = [("key", "key")]
        assert len(systolic_semijoin(empty_a, b, on).relation) == 0
        assert len(systolic_semijoin(a, empty_b, on).relation) == 0
        assert systolic_antijoin(a, empty_b, on).relation == a

    def test_array_is_narrower_than_full_intersection(self):
        # Only the join columns stream through: 1 comparison column
        # (plus the accumulator), not the full tuple arity.
        a, b = join_pair(6, 6, 2, payload_arity=4, seed=516)
        result = systolic_semijoin(a, b, [("key", "key")], tagged=True)
        assert result.run.cols == 2  # key column + accumulation column


class TestDatabaseQuery:
    def test_suppliers_with_shipments(self):
        db = suppliers_parts_database()
        shipped = systolic_semijoin(
            db["S"], db["SP"], [("sno", "sno")], tagged=True
        )
        names = {row[1] for row in shipped.relation.decoded()}
        assert names == {"Smith", "Jones", "Blake", "Clark"}
        idle = systolic_antijoin(db["S"], db["SP"], [("sno", "sno")])
        assert {row[1] for row in idle.relation.decoded()} == {"Adams"}
