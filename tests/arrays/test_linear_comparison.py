"""The linear comparison array of Fig 3-1 (experiment E1)."""

import pytest

from repro.arrays import compare_tuples
from repro.errors import SimulationError
from repro.systolic.metrics import ActivityMeter


class TestOneComparison:
    def test_equal_tuples(self):
        assert compare_tuples([1, 2, 3], [1, 2, 3]).equal

    def test_unequal_first_element(self):
        assert not compare_tuples([9, 2, 3], [1, 2, 3]).equal

    def test_unequal_last_element(self):
        assert not compare_tuples([1, 2, 3], [1, 2, 9]).equal

    def test_single_element_tuples(self):
        assert compare_tuples([7], [7]).equal
        assert not compare_tuples([7], [8]).equal

    def test_result_exits_after_m_pulses(self):
        # §3.1: "after m time steps the output at the right-most
        # processor ... will be a bit indicating whether the two tuples
        # are equal" — pulse m−1 in our 0-based convention.
        for arity in (1, 2, 5, 9):
            result = compare_tuples(list(range(arity)), list(range(arity)))
            assert result.result_pulse == arity - 1
            assert result.run.pulses == arity

    def test_false_seed_guarantees_false(self):
        # §3.1's "surprising" property, used by §5.
        assert not compare_tuples([1, 2], [1, 2], seed=False).equal

    def test_ghost_tags_validate_schedule(self):
        assert compare_tuples([4, 5, 6], [4, 5, 6], tagged=True).equal

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SimulationError, match="equal arity"):
            compare_tuples([1, 2], [1])

    def test_empty_tuples_rejected(self):
        with pytest.raises(SimulationError, match="zero-arity"):
            compare_tuples([], [])

    def test_meter_shows_diagonal_activity(self):
        # Exactly one cell is busy on each pulse (the staggered wavefront).
        meter = ActivityMeter()
        compare_tuples([1, 2, 3, 4], [1, 2, 3, 4], meter=meter)
        assert all(count == 1 for count in meter.busy_pulses.values())
        assert len(meter.busy_pulses) == 4
