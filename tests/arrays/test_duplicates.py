"""Remove-duplicates, union, and projection on the §5 array (E5)."""

import pytest

from repro.arrays import (
    systolic_projection,
    systolic_remove_duplicates,
    systolic_union,
)
from repro.errors import UnionCompatibilityError
from repro.relational import Domain, MultiRelation, Relation, Schema, algebra
from repro.workloads import relation_with_duplicates


class TestRemoveDuplicates:
    def test_keeps_first_of_each_group(self, dup_multi):
        result = systolic_remove_duplicates(dup_multi, tagged=True)
        assert result.relation.tuples == ((1, 1), (2, 2), (3, 3))
        # drop vector marks exactly the later duplicates
        assert result.drop_vector == [False, False, True, False, True, True]

    def test_no_duplicates_is_identity(self, pair_schema):
        multi = MultiRelation(pair_schema, [(1, 2), (3, 4)])
        result = systolic_remove_duplicates(multi)
        assert result.relation.tuples == ((1, 2), (3, 4))
        assert result.drop_vector == [False, False]

    def test_all_identical(self, pair_schema):
        multi = MultiRelation(pair_schema, [(5, 5)] * 4)
        result = systolic_remove_duplicates(multi, tagged=True)
        assert len(result.relation) == 1
        assert result.drop_vector == [False, True, True, True]

    def test_single_tuple(self, pair_schema):
        multi = MultiRelation(pair_schema, [(1, 2)])
        assert len(systolic_remove_duplicates(multi).relation) == 1

    def test_empty_multi_relation(self, pair_schema):
        result = systolic_remove_duplicates(MultiRelation(pair_schema))
        assert len(result.relation) == 0
        assert result.run.pulses == 0

    @pytest.mark.parametrize("variant", ["counter", "fixed"])
    @pytest.mark.parametrize("n,dup", [(4, 1.0), (5, 2.0), (3, 3.0)])
    def test_randomized_against_oracle(self, variant, n, dup):
        multi = relation_with_duplicates(n, dup, arity=2,
                                         seed=int(n * 10 + dup))
        result = systolic_remove_duplicates(multi, variant=variant, tagged=True)
        assert result.relation == algebra.remove_duplicates(multi)

    def test_idempotent(self, dup_multi):
        once = systolic_remove_duplicates(dup_multi).relation
        twice = systolic_remove_duplicates(once.to_multi()).relation
        assert once == twice


class TestUnion:
    def test_union_via_concatenation(self, small_pair):
        a, b = small_pair
        result = systolic_union(a, b, tagged=True)
        assert result.relation == algebra.union(a, b)

    def test_union_of_identical_relations(self, pair_schema):
        a = Relation(pair_schema, [(1, 2), (3, 4)])
        assert systolic_union(a, a).relation == a

    def test_union_with_empty(self, pair_schema):
        a = Relation(pair_schema, [(1, 2)])
        assert systolic_union(a, Relation(pair_schema)).relation == a
        assert systolic_union(Relation(pair_schema), a).relation == a

    def test_union_requires_compatibility(self, pair_schema):
        other = Schema.of(("x", Domain("zzz")), ("y", Domain("zzz")))
        with pytest.raises(UnionCompatibilityError):
            systolic_union(
                Relation(pair_schema, [(1, 2)]), Relation(other, [(1, 2)])
            )

    def test_union_commutes_as_sets(self, small_pair):
        a, b = small_pair
        assert systolic_union(a, b).relation == systolic_union(b, a).relation


class TestProjection:
    def test_projection_drops_columns_and_dedups(self, pair_schema):
        r = Relation(pair_schema, [(1, 10), (1, 20), (2, 30)])
        result = systolic_projection(r, ["x"], tagged=True)
        assert result.relation.tuples == ((1,), (2,))
        assert result.relation.schema.names == ("x",)

    def test_projection_no_duplicates_created(self, pair_schema):
        r = Relation(pair_schema, [(1, 10), (2, 20)])
        assert len(systolic_projection(r, ["y"]).relation) == 2

    def test_projection_reorders(self, pair_schema):
        r = Relation(pair_schema, [(1, 10)])
        assert systolic_projection(r, ["y", "x"]).relation.tuples == ((10, 1),)

    def test_projection_matches_oracle(self, triple_schema):
        r = Relation(
            triple_schema,
            [(1, 2, 3), (1, 2, 4), (1, 5, 3), (2, 2, 3)],
        )
        for columns in (["x"], ["x", "y"], ["z", "x"], [0, 1, 2]):
            assert systolic_projection(r, columns).relation == (
                algebra.project(r, columns)
            )

    def test_projection_of_multirelation(self, dup_multi):
        result = systolic_projection(dup_multi, ["x"])
        assert result.relation.tuples == ((1,), (2,), (3,))
