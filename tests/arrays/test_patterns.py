"""The §8 pattern-match chip (the fabricated scaled-down array)."""

import pytest

from repro.errors import SimulationError
from repro.patterns import WILDCARD, PatternCell, match_pattern
from repro.systolic.values import tok


def reference_matches(text: str, pattern: str, wildcard: str = "?") -> list[int]:
    positions = []
    for i in range(len(text) - len(pattern) + 1):
        if all(
            p == wildcard or text[i + k] == p
            for k, p in enumerate(pattern)
        ):
            positions.append(i)
    return positions


class TestPatternCell:
    def test_match_and_chain(self):
        cell = PatternCell("p", ord("a"))
        out = cell.step({"c_in": tok(ord("a")), "r_in": tok(True)})
        assert out["r_out"].value is True

    def test_mismatch_forces_false(self):
        cell = PatternCell("p", ord("a"))
        out = cell.step({"c_in": tok(ord("b")), "r_in": tok(True)})
        assert out["r_out"].value is False

    def test_false_in_false_out(self):
        cell = PatternCell("p", ord("a"))
        out = cell.step({"c_in": tok(ord("a")), "r_in": tok(False)})
        assert out["r_out"].value is False

    def test_wildcard_matches_anything(self):
        cell = PatternCell("p", WILDCARD)
        out = cell.step({"c_in": tok(ord("z")), "r_in": tok(True)})
        assert out["r_out"].value is True

    def test_character_passes_through(self):
        cell = PatternCell("p", ord("a"))
        out = cell.step({"c_in": tok(ord("q")), "r_in": None})
        assert out["c_out"].value == ord("q")
        assert "r_out" not in out

    def test_result_without_character_is_violation(self):
        cell = PatternCell("p", ord("a"))
        with pytest.raises(SimulationError, match="misaligned"):
            cell.step({"c_in": None, "r_in": tok(True)})


class TestMatcher:
    @pytest.mark.parametrize("text,pattern", [
        ("abracadabra", "abra"),
        ("abracadabra", "a"),
        ("aaaa", "aa"),
        ("mississippi", "issi"),
        ("mississippi", "zz"),
        ("ab", "ab"),
    ])
    def test_exact_matching(self, text, pattern):
        result = match_pattern(text, pattern, wildcard=None)
        assert result.matches == reference_matches(text, pattern, wildcard="\0")

    @pytest.mark.parametrize("text,pattern", [
        ("abracadabra", "a?a"),
        ("abcabc", "??c"),
        ("xyz", "???"),
        ("banana", "?an"),
    ])
    def test_wildcard_matching(self, text, pattern):
        result = match_pattern(text, pattern)
        assert result.matches == reference_matches(text, pattern)

    def test_overlapping_matches_found(self):
        assert match_pattern("aaaa", "aa").matches == [0, 1, 2]

    def test_bits_cover_all_alignments(self):
        result = match_pattern("abcde", "cd")
        assert len(result.bits) == 4
        assert result.bits == [False, False, True, False]

    def test_integer_sequences(self):
        result = match_pattern([1, 2, 3, 1, 2], [1, 2])
        assert result.matches == [0, 3]

    def test_integer_with_wildcard(self):
        result = match_pattern([1, 2, 3, 1, 9, 3], [1, WILDCARD, 3])
        assert result.matches == [0, 3]

    def test_pattern_longer_than_text_rejected(self):
        with pytest.raises(SimulationError, match="shorter"):
            match_pattern("ab", "abc")

    def test_empty_pattern_rejected(self):
        with pytest.raises(SimulationError, match="non-empty"):
            match_pattern("abc", "")

    def test_single_character_pattern(self):
        result = match_pattern("abcabc", "b")
        assert result.matches == [1, 4]
        assert result.run.cells == 1  # no latches needed

    def test_run_geometry(self):
        result = match_pattern("abcdef", "cde")
        assert result.run.cells == 2 * 3 - 1  # m cells + m-1 latches
        # Last alignment (i=3) exits at pulse 3 + 2·(m−1) = 7.
        assert result.run.pulses == 8
