"""Blocked execution on fixed-size devices — §8's decomposition (E10)."""

import pytest

from repro.arrays import (
    ArrayCapacity,
    blocked_difference,
    blocked_divide,
    blocked_intersection,
    blocked_join,
    blocked_pair_matrix,
    blocked_remove_duplicates,
    blocked_union,
)
from repro.errors import CapacityError
from repro.relational import MultiRelation, Relation, algebra
from repro.workloads import (
    division_example,
    join_pair,
    overlapping_pair,
    relation_with_duplicates,
)

TINY = ArrayCapacity(max_rows=3, max_cols=1)    # 2-tuple blocks, 1 column
SMALL = ArrayCapacity(max_rows=5, max_cols=2)   # 3-tuple blocks, 2 columns
BIG = ArrayCapacity(max_rows=99, max_cols=16)   # everything fits


class TestCapacity:
    def test_tuple_block_from_rows(self):
        assert ArrayCapacity(max_rows=5, max_cols=1).tuple_block == 3
        assert ArrayCapacity(max_rows=6, max_cols=1).tuple_block == 3
        assert ArrayCapacity(max_rows=7, max_cols=1).tuple_block == 4

    def test_positive_required(self):
        with pytest.raises(CapacityError):
            ArrayCapacity(max_rows=0, max_cols=1)


class TestBlockedMatrix:
    def test_matrix_identical_to_unblocked(self):
        a, b = overlapping_pair(7, 6, 3, arity=3, seed=5)
        full, _ = blocked_pair_matrix(a.tuples, b.tuples, BIG)
        tiny, report = blocked_pair_matrix(a.tuples, b.tuples, TINY)
        assert full == tiny
        assert report.block_runs == report.a_blocks * report.b_blocks * 3
        assert report.column_blocks == 3  # arity 3, 1 column per block

    def test_block_count_arithmetic(self):
        a, b = overlapping_pair(7, 6, 0, arity=2, seed=6)
        _, report = blocked_pair_matrix(a.tuples, b.tuples, SMALL)
        assert report.a_blocks == 3   # ceil(7/3)
        assert report.b_blocks == 2   # ceil(6/3)
        assert report.column_blocks == 1

    def test_masking_applies_at_global_indices(self):
        tuples = [(1, 1)] * 5  # all identical
        matrix, _ = blocked_pair_matrix(
            tuples, tuples, TINY, t_init=lambda i, j: j < i
        )
        for i in range(5):
            for j in range(5):
                assert matrix[i][j] is (j < i)


class TestBlockedOperators:
    def test_intersection(self):
        a, b = overlapping_pair(9, 7, 4, arity=3, seed=7)
        result, report = blocked_intersection(a, b, TINY)
        assert result == algebra.intersection(a, b)
        assert report.block_runs > 1

    def test_difference(self):
        a, b = overlapping_pair(8, 5, 2, arity=2, seed=8)
        result, _ = blocked_difference(a, b, SMALL)
        assert result == algebra.difference(a, b)

    def test_difference_empty_cases(self, pair_schema):
        a = Relation(pair_schema, [(1, 2)])
        empty = Relation(pair_schema)
        assert blocked_difference(a, empty, TINY)[0] == a
        assert len(blocked_difference(empty, a, TINY)[0]) == 0

    def test_remove_duplicates(self):
        multi = relation_with_duplicates(5, 2.4, arity=2, seed=9)
        result, _ = blocked_remove_duplicates(multi, TINY)
        assert result == algebra.remove_duplicates(multi)

    def test_union(self):
        a, b = overlapping_pair(6, 6, 2, arity=2, seed=10)
        result, _ = blocked_union(a, b, SMALL)
        assert result == algebra.union(a, b)

    def test_join(self):
        a, b = join_pair(8, 7, 4, seed=11)
        result, report = blocked_join(a, b, [("key", "key")], TINY)
        assert result == algebra.join(a, b, [("key", "key")])
        assert report.block_runs == report.a_blocks * report.b_blocks

    def test_multi_column_join_with_column_blocking(self, triple_schema):
        a = Relation(triple_schema, [(1, 2, 0), (1, 3, 0), (2, 2, 0)])
        b = Relation(triple_schema, [(1, 2, 9), (2, 2, 9)])
        on = [("x", "x"), ("y", "y")]
        result, report = blocked_join(a, b, on, TINY)
        assert result == algebra.join(a, b, on)
        assert report.column_blocks == 2

    def test_theta_join(self, pair_schema):
        a = Relation(pair_schema, [(1, 0), (5, 0), (9, 0)])
        b = Relation(pair_schema, [(4, 0), (6, 0)])
        result, _ = blocked_join(a, b, [("x", "x")], TINY, ops=["<"])
        assert result == algebra.theta_join(a, b, [("x", "x")], ["<"])

    def test_divide(self):
        a, b, expected = division_example()
        result, report = blocked_divide(a, b, ArrayCapacity(max_rows=2, max_cols=4))
        assert result == expected
        assert report.a_blocks == 2  # 3 distinct x over 2-row device
        assert report.b_blocks == 2  # 4 divisor values over 2 columns

    def test_divide_needs_three_columns(self):
        a, b, _ = division_example()
        with pytest.raises(CapacityError, match="3 processor columns"):
            blocked_divide(a, b, ArrayCapacity(max_rows=8, max_cols=2))

    def test_empty_inputs(self, pair_schema):
        empty = Relation(pair_schema)
        full = Relation(pair_schema, [(1, 2)])
        assert len(blocked_intersection(empty, full, TINY)[0]) == 0
        assert len(blocked_join(empty, full, [("x", "x")], TINY)[0]) == 0
        assert len(
            blocked_remove_duplicates(MultiRelation(pair_schema), TINY)[0]
        ) == 0


class TestOverheadShape:
    def test_smaller_device_means_more_runs_and_pulses(self):
        a, b = overlapping_pair(10, 10, 5, arity=2, seed=12)
        _, small_report = blocked_intersection(a, b, TINY)
        _, big_report = blocked_intersection(a, b, BIG)
        assert small_report.block_runs > big_report.block_runs
        assert small_report.total_pulses > big_report.total_pulses
