"""The intersection array of Fig 4-1 and its difference mode (E3, E4)."""

import pytest

from repro.arrays import (
    systolic_difference,
    systolic_intersection,
    systolic_membership_vector,
)
from repro.errors import SimulationError, UnionCompatibilityError
from repro.relational import Relation, algebra
from repro.workloads import overlapping_pair, three_by_three_pair


class TestIntersectionSemantics:
    def test_paper_running_example(self):
        a, b = three_by_three_pair()
        result = systolic_intersection(a, b, tagged=True)
        assert result.relation == algebra.intersection(a, b)
        assert result.t_vector == [False, True, False]

    @pytest.mark.parametrize("variant", ["counter", "fixed"])
    @pytest.mark.parametrize("n_a,n_b,overlap", [
        (1, 1, 0), (1, 1, 1), (5, 3, 2), (3, 5, 3), (8, 8, 0), (6, 6, 6),
    ])
    def test_randomized_against_oracle(self, variant, n_a, n_b, overlap):
        a, b = overlapping_pair(n_a, n_b, overlap, arity=2,
                                seed=n_a * 100 + n_b * 10 + overlap)
        result = systolic_intersection(a, b, variant=variant, tagged=True)
        assert result.relation == algebra.intersection(a, b)
        assert sum(result.t_vector) == overlap

    def test_duplicate_b_tuples_do_not_double_count(self, pair_schema):
        a = Relation(pair_schema, [(1, 1)])
        b = Relation(pair_schema, [(1, 1), (2, 2)])
        result = systolic_intersection(a, b)
        assert result.t_vector == [True]

    def test_empty_operands_short_circuit(self, pair_schema):
        empty = Relation(pair_schema)
        full = Relation(pair_schema, [(1, 2)])
        assert len(systolic_intersection(empty, full).relation) == 0
        assert len(systolic_intersection(full, empty).relation) == 0
        assert systolic_intersection(empty, full).run.pulses == 0

    def test_union_compatibility_enforced(self, pair_schema, triple_schema):
        a = Relation(pair_schema, [(1, 2)])
        b = Relation(triple_schema, [(1, 2, 3)])
        with pytest.raises(UnionCompatibilityError):
            systolic_intersection(a, b)


class TestDifferenceSemantics:
    def test_paper_remark(self):
        # §4.3: difference keeps exactly the FALSE-t_i tuples.
        a, b = three_by_three_pair()
        inter = systolic_intersection(a, b)
        diff = systolic_difference(a, b)
        assert diff.t_vector == inter.t_vector  # same hardware output
        assert len(diff.relation) + len(inter.relation) == len(a)

    @pytest.mark.parametrize("variant", ["counter", "fixed"])
    def test_randomized_against_oracle(self, variant):
        a, b = overlapping_pair(7, 5, 3, arity=3, seed=42)
        result = systolic_difference(a, b, variant=variant, tagged=True)
        assert result.relation == algebra.difference(a, b)

    def test_difference_with_empty_subtrahend(self, pair_schema):
        a = Relation(pair_schema, [(1, 2), (3, 4)])
        result = systolic_difference(a, Relation(pair_schema))
        assert result.relation == a

    def test_empty_minuend(self, pair_schema):
        result = systolic_difference(Relation(pair_schema),
                                     Relation(pair_schema, [(1, 2)]))
        assert len(result.relation) == 0


class TestOperationalDetail:
    def test_completion_time_matches_schedule(self):
        a, b = overlapping_pair(5, 5, 2, arity=2, seed=9)
        result = systolic_intersection(a, b)
        from repro.arrays.schedule import CounterStreamSchedule

        schedule = CounterStreamSchedule(len(a), len(b), a.arity)
        assert result.run.pulses == schedule.total_pulses

    def test_fixed_variant_finishes_sooner(self):
        a, b = overlapping_pair(8, 8, 4, arity=2, seed=10)
        counter = systolic_intersection(a, b, variant="counter")
        fixed = systolic_intersection(a, b, variant="fixed")
        assert fixed.relation == counter.relation
        assert fixed.run.pulses < counter.run.pulses
        assert fixed.run.rows < counter.run.rows

    def test_unknown_variant_rejected(self):
        a, b = overlapping_pair(2, 2, 1, arity=1, seed=1)
        with pytest.raises(SimulationError, match="unknown variant"):
            systolic_intersection(a, b, variant="sideways")

    def test_membership_vector_alone(self):
        a, b = overlapping_pair(4, 4, 2, arity=2, seed=3)
        vector, run = systolic_membership_vector(a, b, tagged=True)
        expected = [tuple(t) in set(b.tuples) for t in a.tuples]
        assert vector == expected
        assert run.cells == run.rows * run.cols
