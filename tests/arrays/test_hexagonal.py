"""The hexagonally connected alternative of §2.1 (ref [5])."""

import pytest

from repro.arrays import compare_all_pairs
from repro.arrays.hexagonal import (
    BOOLEAN_SEMIRING,
    COMPARISON_SEMIRING,
    HexCell,
    U_A,
    U_B,
    U_C,
    _a_start,
    _b_start,
    _c_start,
    _meeting_cell,
    hex_compare_all_pairs,
    hex_matrix_product,
)
from repro.errors import SimulationError
from repro.systolic.values import tok
from repro.workloads import overlapping_pair, three_by_three_pair


class TestScheduleGeometry:
    def test_directions_sum_to_zero(self):
        # The defining property of the hexagonal axes.
        total = tuple(a + b + c for a, b, c in zip(U_A, U_B, U_C))
        assert total == (0, 0)

    def test_triples_meet(self):
        # a[i][k], b[k][j], c[i][j] coincide at pulse i + j + k.
        for i in range(3):
            for j in range(3):
                for k in range(3):
                    t = i + j + k
                    pa = tuple(s + t * d for s, d in zip(_a_start(i, k), U_A))
                    pb = tuple(s + t * d for s, d in zip(_b_start(k, j), U_B))
                    pc = tuple(s + t * d for s, d in zip(_c_start(i, j), U_C))
                    assert pa == pb == pc == _meeting_cell(i, j, k)

    def test_start_positions_injective_per_stream(self):
        # No two same-stream tokens are ever co-resident: same velocity
        # plus distinct starts.
        a_starts = {_a_start(i, k) for i in range(5) for k in range(5)}
        b_starts = {_b_start(k, j) for k in range(5) for j in range(5)}
        c_starts = {_c_start(i, j) for i in range(5) for j in range(5)}
        assert len(a_starts) == len(b_starts) == len(c_starts) == 25

    def test_only_scheduled_triples_coincide(self):
        # Exhaustively: whenever an a, b, and c token share a cell at a
        # pulse, their indices form a scheduled (i, j, k) triple.
        n = 3
        horizon = 3 * (n - 1)
        occupancy = {}
        for i in range(n):
            for k in range(n):
                for t in range(horizon + 1):
                    pos = tuple(s + t * d for s, d in zip(_a_start(i, k), U_A))
                    occupancy.setdefault((pos, t), {})["a"] = (i, k)
        for k in range(n):
            for j in range(n):
                for t in range(horizon + 1):
                    pos = tuple(s + t * d for s, d in zip(_b_start(k, j), U_B))
                    occupancy.setdefault((pos, t), {})["b"] = (k, j)
        for i in range(n):
            for j in range(n):
                for t in range(i + j + n):
                    pos = tuple(s + t * d for s, d in zip(_c_start(i, j), U_C))
                    occupancy.setdefault((pos, t), {})["c"] = (i, j)
        for (pos, t), streams in occupancy.items():
            if len(streams) == 3:
                (i, k) = streams["a"]
                (k2, j) = streams["b"]
                (i2, j2) = streams["c"]
                assert (i, j, k) == (i2, j2, k2)
                assert t == i + j + k


class TestHexCell:
    def test_semiring_step(self):
        cell = HexCell("h", COMPARISON_SEMIRING)
        out = cell.step({"a_in": tok(5), "b_in": tok(5), "c_in": tok(True)})
        assert out["c_out"].value is True
        out = cell.step({"a_in": tok(5), "b_in": tok(6), "c_in": tok(True)})
        assert out["c_out"].value is False

    def test_pass_through_without_meeting(self):
        cell = HexCell("h", COMPARISON_SEMIRING)
        out = cell.step({"a_in": tok(5), "b_in": None, "c_in": tok(True)})
        assert out["c_out"].value is True  # c unchanged
        assert out["a_out"].value == 5

    def test_unscheduled_triple_detected_by_tags(self):
        cell = HexCell("h", COMPARISON_SEMIRING)
        with pytest.raises(SimulationError, match="unscheduled triple"):
            cell.step({
                "a_in": tok(5, ("a", 0, 0)),
                "b_in": tok(5, ("b", 1, 0)),  # wrong k
                "c_in": tok(True, ("c", 0, 0)),
            })


class TestHexComparison:
    def test_paper_example(self):
        a, b = three_by_three_pair()
        result = hex_compare_all_pairs(a.tuples, b.tuples)
        orthogonal = compare_all_pairs(a.tuples, b.tuples)
        assert result.t_matrix == orthogonal.t_matrix

    @pytest.mark.parametrize("n_a,n_b,arity", [(1, 1, 1), (2, 4, 2), (4, 2, 3)])
    def test_shapes(self, n_a, n_b, arity):
        a, b = overlapping_pair(n_a, n_b, min(n_a, n_b) // 2, arity=arity,
                                seed=n_a * 10 + n_b)
        hex_result = hex_compare_all_pairs(a.tuples, b.tuples)
        ortho = compare_all_pairs(a.tuples, b.tuples)
        assert hex_result.t_matrix == ortho.t_matrix

    def test_finishes_in_linear_pulses(self):
        a, b = overlapping_pair(5, 5, 2, arity=3, seed=9)
        result = hex_compare_all_pairs(a.tuples, b.tuples)
        assert result.run.pulses == (5 - 1) + (5 - 1) + (3 - 1) + 1

    def test_peak_firing_at_most_a_third(self):
        # Kung–Leiserson: the hex design keeps ≤ 1/3 of cells active.
        a, b = overlapping_pair(4, 4, 2, arity=3, seed=10)
        result = hex_compare_all_pairs(a.tuples, b.tuples)
        assert result.peak_firing <= result.run.cells / 3

    def test_empty_rejected(self):
        with pytest.raises(SimulationError, match="non-empty"):
            hex_compare_all_pairs([], [(1,)])


class TestOtherSemirings:
    def test_boolean_matrix_product(self):
        A = [[1, 0, 1], [0, 0, 1], [1, 1, 0]]
        B = [[0, 1, 0], [1, 0, 0], [0, 0, 1]]
        b_cols = [[B[k][j] for k in range(3)] for j in range(3)]
        result = hex_matrix_product(A, b_cols, BOOLEAN_SEMIRING)
        expected = [
            [bool(sum(A[i][k] * B[k][j] for k in range(3))) for j in range(3)]
            for i in range(3)
        ]
        assert [[bool(v) for v in row] for row in result.t_matrix] == expected

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(SimulationError, match="inner dimension"):
            hex_matrix_product([[1, 2]], [[1]], BOOLEAN_SEMIRING)
