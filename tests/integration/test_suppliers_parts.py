"""Codd's suppliers-and-parts queries across every execution path.

The canonical workload of the paper's reference [1], answered four
ways — reference algebra, pulse-level arrays, the expression language,
and the Fig 9-1 machine — which must all agree.
"""

import pytest

from repro.lang import execute_plan, optimize, parse
from repro.machine import SystolicDatabaseMachine
from repro.relational import algebra
from repro.workloads.suppliers_parts import suppliers_parts_database


@pytest.fixture(scope="module")
def db():
    return suppliers_parts_database()


def everywhere(source: str, db) -> list:
    """Run a query on software, systolic, optimized, and machine paths."""
    plan = parse(source)
    results = [
        execute_plan(plan, db, "software"),
        execute_plan(plan, db, "systolic"),
        execute_plan(optimize(plan), db, "software"),
    ]
    machine = SystolicDatabaseMachine()
    for name, relation in db.items():
        machine.store(name, relation)
    machine_result, _ = machine.run(plan)
    results.append(machine_result)
    first = results[0]
    assert all(result == first for result in results[1:])
    return sorted(first.decoded())


class TestClassicQueries:
    def test_supplier_names_in_paris(self, db):
        # σ city='Paris' then project — on the machine the selection
        # can ride a logic-per-track read.
        paris = db["S"].schema.column("city").domain.encode("Paris")
        rows = everywhere(f"project(select(S, city == {paris}), sname)", db)
        assert rows == [("Blake",), ("Jones",)]

    def test_suppliers_who_ship_p2(self, db):
        p2 = db["P"].schema.column("pno").domain.encode("P2")
        rows = everywhere(
            f"project(select(SP, pno == {p2}), sno)", db,
        )
        assert rows == [("S1",), ("S2",), ("S3",), ("S4",)]

    def test_supplier_part_city_pairs(self, db):
        rows = everywhere(
            "project(join(SP, S, sno == sno), pno, city)", db
        )
        assert ("P1", "London") in rows
        assert ("P2", "Paris") in rows

    def test_suppliers_supplying_all_parts(self, db):
        # The famous division: only S1 ships every part.
        rows = everywhere(
            "divide(project(SP, sno, pno), project(P, pno), "
            "group = sno, value = pno, by = pno)",
            db,
        )
        assert rows == [("S1",)]

    def test_suppliers_shipping_nothing(self, db):
        rows = everywhere(
            "difference(project(S, sno), project(SP, sno))", db
        )
        assert rows == [("S5",)]

    def test_cities_with_suppliers_or_parts(self, db):
        rows = everywhere(
            "union(project(S, city), project(P, city))", db
        )
        assert rows == [("Athens",), ("London",), ("Oslo",), ("Paris",)]

    def test_cities_with_both(self, db):
        rows = everywhere(
            "intersect(project(S, city), project(P, city))", db
        )
        assert rows == [("London",), ("Paris",)]

    def test_heavy_parts_by_theta_join(self, db):
        # Parts strictly heavier than some other part named 'Screw'.
        rows = everywhere(
            "project(join(P, select(P, pname == {screw}), weight > weight),"
            " pno)".format(
                screw=db["P"].schema.column("pname").domain.encode("Screw")
            ),
            db,
        )
        # Screws weigh 17 and 14; heavier-than-some-screw: >14 → P2 P3 P6 (17,17,19)
        assert rows == [("P2",), ("P3",), ("P6",)]
