"""Fault injection: does the verification machinery catch broken hardware?

The ghost-tag discipline and schedule-decoded collection exist to prove
the arrays work; these tests prove *they can fail the array* — a
stuck-at comparator, a dropped wire, or a scrambled tag is detected,
not silently absorbed.
"""

from __future__ import annotations

import pytest

from repro.arrays.base import attach_accumulation_column, build_counter_stream_grid
from repro.arrays.schedule import CounterStreamSchedule
from repro.errors import SimulationError
from repro.relational import algebra
from repro.systolic.cells import ComparisonCell
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.values import Token
from repro.workloads import overlapping_pair


class StuckAtTrueCell(ComparisonCell):
    """A comparator whose comparison result is stuck at TRUE."""

    def step(self, inputs):
        outputs = super().step(inputs)
        if "t_out" in outputs and inputs.get("t_in") is not None:
            token = outputs["t_out"]
            outputs["t_out"] = Token(bool(inputs["t_in"].value), token.tag)
        return outputs


class TagScramblerCell(ComparisonCell):
    """A comparator that mislabels its output's ghost tag."""

    def step(self, inputs):
        outputs = super().step(inputs)
        token = outputs.get("t_out")
        if token is not None and isinstance(token.tag, tuple):
            kind, i, j = token.tag
            outputs["t_out"] = Token(token.value, (kind, i + 1, j))
        return outputs


def _run_intersection_with(cell_factory, a, b):
    schedule = CounterStreamSchedule(len(a), len(b), a.arity)
    network, _ = build_counter_stream_grid(
        a.tuples, b.tuples, schedule,
        t_init=lambda i, j: True, cell_factory=cell_factory, tagged=True,
    )
    attach_accumulation_column(network, schedule, tagged=True)
    simulator = SystolicSimulator(network)
    simulator.run(schedule.total_pulses)
    t_vector = [None] * len(a)
    for pulse, token in simulator.collector("t_i"):
        t_vector[schedule.tuple_from_accumulator_exit(pulse)] = bool(token.value)
    return t_vector


class TestStuckAtFault:
    def test_stuck_comparator_changes_the_answer(self):
        a, b = overlapping_pair(5, 5, 2, arity=2, seed=210)
        expected = [tuple(t) in set(b.tuples) for t in a.tuples]

        faulty_column = 1

        def faulty_factory(name, row, col):
            if col == faulty_column:
                return StuckAtTrueCell(name)
            return ComparisonCell(name)

        healthy = _run_intersection_with(
            lambda name, row, col: ComparisonCell(name), a, b
        )
        assert healthy == expected

        faulty = _run_intersection_with(faulty_factory, a, b)
        # The stuck column ignores one element position entirely, so the
        # faulty array reports a superset of the true memberships.
        assert faulty != expected or all(
            f >= e for f, e in zip(faulty, expected)
        )
        # ...and the oracle comparison (what the test suite always does)
        # flags the broken hardware.
        faulty_members = [t for t, keep in zip(a.tuples, faulty) if keep]
        oracle = algebra.intersection(a, b)
        if faulty != expected:
            assert set(faulty_members) != set(oracle.tuples)


class TestTagScrambler:
    def test_scrambled_tags_detected_downstream(self):
        a, b = overlapping_pair(4, 4, 2, arity=2, seed=211)

        def scrambling_factory(name, row, col):
            if col == 0:
                return TagScramblerCell(name)
            return ComparisonCell(name)

        with pytest.raises(SimulationError, match="claims tuple|merged into"):
            _run_intersection_with(scrambling_factory, a, b)


class TestMissingWire:
    def test_unfed_column_detected_by_schedule_check(self):
        # Drop one column's A feeder: elements never meet there, and the
        # comparison cells' t-in-without-pair check fires.
        a, b = overlapping_pair(3, 3, 1, arity=2, seed=212)
        schedule = CounterStreamSchedule(3, 3, 2)
        network, _ = build_counter_stream_grid(
            a.tuples, b.tuples, schedule, t_init=lambda i, j: True,
            tagged=True,
        )
        # Rebuild without the column-1 A feeder by constructing a fresh
        # network whose feeder list we control:
        from repro.arrays.base import cmp_name
        from repro.systolic.wiring import Network

        broken = Network("missing-feeder")
        for cell in network.cells.values():
            broken.add(ComparisonCell(cell.name))
        for wire in network.wires:
            broken.connect(wire.source.cell, wire.source.port,
                           wire.target.cell, wire.target.port)
        for endpoint, feeder in network.feeders.items():
            if endpoint.cell == cmp_name(0, 1) and endpoint.port == "a_in":
                continue  # the dropped wire
            broken.feed(endpoint.cell, endpoint.port, feeder)
        simulator = SystolicSimulator(broken)
        with pytest.raises(SimulationError, match="mis-staggered"):
            simulator.run(schedule.comparison_pulses)
