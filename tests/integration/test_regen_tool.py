"""The EXPERIMENTS.md regeneration tool's table extractor."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
from regen_experiments import extract_tables  # noqa: E402


def box(title: str, rows: list[str]) -> str:
    rule = "=" * 30
    header = "     | paper | measured"
    dashes = "-----+-------+---------"
    return "\n".join([rule, title, rule, header, dashes] + rows + [rule])


class TestExtraction:
    def test_single_box(self):
        output = "noise\n" + box("E1 linear array", ["row  |  1 |  1"]) + "\n.\n"
        tables = extract_tables(output)
        assert len(tables) == 1
        assert "E1 linear array" in tables[0]
        assert "row" in tables[0]

    def test_junk_titles_filtered(self):
        output = "\n".join([
            "=" * 10, ".", "=" * 10,   # a pytest pass-dot, not a table
            box("E2 real", ["r | 1 | 1"]),
        ])
        tables = extract_tables(output)
        assert len(tables) == 1
        assert "E2 real" in tables[0]

    def test_tables_sorted_by_experiment_id(self):
        output = "\n".join([
            box("E10 later", ["r | 1 | 1"]),
            box("E2b middle", ["r | 1 | 1"]),
            box("E2  early", ["r | 1 | 1"]),
            box("ABL3 ablation", ["r | 1 | 1"]),
        ])
        tables = extract_tables(output)
        titles = [t.splitlines()[1] for t in tables]
        assert titles == ["E2  early", "E2b middle", "E10 later",
                          "ABL3 ablation"]

    def test_box_without_table_rows_dropped(self):
        rule = "=" * 10
        output = "\n".join([rule, "just a banner", rule])
        assert extract_tables(output) == []

    def test_live_experiments_file_is_complete(self):
        text = (Path(__file__).resolve().parents[2] / "EXPERIMENTS.md").read_text()
        # Every core experiment and every extension appears.
        for experiment in [f"E{n}" for n in range(1, 19)] + [
            "ABL1", "ABL2", "ABL3", "ABL4",
        ]:
            assert f"\n{experiment}" in text or f" {experiment}" in text, (
                f"{experiment} missing from EXPERIMENTS.md"
            )
        assert "reproduced" in text
