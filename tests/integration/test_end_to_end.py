"""Cross-subsystem integration: language → machine → arrays → results."""

import pytest

from repro.lang import execute_plan, parse
from repro.machine import MachineDisk, SystolicDatabaseMachine, TreeMachine
from repro.relational import Domain, Relation, Schema, algebra
from repro.workloads import division_example


@pytest.fixture
def university():
    """A small university database exercising every operator."""
    students = Domain("student")
    courses = Domain("course")
    grades = Domain("grade")
    enrolled = Relation.from_values(
        Schema.of(("student", students), ("course", courses)),
        [
            ("ana", "db"), ("ana", "os"), ("ana", "nets"),
            ("ben", "db"), ("ben", "os"),
            ("cam", "db"), ("cam", "os"), ("cam", "nets"),
        ],
    )
    required = Relation.from_values(
        Schema.of(("course", courses)),
        [("db",), ("os",), ("nets",)],
    )
    results = Relation.from_values(
        Schema.of(("student", students), ("grade", grades)),
        [("ana", 95), ("ben", 80), ("cam", 88)],
    )
    return {"ENROLLED": enrolled, "REQUIRED": required, "RESULTS": results}


class TestQueryThroughEveryEngine:
    def test_who_completed_all_requirements(self, university):
        source = "divide(ENROLLED, REQUIRED, group = student, value = course, by = course)"
        software = execute_plan(parse(source), university, "software")
        systolic = execute_plan(parse(source), university, "systolic")
        assert software == systolic
        names = {row[0] for row in software.decoded()}
        assert names == {"ana", "cam"}

    def test_join_then_project_all_engines(self, university):
        source = "project(join(ENROLLED, RESULTS, student == student), student, grade)"
        plan = parse(source)
        software = execute_plan(plan, university, "software")
        systolic = execute_plan(plan, university, "systolic")

        machine = SystolicDatabaseMachine()
        for name, relation in university.items():
            machine.store(name, relation)
        machine_result, report = machine.run(plan)

        assert software == systolic == machine_result
        assert report.makespan > 0

    def test_machine_transaction_with_every_device(self, university):
        machine = SystolicDatabaseMachine(disk=MachineDisk(logic_per_track=True))
        for name, relation in university.items():
            machine.store(name, relation)
        plans = [
            parse("intersect(ENROLLED, ENROLLED)"),
            parse("join(ENROLLED, RESULTS, student == student)"),
            parse("divide(ENROLLED, REQUIRED, group = student, value = course, by = course)"),
        ]
        results, report = machine.run_many(plans)
        assert results[0] == university["ENROLLED"]
        assert len(results[1]) == 8
        assert len(results[2]) == 2
        used = {step.device for step in report.steps}
        assert {"disk", "comparison0", "join0", "division0"} <= used


class TestArchitectureComparison:
    def test_tree_machine_agrees_with_arrays(self, university):
        enrolled = university["ENROLLED"]
        tree = TreeMachine(leaves=16)
        run = tree.intersection(enrolled, enrolled)
        assert run.relation == enrolled

    def test_fig_71_on_all_paths(self):
        a, b, expected = division_example()
        from repro.arrays import blocked_divide, systolic_divide, ArrayCapacity

        direct = systolic_divide(a, b).relation
        blocked, _ = blocked_divide(a, b, ArrayCapacity(max_rows=2, max_cols=3))
        software = algebra.divide(a, b)
        assert direct == blocked == software == expected


class TestDrainBasedCompletion:
    def test_run_until_quiet_matches_schedule_arithmetic(self):
        """An independent check on total_pulses: after the computed run
        length, the array holds no tokens — run_until_quiet confirms
        nothing more would have moved."""
        from repro.arrays.intersection import build_intersection_array
        from repro.systolic.simulator import SystolicSimulator
        from repro.workloads import overlapping_pair

        a, b = overlapping_pair(5, 4, 2, arity=2, seed=700)
        network, schedule, _ = build_intersection_array(a, b)
        simulator = SystolicSimulator(network)
        simulator.run(schedule.total_pulses)
        # Everything already drained: quiescence is immediate.
        extra = simulator.run_until_quiet(settle=3)
        collector = simulator.collector("t_i")
        assert len(collector) == len(a)
        assert extra <= 4  # just the settle window, no real traffic

    def test_results_complete_exactly_at_total_pulses(self):
        from repro.arrays.intersection import build_intersection_array
        from repro.systolic.simulator import SystolicSimulator
        from repro.workloads import overlapping_pair

        a, b = overlapping_pair(4, 6, 2, arity=3, seed=701)
        network, schedule, _ = build_intersection_array(a, b)
        simulator = SystolicSimulator(network)
        simulator.run(schedule.total_pulses - 1)
        before = len(simulator.collector("t_i"))
        simulator.run(1)
        after = len(simulator.collector("t_i"))
        assert before == len(a) - 1  # the last t_i needs the final pulse
        assert after == len(a)


class TestModerateScale:
    def test_hundred_tuple_intersection_fixed_variant(self):
        """A 100×100 intersection at pulse level (the fixed variant's
        geometry keeps this around 10^5 cell-steps — comfortably fast)."""
        from repro.arrays import systolic_intersection
        from repro.relational import algebra
        from repro.workloads import overlapping_pair

        a, b = overlapping_pair(100, 100, 40, arity=2, seed=702)
        result = systolic_intersection(a, b, variant="fixed")
        assert result.relation == algebra.intersection(a, b)
        assert len(result.relation) == 40
