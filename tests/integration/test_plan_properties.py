"""Property tests over random query plans.

Hypothesis builds arbitrary plan trees over a small catalog and checks
the system-level invariants: every engine computes the same answer,
and the optimizer never changes it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.lang import execute_plan, optimize
from repro.lang.optimize import share_common_subplans
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Intersect,
    PlanNode,
    Project,
    Select,
    Union,
    walk,
)
from repro.relational import Domain, Relation, Schema

SMALL = settings(max_examples=20, deadline=None)

_DOMAIN = Domain("planprop", values=range(5))
_SCHEMA = Schema.of(("x", _DOMAIN), ("y", _DOMAIN))
_CATALOG = {
    "A": Relation(_SCHEMA, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
    "B": Relation(_SCHEMA, [(1, 2), (3, 4), (0, 0), (2, 2)]),
}

#: Union-compatible plan expressions over A and B (all produce the
#: two-column schema, so they compose freely).
bases = st.sampled_from([Base("A"), Base("B")])


def _extend(children: st.SearchStrategy[PlanNode]) -> st.SearchStrategy[PlanNode]:
    binary = st.sampled_from([Intersect, Union, Difference])
    return st.one_of(
        st.builds(lambda op, l, r: op(l, r), binary, children, children),
        st.builds(Dedup, children),
        st.builds(
            lambda child, col, op, val: Select(child, column=col, op=op,
                                               value=val),
            children,
            st.sampled_from(["x", "y"]),
            st.sampled_from(["==", "!=", "<", ">=", "<=", ">"]),
            st.integers(0, 4),
        ),
    )


plans = st.recursive(bases, _extend, max_leaves=6)


class TestRandomPlans:
    @SMALL
    @given(plan=plans)
    def test_engines_agree(self, plan):
        software = execute_plan(plan, _CATALOG, "software")
        systolic = execute_plan(plan, _CATALOG, "systolic")
        assert software == systolic

    @SMALL
    @given(plan=plans)
    def test_optimizer_preserves_semantics(self, plan):
        before = execute_plan(plan, _CATALOG, "software")
        after = execute_plan(optimize(plan), _CATALOG, "software")
        assert before == after

    @SMALL
    @given(plan=plans)
    def test_optimizer_is_idempotent(self, plan):
        once = optimize(plan)
        twice = optimize(once)
        assert once == twice

    @SMALL
    @given(plan=plans)
    def test_sharing_never_grows_the_plan(self, plan):
        shared = share_common_subplans(plan)
        assert len(walk(shared)) <= len(walk(plan))
        assert execute_plan(shared, _CATALOG, "software") == (
            execute_plan(plan, _CATALOG, "software")
        )

    @SMALL
    @given(plan=plans)
    def test_projection_wrapper_shrinks_arity(self, plan):
        projected = Project(plan, ("y",))
        result = execute_plan(projected, _CATALOG, "software")
        assert result.arity == 1
        assert execute_plan(projected, _CATALOG, "systolic") == result
