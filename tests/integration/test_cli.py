"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture
def csv_pair(tmp_path):
    emp = tmp_path / "emp.csv"
    emp.write_text(
        "name,dept\nada,research\ngrace,research\nedsger,theory\n"
    )
    dept = tmp_path / "dept.csv"
    dept.write_text("dept,budget\nresearch,900\ntheory,400\n")
    return emp, dept


class TestQueryCommand:
    def test_join_query(self, csv_pair, capsys):
        emp, dept = csv_pair
        code = main([
            "query", "join(EMP, DEPT, dept == dept)",
            "-r", f"EMP={emp}", "-r", f"DEPT={dept}",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "(3 tuples)" in out
        assert "ada" in out

    def test_engines_agree(self, csv_pair, capsys):
        emp, dept = csv_pair
        outputs = []
        for engine in ("systolic", "software"):
            assert main([
                "query", "project(join(EMP, DEPT, dept == dept), name, budget)",
                "-r", f"EMP={emp}", "-r", f"DEPT={dept}",
                "--engine", engine,
            ]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_backends_agree(self, csv_pair, capsys):
        emp, dept = csv_pair
        outputs = []
        for backend in ("pulse", "lattice"):
            assert main([
                "query", "project(join(EMP, DEPT, dept == dept), name, budget)",
                "-r", f"EMP={emp}", "-r", f"DEPT={dept}",
                "--backend", backend,
            ]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "(3 tuples)" in outputs[1]

    def test_unknown_backend_rejected(self, csv_pair, capsys):
        emp, _ = csv_pair
        with pytest.raises(SystemExit):
            main([
                "query", "dedup(EMP)", "-r", f"EMP={emp}",
                "--backend", "warp",
            ])
        assert "invalid choice" in capsys.readouterr().err

    def test_output_file(self, csv_pair, tmp_path, capsys):
        emp, dept = csv_pair
        out_file = tmp_path / "result.csv"
        assert main([
            "query", "dedup(EMP)",
            "-r", f"EMP={emp}", "--out", str(out_file),
        ]) == 0
        assert "written" in capsys.readouterr().out
        content = out_file.read_text()
        assert content.startswith("name,dept")
        assert "ada" in content

    def test_bad_relation_spec(self, capsys):
        assert main(["query", "dedup(A)", "-r", "nonsense"]) == 1
        assert "NAME=path" in capsys.readouterr().err

    def test_missing_relation(self, csv_pair, capsys):
        emp, _ = csv_pair
        assert main([
            "query", "intersect(EMP, GHOST)", "-r", f"EMP={emp}",
        ]) == 1
        assert "GHOST" in capsys.readouterr().err

    def test_parse_error_reported(self, csv_pair, capsys):
        emp, _ = csv_pair
        assert main(["query", "teleport(EMP)", "-r", f"EMP={emp}"]) == 1
        assert "unknown function" in capsys.readouterr().err


class TestMachineCommand:
    def test_machine_prints_timeline(self, csv_pair, capsys):
        emp, dept = csv_pair
        code = main([
            "machine", "join(EMP, DEPT, dept == dept)",
            "-r", f"EMP={emp}", "-r", f"DEPT={dept}",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "join0" in out
        assert "load EMP" in out

    def test_machine_backend_flag(self, csv_pair, capsys):
        emp, dept = csv_pair
        code = main([
            "machine", "join(EMP, DEPT, dept == dept)",
            "-r", f"EMP={emp}", "-r", f"DEPT={dept}",
            "--backend", "lattice",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "(3 tuples)" in out
        assert "join0" in out

    def test_logic_per_track_flag(self, csv_pair, capsys):
        emp, _ = csv_pair
        code = main([
            "machine", "select(EMP, dept == 0)",
            "-r", f"EMP={emp}", "--logic-per-track",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Fused into the read: no separate cpu step on the timeline.
        assert "cpu" not in out


class TestExplainAndMachineFlag:
    def test_query_machine_explain(self, csv_pair, capsys):
        emp, dept = csv_pair
        code = main([
            "query", "project(join(EMP, DEPT, dept == dept), name, budget)",
            "-r", f"EMP={emp}", "-r", f"DEPT={dept}",
            "--machine", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "physical plan" in out
        assert "join0" in out
        assert "comparison0" in out
        assert "predicted makespan" in out
        assert "simulated" in out
        assert "(3 tuples)" in out

    def test_query_machine_matches_plain_query(self, csv_pair, capsys):
        emp, dept = csv_pair
        args = [
            "query", "project(join(EMP, DEPT, dept == dept), name)",
            "-r", f"EMP={emp}", "-r", f"DEPT={dept}",
        ]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--machine"]) == 0
        machine_out = capsys.readouterr().out
        # Same result table (the machine output adds a timeline after it).
        assert plain.split("(")[0] in machine_out

    def test_machine_explain_shows_blocks(self, csv_pair, capsys):
        emp, dept = csv_pair
        code = main([
            "machine", "join(EMP, DEPT, dept == dept)",
            "-r", f"EMP={emp}", "-r", f"DEPT={dept}", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "blocks" in out
        assert "device" in out

    def test_store_and_forward_flag(self, csv_pair, capsys):
        emp, dept = csv_pair
        code = main([
            "machine", "project(join(EMP, DEPT, dept == dept), name)",
            "-r", f"EMP={emp}", "-r", f"DEPT={dept}",
            "--store-and-forward", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "store-and-forward" in out
        assert "(3 tuples)" in out


class TestOptimizeFlag:
    def test_optimized_query_same_answer(self, csv_pair, capsys):
        emp, dept = csv_pair
        args_base = [
            "query", "select(dedup(EMP), dept == 0)",
            "-r", f"EMP={emp}",
        ]
        assert main(args_base) == 0
        plain = capsys.readouterr().out
        assert main(args_base + ["--no-optimize"]) == 0
        verbatim = capsys.readouterr().out
        assert plain == verbatim

    def test_optimize_enables_disk_fusion_on_machine(self, csv_pair, capsys):
        emp, _ = csv_pair
        code = main([
            "machine", "select(dedup(EMP), name == 0)",
            "-r", f"EMP={emp}", "--logic-per-track", "--optimize",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Pushdown sank the select under the dedup, onto the base read.
        assert "cpu" not in out
