"""Every example script must run clean — they are living documentation."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script, capsys, monkeypatch):
    # Examples take no argv; neutralize anything pytest put there.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5, "the paper promises a rich example set"
