"""The self-verification sweep and its CLI entry point."""

import pytest

from repro.__main__ import main
from repro.selftest import CheckResult, SelfTestReport, run_selftest


class TestSelfTest:
    def test_sweep_passes(self):
        report = run_selftest(seed=3, size=6)
        assert report.passed
        assert len(report.checks) == 14

    def test_deterministic_per_seed(self):
        first = run_selftest(seed=1, size=5)
        second = run_selftest(seed=1, size=5)
        assert [c.detail for c in first.checks] == [
            c.detail for c in second.checks
        ]

    def test_summary_scoreboard(self):
        report = run_selftest(seed=0, size=4)
        text = report.summary()
        assert "ALL CHECKS PASSED" in text
        assert "intersection [counter]" in text
        assert "pattern-match chip" in text

    def test_failure_is_reported_not_raised(self):
        report = SelfTestReport(checks=[
            CheckResult("good", True, "fine"),
            CheckResult("bad", False, "AssertionError: boom"),
        ])
        assert not report.passed
        assert "FAIL" in report.summary()
        assert "CHECKS FAILED" in report.summary()


class TestSelfTestCli:
    def test_cli_exit_zero_on_pass(self, capsys):
        assert main(["selftest", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out

    def test_cli_seed_flag(self, capsys):
        assert main(["selftest", "--size", "4", "--seed", "9"]) == 0
