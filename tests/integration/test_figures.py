"""Figure rendering: schematics drawn from live networks."""

import pytest

from repro.arrays.comparison_array import build_comparison_array
from repro.arrays.intersection import build_intersection_array
from repro.figures import (
    division_schematic,
    grid_schematic,
    machine_schematic,
    network_summary,
)
from repro.machine import SystolicDatabaseMachine
from repro.workloads import three_by_three_pair


@pytest.fixture
def comparison():
    a, b = three_by_three_pair()
    return build_comparison_array(a.tuples, b.tuples)


class TestNetworkSummary:
    def test_census_counts(self, comparison):
        network, schedule, _ = comparison
        text = network_summary(network)
        assert f"{schedule.rows * schedule.arity} × ComparisonCell" in text
        assert "0 unconnected inputs" in text
        assert f"{len(network.wires)} wires" in text

    def test_intersection_lists_both_cell_types(self):
        a, b = three_by_three_pair()
        network, _, _ = build_intersection_array(a, b)
        text = network_summary(network)
        assert "AccumulationCell" in text
        assert "ComparisonCell" in text


class TestGridSchematic:
    def test_box_per_cell(self, comparison):
        _, schedule, layout = comparison
        art = grid_schematic(layout)
        assert art.count("| = |") == schedule.rows * schedule.arity

    def test_accumulators_get_plus_glyph(self):
        a, b = three_by_three_pair()
        _, schedule, layout = build_intersection_array(a, b)
        art = grid_schematic(layout)
        assert art.count("| + |") == schedule.rows

    def test_custom_labels(self):
        art = grid_schematic({"x": (0, 0)}, label={"x": "AB"})
        assert "AB" in art

    def test_empty_layout(self):
        assert grid_schematic({}) == "(empty layout)"


class TestOtherSchematics:
    def test_division_shape(self):
        art = division_schematic(["i", "j"], ["a", "b"])
        assert art.count("AND") == 2
        assert "[i]" in art and "[b]" in art

    def test_machine_boxes(self):
        art = machine_schematic(SystolicDatabaseMachine())
        assert "[mem0]" in art
        assert "[comparison0]" in art
        assert "[disk]" in art
        assert "crossbar" in art
