"""The interactive shell, driven through onecmd (no tty needed)."""

import io

import pytest

from repro.shell import SystolicShell


@pytest.fixture
def csv_files(tmp_path):
    emp = tmp_path / "emp.csv"
    emp.write_text("name,dept\nada,research\ngrace,research\nedsger,theory\n")
    dept = tmp_path / "dept.csv"
    dept.write_text("dept,budget\nresearch,900\ntheory,400\n")
    return emp, dept


@pytest.fixture
def shell():
    return SystolicShell(stdout=io.StringIO())


def said(shell) -> str:
    return shell.stdout.getvalue()


class TestLoadAndShow:
    def test_load_reports_shape(self, shell, csv_files):
        emp, _ = csv_files
        shell.onecmd(f"load EMP {emp}")
        assert "EMP: 3 tuples" in said(shell)
        assert "name, dept" in said(shell)

    def test_relations_listing(self, shell, csv_files):
        emp, dept = csv_files
        shell.onecmd(f"load EMP {emp}")
        shell.onecmd(f"load DEPT {dept}")
        shell.onecmd("relations")
        assert "EMP" in said(shell)
        assert "DEPT" in said(shell)

    def test_show(self, shell, csv_files):
        emp, _ = csv_files
        shell.onecmd(f"load EMP {emp}")
        shell.onecmd("show EMP")
        assert "ada" in said(shell)

    def test_show_unknown(self, shell):
        shell.onecmd("show GHOST")
        assert "no relation" in said(shell)

    def test_load_usage_and_missing_file(self, shell):
        shell.onecmd("load JUSTONEARG")
        assert "usage" in said(shell)
        shell.onecmd("load X /nonexistent/file.csv")
        assert "error" in said(shell)


class TestQuerying:
    def test_machine_query_and_timeline(self, shell, csv_files):
        emp, dept = csv_files
        shell.onecmd(f"load EMP {emp}")
        shell.onecmd(f"load DEPT {dept}")
        shell.onecmd("query join(EMP, DEPT, dept == dept)")
        out = said(shell)
        assert "(3 tuples" in out
        assert "makespan" in out
        shell.onecmd("timeline")
        assert "join0" in said(shell)

    def test_timeline_before_any_query(self, shell):
        shell.onecmd("timeline")
        assert "no machine query" in said(shell)

    def test_let_binds_results(self, shell, csv_files):
        emp, _ = csv_files
        shell.onecmd(f"load EMP {emp}")
        shell.onecmd("let NAMES = project(EMP, name)")
        assert "NAMES: 3 tuples" in said(shell)
        shell.onecmd("query dedup(NAMES)")
        assert "(3 tuples" in said(shell)

    def test_let_usage(self, shell):
        shell.onecmd("let NOEQUALS")
        assert "usage" in said(shell)

    def test_engines_cross_check(self, shell, csv_files):
        emp, _ = csv_files
        shell.onecmd(f"load EMP {emp}")
        shell.onecmd("engines intersect(EMP, EMP)")
        assert "AGREE" in said(shell)

    def test_query_error_reported(self, shell):
        shell.onecmd("query intersect(GHOST, GHOST)")
        assert "error" in said(shell)


class TestShellControls:
    def test_optimize_toggle(self, shell, csv_files):
        emp, _ = csv_files
        shell.onecmd(f"load EMP {emp}")
        shell.onecmd("optimize on")
        assert "enabled" in said(shell)
        shell.onecmd("query dedup(dedup(EMP))")  # rewritten to one dedup
        assert "(3 tuples" in said(shell)
        shell.onecmd("optimize sideways")
        assert "usage" in said(shell)

    def test_explain_shows_physical_plan(self, shell, csv_files):
        emp, dept = csv_files
        shell.onecmd(f"load EMP {emp}")
        shell.onecmd(f"load DEPT {dept}")
        shell.onecmd("explain project(join(EMP, DEPT, dept == dept), name)")
        out = said(shell)
        assert "physical plan" in out
        assert "join0" in out
        assert "predicted makespan" in out

    def test_explain_error_reported(self, shell):
        shell.onecmd("explain join(MISSING, ALSO, x == x)")
        assert "error:" in said(shell)

    def test_quit_returns_true(self, shell):
        assert shell.onecmd("quit") is True
        assert shell.onecmd("exit") is True

    def test_unknown_command(self, shell):
        shell.onecmd("teleport somewhere")
        assert "unknown command" in said(shell)

    def test_empty_line_is_noop(self, shell):
        assert shell.emptyline() is None
