"""Property tests over the full lowering path.

Hypothesis builds arbitrary plan trees over a small catalog and checks
the end-to-end invariant of the physical planner: ``optimize()``
followed by physical lowering onto the machine produces bit-identical
results to the software reference and to both array backends, whether
or not chains are pipelined.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.lang import execute_plan, optimize
from repro.machine import SystolicDatabaseMachine
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Intersect,
    PlanNode,
    Project,
    Select,
    Union,
)
from repro.relational import Domain, Relation, Schema

SMALL = settings(max_examples=15, deadline=None)

_DOMAIN = Domain("planner-prop", values=range(5))
_SCHEMA = Schema.of(("x", _DOMAIN), ("y", _DOMAIN))
_CATALOG = {
    "A": Relation(_SCHEMA, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
    "B": Relation(_SCHEMA, [(1, 2), (3, 4), (0, 0), (2, 2)]),
}
_SCHEMAS = {name: rel.schema for name, rel in _CATALOG.items()}

bases = st.sampled_from([Base("A"), Base("B")])


def _extend(children: st.SearchStrategy[PlanNode]) -> st.SearchStrategy[PlanNode]:
    binary = st.sampled_from([Intersect, Union, Difference])
    return st.one_of(
        st.builds(lambda op, l, r: op(l, r), binary, children, children),
        st.builds(Dedup, children),
        st.builds(
            lambda child, col, op, val: Select(child, column=col, op=op,
                                               value=val),
            children,
            st.sampled_from(["x", "y"]),
            st.sampled_from(["==", "!=", "<", ">=", "<=", ">"]),
            st.integers(0, 4),
        ),
        st.builds(lambda child: Project(child, ("y", "x")), children),
    )


plans = st.recursive(bases, _extend, max_leaves=5)


def _machine_answer(plan, backend: str, pipeline: bool) -> Relation:
    machine = SystolicDatabaseMachine(backend=backend)
    for name, relation in _CATALOG.items():
        machine.store(name, relation)
    result, _ = machine.run(plan, pipeline=pipeline)
    return result


class TestLoweringProperties:
    @SMALL
    @given(plan=plans)
    def test_optimized_physical_plan_matches_software(self, plan):
        expected = execute_plan(plan, _CATALOG, "software", optimize=False)
        optimized = optimize(plan, schemas=_SCHEMAS)
        assert _machine_answer(optimized, "pulse", True) == expected

    @SMALL
    @given(plan=plans)
    def test_backends_and_pipelining_are_invisible(self, plan):
        optimized = optimize(plan, schemas=_SCHEMAS)
        answers = [
            _machine_answer(optimized, backend, pipeline)
            for backend in ("pulse", "lattice")
            for pipeline in (True, False)
        ]
        assert all(answer == answers[0] for answer in answers)

    @SMALL
    @given(plan=plans)
    def test_systolic_engines_agree_with_defaults(self, plan):
        # The default execute_plan path (optimize=True, schema-aware)
        # must agree across engines and backends bit-for-bit.
        software = execute_plan(plan, _CATALOG, "software")
        for backend in ("pulse", "lattice"):
            assert execute_plan(
                plan, _CATALOG, "systolic", backend=backend
            ) == software

    @SMALL
    @given(plan=plans)
    def test_predicted_makespan_is_finite_and_positive(self, plan):
        machine = SystolicDatabaseMachine()
        for name, relation in _CATALOG.items():
            machine.store(name, relation)
        physical = machine.compile(optimize(plan, schemas=_SCHEMAS))
        assert physical.predicted_makespan > 0.0
