"""Property-based tests: the arrays equal the algebra on arbitrary inputs.

Hypothesis drives small random relations through every systolic
operator and checks the result against the software oracle, plus the
algebraic laws the operators must satisfy.  Sizes are kept small — each
example simulates a full array pulse-by-pulse.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import (
    ArrayCapacity,
    blocked_intersection,
    blocked_join,
    blocked_remove_duplicates,
    systolic_difference,
    systolic_divide,
    systolic_intersection,
    systolic_join,
    systolic_remove_duplicates,
    systolic_theta_join,
    systolic_union,
)
from repro.arrays.schedule import CounterStreamSchedule
from repro.bitlevel import bit_level_compare_all_pairs, bit_level_three_way_compare, expand_tuple
from repro.arrays import compare_all_pairs
from repro.relational import Domain, MultiRelation, Relation, Schema, algebra

SMALL = settings(max_examples=25, deadline=None)

_DOMAIN = Domain("prop", values=range(4))
_SCHEMA2 = Schema.of(("x", _DOMAIN), ("y", _DOMAIN))

#: Tuples over a tiny universe so collisions (matches, duplicates) are common.
tuples2 = st.tuples(st.integers(0, 3), st.integers(0, 3))
relations = st.lists(tuples2, min_size=0, max_size=6).map(
    lambda rows: Relation(_SCHEMA2, rows)
)
nonempty_relations = st.lists(tuples2, min_size=1, max_size=6).map(
    lambda rows: Relation(_SCHEMA2, rows)
)
multis = st.lists(tuples2, min_size=0, max_size=7).map(
    lambda rows: MultiRelation(_SCHEMA2, rows)
)


class TestArrayVsOracle:
    @SMALL
    @given(a=relations, b=relations, variant=st.sampled_from(["counter", "fixed"]))
    def test_intersection(self, a, b, variant):
        result = systolic_intersection(a, b, variant=variant, tagged=True)
        assert result.relation == algebra.intersection(a, b)

    @SMALL
    @given(a=relations, b=relations, variant=st.sampled_from(["counter", "fixed"]))
    def test_difference(self, a, b, variant):
        result = systolic_difference(a, b, variant=variant, tagged=True)
        assert result.relation == algebra.difference(a, b)

    @SMALL
    @given(a=multis)
    def test_remove_duplicates(self, a):
        result = systolic_remove_duplicates(a, tagged=True)
        assert result.relation == algebra.remove_duplicates(a)

    @SMALL
    @given(a=relations, b=relations)
    def test_union(self, a, b):
        assert systolic_union(a, b, tagged=True).relation == algebra.union(a, b)

    @SMALL
    @given(a=relations, b=relations)
    def test_join(self, a, b):
        on = [("x", "x")]
        result = systolic_join(a, b, on, tagged=True)
        assert result.relation == algebra.join(a, b, on)

    @SMALL
    @given(a=relations, b=relations,
           op=st.sampled_from(["<", "<=", ">", ">=", "!=", "=="]))
    def test_theta_join(self, a, b, op):
        on = [("y", "y")]
        result = systolic_theta_join(a, b, on, [op], tagged=True)
        assert result.relation == algebra.theta_join(a, b, on, [op])

    @SMALL
    @given(a=relations, b=st.lists(st.integers(0, 3), min_size=0, max_size=4))
    def test_divide(self, a, b):
        divisor = Relation(Schema.of(("v", _DOMAIN)), [(v,) for v in b])
        result = systolic_divide(a, divisor, tagged=True)
        assert result.relation == algebra.divide(a, divisor)


class TestAlgebraicLaws:
    @SMALL
    @given(a=relations, b=relations)
    def test_intersection_commutes(self, a, b):
        ab = systolic_intersection(a, b).relation
        ba = systolic_intersection(b, a).relation
        assert set(ab.tuples) == set(ba.tuples)

    @SMALL
    @given(a=relations, b=relations)
    def test_difference_partition(self, a, b):
        inter = systolic_intersection(a, b).relation
        diff = systolic_difference(a, b).relation
        assert set(inter.tuples) | set(diff.tuples) == set(a.tuples)
        assert not set(inter.tuples) & set(diff.tuples)

    @SMALL
    @given(a=multis)
    def test_dedup_idempotent(self, a):
        once = systolic_remove_duplicates(a).relation
        twice = systolic_remove_duplicates(once.to_multi()).relation
        assert once == twice

    @SMALL
    @given(a=relations, b=relations)
    def test_union_contains_operands(self, a, b):
        union = systolic_union(a, b).relation
        assert set(a.tuples) <= set(union.tuples)
        assert set(b.tuples) <= set(union.tuples)

    @SMALL
    @given(a=relations)
    def test_self_intersection_is_identity(self, a):
        assert systolic_intersection(a, a).relation == a


class TestBlockedEqualsUnblocked:
    @SMALL
    @given(a=relations, b=relations,
           rows=st.integers(1, 7), cols=st.integers(1, 3))
    def test_intersection(self, a, b, rows, cols):
        capacity = ArrayCapacity(max_rows=rows, max_cols=cols)
        result, _ = blocked_intersection(a, b, capacity)
        assert result == algebra.intersection(a, b)

    @SMALL
    @given(a=multis, rows=st.integers(1, 7))
    def test_dedup(self, a, rows):
        capacity = ArrayCapacity(max_rows=rows, max_cols=2)
        result, _ = blocked_remove_duplicates(a, capacity)
        assert result == algebra.remove_duplicates(a)

    @SMALL
    @given(a=relations, b=relations, rows=st.integers(1, 5))
    def test_join(self, a, b, rows):
        capacity = ArrayCapacity(max_rows=rows, max_cols=1)
        result, _ = blocked_join(a, b, [("x", "x")], capacity)
        assert result == algebra.join(a, b, [("x", "x")])


class TestBitLevelEquivalence:
    @SMALL
    @given(a=nonempty_relations, b=nonempty_relations)
    def test_matrix_identical(self, a, b):
        word = compare_all_pairs(a.tuples, b.tuples)
        bit = bit_level_compare_all_pairs(a.tuples, b.tuples, width=3)
        assert bit.t_matrix == word.t_matrix

    @SMALL
    @given(x=st.integers(0, 255), y=st.integers(0, 255))
    def test_three_way_compare(self, x, y):
        assert bit_level_three_way_compare(x, y, width=8) == (x > y) - (x < y)

    @SMALL
    @given(a=tuples2, b=tuples2)
    def test_expansion_preserves_equality(self, a, b):
        assert (a == b) == (expand_tuple(a, 4) == expand_tuple(b, 4))


class TestScheduleInverses:
    @SMALL
    @given(n_a=st.integers(1, 9), n_b=st.integers(1, 9),
           arity=st.integers(1, 5), data=st.data())
    def test_exit_roundtrip(self, n_a, n_b, arity, data):
        schedule = CounterStreamSchedule(n_a, n_b, arity)
        i = data.draw(st.integers(0, n_a - 1))
        j = data.draw(st.integers(0, n_b - 1))
        row = schedule.meeting_row(i, j)
        pulse = schedule.t_exit_pulse(i, j)
        assert schedule.pair_from_exit(row, pulse) == (i, j)
        assert schedule.tuple_from_accumulator_exit(
            schedule.accumulator_exit_pulse(i)
        ) == i


class TestNewArraysVsOracles:
    @SMALL
    @given(a=relations, b=relations,
           op=st.sampled_from(["<", "<=", ">", ">=", "!=", "=="]))
    def test_dynamic_join_equals_preloaded(self, a, b, op):
        from repro.arrays import systolic_dynamic_theta_join, systolic_theta_join

        on = [("x", "x")]
        dynamic = systolic_dynamic_theta_join(a, b, on, [op], tagged=True)
        preloaded = systolic_theta_join(a, b, on, [op])
        assert dynamic.relation == preloaded.relation

    @SMALL
    @given(a=nonempty_relations, b=nonempty_relations)
    def test_hexagonal_equals_orthogonal(self, a, b):
        from repro.arrays.hexagonal import hex_compare_all_pairs

        ortho = compare_all_pairs(a.tuples, b.tuples)
        hexagonal = hex_compare_all_pairs(a.tuples, b.tuples)
        assert hexagonal.t_matrix == ortho.t_matrix

    @SMALL
    @given(
        text=st.text(alphabet="abc", min_size=1, max_size=12),
        pattern=st.text(alphabet="ab?", min_size=1, max_size=4),
    )
    def test_pattern_chip_equals_reference(self, text, pattern):
        from hypothesis import assume

        from repro.patterns import match_pattern

        assume(len(pattern) <= len(text))
        result = match_pattern(text, pattern)
        reference = [
            i for i in range(len(text) - len(pattern) + 1)
            if all(p == "?" or text[i + k] == p
                   for k, p in enumerate(pattern))
        ]
        assert result.matches == reference

    @SMALL
    @given(stages=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 200)),
        min_size=1, max_size=6,
    ))
    def test_pipeline_law_bounds(self, stages):
        from repro.machine.pipelining import StageCost, analyze_chain

        chain = analyze_chain([
            StageCost(f"s{n}", fill=f, stream=s)
            for n, (f, s) in enumerate(stages)
        ])
        # Pipelined is never slower, and never faster than the slowest
        # stage alone.
        assert chain.pipelined <= chain.store_and_forward
        assert chain.pipelined >= max(f + s for f, s in stages)


class TestMoreOracleProperties:
    @SMALL
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 3)),
            min_size=1, max_size=10,
        ),
        divisor=st.lists(st.integers(0, 3), min_size=1, max_size=4,
                         unique=True),
    )
    def test_division_from_raw_pairs(self, pairs, divisor):
        from repro.arrays import systolic_divide

        dividend = Relation(_SCHEMA2, pairs)
        divisor_rel = Relation(Schema.of(("v", _DOMAIN)),
                               [(v,) for v in divisor])
        result = systolic_divide(dividend, divisor_rel, tagged=True)
        assert result.relation == algebra.divide(dividend, divisor_rel)
        # The quotient is exactly the groups covering the divisor.
        required = set(divisor)
        images = {}
        for x, y in dividend.tuples:
            images.setdefault(x, set()).add(y)
        expected = {x for x, ys in images.items() if required <= ys}
        assert {row[0] for row in result.relation.tuples} == expected

    @SMALL
    @given(a=relations, b=relations)
    def test_semijoin_laws(self, a, b):
        from repro.arrays.intersection import systolic_antijoin, systolic_semijoin

        on = [("x", "x")]
        semi = systolic_semijoin(a, b, on, tagged=True).relation
        anti = systolic_antijoin(a, b, on, tagged=True).relation
        # Semi ∪ anti partitions A.
        assert set(semi.tuples) | set(anti.tuples) == set(a.tuples)
        assert not set(semi.tuples) & set(anti.tuples)
        # Semi-join = projection of the join onto A's columns.
        joined = algebra.join(a, b, on)
        joined_keys = {row[0] for row in joined.tuples}
        assert {row[0] for row in semi.tuples} == joined_keys

    @SMALL
    @given(a=relations, b=relations,
           ops=st.tuples(st.sampled_from(["==", "<", ">="]),
                         st.sampled_from(["!=", "<=", ">"])))
    def test_two_column_dynamic_join(self, a, b, ops):
        from repro.arrays import systolic_dynamic_theta_join

        on = [("x", "x"), ("y", "y")]
        result = systolic_dynamic_theta_join(a, b, on, list(ops), tagged=True)
        assert result.relation == algebra.theta_join(a, b, on, list(ops))
