"""Workload generators: claimed properties hold by construction."""

import pytest

from repro.errors import ReproError
from repro.relational import algebra
from repro.workloads import (
    division_example,
    skewed_join_pair,
    zipf_relation,
    division_workload,
    integer_schema,
    join_pair,
    overlapping_pair,
    random_relation,
    relation_with_duplicates,
    three_by_three_pair,
)


class TestRandomRelation:
    def test_cardinality_and_distinctness(self):
        r = random_relation(50, arity=3, seed=1)
        assert len(r) == 50
        assert len(set(r.tuples)) == 50

    def test_deterministic_by_seed(self):
        assert random_relation(10, 2, seed=7) == random_relation(10, 2, seed=7)
        assert random_relation(10, 2, seed=7) != random_relation(10, 2, seed=8)

    def test_empty(self):
        assert len(random_relation(0, 2)) == 0

    def test_impossible_universe_rejected(self):
        with pytest.raises(ReproError, match="cannot draw"):
            random_relation(10, arity=1, universe=3)


class TestOverlappingPair:
    @pytest.mark.parametrize("n_a,n_b,overlap", [(10, 8, 0), (10, 8, 5), (6, 6, 6)])
    def test_exact_overlap(self, n_a, n_b, overlap):
        a, b = overlapping_pair(n_a, n_b, overlap, seed=2)
        assert len(a) == n_a
        assert len(b) == n_b
        assert len(algebra.intersection(a, b)) == overlap

    def test_union_compatible(self):
        a, b = overlapping_pair(5, 5, 2, seed=3)
        a.schema.require_union_compatible(b.schema)

    def test_overlap_bound_checked(self):
        with pytest.raises(ReproError, match="exceeds"):
            overlapping_pair(3, 5, 4)


class TestDuplicates:
    def test_distinct_count(self):
        multi = relation_with_duplicates(10, 2.5, seed=4)
        assert len(multi.distinct()) == 10
        assert len(multi) == 25

    def test_factor_one_means_no_duplicates(self):
        multi = relation_with_duplicates(10, 1.0, seed=5)
        assert len(multi) == 10

    def test_factor_below_one_rejected(self):
        with pytest.raises(ReproError):
            relation_with_duplicates(10, 0.5)

    def test_empty(self):
        assert len(relation_with_duplicates(0, 2.0)) == 0


class TestJoinPair:
    @pytest.mark.parametrize("matches", [0, 3, 5])
    def test_exact_match_count(self, matches):
        a, b = join_pair(8, 5, matches, seed=6)
        joined = algebra.join(a, b, [("key", "key")])
        assert len(joined) == matches

    def test_key_domain_shared(self):
        a, b = join_pair(4, 4, 2, seed=7)
        assert a.schema.column("key").domain == b.schema.column("key").domain

    def test_bounds_checked(self):
        with pytest.raises(ReproError):
            join_pair(3, 3, 4)


class TestDivisionWorkload:
    @pytest.mark.parametrize("n,d,covered", [(5, 3, 0), (5, 3, 5), (4, 1, 2)])
    def test_exact_quotient(self, n, d, covered):
        a, b, expected = division_workload(n, d, covered, seed=8)
        assert expected == covered
        assert len(algebra.divide(a, b)) == covered

    def test_bounds(self):
        with pytest.raises(ReproError):
            division_workload(3, 2, 4)
        with pytest.raises(ReproError):
            division_workload(3, 0, 1)


class TestPaperExamples:
    def test_three_by_three_shape(self):
        a, b = three_by_three_pair()
        assert len(a) == len(b) == 3
        assert a.arity == b.arity == 3
        assert len(algebra.intersection(a, b)) == 1

    def test_division_example_is_consistent(self):
        a, b, c = division_example()
        assert algebra.divide(a, b) == c
        assert len(b) == 4  # B = {a, b, c, d}
        assert c.decoded() == [("i",)]

    def test_integer_schema_validation(self):
        with pytest.raises(ReproError):
            integer_schema(0)


class TestZipfWorkloads:
    def test_zipf_produces_duplicates(self):
        multi = zipf_relation(40, arity=2, skew=2.0, seed=70)
        assert len(multi) == 40
        assert len(multi.distinct()) < 40  # heavy skew repeats tuples

    def test_zipf_deterministic(self):
        assert zipf_relation(10, 2, seed=1) == zipf_relation(10, 2, seed=1)

    def test_zipf_skew_validation(self):
        with pytest.raises(ReproError, match="skew"):
            zipf_relation(10, skew=1.0)

    def test_zipf_empty(self):
        assert len(zipf_relation(0)) == 0

    def test_skewed_join_exceeds_one_to_one(self):
        a, b = skewed_join_pair(30, 30, skew=1.5, seed=71)
        joined = algebra.join(a, b, [("key", "key")])
        # Hot keys multiply: output well beyond min(|A|, |B|) matches.
        assert len(joined) > 30

    def test_skewed_join_more_skew_more_output(self):
        sizes = []
        for skew in (3.0, 1.3):
            a, b = skewed_join_pair(40, 40, skew=skew, seed=72)
            sizes.append(len(algebra.join(a, b, [("key", "key")])))
        assert sizes[1] >= sizes[0] * 0 + 1  # both non-trivial
        # Stronger skew concentrates keys -> larger join.
        heavy, light = sizes[0], sizes[1]
        assert heavy >= light or heavy > 40

    def test_skewed_join_validation(self):
        with pytest.raises(ReproError, match="skew"):
            skewed_join_pair(5, 5, skew=0.9)
