"""The per-tenant Catalog layer: versioning, lookup, fingerprints."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.machine import Catalog
from repro.workloads import join_pair, overlapping_pair


def _pair():
    return join_pair(10, 8, 4, seed=31)


class TestCatalogBasics:
    def test_store_and_lookup(self):
        catalog = Catalog(tenant="acme")
        a, b = _pair()
        catalog.store("R", a)
        catalog.store("S", b)
        assert catalog.names() == ["R", "S"]
        assert catalog.relation("R") == a
        assert "R" in catalog
        assert "missing" not in catalog

    def test_preload_and_shadowing(self):
        catalog = Catalog()
        a, b = _pair()
        catalog.store("R", a)
        catalog.preload("HOT", b)
        assert set(catalog.names()) == {"R", "HOT"}
        assert catalog.relation("HOT") == b
        assert catalog.preloaded() == [("HOT", b)]

    def test_double_preload_raises(self):
        catalog = Catalog()
        a, _ = _pair()
        catalog.preload("X", a)
        with pytest.raises(PlanError, match="already resident"):
            catalog.preload("X", a)

    def test_every_mutation_bumps_version(self):
        catalog = Catalog()
        a, b = _pair()
        assert catalog.version == 0
        catalog.store("R", a)
        assert catalog.version == 1
        catalog.preload("HOT", b)
        assert catalog.version == 2


class TestContentFingerprint:
    def test_identical_catalogs_share_a_fingerprint(self):
        """Two tenants loading statistically identical data agree —
        the property that makes the pool's plan cache cross-tenant."""
        first, second = Catalog(tenant="a"), Catalog(tenant="b")
        for catalog in (first, second):
            a, b = _pair()
            catalog.store("R", a)
            catalog.store("S", b)
        assert first.content_fingerprint() == second.content_fingerprint()

    def test_extra_relation_changes_the_fingerprint(self):
        first, second = Catalog(), Catalog()
        a, b = _pair()
        first.store("R", a)
        second.store("R", a)
        before = second.content_fingerprint()
        assert first.content_fingerprint() == before
        second.store("S", b)
        assert second.content_fingerprint() != before

    def test_cardinality_changes_the_fingerprint(self):
        small, large = Catalog(), Catalog()
        small.store("R", join_pair(6, 5, 3, seed=1)[0])
        large.store("R", join_pair(12, 5, 3, seed=1)[0])
        assert small.content_fingerprint() != large.content_fingerprint()

    def test_placement_changes_the_fingerprint(self):
        """The same relation stored vs preloaded plans differently
        (disk read vs resident), so the fingerprints must differ."""
        stored, resident = Catalog(), Catalog()
        a, _ = overlapping_pair(8, 6, 4, arity=2, seed=5)
        stored.store("R", a)
        resident.preload("R", a)
        assert (
            stored.content_fingerprint() != resident.content_fingerprint()
        )
