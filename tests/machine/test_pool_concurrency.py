"""Concurrent multi-tenant execution through the engine pool.

The pool's contract: any number of sessions may execute
simultaneously, and every query's results *and* replayed timeline are
bit-identical to running alone on a fresh single-tenant machine.  Plus
the serving semantics around it — cross-tenant plan-cache sharing and
admission backpressure.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.errors import AdmissionError, PlanError
from repro.machine import (
    Base,
    EnginePool,
    Intersect,
    Join,
    Project,
    SystolicDatabaseMachine,
)
from repro.machine.pool import AdmissionGate
from repro.workloads import join_pair, overlapping_pair


def _populate(store) -> None:
    a, b = overlapping_pair(12, 10, 5, arity=3, seed=30)
    ja, jb = join_pair(10, 8, 4, seed=31)
    store("R", ja)
    store("S", jb)
    store("A", a)
    store("B", b)


def _plans():
    return [
        Project(Join(Base("R"), Base("S"), on=((0, 0),)), (0, 1)),
        Intersect(Base("A"), Base("B")),
    ]


def _fresh_machine_baseline():
    """Results + traced ``machine.run`` structure on a fresh machine."""
    tracer = obs.start(obs.Tracer())
    try:
        machine = SystolicDatabaseMachine()
        _populate(machine.store)
        results, report = machine.run_many(_plans())
    finally:
        obs.stop()
    (run_span,) = tracer.find("machine.run")
    return results, report, run_span.structure()


class TestBitIdentity:
    def test_concurrent_sessions_match_fresh_machine(self):
        """≥4 simultaneous tenant sessions, each bit-identical (results,
        timeline, span tree) to running alone on a fresh machine."""
        base_results, base_report, base_structure = _fresh_machine_baseline()

        pool = EnginePool(max_concurrent=4)
        sessions = []
        for i in range(4):
            session = pool.session(f"tenant{i}")
            _populate(session.store)
            sessions.append(session)

        tracer = obs.start(obs.Tracer())
        barrier = threading.Barrier(4)
        outcomes: dict[str, tuple] = {}

        def run(session):
            barrier.wait()
            results, report = session.run_many(_plans())
            outcomes[session.tenant] = (results, report)

        try:
            threads = [
                threading.Thread(target=run, args=(s,)) for s in sessions
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            obs.stop()

        assert len(outcomes) == 4
        for results, report in outcomes.values():
            assert results == base_results
            assert report.makespan == base_report.makespan
            assert [
                (s.label, s.device, s.start, s.end, s.output_memory)
                for s in report.steps
            ] == [
                (s.label, s.device, s.start, s.end, s.output_memory)
                for s in base_report.steps
            ]

        # Every pooled run records exactly the baseline's span tree.
        run_spans = tracer.find("machine.run")
        assert len(run_spans) == 4
        for span in run_spans:
            assert span.structure() == base_structure

    def test_repeated_queries_stay_identical(self):
        """A session's Nth query equals its first — fresh state per
        query, nothing accumulates."""
        session = EnginePool().session("acme")
        _populate(session.store)
        first_results, first_report = session.run_many(_plans())
        for _ in range(2):
            results, report = session.run_many(_plans())
            assert results == first_results
            assert report.makespan == first_report.makespan


class TestPlanCacheSharing:
    def test_cache_hits_across_tenants(self):
        """Tenants with identical catalog statistics share compiled
        plans: warm with one tenant, the rest hit."""
        pool = EnginePool(max_concurrent=4)
        warm = pool.session("warm")
        _populate(warm.store)
        warm.run_many(_plans())
        assert pool.plan_cache_info()["misses"] == 1

        for i in range(3):
            session = pool.session(f"cold{i}")
            _populate(session.store)
            session.run_many(_plans())

        info = pool.plan_cache_info()
        assert info["misses"] == 1  # nobody else compiled
        assert info["hits"] >= 3
        assert pool.tenant_stats() == {
            "warm": 1, "cold0": 1, "cold1": 1, "cold2": 1,
        }

    def test_catalog_mutation_invalidates_only_that_tenant(self):
        pool = EnginePool()
        a = pool.session("a")
        b = pool.session("b")
        _populate(a.store)
        _populate(b.store)
        a.run_many(_plans())
        b.run_many(_plans())
        assert pool.plan_cache_info()["misses"] == 1

        # Tenant a grows a relation: its fingerprint changes, so its
        # next compile misses; tenant b still hits.
        extra_a, _ = join_pair(6, 5, 3, seed=77)
        a.store("EXTRA", extra_a)
        a.run_many(_plans())
        assert pool.plan_cache_info()["misses"] == 2
        hits_before = pool.plan_cache_info()["hits"]
        b.run_many(_plans())
        assert pool.plan_cache_info()["hits"] == hits_before + 1


class TestAdmission:
    def test_backpressure_rejects_on_timeout(self):
        pool = EnginePool(max_concurrent=1)
        session = pool.session("acme")
        _populate(session.store)
        pool.gate.acquire()  # hold the only slot
        try:
            with pytest.raises(AdmissionError):
                session.run_many(_plans(), timeout=0.05)
        finally:
            pool.gate.release()
        # The slot is free again: the same query now succeeds.
        results, _ = session.run_many(_plans(), timeout=5.0)
        assert len(results) == 2

    def test_waiters_drain_in_priority_order(self):
        gate = AdmissionGate(limit=1)
        gate.acquire()
        admitted: list[str] = []
        started = threading.Barrier(3)

        def waiter(name: str, priority: int):
            started.wait()
            gate.acquire(priority=priority, timeout=10.0)
            admitted.append(name)
            gate.release()

        threads = [
            threading.Thread(target=waiter, args=("low", 5)),
            threading.Thread(target=waiter, args=("high", 0)),
        ]
        for t in threads:
            t.start()
        started.wait()  # both waiters are about to queue
        # Give them time to actually enqueue before opening the gate.
        import time

        deadline = time.monotonic() + 5.0
        while gate.stats()["waiting"] < 2:
            if time.monotonic() > deadline:
                raise AssertionError("waiters never queued")
            time.sleep(0.005)
        gate.release()
        for t in threads:
            t.join()
        assert admitted == ["high", "low"]

    def test_gate_rejects_bad_limit(self):
        with pytest.raises(PlanError):
            AdmissionGate(limit=0)

    def test_gate_stats_shape(self):
        gate = AdmissionGate(limit=2)
        assert gate.stats() == {"limit": 2, "active": 0, "waiting": 0}
        gate.acquire()
        assert gate.stats()["active"] == 1
        gate.release()
        assert gate.stats()["active"] == 0
