"""Environment-variable parsing: one helper, one error type.

``REPRO_MACHINE_PARALLEL`` and ``REPRO_LATTICE_CHUNK_BYTES`` used to
be parsed ad hoc (silent truthiness, bare ``ValueError``); they now go
through :mod:`repro.config`, which raises a clear
:class:`~repro.errors.ConfigError` naming the variable on malformed
input.
"""

from __future__ import annotations

import pytest

from repro.config import env_flag, env_int
from repro.errors import ConfigError
from repro.machine.system import SystolicDatabaseMachine


class TestEnvFlag:
    def test_unset_and_empty_mean_default(self):
        assert env_flag("X", True, environ={}) is True
        assert env_flag("X", False, environ={}) is False
        assert env_flag("X", True, environ={"X": ""}) is True
        assert env_flag("X", True, environ={"X": "   "}) is True

    @pytest.mark.parametrize("text", ["1", "true", "on", "yes", "TRUE", " On "])
    def test_true_spellings(self, text):
        assert env_flag("X", False, environ={"X": text}) is True

    @pytest.mark.parametrize("text", ["0", "false", "off", "no", "False", " NO "])
    def test_false_spellings(self, text):
        assert env_flag("X", True, environ={"X": text}) is False

    @pytest.mark.parametrize("text", ["maybe", "2", "yes!", "troo"])
    def test_garbage_raises_naming_the_variable(self, text):
        with pytest.raises(ConfigError, match="REPRO_TEST_FLAG"):
            env_flag("REPRO_TEST_FLAG", True, environ={"REPRO_TEST_FLAG": text})


class TestEnvInt:
    def test_unset_and_empty_mean_default(self):
        assert env_int("X", 7, environ={}) == 7
        assert env_int("X", 7, environ={"X": ""}) == 7

    def test_parses_integers(self):
        assert env_int("X", 7, environ={"X": "42"}) == 42
        assert env_int("X", 7, environ={"X": " -3 "}) == -3

    @pytest.mark.parametrize("text", ["4.5", "ten", "0x10", ""])
    def test_non_integer_raises(self, text):
        if text == "":
            assert env_int("X", 1, environ={"X": text}) == 1
            return
        with pytest.raises(ConfigError, match="X"):
            env_int("X", 1, environ={"X": text})

    def test_minimum_enforced(self):
        assert env_int("X", 5, minimum=1, environ={"X": "1"}) == 1
        with pytest.raises(ConfigError, match=">= 1"):
            env_int("X", 5, minimum=1, environ={"X": "0"})


class TestMachineParallelFlag:
    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE_PARALLEL", "0")
        assert SystolicDatabaseMachine._resolve_parallel(True) is True
        assert SystolicDatabaseMachine._resolve_parallel(False) is False

    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE_PARALLEL", "off")
        assert SystolicDatabaseMachine._resolve_parallel(None) is False

    def test_unset_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_MACHINE_PARALLEL", raising=False)
        assert SystolicDatabaseMachine._resolve_parallel(None) is True

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE_PARALLEL", "fastplease")
        with pytest.raises(ConfigError, match="REPRO_MACHINE_PARALLEL"):
            SystolicDatabaseMachine._resolve_parallel(None)


class TestLatticeChunkBytes:
    def test_env_overrides_chunk_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATTICE_CHUNK_BYTES", "1024")
        from repro.systolic.engine.lattice import LatticeEngine

        assert LatticeEngine().chunk_bytes == 1024

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATTICE_CHUNK_BYTES", "lots")
        from repro.systolic.engine.lattice import LatticeEngine

        with pytest.raises(ConfigError, match="REPRO_LATTICE_CHUNK_BYTES"):
            LatticeEngine()

    def test_below_minimum_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATTICE_CHUNK_BYTES", "0")
        from repro.systolic.engine.lattice import LatticeEngine

        with pytest.raises(ConfigError, match=">= 1"):
            LatticeEngine()
