"""Host-parallel execution and the compile cache on the Fig 9-1 machine.

``run_physical`` now resolves device runs and disk reads in a compute
phase that overlaps independent operations on host threads, then
replays the timing bookkeeping sequentially — so a parallel run must be
*bit-identical* to a serial one: same relations, same scheduled steps.
``compile`` memoizes physical plans behind a fingerprint that covers
plan structure (including subtree sharing), arrivals, pipelining, the
catalog version, and the device roster.
"""

import pytest

from repro.errors import PlanError
from repro.machine import (
    Base,
    Dedup,
    Divide,
    Intersect,
    Join,
    Project,
    SystolicDatabaseMachine,
)
from repro.machine.physical import plan_fingerprint
from repro.machine.scheduler import HostExecutor
from repro.workloads import division_example, join_pair, overlapping_pair


def fresh_machine():
    """A fresh machine per run: results stored in memories and the step
    counter persist across runs, so bit-identical comparisons need
    identical starting state."""
    m = SystolicDatabaseMachine()
    a, b = overlapping_pair(12, 10, 5, arity=2, seed=30)
    ja, jb = join_pair(14, 12, 6, seed=31)
    m.store("A", a)
    m.store("B", b)
    m.store("JA", ja)
    m.store("JB", jb)
    return m


@pytest.fixture
def machine():
    return fresh_machine()


def _transaction():
    """Three plans: two independent, one sharing a subtree with nothing."""
    join = Join(Base("JA"), Base("JB"), on=[("key", "key")])
    return [
        Intersect(Base("A"), Base("B")),
        Project(join, ["a0", "b0"]),
        Dedup(Base("A")),
    ]


class TestHostExecutor:
    def test_diamond_serial_equals_parallel(self):
        thunks = {
            1: ((), lambda deps: 10),
            2: ((1,), lambda deps: deps[1] + 1),
            3: ((1,), lambda deps: deps[1] * 2),
            4: ((2, 3), lambda deps: deps[2] + deps[3]),
        }
        serial = HostExecutor(max_workers=1).run(dict(thunks))
        parallel = HostExecutor(max_workers=4).run(dict(thunks))
        assert serial == parallel == {1: 10, 2: 11, 3: 20, 4: 31}

    def test_seed_results_feed_thunks(self):
        thunks = {2: ((1,), lambda deps: deps[1] + 5)}
        out = HostExecutor(max_workers=2).run(thunks, seed={1: 7})
        assert out == {1: 7, 2: 12}

    def test_unknown_dependency_rejected(self):
        with pytest.raises(PlanError, match="unknown ops"):
            HostExecutor(max_workers=1).run({1: ((99,), lambda deps: 0)})

    def test_cycle_rejected(self):
        thunks = {
            1: ((2,), lambda deps: 0),
            2: ((1,), lambda deps: 0),
        }
        for workers in (1, 4):
            with pytest.raises(PlanError, match="cycle"):
                HostExecutor(max_workers=workers).run(dict(thunks))

    def test_bad_worker_count_rejected(self):
        with pytest.raises(PlanError, match="max_workers"):
            HostExecutor(max_workers=0)


class TestParallelRunPhysical:
    def test_parallel_matches_serial_bit_for_bit(self):
        mp, ms = fresh_machine(), fresh_machine()
        parallel_results, parallel_report = mp.run_physical(
            mp.compile(_transaction()), parallel=True
        )
        serial_results, serial_report = ms.run_physical(
            ms.compile(_transaction()), parallel=False
        )
        assert parallel_results == serial_results
        assert parallel_report.steps == serial_report.steps

    def test_run_many_accepts_parallel_flag(self):
        mp, ms = fresh_machine(), fresh_machine()
        results_p, report_p = mp.run_many(_transaction(), parallel=True)
        results_s, report_s = ms.run_many(_transaction(), parallel=False)
        assert results_p == results_s
        assert report_p.steps == report_s.steps

    def test_environment_kill_switch(self, machine, monkeypatch):
        monkeypatch.setenv("REPRO_MACHINE_PARALLEL", "off")
        assert machine._resolve_parallel(None) is False
        monkeypatch.setenv("REPRO_MACHINE_PARALLEL", "1")
        assert machine._resolve_parallel(None) is True
        assert machine._resolve_parallel(False) is False
        results, _ = machine.run_many(_transaction())
        assert len(results) == 3

    def test_pipelined_chain_with_parallel_compute(self):
        da, db, dc = division_example()

        def run(parallel):
            m = SystolicDatabaseMachine()
            m.store("DA", da)
            m.store("DB", db)
            return m.run_many(
                [Divide(Base("DA"), Base("DB"))], parallel=parallel
            )

        (result_p,), report_p = run(True)
        (result_s,), report_s = run(False)
        assert result_p == result_s == dc
        assert report_p.steps == report_s.steps


class TestPlanCache:
    def test_structural_hit_returns_same_plan(self, machine):
        first = machine.compile(_transaction())
        second = machine.compile(_transaction())
        assert second is first
        info = machine.plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_cached_plan_executes_repeatedly(self, machine):
        results = [
            machine.run_many(_transaction())[0] for _ in range(3)
        ]
        assert results[0] == results[1] == results[2]
        assert machine.plan_cache_info()["hits"] == 2

    def test_different_shape_misses(self, machine):
        machine.compile(Intersect(Base("A"), Base("B")))
        machine.compile(Intersect(Base("B"), Base("A")))
        machine.compile(Dedup(Base("A")))
        assert machine.plan_cache_info()["misses"] == 3

    def test_pipeline_flag_and_arrivals_key(self, machine):
        plans = _transaction()
        machine.compile(plans)
        machine.compile(plans, pipeline=False)
        machine.compile(plans, arrivals=[0.0, 0.1, 0.2])
        assert machine.plan_cache_info()["misses"] == 3

    def test_store_invalidates(self, machine):
        machine.compile(_transaction())
        a, _ = overlapping_pair(6, 6, 3, arity=2, seed=99)
        machine.store("A", a)  # catalog changed: sizes differ
        machine.compile(_transaction())
        assert machine.plan_cache_info()["hits"] == 0
        assert machine.plan_cache_info()["misses"] == 2

    def test_preload_invalidates(self, machine):
        machine.compile(_transaction())
        extra, _ = overlapping_pair(4, 4, 2, arity=2, seed=7)
        machine.preload("EXTRA", extra)
        machine.compile(_transaction())
        assert machine.plan_cache_info()["misses"] == 2

    def test_use_cache_false_bypasses(self, machine):
        machine.compile(_transaction(), use_cache=False)
        info = machine.plan_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0, "maxsize": 64}

    def test_lru_eviction(self):
        m = SystolicDatabaseMachine(plan_cache_size=1)
        a, b = overlapping_pair(6, 5, 3, arity=2, seed=1)
        m.store("A", a)
        m.store("B", b)
        m.compile(Intersect(Base("A"), Base("B")))
        m.compile(Dedup(Base("A")))  # evicts the intersect plan
        m.compile(Intersect(Base("A"), Base("B")))
        info = m.plan_cache_info()
        assert info["size"] == 1
        assert info["misses"] == 3 and info["hits"] == 0

    def test_zero_size_disables(self):
        m = SystolicDatabaseMachine(plan_cache_size=0)
        a, b = overlapping_pair(6, 5, 3, arity=2, seed=1)
        m.store("A", a)
        m.store("B", b)
        m.compile(Intersect(Base("A"), Base("B")))
        assert m.plan_cache_info()["size"] == 0

    def test_negative_size_rejected(self):
        with pytest.raises(PlanError, match="plan_cache_size"):
            SystolicDatabaseMachine(plan_cache_size=-1)


class TestPlanFingerprint:
    def test_sharing_is_part_of_the_key(self):
        shared = Base("A")
        with_sharing = Intersect(shared, shared)
        without = Intersect(Base("A"), Base("A"))
        assert plan_fingerprint([with_sharing]) != plan_fingerprint([without])
        assert plan_fingerprint([without]) == plan_fingerprint(
            [Intersect(Base("A"), Base("A"))]
        )

    def test_parameters_distinguish(self):
        j1 = Join(Base("JA"), Base("JB"), on=[("key", "key")])
        j2 = Join(Base("JA"), Base("JB"), on=[("a0", "b0")])
        assert plan_fingerprint([j1]) != plan_fingerprint([j2])

    def test_fingerprint_is_hashable(self):
        key = plan_fingerprint(_transaction())
        assert hash(key) is not None
