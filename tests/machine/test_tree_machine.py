"""Song's tree machine — the §9 comparison architecture."""

import pytest

from repro.errors import CapacityError
from repro.machine import TreeMachine
from repro.relational import MultiRelation, Relation, algebra
from repro.workloads import join_pair, overlapping_pair, relation_with_duplicates


class TestGeometry:
    def test_depth(self):
        assert TreeMachine(leaves=8).depth == 3
        assert TreeMachine(leaves=1024).depth == 10
        assert TreeMachine(leaves=1).depth == 1

    def test_validation(self):
        with pytest.raises(CapacityError):
            TreeMachine(leaves=0)


class TestFunctionalCorrectness:
    def test_intersection(self):
        a, b = overlapping_pair(9, 7, 3, arity=2, seed=40)
        run = TreeMachine(leaves=16).intersection(a, b)
        assert run.relation == algebra.intersection(a, b)

    def test_intersection_blocked_when_b_exceeds_leaves(self):
        a, b = overlapping_pair(6, 10, 2, arity=2, seed=41)
        run = TreeMachine(leaves=4).intersection(a, b)
        assert run.relation == algebra.intersection(a, b)
        assert run.blocks == 3

    def test_dedup(self):
        multi = relation_with_duplicates(5, 2.0, arity=2, seed=42)
        run = TreeMachine(leaves=32).remove_duplicates(multi)
        assert run.relation == algebra.remove_duplicates(multi)

    def test_dedup_capacity_limit(self):
        multi = relation_with_duplicates(10, 2.0, arity=2, seed=43)
        with pytest.raises(CapacityError, match="exceed"):
            TreeMachine(leaves=4).remove_duplicates(multi)

    def test_join(self):
        a, b = join_pair(7, 6, 3, seed=44)
        run = TreeMachine(leaves=16).join(a, b, [(0, 0)])
        assert run.relation == algebra.join(a, b, [(0, 0)])

    def test_empty_operands(self, pair_schema):
        empty = Relation(pair_schema)
        full = Relation(pair_schema, [(1, 2)])
        tm = TreeMachine(leaves=4)
        assert tm.intersection(empty, full).cycles == 0
        assert tm.remove_duplicates(MultiRelation(pair_schema)).cycles == 0


class TestCostModel:
    def test_intersection_cycles_formula(self):
        a, b = overlapping_pair(10, 8, 0, arity=2, seed=45)
        tm = TreeMachine(leaves=16)
        run = tm.intersection(a, b)
        # One block: load (8 + depth) + probe (10 + 2·depth).
        assert run.cycles == (8 + tm.depth) + (10 + 2 * tm.depth)
        assert run.comparisons == 80

    def test_join_pays_for_match_extraction(self):
        a, b = join_pair(6, 6, 6, seed=46)
        tm = TreeMachine(leaves=8)
        run = tm.join(a, b, [(0, 0)])
        no_match_a, no_match_b = join_pair(6, 6, 0, seed=47)
        dry = tm.join(no_match_a, no_match_b, [(0, 0)])
        assert run.cycles == dry.cycles + 6  # one cycle per extracted match

    def test_more_leaves_fewer_blocks(self):
        a, b = overlapping_pair(6, 40, 0, arity=2, seed=48)
        small = TreeMachine(leaves=8).intersection(a, b)
        large = TreeMachine(leaves=64).intersection(a, b)
        assert small.blocks > large.blocks
        assert small.cycles > large.cycles


class TestDifferenceAndDivision:
    def test_difference(self):
        a, b = overlapping_pair(8, 6, 3, arity=2, seed=50)
        tm = TreeMachine(leaves=16)
        run = tm.difference(a, b)
        assert run.relation == algebra.difference(a, b)
        # Same data movement as the intersection probe.
        assert run.cycles == tm.intersection(a, b).cycles

    def test_difference_empty_cases(self, pair_schema):
        tm = TreeMachine(leaves=4)
        empty = Relation(pair_schema)
        full = Relation(pair_schema, [(1, 2)])
        assert tm.difference(empty, full).cycles == 0
        assert tm.difference(full, empty).relation == full

    def test_division(self):
        from repro.workloads import division_example

        a, b, expected = division_example()
        run = TreeMachine(leaves=16).divide(a, b)
        assert run.relation == expected
        assert run.cycles > 0
        assert run.comparisons == len(a) * len(b)

    def test_division_capacity(self):
        from repro.workloads import division_example

        a, b, _ = division_example()
        with pytest.raises(CapacityError, match="exceed"):
            TreeMachine(leaves=4).divide(a, b)

    def test_division_extraction_cost(self):
        from repro.workloads import division_workload

        a1, b1, _ = division_workload(6, 2, 0, seed=60)  # empty quotient
        a2, b2, size = division_workload(6, 2, 6, seed=60)  # full quotient
        tm = TreeMachine(leaves=64)
        empty_run = tm.divide(a1, b1)
        full_run = tm.divide(a2, b2)
        # The quotient members each cost one extraction cycle.
        assert full_run.cycles - full_run.relation.cardinality >= 0
        assert empty_run.relation.cardinality == 0
