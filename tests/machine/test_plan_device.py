"""Plan AST validation and device dispatch."""

import pytest

from repro.arrays import ArrayCapacity
from repro.errors import PlanError
from repro.machine import (
    Base,
    CpuDevice,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    Project,
    Select,
    SystolicDevice,
    Union,
    walk,
)
from repro.machine.plan import DEVICE_COMPARISON, DEVICE_DIVISION, DEVICE_JOIN
from repro.relational import Relation, algebra
from repro.workloads import division_example, join_pair, overlapping_pair


class TestPlanNodes:
    def test_device_kinds(self):
        a, b = Base("A"), Base("B")
        assert Intersect(a, b).device_kind == DEVICE_COMPARISON
        assert Difference(a, b).device_kind == DEVICE_COMPARISON
        assert Union(a, b).device_kind == DEVICE_COMPARISON
        assert Dedup(a).device_kind == DEVICE_COMPARISON
        assert Project(a, ("x",)).device_kind == DEVICE_COMPARISON
        assert Join(a, b, on=(("x", "x"),)).device_kind == DEVICE_JOIN
        assert Divide(a, b).device_kind == DEVICE_DIVISION

    def test_validation(self):
        with pytest.raises(PlanError):
            Base("")
        with pytest.raises(PlanError):
            Project(Base("A"), ())
        with pytest.raises(PlanError):
            Join(Base("A"), Base("B"), on=())
        with pytest.raises(PlanError):
            Join(Base("A"), Base("B"), on=(("x", "x"),), ops=("<", ">"))

    def test_describe(self):
        node = Join(Base("A"), Base("B"), on=(("k", "k"),), ops=("<",))
        assert "k<k" in node.describe()
        assert Select(Base("A"), "x", ">=", 5).describe() == "select[x>=5]"

    def test_walk_postorder(self):
        a, b = Base("A"), Base("B")
        plan = Intersect(Union(a, b), b)
        order = walk(plan)
        assert order[0] is a
        assert order[-1] is plan
        # Shared node b appears exactly once.
        assert sum(1 for n in order if n is b) == 1

    def test_walk_respects_dependencies(self):
        plan = Project(Dedup(Base("A")), ("x",))
        order = walk(plan)
        positions = {id(n): i for i, n in enumerate(order)}
        for node in order:
            for child in node.children:
                assert positions[id(child)] < positions[id(node)]


class TestSystolicDevice:
    def test_executes_every_comparison_op(self, pair_schema):
        device = SystolicDevice("c", DEVICE_COMPARISON,
                                capacity=ArrayCapacity(5, 4))
        a, b = overlapping_pair(5, 4, 2, arity=2, seed=20)
        run = device.execute(Intersect(Base("A"), Base("B")), [a, b])
        assert run.relation == algebra.intersection(a, b)
        assert run.pulses > 0
        assert run.seconds > 0

        run = device.execute(Union(Base("A"), Base("B")), [a, b])
        assert run.relation == algebra.union(a, b)

        run = device.execute(Project(Base("A"), ("c0",)), [a])
        assert run.relation == algebra.project(a, ["c0"])

    def test_join_device(self):
        device = SystolicDevice("j", DEVICE_JOIN, capacity=ArrayCapacity(5, 4))
        a, b = join_pair(5, 4, 2, seed=21)
        run = device.execute(
            Join(Base("A"), Base("B"), on=(("key", "key"),)), [a, b]
        )
        assert run.relation == algebra.join(a, b, [("key", "key")])

    def test_division_device(self):
        device = SystolicDevice("d", DEVICE_DIVISION,
                                capacity=ArrayCapacity(4, 6))
        a, b, expected = division_example()
        run = device.execute(Divide(Base("A"), Base("B")), [a, b])
        assert run.relation == expected

    def test_kind_mismatch_rejected(self):
        device = SystolicDevice("c", DEVICE_COMPARISON)
        with pytest.raises(PlanError, match="cannot execute"):
            device.execute(Join(Base("A"), Base("B"), on=(("x", "x"),)), [])

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown kind"):
            SystolicDevice("z", "quantum")

    def test_small_device_blocks_but_agrees(self):
        tiny = SystolicDevice("c", DEVICE_COMPARISON,
                              capacity=ArrayCapacity(3, 1))
        big = SystolicDevice("c", DEVICE_COMPARISON,
                             capacity=ArrayCapacity(99, 9))
        a, b = overlapping_pair(8, 8, 3, arity=2, seed=22)
        node = Intersect(Base("A"), Base("B"))
        tiny_run = tiny.execute(node, [a, b])
        big_run = big.execute(node, [a, b])
        assert tiny_run.relation == big_run.relation
        assert tiny_run.block_runs > big_run.block_runs
        assert tiny_run.seconds > big_run.seconds


class TestCpuDevice:
    def test_selection(self, pair_schema):
        cpu = CpuDevice(tuple_op_ns=1000.0)
        r = Relation(pair_schema, [(1, 10), (5, 50), (9, 90)])
        run = cpu.execute(Select(Base("A"), "x", ">=", 5), [r])
        assert run.relation.tuples == ((5, 50), (9, 90))
        assert run.seconds == pytest.approx(3 * 1000e-9)

    def test_rejects_array_work(self):
        cpu = CpuDevice()
        with pytest.raises(PlanError, match="only executes selections"):
            cpu.execute(Intersect(Base("A"), Base("B")), [])

    def test_validation(self):
        with pytest.raises(PlanError):
            CpuDevice(tuple_op_ns=0)
