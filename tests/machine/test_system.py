"""End-to-end transactions on the Fig 9-1 machine (E13)."""

import pytest

from repro.errors import CapacityError, PlanError
from repro.machine import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    MachineDisk,
    Project,
    Select,
    SystolicDatabaseMachine,
    Union,
)
from repro.relational import Relation, algebra
from repro.workloads import (
    division_example,
    join_pair,
    overlapping_pair,
)


@pytest.fixture
def machine():
    return SystolicDatabaseMachine()


@pytest.fixture
def loaded(machine):
    a, b = overlapping_pair(12, 10, 5, arity=3, seed=30)
    ja, jb = join_pair(10, 8, 4, seed=31)
    da, db, dc = division_example()
    machine.store("A", a)
    machine.store("B", b)
    machine.store("JA", ja)
    machine.store("JB", jb)
    machine.store("DA", da)
    machine.store("DB", db)
    return machine, {"A": a, "B": b, "JA": ja, "JB": jb,
                     "DA": da, "DB": db, "DC": dc}


class TestSingleOps:
    def test_intersection(self, loaded):
        machine, rels = loaded
        result, report = machine.run(Intersect(Base("A"), Base("B")))
        assert result == algebra.intersection(rels["A"], rels["B"])
        assert report.makespan > 0
        # Two loads + one array op on the timeline.
        assert len(report.steps) == 3

    def test_difference_and_union(self, loaded):
        machine, rels = loaded
        result, _ = machine.run(Difference(Base("A"), Base("B")))
        assert result == algebra.difference(rels["A"], rels["B"])
        result, _ = machine.run(Union(Base("A"), Base("B")))
        assert result == algebra.union(rels["A"], rels["B"])

    def test_join(self, loaded):
        machine, rels = loaded
        result, _ = machine.run(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),))
        )
        assert result == algebra.join(rels["JA"], rels["JB"], [("key", "key")])

    def test_division(self, loaded):
        machine, rels = loaded
        result, _ = machine.run(Divide(Base("DA"), Base("DB")))
        assert result == rels["DC"]

    def test_select_runs_on_cpu(self, loaded):
        machine, rels = loaded
        result, report = machine.run(Select(Base("A"), 0, ">=", 0))
        assert result == algebra.select(rels["A"], 0, ">=", 0)
        assert any(step.device == "cpu" for step in report.steps)


class TestPipelines:
    def test_multi_op_plan(self, loaded):
        machine, rels = loaded
        plan = Project(
            Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
            ("key", "a0"),
        )
        result, report = machine.run(plan)
        expected = algebra.project(
            algebra.join(rels["JA"], rels["JB"], [("key", "key")]),
            ["key", "a0"],
        )
        assert result == expected
        devices = {step.device for step in report.steps}
        assert "join0" in devices
        assert "comparison0" in devices

    def test_shared_subplan_computed_once(self, loaded):
        machine, rels = loaded
        shared = Union(Base("A"), Base("B"))
        plan = Difference(shared, Base("B"))
        result, report = machine.run(plan)
        expected = algebra.difference(
            algebra.union(rels["A"], rels["B"]), rels["B"]
        )
        assert result == expected
        union_steps = [s for s in report.steps if s.label == "union"]
        assert len(union_steps) == 1

    def test_transaction_of_independent_plans_overlaps(self, loaded):
        machine, rels = loaded
        plan1 = Intersect(Base("A"), Base("B"))
        plan2 = Join(Base("JA"), Base("JB"), on=(("key", "key"),))
        results, report = machine.run_many([plan1, plan2])
        assert results[0] == algebra.intersection(rels["A"], rels["B"])
        assert results[1] == algebra.join(rels["JA"], rels["JB"],
                                          [("key", "key")])
        # The crossbar allows some overlap: makespan under the serial sum.
        assert report.makespan <= report.serial_seconds
        assert machine.crossbar.concurrency_profile() >= 2


class TestLogicPerTrack:
    def test_selection_fused_into_disk_read(self):
        machine = SystolicDatabaseMachine(
            disk=MachineDisk(logic_per_track=True)
        )
        a, _ = overlapping_pair(10, 10, 0, arity=2, seed=33)
        machine.store("A", a)
        plan = Select(Base("A"), 0, ">=", 0)
        result, report = machine.run(plan)
        assert result == algebra.select(a, 0, ">=", 0)
        # No CPU step: the selection rode the read.
        assert all(step.device != "cpu" for step in report.steps)
        assert len(report.steps) == 1


class TestResourceConstraints:
    def test_memory_exhaustion_detected(self):
        machine = SystolicDatabaseMachine(memory_bytes=16)
        a, b = overlapping_pair(10, 10, 0, arity=2, seed=34)
        machine.store("A", a)
        with pytest.raises(CapacityError, match="absorb"):
            machine.run(Dedup(Base("A")))

    def test_needs_two_memories(self):
        with pytest.raises(CapacityError, match="two memories"):
            SystolicDatabaseMachine(memories=1)

    def test_empty_transaction_rejected(self, machine):
        with pytest.raises(PlanError):
            machine.run_many([])

    def test_output_lands_in_a_different_memory(self, loaded):
        # §9: "pipelined back into another memory".
        machine, _ = loaded
        _, report = machine.run(Intersect(Base("A"), Base("B")))
        op = next(s for s in report.steps if s.label == "intersect")
        loads = {s.output_key: s.output_memory for s in report.steps
                 if s.device == "disk"}
        input_memories = {loads[key] for key in op.input_keys}
        assert op.output_memory not in input_memories


class TestReport:
    def test_timeline_renders(self, loaded):
        machine, _ = loaded
        _, report = machine.run(Intersect(Base("A"), Base("B")))
        text = report.timeline()
        assert "makespan" in text
        assert "intersect" in text

    def test_device_busy_accounting(self, loaded):
        machine, _ = loaded
        _, report = machine.run(Intersect(Base("A"), Base("B")))
        busy = report.device_busy_seconds()
        assert busy["disk"] > 0
        assert busy["comparison0"] > 0


class TestDeviceScaling:
    def test_two_comparison_devices_split_work(self):
        from repro.machine.plan import DEVICE_COMPARISON, DEVICE_DIVISION, DEVICE_JOIN

        machine = SystolicDatabaseMachine(devices=(
            (DEVICE_COMPARISON, 2), (DEVICE_JOIN, 1), (DEVICE_DIVISION, 1),
        ))
        a, b = overlapping_pair(12, 10, 4, arity=2, seed=200)
        machine.store("A", a)
        machine.store("B", b)
        plans = [
            Intersect(Base("A"), Base("B")),
            Difference(Base("A"), Base("B")),
        ]
        results, report = machine.run_many(plans)
        assert results[0] == algebra.intersection(a, b)
        assert results[1] == algebra.difference(a, b)
        used = {s.device for s in report.steps if s.device.startswith("comparison")}
        assert used == {"comparison0", "comparison1"}

    def test_single_device_serializes_same_kind(self):
        machine = SystolicDatabaseMachine()
        a, b = overlapping_pair(12, 10, 4, arity=2, seed=201)
        machine.store("A", a)
        machine.store("B", b)
        plans = [
            Intersect(Base("A"), Base("B")),
            Difference(Base("A"), Base("B")),
        ]
        _, report = machine.run_many(plans)
        steps = sorted(
            (s for s in report.steps if s.device == "comparison0"),
            key=lambda s: s.start,
        )
        assert len(steps) == 2
        assert steps[1].start >= steps[0].end  # no overlap on one device


class TestArrivalTimes:
    def test_plans_respect_release_times(self, loaded):
        machine, rels = loaded
        plans = [
            Intersect(Base("A"), Base("B")),
            Difference(Base("A"), Base("B")),
        ]
        results, report = machine.run_many(plans, arrivals=[0.0, 0.5])
        assert results[0] == algebra.intersection(rels["A"], rels["B"])
        assert results[1] == algebra.difference(rels["A"], rels["B"])
        late_steps = [s for s in report.steps if s.label == "difference"]
        assert late_steps[0].start >= 0.5

    def test_arrival_order_independent_of_list_order(self, loaded):
        machine, rels = loaded
        plans = [
            Difference(Base("A"), Base("B")),   # arrives late
            Intersect(Base("A"), Base("B")),    # arrives first
        ]
        results, report = machine.run_many(plans, arrivals=[1.0, 0.0])
        # Results come back in list order regardless of arrivals.
        assert results[0] == algebra.difference(rels["A"], rels["B"])
        assert results[1] == algebra.intersection(rels["A"], rels["B"])
        first = min(s.start for s in report.steps)
        assert first < 1.0  # the early arrival started early

    def test_arrival_validation(self, loaded):
        machine, _ = loaded
        plan = Intersect(Base("A"), Base("B"))
        with pytest.raises(PlanError, match="one arrival per plan"):
            machine.run_many([plan], arrivals=[0.0, 1.0])
        with pytest.raises(PlanError, match="non-negative"):
            machine.run_many([plan], arrivals=[-1.0])


class TestPreloadedRelations:
    def test_preload_skips_the_disk(self, pair_schema):
        machine = SystolicDatabaseMachine()
        a = Relation(pair_schema, [(1, 2), (3, 4)])
        b = Relation(pair_schema, [(3, 4)])
        machine.preload("A", a)
        machine.preload("B", b)
        result, report = machine.run(Intersect(Base("A"), Base("B")))
        assert result == algebra.intersection(a, b)
        assert all(step.device != "disk" for step in report.steps)

    def test_preloads_spread_across_memories(self, pair_schema):
        machine = SystolicDatabaseMachine(memories=4)
        for index in range(4):
            machine.preload(f"R{index}", Relation(pair_schema, [(index, 0)]))
        homes = {record[3] for record in machine._resident.values()}
        assert len(homes) == 4

    def test_duplicate_preload_rejected(self, pair_schema):
        machine = SystolicDatabaseMachine()
        machine.preload("A", Relation(pair_schema, [(1, 2)]))
        with pytest.raises(PlanError, match="already resident"):
            machine.preload("A", Relation(pair_schema, [(3, 4)]))

    def test_preload_capacity_checked(self, pair_schema):
        machine = SystolicDatabaseMachine(memory_bytes=8)
        big = Relation(pair_schema, [(i, i) for i in range(10)])
        with pytest.raises(CapacityError):
            machine.preload("BIG", big)

    def test_resident_beats_disk_copy(self, pair_schema):
        # Same name on disk and in memory: the resident copy wins
        # (it is the fresher intermediate result).
        machine = SystolicDatabaseMachine()
        stale = Relation(pair_schema, [(9, 9)])
        fresh = Relation(pair_schema, [(1, 1)])
        machine.store("R", stale)
        machine.preload("R", fresh)
        result, _ = machine.run(Dedup(Base("R")))
        assert result == fresh


class TestMemoryPortContention:
    def test_ops_sharing_an_input_memory_serialize(self, pair_schema):
        """A memory port feeds one device at a time — two operations
        reading the same resident relation cannot overlap, whatever the
        device count (the §9 constraint that makes output go "into
        another memory")."""
        from repro.machine.plan import DEVICE_COMPARISON, DEVICE_DIVISION, DEVICE_JOIN

        machine = SystolicDatabaseMachine(devices=(
            (DEVICE_COMPARISON, 2), (DEVICE_JOIN, 1), (DEVICE_DIVISION, 1),
        ))
        a = Relation(pair_schema, [(i, i) for i in range(12)])
        b = Relation(pair_schema, [(i, i + 1) for i in range(12)])
        machine.preload("A", a)
        machine.preload("B", b)
        shared_a1, shared_a2 = Base("A"), Base("A")
        plans = [
            Intersect(shared_a1, Base("B")),
            Difference(shared_a2, Base("B")),
        ]
        _, report = machine.run_many(plans)
        ops = sorted(
            (s for s in report.steps if s.device.startswith("comparison")),
            key=lambda s: s.start,
        )
        assert len(ops) == 2
        # Both read A's (and B's) memory: forced serial despite 2 devices.
        assert ops[1].start >= ops[0].end


class TestOutputStreamingCost:
    def test_large_output_lengthens_the_operation(self, pair_schema):
        """§6.2: a degenerate join's output can dwarf its inputs — the
        machine charges the write-back stream accordingly."""
        from repro.machine import Join

        machine = SystolicDatabaseMachine()
        # Every key matches every key: |C| = 30·30 = 900 tuples of
        # arity 3 vs 30-tuple inputs.
        a = Relation(pair_schema, [(1, i) for i in range(30)])
        b = Relation(pair_schema, [(1, 100 + j) for j in range(30)])
        machine.preload("A", a)
        machine.preload("B", b)
        _, report = machine.run(Join(Base("A"), Base("B"), on=((0, 0),)))
        op = next(s for s in report.steps if s.label.startswith("join"))
        out_stream = machine.memories[0].transfer_seconds(op.nbytes_out)
        assert op.duration >= out_stream
        assert op.nbytes_out > 10 * len(a) * a.arity * 4  # output >> input
