"""Scheduler internals: device timeline and execution reports."""

import pytest

from repro.arrays import ArrayCapacity
from repro.errors import PlanError
from repro.machine.device import CpuDevice, SystolicDevice
from repro.machine.plan import DEVICE_COMPARISON, DEVICE_JOIN
from repro.machine.scheduler import (
    DeviceTimeline,
    ExecutionReport,
    ScheduledStep,
)


def _devices():
    return [
        SystolicDevice("comparison0", DEVICE_COMPARISON,
                       capacity=ArrayCapacity(7, 2)),
        SystolicDevice("comparison1", DEVICE_COMPARISON,
                       capacity=ArrayCapacity(7, 2)),
        SystolicDevice("join0", DEVICE_JOIN, capacity=ArrayCapacity(7, 2)),
        CpuDevice("cpu"),
    ]


class TestDeviceTimeline:
    def test_prefers_idle_instance(self):
        timeline = DeviceTimeline(_devices())
        first, start = timeline.pick(DEVICE_COMPARISON, ready=0.0)
        assert start == 0.0
        timeline.occupy(first.name, until=5.0)
        second, start = timeline.pick(DEVICE_COMPARISON, ready=0.0)
        assert second.name != first.name
        assert start == 0.0

    def test_waits_when_all_busy(self):
        timeline = DeviceTimeline(_devices())
        timeline.occupy("comparison0", until=5.0)
        timeline.occupy("comparison1", until=3.0)
        device, start = timeline.pick(DEVICE_COMPARISON, ready=0.0)
        assert device.name == "comparison1"  # frees first
        assert start == 3.0

    def test_ready_time_dominates_when_later(self):
        timeline = DeviceTimeline(_devices())
        timeline.occupy("join0", until=1.0)
        _, start = timeline.pick(DEVICE_JOIN, ready=9.0)
        assert start == 9.0

    def test_unknown_kind(self):
        timeline = DeviceTimeline(_devices())
        with pytest.raises(PlanError, match="no device of kind"):
            timeline.pick("quantum", ready=0.0)

    def test_empty_machine_rejected(self):
        with pytest.raises(PlanError):
            DeviceTimeline([])


class TestExecutionReport:
    def _step(self, label, device, start, end):
        return ScheduledStep(
            label=label, device=device, start=start, end=end,
            output_key="k", output_memory="mem0",
        )

    def test_makespan_and_serial(self):
        report = ExecutionReport(steps=[
            self._step("a", "d0", 0.0, 2.0),
            self._step("b", "d1", 1.0, 3.0),
        ])
        assert report.makespan == 3.0
        assert report.serial_seconds == 4.0
        assert report.concurrency_speedup == pytest.approx(4 / 3)

    def test_empty_report(self):
        report = ExecutionReport()
        assert report.makespan == 0.0
        assert report.concurrency_speedup == 1.0

    def test_device_busy_accumulates(self):
        report = ExecutionReport(steps=[
            self._step("a", "d0", 0.0, 2.0),
            self._step("b", "d0", 2.0, 5.0),
        ])
        assert report.device_busy_seconds() == {"d0": 5.0}

    def test_timeline_sorted_by_start(self):
        report = ExecutionReport(steps=[
            self._step("later", "d0", 5.0, 6.0),
            self._step("earlier", "d1", 0.0, 1.0),
        ])
        text = report.timeline()
        assert text.index("earlier") < text.index("later")
        assert "makespan" in text

    def test_step_duration(self):
        assert self._step("x", "d", 1.0, 3.5).duration == 2.5


class TestGantt:
    def _report(self):
        return ExecutionReport(steps=[
            ScheduledStep(label="load", device="disk", start=0.0, end=0.5,
                          output_key="k0", output_memory="mem0"),
            ScheduledStep(label="op", device="comparison0", start=0.5,
                          end=1.0, output_key="k1", output_memory="mem1"),
        ])

    def test_one_row_per_device(self):
        from repro.machine.scheduler import gantt

        chart = gantt(self._report(), width=20)
        lines = chart.splitlines()
        assert len(lines) == 3  # two devices + scale
        assert lines[0].strip().startswith("comparison0")
        assert "#" in lines[0] and "#" in lines[1]

    def test_busy_halves_do_not_overlap(self):
        from repro.machine.scheduler import gantt

        chart = gantt(self._report(), width=40)
        disk_row = next(l for l in chart.splitlines() if "disk" in l)
        comparison_row = next(
            l for l in chart.splitlines() if "comparison0" in l
        )
        disk_cells = {i for i, c in enumerate(disk_row) if c == "#"}
        op_cells = {i for i, c in enumerate(comparison_row) if c == "#"}
        assert max(disk_cells) <= min(op_cells) + 1  # sequential phases

    def test_scale_shows_makespan(self):
        from repro.machine.scheduler import gantt

        # Steps end at 1.0 s — the scale renders in milliseconds.
        assert "1000.0 ms" in gantt(self._report())

    def test_empty_report(self):
        from repro.machine.scheduler import gantt

        assert "empty" in gantt(ExecutionReport())
