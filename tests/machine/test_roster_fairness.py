"""The DeviceRoster's documented deterministic tie-breaking order."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.machine import DeviceRoster
from repro.machine.device import SystolicDevice
from repro.machine.plan import DEVICE_JOIN


def _twins() -> list[SystolicDevice]:
    return [
        SystolicDevice("join1", DEVICE_JOIN),
        SystolicDevice("join0", DEVICE_JOIN),
    ]


class TestDeterministicTieBreak:
    def test_default_ties_break_by_name(self):
        """The historical rule, now pinned: with no fairness and equal
        predicted completion, the lexicographically smallest name wins
        — every time, regardless of construction order."""
        roster = DeviceRoster(_twins())
        for _ in range(5):
            device, start = roster.pick(DEVICE_JOIN, ready=0.0)
            assert device.name == "join0"
            assert start == 0.0

    def test_equal_durations_still_break_by_name(self):
        roster = DeviceRoster(_twins())
        durations = {"join0": 2.0, "join1": 2.0}
        device, _ = roster.pick(DEVICE_JOIN, ready=1.0, durations=durations)
        assert device.name == "join0"

    def test_cost_aware_choice_beats_name_order(self):
        """A faster predicted completion wins before any tie-break."""
        roster = DeviceRoster(_twins())
        durations = {"join0": 5.0, "join1": 1.0}
        device, _ = roster.pick(DEVICE_JOIN, ready=0.0, durations=durations)
        assert device.name == "join1"

    def test_busy_device_loses(self):
        roster = DeviceRoster(_twins())
        roster.occupy("join0", 10.0)
        device, start = roster.pick(DEVICE_JOIN, ready=0.0)
        assert device.name == "join1"
        assert start == 0.0


class TestFairness:
    def test_fairness_spreads_equal_work_round_robin(self):
        """With fairness on, equal-completion picks alternate across
        the twin devices instead of piling onto join0."""
        roster = DeviceRoster(_twins(), fairness=True)
        picked = [roster.pick(DEVICE_JOIN, ready=0.0)[0].name
                  for _ in range(6)]
        assert picked == ["join0", "join1"] * 3
        assert roster.assignments("join0") == 3
        assert roster.assignments("join1") == 3

    def test_fairness_never_overrides_completion_time(self):
        roster = DeviceRoster(_twins(), fairness=True)
        roster.occupy("join0", 4.0)
        # join0 is busy; fairness cannot make it win.
        for _ in range(3):
            device, _ = roster.pick(DEVICE_JOIN, ready=0.0)
            assert device.name == "join1"

    def test_default_roster_counts_assignments_without_using_them(self):
        roster = DeviceRoster(_twins())
        for _ in range(4):
            roster.pick(DEVICE_JOIN, ready=0.0)
        assert roster.assignments("join0") == 4
        assert roster.assignments("join1") == 0

    def test_unknown_device_raises(self):
        roster = DeviceRoster(_twins())
        with pytest.raises(PlanError):
            roster.assignments("nope")
