"""The machine disk (with logic-per-track) and the crossbar switch."""

import pytest

from repro.errors import CapacityError, PlanError
from repro.machine import CrossbarSwitch, MachineDisk
from repro.machine.crossbar import Link
from repro.perf import PAPER_DISK
from repro.relational import Relation


class TestMachineDisk:
    def test_read_timing_whole_revolutions(self, pair_schema):
        disk = MachineDisk()
        r = Relation(pair_schema, [(i, i) for i in range(10)])
        disk.store("R", r)
        loaded, seconds = disk.read("R")
        assert loaded == r
        assert seconds == PAPER_DISK.revolution_seconds  # tiny: 1 revolution

    def test_unknown_relation(self):
        with pytest.raises(PlanError, match="no base relation"):
            MachineDisk().read("ghost")

    def test_logic_per_track_selection(self, pair_schema):
        disk = MachineDisk(logic_per_track=True)
        r = Relation(pair_schema, [(1, 10), (2, 20), (3, 30)])
        disk.store("R", r)
        filtered, seconds = disk.read("R", selection=("x", ">=", 2))
        assert filtered.tuples == ((2, 20), (3, 30))
        # §9/[8]: selection costs nothing extra — same read time.
        _, plain_seconds = disk.read("R")
        assert seconds == plain_seconds

    def test_selection_requires_logic_per_track(self, pair_schema):
        disk = MachineDisk(logic_per_track=False)
        disk.store("R", Relation(pair_schema, [(1, 10)]))
        with pytest.raises(PlanError, match="logic-per-track"):
            disk.read("R", selection=("x", "==", 1))

    def test_bad_selection_operator(self, pair_schema):
        disk = MachineDisk(logic_per_track=True)
        disk.store("R", Relation(pair_schema, [(1, 10)]))
        with pytest.raises(PlanError, match="unknown comparison"):
            disk.read("R", selection=("x", "~", 1))

    def test_catalog(self, pair_schema):
        disk = MachineDisk()
        disk.store("A", Relation(pair_schema, [(1, 1)]))
        assert disk.holds("A")
        assert not disk.holds("B")
        assert disk.names() == ["A"]


class TestCrossbar:
    def test_non_blocking_for_distinct_ports(self):
        switch = CrossbarSwitch(["m0", "m1"], ["d0", "d1"])
        switch.establish("m0", "d0", 0.0, 1.0)
        switch.establish("m1", "d1", 0.0, 1.0)  # concurrent, no conflict
        assert switch.concurrency_profile() == 2

    def test_memory_port_conflict_detected(self):
        switch = CrossbarSwitch(["m0"], ["d0", "d1"])
        switch.establish("m0", "d0", 0.0, 1.0)
        with pytest.raises(CapacityError, match="already linked"):
            switch.establish("m0", "d1", 0.5, 1.5)

    def test_same_pair_may_relink(self):
        # A memory feeding the same device twice in one window is just
        # one stream; not a conflict.
        switch = CrossbarSwitch(["m0"], ["d0"])
        switch.establish("m0", "d0", 0.0, 1.0)
        switch.establish("m0", "d0", 0.5, 1.5)

    def test_sequential_reuse_allowed(self):
        switch = CrossbarSwitch(["m0"], ["d0", "d1"])
        switch.establish("m0", "d0", 0.0, 1.0)
        switch.establish("m0", "d1", 1.0, 2.0)  # back-to-back is fine
        assert switch.configurations() == 2

    def test_unknown_ports(self):
        switch = CrossbarSwitch(["m0"], ["d0"])
        with pytest.raises(PlanError, match="unknown memory"):
            switch.establish("mx", "d0", 0, 1)
        with pytest.raises(PlanError, match="unknown device"):
            switch.establish("m0", "dx", 0, 1)

    def test_earliest_window_finds_gap(self):
        switch = CrossbarSwitch(["m0"], ["d0"])
        switch.establish("m0", "d0", 1.0, 2.0)
        switch.establish("m0", "d0", 3.0, 4.0)
        assert switch.earliest_window("m0", 0.0, 1.0) == 0.0   # before
        assert switch.earliest_window("m0", 0.0, 1.5) == 4.0   # too long for gaps
        assert switch.earliest_window("m0", 1.5, 0.5) == 2.0   # the gap
        assert switch.earliest_window("m0", 5.0, 9.0) == 5.0   # after

    def test_memory_free_queries(self):
        switch = CrossbarSwitch(["m0"], ["d0"])
        switch.establish("m0", "d0", 1.0, 2.0)
        assert switch.memory_free("m0", 0.0, 1.0)
        assert not switch.memory_free("m0", 1.5, 3.0)
        assert switch.memory_free_at("m0", 1.5) == 2.0

    def test_link_validation(self):
        with pytest.raises(PlanError):
            Link("m", "d", 2.0, 1.0)
        with pytest.raises(CapacityError):
            CrossbarSwitch([], ["d0"])
