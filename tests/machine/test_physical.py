"""The cost-based physical planner: lowering, assignment, chains (E18)."""

import pytest

from repro.arrays.decomposition import ArrayCapacity
from repro.machine import (
    Base,
    Dedup,
    Divide,
    Intersect,
    Join,
    Project,
    StageCost,
    SystolicDatabaseMachine,
    analyze_chain,
)
from repro.machine.physical import OP_ARRAY, OP_LOAD, actual_cost
from repro.machine.plan import DEVICE_COMPARISON
from repro.relational import algebra
from repro.workloads import join_pair, overlapping_pair


@pytest.fixture
def joined_catalog():
    ja, jb = join_pair(40, 35, 20, seed=5)
    d = algebra.project(jb, ["b0"])
    return {"JA": ja, "JB": jb, "D": d}


@pytest.fixture
def chain_plan():
    return Divide(
        Project(Join(Base("JA"), Base("JB"), on=(("key", "key"),)),
                ("a0", "b0")),
        Base("D"), a_value="b0", a_group="a0",
    )


def preloaded(catalog, **kwargs):
    machine = SystolicDatabaseMachine(**kwargs)
    for name, relation in catalog.items():
        machine.preload(name, relation)
    return machine


def stored(catalog, **kwargs):
    machine = SystolicDatabaseMachine(**kwargs)
    for name, relation in catalog.items():
        machine.store(name, relation)
    return machine


class TestCompile:
    def test_compile_is_pure(self, joined_catalog, chain_plan):
        machine = stored(joined_catalog)
        machine.compile(chain_plan)
        machine.compile(chain_plan)
        # Nothing was loaded into the memories by compiling.
        assert all(m.used_bytes == 0 for m in machine.memories)

    def test_device_assignments_cover_all_kinds(
        self, joined_catalog, chain_plan
    ):
        machine = stored(joined_catalog)
        physical = machine.compile(chain_plan)
        assignments = physical.device_assignments()
        assert assignments["join[key==key]"] == "join0"
        assert assignments["project[a0,b0]"] == "comparison0"
        assert assignments["divide"] == "division0"
        assert assignments["load JA"] == "disk"

    def test_block_counts_match_executed_blocks(self, joined_catalog):
        plan = Intersect(Base("JA"), Base("JA2"))
        ja = joined_catalog["JA"]
        machine = stored({"JA": ja, "JA2": ja})
        physical = machine.compile(plan)
        [op] = [op for op in physical.ops if op.kind == OP_ARRAY]
        _, report = machine.run_physical(physical)
        [step] = [s for s in report.steps if s.device == "comparison0"]
        # Base inputs have exact sizes, so predicted blocks are exact.
        assert op.block_runs == step.block_runs
        assert op.cost.total_pulses == step.pulses

    def test_explain_mentions_devices_blocks_and_makespan(
        self, joined_catalog, chain_plan
    ):
        machine = stored(joined_catalog)
        text = machine.compile(chain_plan).explain()
        assert "join0" in text
        assert "comparison0" in text
        assert "division0" in text
        assert "predicted makespan" in text
        assert "chain" in text

    def test_pipeline_false_fuses_nothing(self, joined_catalog, chain_plan):
        machine = preloaded(joined_catalog)
        physical = machine.compile(chain_plan, pipeline=False)
        assert all(op.chain is None for op in physical.ops)

    def test_run_lowers_implicitly(self, joined_catalog, chain_plan):
        machine = stored(joined_catalog)
        result, report = machine.run(chain_plan)
        expected = algebra.divide(
            algebra.project(
                algebra.join(joined_catalog["JA"], joined_catalog["JB"],
                             [("key", "key")]),
                ["a0", "b0"],
            ),
            joined_catalog["D"], a_value="b0", a_group="a0",
        )
        assert result == expected


class TestCostAwarePick:
    def test_routes_to_the_bigger_array(self):
        # Two comparison devices, one tiny and one full-size; both are
        # free, so first-free would take comparison0 (name tie-break) —
        # the cost model must see that the big array runs far fewer §8
        # blocks and finishes sooner.
        a, b = overlapping_pair(60, 60, 20, arity=2, seed=9)
        machine = preloaded(
            {"A": a, "B": b},
            devices=(
                (DEVICE_COMPARISON, 1, ArrayCapacity(max_rows=3, max_cols=2)),
                (DEVICE_COMPARISON, 1, ArrayCapacity(max_rows=63, max_cols=8)),
            ),
        )
        physical = machine.compile(Intersect(Base("A"), Base("B")))
        [op] = [op for op in physical.ops if op.kind == OP_ARRAY]
        assert op.device == "comparison1"
        result, _ = machine.run_physical(physical)
        assert result[0] == algebra.intersection(a, b)

    def test_parallel_work_still_splits_across_twins(self):
        a, b = overlapping_pair(12, 10, 5, arity=2, seed=10)
        machine = preloaded(
            {"A": a, "B": b}, devices=((DEVICE_COMPARISON, 2),)
        )
        physical = machine.compile(
            [Intersect(Base("A"), Base("B")), Dedup(Base("A"))]
        )
        devices = {
            op.device for op in physical.ops if op.kind == OP_ARRAY
        }
        assert devices == {"comparison0", "comparison1"}


class TestPipelinedChains:
    def test_chain_fuses_three_stages(self, joined_catalog, chain_plan):
        machine = preloaded(joined_catalog)
        physical = machine.compile(chain_plan)
        fused = [c for c in physical.chains if len(c) > 1]
        assert len(fused) == 1
        labels = [physical[i].label for i in fused[0].op_ids]
        assert labels == ["join[key==key]", "project[a0,b0]", "divide"]

    def test_makespan_follows_the_pipeline_law(
        self, joined_catalog, chain_plan
    ):
        """Acceptance: simulated pipelined makespan == Σ fill + max stream,
        and it beats store-and-forward, with software-identical results."""
        pipelined = preloaded(joined_catalog)
        (result_p,), report_p = pipelined.run_physical(
            pipelined.compile(chain_plan)
        )
        forward = preloaded(joined_catalog)
        result_s, report_s = forward.run(chain_plan, pipeline=False)

        expected = algebra.divide(
            algebra.project(
                algebra.join(joined_catalog["JA"], joined_catalog["JB"],
                             [("key", "key")]),
                ["a0", "b0"],
            ),
            joined_catalog["D"], a_value="b0", a_group="a0",
        )
        assert result_p == expected
        assert result_s == expected
        assert report_p.makespan < report_s.makespan

        # Rebuild the stage costs independently: stand-alone stage times
        # come from the store-and-forward report, fills from the same
        # schedule arithmetic the devices execute.
        joined = algebra.join(joined_catalog["JA"], joined_catalog["JB"],
                              [("key", "key")])
        projected = algebra.project(joined, ["a0", "b0"])
        plan_inputs = {
            "join[key==key]": [joined_catalog["JA"], joined_catalog["JB"]],
            "project[a0,b0]": [joined],
            "divide": [projected, joined_catalog["D"]],
        }
        nodes = {
            "join[key==key]": chain_plan.left.child,
            "project[a0,b0]": chain_plan.left,
            "divide": chain_plan,
        }
        stages = []
        for label in ("join[key==key]", "project[a0,b0]", "divide"):
            [step] = [s for s in report_s.steps if s.label == label]
            device = next(
                d for d in forward.devices if d.name == step.device
            )
            cost = actual_cost(
                nodes[label], plan_inputs[label],
                device.capacity.max_rows, device.capacity.max_cols,
            )
            fill = min(
                device.technology.pulses_to_seconds(cost.fill_pulses),
                step.duration,
            )
            stages.append(StageCost(
                name=label, fill=fill, stream=step.duration - fill
            ))
        timing = analyze_chain(stages)
        chain_steps = [s for s in report_p.steps if s.device != "disk"]
        chain_start = min(s.start for s in chain_steps)
        chain_end = max(s.end for s in chain_steps)
        assert chain_end - chain_start == pytest.approx(timing.pipelined)
        assert report_s.makespan == pytest.approx(timing.store_and_forward)

    def test_intermediates_stream_through_the_switch(
        self, joined_catalog, chain_plan
    ):
        machine = preloaded(joined_catalog)
        _, report = machine.run_physical(machine.compile(chain_plan))
        by_label = {s.label: s for s in report.steps}
        assert by_label["join[key==key]"].output_memory == "->comparison0"
        assert by_label["project[a0,b0]"].output_memory == "->division0"
        assert by_label["divide"].output_memory.startswith("mem")

    def test_fusion_skipped_when_disk_feeds_a_late_input(
        self, joined_catalog, chain_plan
    ):
        # Disk-fed: the divisor load finishes long after the join would,
        # so fusing the divide in would only delay the upstream stages.
        machine = stored(joined_catalog)
        physical = machine.compile(chain_plan)
        divide_op = next(
            op for op in physical.ops if op.label == "divide"
        )
        join_op = next(
            op for op in physical.ops if op.label.startswith("join")
        )
        assert divide_op.chain != join_op.chain

    def test_predicted_makespan_close_to_simulated(
        self, joined_catalog, chain_plan
    ):
        machine = stored(joined_catalog)
        physical = machine.compile(chain_plan)
        _, report = machine.run_physical(physical)
        # Load times are exact and dominate here; the array-time estimate
        # may differ (estimated rows), but not by an order of magnitude.
        assert physical.predicted_makespan == pytest.approx(
            report.makespan, rel=0.05
        )

    def test_chains_disabled_gives_legacy_store_and_forward(
        self, joined_catalog, chain_plan
    ):
        machine = preloaded(joined_catalog)
        _, report = machine.run_many([chain_plan], pipeline=False)
        steps = sorted(
            (s for s in report.steps if s.device != "disk"),
            key=lambda s: s.start,
        )
        for before, after in zip(steps, steps[1:]):
            assert after.start >= before.end


class TestLoadOps:
    def test_loads_stay_serial_on_the_disk(self, joined_catalog, chain_plan):
        machine = stored(joined_catalog)
        physical = machine.compile(chain_plan)
        loads = [op for op in physical.ops if op.kind == OP_LOAD]
        assert len(loads) == 3
        for before, after in zip(loads, loads[1:]):
            assert after.est_start >= before.est_end


class TestBitLevelDevices:
    """§8 bit-level comparison arrays in the roster: the planner prices
    word columns against bit comparators and picks whichever finishes
    first."""

    ROSTER = (
        # A column-starved word device: arity-8 tuples re-stream 8×.
        (DEVICE_COMPARISON, 1, ArrayCapacity(max_rows=63, max_cols=1)),
        # The same silicon spent on bit comparators: 256 bit columns
        # swallow an 8-word × 32-bit tuple in one pass.
        (DEVICE_COMPARISON, 1, ArrayCapacity(max_rows=63, max_cols=256), 32),
    )

    def test_planner_picks_the_bit_device_for_wide_tuples(self):
        a, b = overlapping_pair(60, 60, 20, arity=8, seed=9)
        machine = preloaded(
            {"A": a, "B": b}, devices=self.ROSTER, backend="bitplane"
        )
        physical = machine.compile(Intersect(Base("A"), Base("B")))
        [op] = [op for op in physical.ops if op.kind == OP_ARRAY]
        assert op.device == "comparison1"
        assert op.est_bits == 8 * 32
        result, report = machine.run_physical(physical)
        assert result[0] == algebra.intersection(a, b)
        # Base inputs have exact sizes: the bit-comparison cost terms
        # predict the bit device's executed pulses exactly.
        [step] = [s for s in report.steps if s.device == "comparison1"]
        assert op.cost.total_pulses == step.pulses
        assert op.block_runs == step.block_runs

    def test_word_device_keeps_narrow_tuples(self):
        a, b = overlapping_pair(60, 60, 20, arity=2, seed=9)
        machine = preloaded(
            {"A": a, "B": b},
            devices=(
                (DEVICE_COMPARISON, 1,
                 ArrayCapacity(max_rows=63, max_cols=8)),
                (DEVICE_COMPARISON, 1,
                 ArrayCapacity(max_rows=63, max_cols=256), 32),
            ),
        )
        physical = machine.compile(Intersect(Base("A"), Base("B")))
        [op] = [op for op in physical.ops if op.kind == OP_ARRAY]
        assert op.device == "comparison0"
        assert op.est_bits == 2 * machine.element_bits

    def test_bit_device_runs_every_equality_operator(self):
        a, b = overlapping_pair(30, 25, 10, arity=4, seed=4)
        bit_only = (
            (DEVICE_COMPARISON, 1,
             ArrayCapacity(max_rows=63, max_cols=128), 32),
        )
        machine = preloaded(
            {"A": a, "B": b}, devices=bit_only, backend="lattice"
        )
        from repro.machine import Difference, Union
        cases = [
            (Intersect(Base("A"), Base("B")), algebra.intersection(a, b)),
            (Difference(Base("A"), Base("B")), algebra.difference(a, b)),
            (Union(Base("A"), Base("B")), algebra.union(a, b)),
            (Dedup(Base("A")), a),
            (Project(Base("A"), ("c0", "c1")),
             algebra.project(a, ["c0", "c1"])),
        ]
        for plan, expected in cases:
            result, _ = machine.run(plan)
            assert result == expected, plan.describe()

    def test_explain_shows_bits_and_backend(self):
        a, b = overlapping_pair(60, 60, 20, arity=8, seed=9)
        machine = preloaded({"A": a, "B": b}, devices=self.ROSTER)
        text = machine.compile(Intersect(Base("A"), Base("B"))).explain()
        assert "bits" in text
        assert "256" in text          # 8 columns × 32 bits on the bit device
        assert "backend pulse" in text

    def test_bit_devices_are_comparison_only(self):
        from repro.errors import PlanError
        from repro.machine.device import SystolicDevice
        from repro.machine.plan import DEVICE_JOIN
        with pytest.raises(PlanError, match="comparison"):
            SystolicDevice("j0", DEVICE_JOIN, element_bits=32)
        with pytest.raises(PlanError, match=">= 1"):
            SystolicDevice("c0", DEVICE_COMPARISON, element_bits=0)

    def test_roster_fingerprint_sees_element_bits(self):
        # Two machines whose rosters differ only in element_bits must
        # not share compiled plans.
        word = preloaded({}, devices=(
            (DEVICE_COMPARISON, 1, ArrayCapacity(max_rows=63, max_cols=64)),
        ))
        bit = preloaded({}, devices=(
            (DEVICE_COMPARISON, 1,
             ArrayCapacity(max_rows=63, max_cols=64), 8),
        ))
        assert word._roster_fingerprint != bit._roster_fingerprint
