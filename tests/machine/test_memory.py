"""Memory modules (Fig 9-1 left column)."""

import pytest

from repro.errors import CapacityError, PlanError
from repro.machine import MemoryModule, relation_bytes
from repro.relational import Relation


class TestRelationBytes:
    def test_size_formula(self, pair_schema):
        r = Relation(pair_schema, [(1, 2), (3, 4), (5, 6)])
        assert relation_bytes(r, element_bits=32) == 3 * 2 * 4
        assert relation_bytes(r, element_bits=16) == 3 * 2 * 2

    def test_empty_relation(self, pair_schema):
        assert relation_bytes(Relation(pair_schema)) == 0

    def test_validation(self, pair_schema):
        with pytest.raises(PlanError):
            relation_bytes(Relation(pair_schema), element_bits=0)


class TestMemoryModule:
    def test_store_load_roundtrip(self, pair_schema):
        memory = MemoryModule("m", capacity_bytes=1000)
        r = Relation(pair_schema, [(1, 2)])
        memory.store("r", r, 100)
        assert memory.load("r") == r
        assert memory.size_of("r") == 100
        assert memory.holds("r")
        assert memory.used_bytes == 100
        assert memory.free_bytes == 900

    def test_capacity_enforced(self, pair_schema):
        memory = MemoryModule("m", capacity_bytes=100)
        r = Relation(pair_schema, [(1, 2)])
        with pytest.raises(CapacityError, match="cannot fit"):
            memory.store("r", r, 200)

    def test_duplicate_key_rejected(self, pair_schema):
        memory = MemoryModule("m", capacity_bytes=1000)
        r = Relation(pair_schema, [(1, 2)])
        memory.store("r", r, 10)
        with pytest.raises(PlanError, match="already holds"):
            memory.store("r", r, 10)

    def test_evict_frees_space(self, pair_schema):
        memory = MemoryModule("m", capacity_bytes=100)
        r = Relation(pair_schema, [(1, 2)])
        memory.store("r", r, 100)
        memory.evict("r")
        assert memory.free_bytes == 100
        memory.store("r2", r, 100)

    def test_missing_key_errors(self):
        memory = MemoryModule("m")
        with pytest.raises(PlanError, match="does not hold"):
            memory.load("nope")
        with pytest.raises(PlanError):
            memory.evict("nope")
        with pytest.raises(PlanError):
            memory.size_of("nope")

    def test_transfer_time(self):
        memory = MemoryModule("m", bandwidth_bytes_per_s=1000.0)
        assert memory.transfer_seconds(500) == pytest.approx(0.5)
        with pytest.raises(PlanError):
            memory.transfer_seconds(-1)

    def test_default_bandwidth_matches_disk_rate(self):
        # §8: the system must absorb ~500 KB / 17 ms per stream.
        memory = MemoryModule("m")
        assert memory.bandwidth_bytes_per_s == pytest.approx(500_000 / 0.017)

    def test_validation(self):
        with pytest.raises(CapacityError):
            MemoryModule("m", capacity_bytes=0)
