"""Execution-report serialization."""

import csv
import json

import pytest

from repro.machine import Base, Intersect, SystolicDatabaseMachine
from repro.machine.report_export import (
    report_to_csv,
    report_to_dict,
    report_to_json,
)
from repro.workloads import overlapping_pair


@pytest.fixture
def report():
    machine = SystolicDatabaseMachine()
    a, b = overlapping_pair(8, 8, 3, arity=2, seed=400)
    machine.store("A", a)
    machine.store("B", b)
    _, report = machine.run(Intersect(Base("A"), Base("B")))
    return report


class TestDictExport:
    def test_derived_figures_present(self, report):
        data = report_to_dict(report)
        assert data["makespan_seconds"] == report.makespan
        assert data["serial_seconds"] == report.serial_seconds
        assert data["concurrency_speedup"] == report.concurrency_speedup
        assert "disk" in data["device_busy_seconds"]

    def test_steps_sorted_by_start(self, report):
        data = report_to_dict(report)
        starts = [step["start_seconds"] for step in data["steps"]]
        assert starts == sorted(starts)

    def test_step_fields(self, report):
        data = report_to_dict(report)
        op = next(s for s in data["steps"] if s["label"] == "intersect")
        assert op["device"] == "comparison0"
        assert op["pulses"] > 0
        assert len(op["input_keys"]) == 2

    def test_json_serializable(self, report):
        json.dumps(report_to_dict(report))


class TestFileExport:
    def test_json_roundtrip(self, report, tmp_path):
        path = tmp_path / "report.json"
        report_to_json(report, path)
        loaded = json.loads(path.read_text())
        assert loaded == report_to_dict(report)

    def test_csv_timeline(self, report, tmp_path):
        path = tmp_path / "timeline.csv"
        report_to_csv(report, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(report.steps)
        assert rows[0]["device"] == "disk"
        assert any(row["label"] == "intersect" for row in rows)
