"""The §9 pipelined-chain timing law."""

import pytest

from repro.errors import PlanError
from repro.machine.pipelining import ChainTiming, StageCost, analyze_chain


class TestStageCost:
    def test_total(self):
        assert StageCost("s", fill=3, stream=10).total == 13

    def test_validation(self):
        with pytest.raises(PlanError):
            StageCost("s", fill=-1, stream=0)


class TestChainLaw:
    def test_single_stage_disciplines_coincide(self):
        timing = analyze_chain([StageCost("only", fill=5, stream=20)])
        assert timing.store_and_forward == timing.pipelined == 25
        assert timing.speedup == 1.0

    def test_two_stage_chain(self):
        timing = analyze_chain([
            StageCost("a", fill=4, stream=30),
            StageCost("b", fill=6, stream=20),
        ])
        assert timing.store_and_forward == 60
        # fills in series, streams overlap: 4 + 6 + max(30, 20)
        assert timing.pipelined == 40
        assert timing.speedup == pytest.approx(1.5)

    def test_bottleneck_identified(self):
        timing = analyze_chain([
            StageCost("fast", fill=1, stream=5),
            StageCost("slow", fill=1, stream=50),
            StageCost("mid", fill=1, stream=20),
        ])
        assert timing.bottleneck.name == "slow"

    def test_speedup_grows_with_chain_length(self):
        stage = StageCost("s", fill=2, stream=100)
        short = analyze_chain([stage] * 2)
        long = analyze_chain([stage] * 5)
        assert long.speedup > short.speedup
        # Limit: k stages of equal stream -> speedup -> k as fills vanish.
        assert long.speedup == pytest.approx(
            (5 * 102) / (5 * 2 + 100)
        )

    def test_pipelined_never_slower(self):
        chains = [
            [StageCost("a", 0, 0)],
            [StageCost("a", 3, 7), StageCost("b", 2, 9)],
            [StageCost("a", 1, 1), StageCost("b", 1, 1), StageCost("c", 9, 0)],
        ]
        for stages in chains:
            timing = analyze_chain(stages)
            assert timing.pipelined <= timing.store_and_forward

    def test_zero_length_chain_rejected(self):
        with pytest.raises(PlanError):
            analyze_chain([])

    def test_all_zero_costs(self):
        timing = analyze_chain([StageCost("z", 0, 0)])
        assert timing.pipelined == 0
        assert timing.speedup == 1.0


class TestRealisticChain:
    def test_join_project_chain_from_array_geometry(self):
        # Stage costs straight from the arrays' schedules: a join array
        # (fill ≈ rows) feeding a dedup array (fill ≈ rows + m).
        from repro.arrays.schedule import CounterStreamSchedule

        join_schedule = CounterStreamSchedule(n_a=50, n_b=40, arity=1)
        dedup_schedule = CounterStreamSchedule(n_a=60, n_b=60, arity=2)
        chain = analyze_chain([
            StageCost("join", fill=join_schedule.rows,
                      stream=join_schedule.comparison_pulses),
            StageCost("dedup", fill=dedup_schedule.rows,
                      stream=dedup_schedule.total_pulses),
        ])
        assert chain.pipelined < chain.store_and_forward
        assert chain.speedup > 1.3
