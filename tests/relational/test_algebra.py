"""The software reference operators — §4–§7 semantics, CPU-side."""

import pytest

from repro.errors import SchemaError, UnionCompatibilityError
from repro.relational import (
    ComparisonCounter,
    Domain,
    MultiRelation,
    Relation,
    Schema,
    algebra,
)
from repro.relational.algebra import (
    nested_loop_divide,
    nested_loop_intersection,
    nested_loop_join,
    nested_loop_remove_duplicates,
)
from repro.workloads import division_example


class TestSetOperators:
    def test_intersection(self, small_pair):
        a, b = small_pair
        assert algebra.intersection(a, b).tuples == ((3, 4), (7, 8))

    def test_intersection_requires_compatibility(self, small_pair):
        a, _ = small_pair
        other = Relation(Schema.of(("q", Domain("other")), ("r", Domain("other"))),
                         [(1, 1)])
        with pytest.raises(UnionCompatibilityError):
            algebra.intersection(a, other)

    def test_difference(self, small_pair):
        a, b = small_pair
        assert algebra.difference(a, b).tuples == ((1, 2), (5, 6))

    def test_difference_of_self_is_empty(self, small_pair):
        a, _ = small_pair
        assert len(algebra.difference(a, a)) == 0

    def test_union_contains_both_without_duplicates(self, small_pair):
        a, b = small_pair
        u = algebra.union(a, b)
        assert len(u) == len(a) + len(b) - 2
        for t in list(a.tuples) + list(b.tuples):
            assert t in u

    def test_union_with_empty(self, small_pair, pair_schema):
        a, _ = small_pair
        assert algebra.union(a, Relation(pair_schema)) == a


class TestDedupAndProjection:
    def test_remove_duplicates_keeps_first(self, dup_multi):
        assert algebra.remove_duplicates(dup_multi).tuples == (
            (1, 1), (2, 2), (3, 3)
        )

    def test_project_multi_keeps_duplicates(self, small_pair):
        a, _ = small_pair
        schema = a.schema
        r = Relation(schema, [(1, 2), (1, 3), (2, 2)])
        multi = algebra.project_multi(r, ["x"])
        assert len(multi) == 3  # (1,), (1,), (2,)

    def test_project_dedups(self, pair_schema):
        r = Relation(pair_schema, [(1, 2), (1, 3), (2, 2)])
        assert algebra.project(r, ["x"]).tuples == ((1,), (2,))

    def test_project_reorders_columns(self, pair_schema):
        r = Relation(pair_schema, [(1, 2)])
        assert algebra.project(r, ["y", "x"]).tuples == ((2, 1),)


class TestJoin:
    @pytest.fixture
    def emp_dept(self):
        depts = Domain("dept")
        misc = Domain("misc")
        emp = Relation.from_values(
            Schema.of(("name", misc), ("dept", depts)),
            [("ann", "sales"), ("bob", "eng"), ("cy", "sales")],
        )
        dept = Relation.from_values(
            Schema.of(("dept", depts), ("budget", misc)),
            [("sales", 100), ("eng", 200), ("hr", 50)],
        )
        return emp, dept

    def test_equi_join_drops_redundant_column(self, emp_dept):
        emp, dept = emp_dept
        joined = algebra.join(emp, dept, [("dept", "dept")])
        assert joined.schema.names == ("name", "dept", "budget")
        assert sorted(joined.decoded()) == [
            ("ann", "sales", 100), ("bob", "eng", 200), ("cy", "sales", 100),
        ]

    def test_join_requires_same_domain(self, emp_dept):
        emp, dept = emp_dept
        with pytest.raises(SchemaError, match="not well-defined"):
            algebra.join(emp, dept, [("name", "dept")])

    def test_join_needs_column_pairs(self, emp_dept):
        emp, dept = emp_dept
        with pytest.raises(SchemaError):
            algebra.join(emp, dept, [])

    def test_degenerate_join_is_cross_product_sized(self, pair_schema):
        a = Relation(pair_schema, [(1, 10), (1, 20)])
        b = Relation(pair_schema, [(1, 30), (1, 40), (1, 50)])
        joined = algebra.join(a, b, [("x", "x")])
        assert len(joined) == 6  # |A|·|B| upper bound reached (§6.2)

    def test_theta_join_less_than(self, pair_schema):
        a = Relation(pair_schema, [(1, 0), (5, 0)])
        b = Relation(pair_schema, [(3, 0), (7, 0)])
        joined = algebra.theta_join(a, b, [("x", "x")], ["<"])
        # pairs with a.x < b.x: (1,3), (1,7), (5,7)
        assert len(joined) == 3
        assert joined.arity == 4  # both compared columns kept

    def test_theta_join_ops_length_checked(self, pair_schema):
        a = Relation(pair_schema, [(1, 0)])
        with pytest.raises(SchemaError, match="one operator per"):
            algebra.theta_join(a, a, [("x", "x")], ["<", ">"])

    def test_theta_join_mixed_equality_drops_only_eq_columns(self, pair_schema):
        a = Relation(pair_schema, [(1, 5)])
        b = Relation(pair_schema, [(1, 9)])
        joined = algebra.theta_join(a, b, [("x", "x"), ("y", "y")], ["==", "<"])
        assert joined.arity == 3  # x kept once, both y's kept
        assert joined.tuples == ((1, 5, 9),)


class TestDivision:
    def test_paper_example(self):
        a, b, expected = division_example()
        assert algebra.divide(a, b) == expected

    def test_empty_divisor_yields_all_groups(self):
        a, b, _ = division_example()
        empty_b = Relation(b.schema)
        quotient = algebra.divide(a, empty_b)
        assert len(quotient) == 3  # i, j, k all vacuously qualify

    def test_explicit_columns(self):
        a, b, expected = division_example()
        assert algebra.divide(a, b, a_value="A2", a_group="A1", b_value="B1") == expected

    def test_group_equals_value_rejected(self):
        a, b, _ = division_example()
        with pytest.raises(SchemaError):
            algebra.divide(a, b, a_value="A1", a_group="A1")

    def test_domain_mismatch_rejected(self):
        a, b, _ = division_example()
        with pytest.raises(SchemaError, match="different domains"):
            algebra.divide(a, b, a_value="A1", a_group="A2")


class TestSelect:
    def test_select_ge(self, pair_schema):
        r = Relation(pair_schema, [(1, 2), (5, 6), (9, 0)])
        assert algebra.select(r, "x", ">=", 5).tuples == ((5, 6), (9, 0))

    def test_select_unknown_op(self, pair_schema):
        r = Relation(pair_schema, [(1, 2)])
        with pytest.raises(SchemaError):
            algebra.select(r, "x", "~", 5)


class TestNestedLoopBaselines:
    """The instrumented sequential baselines agree with the oracles
    and count the work the paper's §8 arithmetic counts."""

    def test_intersection_agrees_and_counts(self, small_pair):
        a, b = small_pair
        counter = ComparisonCounter()
        result = nested_loop_intersection(a, b, counter)
        assert result == algebra.intersection(a, b)
        assert counter.tuple_comparisons == len(a) * len(b)
        assert counter.element_comparisons >= counter.tuple_comparisons

    def test_bit_comparisons_scaling(self, small_pair):
        a, b = small_pair
        counter = ComparisonCounter()
        nested_loop_intersection(a, b, counter)
        assert counter.bit_comparisons(1500) == counter.element_comparisons * 1500

    def test_join_agrees(self, pair_schema):
        a = Relation(pair_schema, [(1, 10), (2, 20)])
        b = Relation(pair_schema, [(1, 30), (3, 40)])
        counter = ComparisonCounter()
        assert nested_loop_join(a, b, [("x", "x")], counter) == algebra.join(
            a, b, [("x", "x")]
        )
        assert counter.tuple_comparisons == 4

    def test_dedup_agrees(self, dup_multi):
        counter = ComparisonCounter()
        assert nested_loop_remove_duplicates(dup_multi, counter) == (
            algebra.remove_duplicates(dup_multi)
        )

    def test_divide_agrees(self):
        a, b, expected = division_example()
        counter = ComparisonCounter()
        assert nested_loop_divide(a, b, counter) == expected
        assert counter.element_comparisons > 0

    def test_divide_requires_restricted_shape(self, pair_schema):
        r = Relation(pair_schema, [(1, 2)])
        triple = Relation(
            Schema.of(("a", Domain("q")), ("b", Domain("q")), ("c", Domain("q"))),
            [(1, 2, 3)],
        )
        with pytest.raises(Exception, match="restricted"):
            nested_loop_divide(triple, r, ComparisonCounter())
