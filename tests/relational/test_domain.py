"""Domains and the §2.3 integer dictionary encoding."""

import pytest

from repro.errors import DomainError
from repro.relational import Domain, IntegerDomain


class TestDomainEncoding:
    def test_codes_are_dense_in_first_seen_order(self):
        domain = Domain("d")
        assert domain.encode("apple") == 0
        assert domain.encode("pear") == 1
        assert domain.encode("apple") == 0  # idempotent

    def test_decode_inverts_encode(self):
        domain = Domain("d")
        values = ["x", 42, ("a", "b"), True]
        codes = [domain.encode(v) for v in values]
        assert [domain.decode(c) for c in codes] == values

    def test_initial_values_encoded_in_order(self):
        domain = Domain("d", values=["a", "b", "c"])
        assert domain.encode("c") == 2
        assert len(domain) == 3

    def test_decode_unknown_code_raises(self):
        domain = Domain("d", values=["only"])
        with pytest.raises(DomainError):
            domain.decode(5)

    def test_decode_rejects_non_int_codes(self):
        domain = Domain("d", values=["only"])
        with pytest.raises(DomainError):
            domain.decode(True)
        with pytest.raises(DomainError):
            domain.decode("0")

    def test_unhashable_value_rejected(self):
        domain = Domain("d")
        with pytest.raises(DomainError):
            domain.encode(["not", "hashable"])

    def test_encode_many_decode_many_roundtrip(self):
        domain = Domain("d")
        values = ["p", "q", "p", "r"]
        assert domain.decode_many(domain.encode_many(values)) == values


class TestFrozenDomain:
    def test_frozen_rejects_new_values(self):
        domain = Domain("d", values=["a"], frozen=True)
        assert domain.encode("a") == 0
        with pytest.raises(DomainError):
            domain.encode("b")

    def test_freeze_after_construction(self):
        domain = Domain("d")
        domain.encode("a")
        assert domain.freeze() is domain
        assert domain.frozen
        with pytest.raises(DomainError):
            domain.encode("b")


class TestDomainIdentity:
    def test_equality_is_by_name(self):
        assert Domain("same") == Domain("same")
        assert Domain("one") != Domain("two")

    def test_hashable_and_usable_in_sets(self):
        assert len({Domain("a"), Domain("a"), Domain("b")}) == 2

    def test_membership_and_len(self):
        domain = Domain("d", values=["a", "b"])
        assert "a" in domain
        assert "z" not in domain
        assert list(domain) == ["a", "b"]

    def test_empty_name_rejected(self):
        with pytest.raises(DomainError):
            Domain("")


class TestIntegerDomain:
    def test_identity_encoding(self):
        domain = IntegerDomain()
        assert domain.encode(17) == 17
        assert domain.decode(17) == 17

    def test_rejects_non_int_and_negative(self):
        domain = IntegerDomain()
        with pytest.raises(DomainError):
            domain.encode("17")
        with pytest.raises(DomainError):
            domain.encode(-1)
        with pytest.raises(DomainError):
            domain.encode(True)

    def test_unbounded_len_raises(self):
        with pytest.raises(DomainError):
            len(IntegerDomain())

    def test_membership(self):
        domain = IntegerDomain()
        assert 5 in domain
        assert -1 not in domain
        assert "x" not in domain

    def test_equal_to_plain_domain_with_same_name(self):
        # Identity is by name across the hierarchy (same underlying domain).
        assert IntegerDomain("shared") == Domain("shared")
