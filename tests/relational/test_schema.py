"""Schemas, column resolution, and union-compatibility (§2.4)."""

import pytest

from repro.errors import SchemaError, UnionCompatibilityError
from repro.relational import Column, Domain, Schema


@pytest.fixture
def schema() -> Schema:
    d1, d2 = Domain("names"), Domain("salaries")
    return Schema.of(("first", d1), ("last", d1), ("salary", d2))


class TestConstruction:
    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_rejects_duplicate_names(self):
        d = Domain("d")
        with pytest.raises(SchemaError, match="duplicate column names"):
            Schema.of(("x", d), ("x", d))

    def test_column_requires_name(self):
        with pytest.raises(SchemaError):
            Column("", Domain("d"))

    def test_names_and_domains(self, schema: Schema):
        assert schema.names == ("first", "last", "salary")
        assert [d.name for d in schema.domains] == ["names", "names", "salaries"]


class TestResolution:
    def test_resolve_by_name_and_index(self, schema: Schema):
        assert schema.resolve("last") == 1
        assert schema.resolve(2) == 2
        assert schema.resolve(-1) == 2  # negative indexing

    def test_resolve_unknown_name(self, schema: Schema):
        with pytest.raises(SchemaError, match="no column named"):
            schema.resolve("missing")

    def test_resolve_out_of_range(self, schema: Schema):
        with pytest.raises(SchemaError):
            schema.resolve(3)

    def test_resolve_rejects_bool_and_junk(self, schema: Schema):
        with pytest.raises(SchemaError):
            schema.resolve(True)
        with pytest.raises(SchemaError):
            schema.resolve(2.5)

    def test_resolve_many_rejects_duplicates(self, schema: Schema):
        with pytest.raises(SchemaError, match="duplicate columns"):
            schema.resolve_many(["first", 0])

    def test_column_lookup(self, schema: Schema):
        assert schema.column("salary").domain == Domain("salaries")


class TestDerivedSchemas:
    def test_project_preserves_order(self, schema: Schema):
        projected = schema.project(["salary", "first"])
        assert projected.names == ("salary", "first")

    def test_drop(self, schema: Schema):
        assert schema.drop("last").names == ("first", "salary")

    def test_drop_only_column_rejected(self):
        single = Schema.of(("x", Domain("d")))
        with pytest.raises(SchemaError):
            single.drop("x")

    def test_concat_renames_collisions(self, schema: Schema):
        merged = schema.concat(schema)
        assert merged.names == (
            "first", "last", "salary", "first_2", "last_2", "salary_2"
        )

    def test_concat_repeated_collision_gets_longer_suffix(self):
        d = Domain("d")
        left = Schema.of(("x", d), ("x_2", d))
        merged = left.concat(Schema.of(("x", d)))
        assert len(set(merged.names)) == 3


class TestUnionCompatibility:
    def test_same_domains_compatible(self):
        d = Domain("d")
        a = Schema.of(("x", d), ("y", d))
        b = Schema.of(("p", d), ("q", d))  # names don't matter
        assert a.union_compatible_with(b)
        a.require_union_compatible(b)

    def test_arity_mismatch(self):
        d = Domain("d")
        a = Schema.of(("x", d))
        b = Schema.of(("x", d), ("y", d))
        assert not a.union_compatible_with(b)
        with pytest.raises(UnionCompatibilityError, match="arity"):
            a.require_union_compatible(b)

    def test_domain_mismatch_names_offending_column(self):
        a = Schema.of(("x", Domain("d1")), ("y", Domain("d2")))
        b = Schema.of(("x", Domain("d1")), ("y", Domain("other")))
        with pytest.raises(UnionCompatibilityError, match="column 1"):
            a.require_union_compatible(b)

    def test_schema_equality_and_hash(self):
        d = Domain("d")
        assert Schema.of(("x", d)) == Schema.of(("x", d))
        assert hash(Schema.of(("x", d))) == hash(Schema.of(("x", d)))
        assert Schema.of(("x", d)) != Schema.of(("y", d))
