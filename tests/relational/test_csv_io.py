"""CSV import/export and the shared-domain registry."""

import pytest

from repro.errors import RelationError
from repro.relational import algebra
from repro.relational.csv_io import dump_csv, load_csv


@pytest.fixture
def emp_csv(tmp_path):
    path = tmp_path / "emp.csv"
    path.write_text(
        "name,dept,salary\n"
        "ada,research,120000\n"
        "grace,research,150000\n"
        "edsger,theory,95000\n"
    )
    return path


@pytest.fixture
def dept_csv(tmp_path):
    path = tmp_path / "dept.csv"
    path.write_text("dept,budget\nresearch,900000\ntheory,400000\n")
    return path


class TestLoad:
    def test_header_and_types(self, emp_csv):
        relation = load_csv(emp_csv)
        assert relation.schema.names == ("name", "dept", "salary")
        decoded = relation.decoded()
        assert decoded[0] == ("ada", "research", 120000)
        assert isinstance(decoded[0][2], int)

    def test_headerless(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("1,2\n3,4\n")
        relation = load_csv(path, has_header=False)
        assert relation.schema.names == ("c0", "c1")
        assert len(relation) == 2

    def test_shared_registry_enables_joins(self, emp_csv, dept_csv):
        registry = {}
        emp = load_csv(emp_csv, registry=registry)
        dept = load_csv(dept_csv, registry=registry)
        joined = algebra.join(emp, dept, [("dept", "dept")])
        assert len(joined) == 3

    def test_separate_registries_keep_files_apart(self, emp_csv, dept_csv):
        emp = load_csv(emp_csv)
        dept = load_csv(dept_csv)
        with pytest.raises(Exception, match="domain"):
            algebra.join(emp, dept, [("dept", "dept")])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("x,y\n1,2\n\n3,4\n")
        assert len(load_csv(path)) == 2

    def test_field_count_mismatch_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n1,2,3\n")
        with pytest.raises(RelationError, match=":3"):
            load_csv(path)

    def test_duplicate_header_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("x,x\n1,2\n")
        with pytest.raises(RelationError, match="duplicate"):
            load_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(RelationError, match="no rows"):
            load_csv(path)

    def test_negative_integers_parse(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("v\n-5\n7\n")
        assert load_csv(path).decoded() == [(-5,), (7,)]


class TestRoundTrip:
    def test_dump_then_load(self, emp_csv, tmp_path):
        original = load_csv(emp_csv)
        out = tmp_path / "out.csv"
        dump_csv(original, out)
        registry = {}
        reloaded = load_csv(out, registry=registry)
        assert reloaded.decoded() == original.decoded()
        assert reloaded.schema.names == original.schema.names
