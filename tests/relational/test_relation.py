"""Relations (sets) and multi-relations (bags) — §2.3, §2.5."""

import pytest

from repro.errors import RelationError
from repro.relational import Domain, MultiRelation, Relation, Schema


class TestRelationSetSemantics:
    def test_duplicates_dropped_silently(self, pair_schema):
        r = Relation(pair_schema, [(1, 2), (1, 2), (3, 4)])
        assert len(r) == 2
        assert r.tuples == ((1, 2), (3, 4))

    def test_insertion_order_preserved(self, pair_schema):
        r = Relation(pair_schema, [(5, 6), (1, 2), (3, 4)])
        assert r.tuples == ((5, 6), (1, 2), (3, 4))

    def test_arity_checked(self, pair_schema):
        with pytest.raises(RelationError, match="arity"):
            Relation(pair_schema, [(1, 2, 3)])

    def test_elements_must_be_ints(self, pair_schema):
        with pytest.raises(RelationError, match="integer-encoded"):
            Relation(pair_schema, [(1, "two")])
        with pytest.raises(RelationError):
            Relation(pair_schema, [(1, True)])

    def test_membership(self, pair_schema):
        r = Relation(pair_schema, [(1, 2)])
        assert (1, 2) in r
        assert (2, 1) not in r
        assert r.contains([1, 2])

    def test_equality_is_set_equality(self, pair_schema):
        a = Relation(pair_schema, [(1, 2), (3, 4)])
        b = Relation(pair_schema, [(3, 4), (1, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_relations_never_equal_multirelations(self, pair_schema):
        r = Relation(pair_schema, [(1, 2)])
        m = MultiRelation(pair_schema, [(1, 2)])
        assert r != m

    def test_cardinality_and_arity(self, pair_schema):
        r = Relation(pair_schema, [(1, 2), (3, 4)])
        assert r.cardinality == 2
        assert r.arity == 2

    def test_bool(self, pair_schema):
        assert not Relation(pair_schema)
        assert Relation(pair_schema, [(1, 2)])


class TestEncodingBoundary:
    def test_from_values_encodes_and_decoded_roundtrips(self):
        names = Domain("names")
        schema = Schema.of(("first", names), ("last", names))
        r = Relation.from_values(schema, [("ada", "lovelace"), ("alan", "turing")])
        assert r.decoded() == [("ada", "lovelace"), ("alan", "turing")]
        assert all(isinstance(v, int) for row in r.tuples for v in row)

    def test_from_values_checks_arity(self):
        schema = Schema.of(("x", Domain("d")))
        with pytest.raises(RelationError, match="arity"):
            Relation.from_values(schema, [("a", "b")])

    def test_column_values(self, pair_schema):
        r = Relation(pair_schema, [(1, 2), (3, 4)])
        assert r.column_values("y") == [2, 4]

    def test_pretty_renders_headers_and_rows(self, pair_schema):
        r = Relation(pair_schema, [(1, 2)])
        text = r.pretty()
        assert "x" in text and "y" in text
        assert "1" in text and "2" in text

    def test_pretty_truncates(self, pair_schema):
        r = Relation(pair_schema, [(i, i) for i in range(30)])
        assert "more" in r.pretty(max_rows=5)


class TestMultiRelation:
    def test_duplicates_preserved(self, dup_multi):
        assert len(dup_multi) == 6

    def test_distinct_keeps_first_occurrences(self, dup_multi):
        distinct = dup_multi.distinct()
        assert distinct.tuples == ((1, 1), (2, 2), (3, 3))

    def test_bag_equality_ignores_order_but_counts_multiplicity(self, pair_schema):
        m1 = MultiRelation(pair_schema, [(1, 1), (2, 2), (1, 1)])
        m2 = MultiRelation(pair_schema, [(2, 2), (1, 1), (1, 1)])
        m3 = MultiRelation(pair_schema, [(1, 1), (2, 2)])
        assert m1 == m2
        assert m1 != m3

    def test_concat(self, pair_schema):
        m1 = MultiRelation(pair_schema, [(1, 1)])
        m2 = MultiRelation(pair_schema, [(1, 1), (2, 2)])
        combined = m1.concat(m2)
        assert len(combined) == 3

    def test_concat_requires_union_compatibility(self, pair_schema):
        other_schema = Schema.of(("x", Domain("other")), ("y", Domain("other")))
        m1 = MultiRelation(pair_schema, [(1, 1)])
        m2 = MultiRelation(other_schema, [(1, 1)])
        with pytest.raises(Exception, match="domain"):
            m1.concat(m2)

    def test_to_multi_roundtrip(self, pair_schema):
        r = Relation(pair_schema, [(1, 2), (3, 4)])
        assert r.to_multi().distinct() == r


class TestSetOperatorSugar:
    """Relation's &, |, -, <=, >= delegate to the reference algebra."""

    def test_intersection_operator(self, pair_schema):
        a = Relation(pair_schema, [(1, 2), (3, 4)])
        b = Relation(pair_schema, [(3, 4), (5, 6)])
        assert (a & b).tuples == ((3, 4),)

    def test_union_operator(self, pair_schema):
        a = Relation(pair_schema, [(1, 2)])
        b = Relation(pair_schema, [(3, 4)])
        assert len(a | b) == 2

    def test_difference_operator(self, pair_schema):
        a = Relation(pair_schema, [(1, 2), (3, 4)])
        b = Relation(pair_schema, [(3, 4)])
        assert (a - b).tuples == ((1, 2),)

    def test_subset_superset(self, pair_schema):
        small = Relation(pair_schema, [(1, 2)])
        big = Relation(pair_schema, [(1, 2), (3, 4)])
        assert small <= big
        assert big >= small
        assert not (big <= small)

    def test_operators_check_compatibility(self, pair_schema):
        from repro.relational import Domain, Schema

        other = Relation(
            Schema.of(("x", Domain("alien")), ("y", Domain("alien"))),
            [(1, 2)],
        )
        a = Relation(pair_schema, [(1, 2)])
        with pytest.raises(Exception, match="domain"):
            a & other

    def test_non_relation_operand_unsupported(self, pair_schema):
        a = Relation(pair_schema, [(1, 2)])
        with pytest.raises(TypeError):
            a & {"not": "a relation"}

    def test_matches_systolic_results(self, pair_schema):
        from repro.arrays import systolic_intersection

        a = Relation(pair_schema, [(1, 2), (3, 4), (5, 6)])
        b = Relation(pair_schema, [(3, 4), (7, 8)])
        assert (a & b) == systolic_intersection(a, b).relation
