"""The metrics registry and the stable metric-name contract."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, DeadlineError, ReproError
from repro.faults import parse_faults
from repro.lang import optimize, parse
from repro.machine import Base, EnginePool, Join
from repro.machine.plan import (
    DEVICE_COMPARISON,
    DEVICE_DIVISION,
    DEVICE_JOIN,
)
from repro.obs import COUNTER, GAUGE, HISTOGRAM, METRICS, MetricsRegistry, metrics
from repro.workloads import join_pair

from .conftest import build_machine, join_project_plan


class TestRegistry:
    def test_disabled_records_nothing(self):
        registry = MetricsRegistry()
        registry.inc("machine.disk.reads")
        registry.set_gauge("machine.plan_cache.size", 3)
        registry.observe("engine.run.pulses", 1.0)
        assert registry.collected_names() == set()

    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry().enable()
        registry.inc("machine.disk.reads")
        registry.inc("machine.disk.reads", 2)
        registry.set_gauge("machine.plan_cache.size", 3)
        registry.set_gauge("machine.plan_cache.size", 1)
        registry.observe("engine.run.pulses", 10.0)
        registry.observe("engine.run.pulses", 30.0)
        assert registry.counter("machine.disk.reads") == 3
        assert registry.gauge("machine.plan_cache.size") == 1
        summary = registry.histogram("engine.run.pulses")
        assert summary.count == 2
        assert summary.total == 40.0
        assert summary.minimum == 10.0
        assert summary.maximum == 30.0
        assert summary.mean == 20.0

    def test_undeclared_name_raises(self):
        registry = MetricsRegistry().enable()
        with pytest.raises(ReproError, match="not declared"):
            registry.inc("machine.rogue.counter")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry().enable()
        with pytest.raises(ReproError, match="declared as a"):
            registry.inc("engine.run.pulses")  # declared as a histogram

    def test_reset_keeps_the_switch(self):
        registry = MetricsRegistry().enable()
        registry.inc("machine.disk.reads")
        registry.reset()
        assert registry.enabled
        assert registry.collected_names() == set()

    def test_snapshot_and_render(self):
        registry = MetricsRegistry().enable()
        registry.inc("machine.disk.reads", 4)
        registry.observe("engine.run.pulses", 7.0)
        snap = registry.snapshot()
        assert snap["machine.disk.reads"] == {"kind": COUNTER, "value": 4}
        assert snap["engine.run.pulses"]["kind"] == HISTOGRAM
        table = registry.render()
        assert "machine.disk.reads" in table
        assert "counter" in table


class TestDeclaredNames:
    def test_every_declared_kind_is_valid(self):
        for name, (kind, description) in METRICS.items():
            assert kind in (COUNTER, GAUGE, HISTOGRAM), name
            assert description, name

    def test_names_are_layer_prefixed(self):
        prefixes = (
            "machine.", "device.", "engine.", "lang.", "service.", "shard.",
            "store.", "faults.",
        )
        for name in METRICS:
            assert name.startswith(prefixes), name

    def test_workload_touches_every_declared_name(self, tmp_path):
        """The name table is *exact*: one representative workload
        records every declared metric, and (by the registry's
        undeclared-name check) nothing else.  Renaming or adding a
        metric without updating ``repro.obs.names`` fails here."""
        metrics.enable()
        plan_text = "project(join(R, S, #0 == #0), #0, #1)"
        plan = optimize(parse(plan_text))

        machine = build_machine()
        machine.run(plan)                     # compile miss + full run
        machine.run(join_project_plan())      # equal plan: cache hit

        lattice = build_machine(backend="lattice")
        lattice.run(join_project_plan())      # engine.lattice.chunks

        bitplane = build_machine(backend="bitplane")
        bitplane.run(join_project_plan())     # engine.bitplane_planes

        # The serving layer: one pooled query records the service.*
        # counters/histogram, and a zero-timeout acquire against a full
        # gate records the rejection counter.
        pool = EnginePool(max_concurrent=1)
        session = pool.session("acme")
        a, b = join_pair(40, 30, 8, seed=31)
        session.store("R", a)
        session.store("S", b)
        session.run(join_project_plan())
        pool.gate.acquire()                   # hold the only slot
        try:
            with pytest.raises(AdmissionError):
                pool.gate.acquire(timeout=0.0)
        finally:
            pool.gate.release()

        # The shard layer: one 2-shard transaction with a
        # co-partitioned equi-join (local), an equi-join on a non-key
        # column (re-partition exchange), and a θ-join (broadcast
        # exchange), merged at the end — the four shard.* metrics.
        cluster = pool.session("acme", shards=2)
        cluster.store("R", a)
        cluster.store("S", b)
        cluster.run_many([
            join_project_plan(),
            Join(Base("R"), Base("S"), on=((1, 1),)),
            Join(Base("R"), Base("S"), on=((1, 1),), ops=("<=",)),
        ])

        # The fault/recovery layer: a transient device fault retried
        # in place plus a dropped exchange re-sent (injected, retries,
        # backoff_seconds, exchange_resends), a killed device
        # quarantined and replanned around (quarantines, replans,
        # redispatches), and a hung query cancelled at its deadline
        # (deadline_cancels) — the eight faults.* metrics.
        chaos = parse_faults("device:join0:1,exchange:*:1", seed=1)
        chaos_pool = EnginePool(faults=chaos)
        chaos_session = chaos_pool.session("acme", shards=2)
        chaos_session.store("R", a)
        chaos_session.store("S", b)
        chaos_session.run_many([Join(Base("R"), Base("S"), on=((1, 1),))])

        kill = parse_faults("device:join0:kill", seed=1)
        kill_pool = EnginePool(
            devices=(
                (DEVICE_COMPARISON, 1), (DEVICE_JOIN, 2),
                (DEVICE_DIVISION, 1),
            ),
            faults=kill,
        )
        kill_catalog = kill_pool.catalog("acme")
        kill_catalog.store("R", a)
        kill_catalog.store("S", b)
        kill_pool.execute(kill_catalog, join_project_plan())

        hung = EnginePool(
            faults=parse_faults("slow:join0:5", seed=1),
            query_deadline=0.2,
        )
        hung_catalog = hung.catalog("acme")
        hung_catalog.store("R", a)
        hung_catalog.store("S", b)
        with pytest.raises(DeadlineError):
            hung.execute(hung_catalog, join_project_plan())

        # The storage layer: a pruned read over a persisted relation
        # records the four store.* counters (probe, chunks read/pruned,
        # bytes) — col 0 runs 0..39 so an equality probe on a Morton-
        # clustered 8-row chunking must skip chunks.
        from repro.relational.domain import IntegerDomain
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema
        from repro.store import RelationStore

        dom = IntegerDomain("int")
        schema = Schema.of(("k", dom), ("v", dom))
        stored = Relation(schema, [(i, i * 3 % 7) for i in range(40)])
        store = RelationStore(tmp_path / "relations")
        store.write("K", stored, chunk_rows=8)
        scan = store.open("K").read(("k", "==", 11))
        assert scan.chunks_pruned > 0

        collected = metrics.collected_names()
        missing = set(METRICS) - collected
        assert not missing, f"declared but never recorded: {sorted(missing)}"
        assert collected == set(METRICS)

    def test_plan_cache_metrics_follow_cache_behaviour(self):
        metrics.enable()
        machine = build_machine()
        machine.run(join_project_plan())
        assert metrics.counter("machine.plan_cache.misses") == 1
        assert metrics.counter("machine.plan_cache.hits") == 0
        machine.run(join_project_plan())
        assert metrics.counter("machine.plan_cache.hits") == 1
        assert metrics.gauge("machine.plan_cache.size") == 1
