"""Fixtures for the observability tests.

Every test runs with a clean ambient tracer and a disabled, empty
metrics registry, and leaves them that way — the obs switches are
process-global, so isolation here keeps the rest of the suite honest
about its "off by default" contract.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.machine import Base, Join, Project, SystolicDatabaseMachine
from repro.obs import metrics
from repro.workloads import join_pair


@pytest.fixture(autouse=True)
def clean_obs():
    obs.stop()
    metrics.disable()
    metrics.reset()
    yield
    obs.stop()
    metrics.disable()
    metrics.reset()


def build_machine(backend=None) -> SystolicDatabaseMachine:
    """A machine with two joinable base relations on disk."""
    machine = SystolicDatabaseMachine(backend=backend)
    a, b = join_pair(40, 30, 8, seed=31)
    machine.store("R", a)
    machine.store("S", b)
    return machine


def join_project_plan() -> Project:
    """A plan whose join → project stages fuse into a pipelined chain."""
    return Project(Join(Base("R"), Base("S"), on=((0, 0),)), (0, 1))
