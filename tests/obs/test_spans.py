"""Span recording: nesting, detachment, and the determinism contract."""

from __future__ import annotations

from repro import obs

from .conftest import build_machine, join_project_plan


class TestTracer:
    def test_spans_nest_on_one_thread(self):
        tracer = obs.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", depth=1):
                pass
            with tracer.span("inner", depth=2):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in outer.children] == ["inner", "inner"]
        assert outer.children[0].attrs == {"depth": 1}

    def test_span_records_timing(self):
        tracer = obs.Tracer()
        with tracer.span("timed") as sp:
            pass
        assert sp.t1 >= sp.t0
        assert sp.seconds >= 0.0

    def test_set_adds_attributes(self):
        tracer = obs.Tracer()
        with tracer.span("op", fixed=1) as sp:
            sp.set(rows_out=7)
        assert sp.attrs == {"fixed": 1, "rows_out": 7}

    def test_detached_subtree_hides_the_stack(self):
        tracer = obs.Tracer()
        with tracer.span("replay"):
            with tracer.detached("task") as task:
                with tracer.span("inner"):
                    pass
        # The detached root is not a child of "replay" ...
        (replay,) = tracer.roots
        assert replay.children == []
        # ... but work inside it nested under the detached span.
        assert [child.name for child in task.children] == ["inner"]

    def test_adopt_grafts_under_the_open_span(self):
        tracer = obs.Tracer()
        with tracer.detached("task") as task:
            pass
        with tracer.span("op") as op:
            tracer.adopt(task)
        assert op.children == [task]

    def test_adopt_ignores_null_and_missing_spans(self):
        tracer = obs.Tracer()
        with tracer.span("op") as op:
            tracer.adopt(None)
        assert op.children == []

    def test_walk_and_find(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert [sp.name for sp in tracer.walk()] == ["a", "b", "b"]
        assert len(tracer.find("b")) == 2


class TestAmbient:
    def test_off_by_default(self):
        assert not obs.enabled()
        # The null tracer hands out one shared context manager.
        assert obs.span("x") is obs.span("y")

    def test_null_span_accepts_set(self):
        with obs.span("x") as sp:
            sp.set(anything=1)  # must not raise or record

    def test_start_stop(self):
        tracer = obs.start()
        assert obs.enabled()
        assert obs.get_tracer() is tracer
        assert obs.start() is tracer  # idempotent
        assert obs.stop() is tracer
        assert not obs.enabled()

    def test_tracing_scope_restores_previous(self):
        outer = obs.start()
        with obs.tracing() as inner:
            assert obs.get_tracer() is inner
            with obs.span("scoped"):
                pass
        assert obs.get_tracer() is outer
        assert inner.find("scoped")
        assert not outer.find("scoped")


class TestStructure:
    def test_structure_excludes_timing_and_threads(self):
        a, b = obs.Tracer(), obs.Tracer()
        for tracer in (a, b):
            with tracer.span("op", rows=3):
                with tracer.span("inner"):
                    pass
        (ra,), (rb,) = a.roots, b.roots
        rb.tid = ra.tid + 1  # different threads, different clocks —
        rb.t0, rb.t1 = ra.t0 + 5, ra.t1 + 9
        assert ra.structure() == rb.structure()

    def test_machine_structure_identical_parallel_vs_serial(self):
        """The tentpole determinism contract: the recorded span tree's
        structure (names, attributes, nesting) is bit-identical whether
        the compute phase ran on host threads or serially."""
        structures = {}
        for parallel in (True, False):
            machine = build_machine()
            with obs.tracing() as tracer:
                machine.run(join_project_plan(), parallel=parallel)
            structures[parallel] = tuple(
                root.structure() for root in tracer.roots
            )
        assert structures[True] == structures[False]

    def test_machine_trace_covers_every_layer(self):
        machine = build_machine()
        with obs.tracing() as tracer:
            machine.run(join_project_plan())
        names = {sp.name for sp in tracer.walk()}
        for expected in (
            "machine.compile", "planner.compile", "machine.run",
            "machine.compute_phase", "machine.replay", "machine.op",
            "machine.chain", "host.task", "device.execute", "engine.run",
        ):
            assert expected in names, f"missing span {expected!r}"

    def test_host_tasks_adopted_under_their_ops(self):
        machine = build_machine()
        with obs.tracing() as tracer:
            machine.run(join_project_plan())
        # Every host.task subtree was grafted under a machine.op span —
        # none left floating at the root.
        assert not [r for r in tracer.roots if r.name == "host.task"]
        for op in tracer.find("machine.op"):
            if op.attrs.get("device") == "resident":
                continue
            assert [c.name for c in op.children].count("host.task") == 1
