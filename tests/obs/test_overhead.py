"""The off-by-default contract: disabled observability is (near) free."""

from __future__ import annotations

import time

from repro import obs
from repro.obs import metrics

from .conftest import build_machine, join_project_plan


def test_disabled_span_allocates_nothing():
    # The null tracer returns one shared context manager — entering an
    # instrumentation point when tracing is off creates no objects.
    assert obs.span("a", rows=1) is obs.span("b")
    assert obs.detached("c") is obs.span("d")


def test_disabled_machine_run_records_nothing():
    machine = build_machine()
    machine.run(join_project_plan())
    assert not obs.enabled()
    assert obs.get_tracer() is obs.NULL_TRACER
    assert metrics.collected_names() == set()


def test_disabled_span_smoke_bound():
    """200k no-op spans in well under a second — a generous ceiling
    that still catches an accidentally-eager instrumentation path
    (e.g. building Span objects while disabled)."""
    start = time.perf_counter()
    for _ in range(200_000):
        with obs.span("hot", key=1):
            pass
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"no-op span path took {elapsed:.2f}s"


def test_disabled_metrics_smoke_bound():
    start = time.perf_counter()
    for _ in range(200_000):
        metrics.inc("machine.disk.reads")
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"disabled metrics path took {elapsed:.2f}s"
    assert metrics.collected_names() == set()
