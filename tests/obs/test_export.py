"""Exporters: JSON lines round-trip, Chrome trace schema, summaries."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs import (
    MetricsRegistry,
    read_chrome_trace,
    read_jsonl,
    summarize_file,
    summarize_spans,
    write_chrome_trace,
    write_jsonl,
)

from .conftest import build_machine, join_project_plan


def traced_run():
    machine = build_machine()
    with obs.tracing() as tracer:
        machine.run(join_project_plan())
    return tracer


def enabled_registry() -> MetricsRegistry:
    registry = MetricsRegistry().enable()
    registry.inc("machine.disk.reads", 2)
    registry.set_gauge("machine.plan_cache.size", 1)
    registry.observe("engine.run.pulses", 42.0)
    return registry


class TestJsonl:
    def test_round_trip_preserves_structure(self):
        tracer = traced_run()
        buffer = io.StringIO()
        lines = write_jsonl(tracer, buffer)
        buffer.seek(0)
        roots, metric_lines = read_jsonl(buffer)
        assert lines == sum(1 for _ in tracer.walk())
        assert tuple(r.structure() for r in roots) == tuple(
            r.structure() for r in tracer.roots
        )
        assert metric_lines == []

    def test_metric_lines_ride_along(self):
        tracer = obs.Tracer()
        with tracer.span("only"):
            pass
        buffer = io.StringIO()
        write_jsonl(tracer, buffer, metrics=enabled_registry())
        buffer.seek(0)
        roots, metric_lines = read_jsonl(buffer)
        assert len(roots) == 1
        names = {line["metric"] for line in metric_lines}
        assert names == {
            "machine.disk.reads", "machine.plan_cache.size",
            "engine.run.pulses",
        }


class TestChromeTrace:
    def test_schema(self, tmp_path):
        tracer = traced_run()
        path = str(tmp_path / "trace.json")
        events = write_chrome_trace(tracer, path, metrics=enabled_registry())
        document = json.loads(open(path).read())
        assert set(document) >= {"traceEvents", "displayTimeUnit"}
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert events == len(document["traceEvents"])
        assert len(complete) == sum(1 for _ in tracer.walk())
        for event in complete:
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        # Timestamps are normalized: the earliest event starts at 0.
        assert min(e["ts"] for e in complete) == 0.0
        # Thread lanes are named and densely renumbered from 0.
        tids = {e["tid"] for e in complete}
        assert tids == set(range(len(tids)))
        assert {e["args"]["name"] for e in metadata} >= {"host-main"}
        assert "repro.metrics" in document["otherData"]

    def test_read_back(self, tmp_path):
        tracer = traced_run()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(tracer, path)
        events = read_chrome_trace(path)
        assert {e["name"] for e in events} >= {
            "machine.run", "machine.op", "device.execute", "engine.run",
        }


class TestSummaries:
    def test_summarize_spans(self):
        tracer = traced_run()
        table = summarize_spans(tracer.roots)
        assert "machine.run" in table
        assert "engine.run" in table
        assert "wall" in table

    def test_summarize_file_sniffs_both_formats(self, tmp_path):
        tracer = traced_run()
        chrome = str(tmp_path / "chrome.json")
        jsonl = str(tmp_path / "spans.jsonl")
        write_chrome_trace(tracer, chrome, metrics=enabled_registry())
        write_jsonl(tracer, jsonl, metrics=enabled_registry())
        for path in (chrome, jsonl):
            summary = summarize_file(path)
            assert "machine.run" in summary
            assert "machine.disk.reads" in summary  # metrics table

    def test_summarize_top_limits_rows(self):
        tracer = traced_run()
        table = summarize_spans(tracer.roots, top=3)
        # header + 3 span rows + wall row
        assert len(table.splitlines()) == 5
