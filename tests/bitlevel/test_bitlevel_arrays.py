"""Word-level / bit-level equivalence — §8's partition claim (E12)."""

import pytest

from repro.arrays import compare_all_pairs, compare_tuples
from repro.arrays import systolic_intersection
from repro.bitlevel import (
    bit_array_stats,
    bit_level_compare_all_pairs,
    bit_level_compare_tuples,
    bit_level_intersection,
    bit_level_three_way_compare,
)
from repro.errors import SimulationError
from repro.workloads import overlapping_pair, three_by_three_pair


class TestLinearEquivalence:
    @pytest.mark.parametrize("a,b", [
        ([5, 9], [5, 9]), ([5, 9], [5, 8]), ([0], [0]), ([0], [1]),
        ([7, 0, 3], [7, 0, 3]), ([255], [254]),
    ])
    def test_matches_word_level(self, a, b):
        word = compare_tuples(a, b)
        bit = bit_level_compare_tuples(a, b)
        assert bit.equal == word.equal

    def test_false_seed_preserved(self):
        assert not bit_level_compare_tuples([1], [1], seed=False).equal

    def test_explicit_width(self):
        assert bit_level_compare_tuples([5], [5], width=16).equal

    def test_width_validation(self):
        with pytest.raises(SimulationError):
            bit_level_compare_tuples([5], [5], width=0)

    def test_takes_width_times_m_pulses(self):
        result = bit_level_compare_tuples([5, 9], [5, 9], width=4)
        assert result.run.pulses == 8  # m·w = 2·4


class TestMatrixEquivalence:
    def test_paper_example(self):
        a, b = three_by_three_pair()
        word = compare_all_pairs(a.tuples, b.tuples)
        bit = bit_level_compare_all_pairs(a.tuples, b.tuples)
        assert bit.t_matrix == word.t_matrix

    def test_randomized(self):
        a, b = overlapping_pair(5, 4, 2, arity=2, universe=64, seed=13)
        word = compare_all_pairs(a.tuples, b.tuples)
        bit = bit_level_compare_all_pairs(a.tuples, b.tuples, width=6)
        assert bit.t_matrix == word.t_matrix

    def test_bit_array_is_width_times_wider(self):
        a, b = overlapping_pair(3, 3, 1, arity=2, universe=16, seed=14)
        bit = bit_level_compare_all_pairs(a.tuples, b.tuples, width=4)
        word = compare_all_pairs(a.tuples, b.tuples)
        assert bit.run.cols == word.run.cols * 4
        assert bit.run.rows == word.run.rows


class TestThreeWayCompare:
    @pytest.mark.parametrize("a,b", [
        (0, 0), (1, 0), (0, 1), (5, 5), (12, 3), (3, 12), (255, 255),
        (128, 127),
    ])
    def test_exhaustive_small(self, a, b):
        got = bit_level_three_way_compare(a, b)
        assert got == (a > b) - (a < b)

    def test_msb_decides(self):
        # 8 vs 7: MSB-first must answer GT even though the trailing bits
        # of 7 are all larger.
        assert bit_level_three_way_compare(8, 7, width=4) == 1

    def test_explicit_width(self):
        assert bit_level_three_way_compare(2, 2, width=10) == 0


class TestStats:
    def test_bit_cell_accounting(self):
        stats = bit_array_stats(rows=5, cols=3, width=32)
        assert stats.bit_cols == 96
        assert stats.bit_cells == 480

    def test_validation(self):
        with pytest.raises(SimulationError):
            bit_array_stats(rows=0, cols=1, width=1)


class TestBitLevelIntersection:
    def test_full_array_equivalence(self):
        a, b = overlapping_pair(6, 5, 2, arity=2, universe=50, seed=33)
        bit = bit_level_intersection(a, b, width=6)
        word = systolic_intersection(a, b)
        assert bit.relation == word.relation
        assert bit.t_vector == word.t_vector

    def test_extra_pulses_are_the_extra_columns(self):
        a, b = overlapping_pair(4, 4, 2, arity=2, universe=8, seed=34)
        width = 3
        bit = bit_level_intersection(a, b, width=width)
        word = systolic_intersection(a, b)
        extra_columns = a.arity * width - a.arity
        assert bit.run.pulses == word.run.pulses + extra_columns

    def test_auto_width(self):
        a, b = overlapping_pair(3, 3, 1, arity=2, universe=4, seed=35)
        assert bit_level_intersection(a, b).relation == (
            systolic_intersection(a, b).relation
        )

    def test_empty_operands(self, pair_schema):
        from repro.relational import Relation

        empty = Relation(pair_schema)
        full = Relation(pair_schema, [(1, 2)])
        assert len(bit_level_intersection(empty, full).relation) == 0
