"""Bit encodings for the §8 word→bit partition."""

import pytest

from repro.bitlevel import bits_to_word, expand_tuple, required_width, word_to_bits
from repro.errors import ReproError


class TestWordToBits:
    def test_msb_first(self):
        assert word_to_bits(6, 4) == (0, 1, 1, 0)

    def test_zero(self):
        assert word_to_bits(0, 3) == (0, 0, 0)

    def test_max_value(self):
        assert word_to_bits(7, 3) == (1, 1, 1)

    def test_overflow_rejected(self):
        with pytest.raises(ReproError, match="does not fit"):
            word_to_bits(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            word_to_bits(-1, 3)

    def test_bool_rejected(self):
        with pytest.raises(ReproError):
            word_to_bits(True, 3)

    def test_zero_width_rejected(self):
        with pytest.raises(ReproError):
            word_to_bits(0, 0)


class TestRoundTrip:
    @pytest.mark.parametrize("value", [0, 1, 5, 127, 128, 1000])
    def test_roundtrip(self, value):
        width = max(1, value.bit_length())
        assert bits_to_word(word_to_bits(value, width)) == value

    def test_bits_to_word_validates(self):
        with pytest.raises(ReproError):
            bits_to_word([])
        with pytest.raises(ReproError):
            bits_to_word([0, 2])


class TestRequiredWidth:
    def test_covers_max(self):
        assert required_width([0, 5, 3]) == 3
        assert required_width([8]) == 4

    def test_empty_and_zero(self):
        assert required_width([]) == 1
        assert required_width([0]) == 1

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            required_width([-3])


class TestExpandTuple:
    def test_concatenation(self):
        assert expand_tuple((2, 1), 2) == (1, 0, 0, 1)

    def test_equality_preserved(self):
        # The property the whole transformation rests on.
        pairs = [((3, 7), (3, 7)), ((3, 7), (3, 6)), ((0, 1), (1, 0))]
        for a, b in pairs:
            assert (a == b) == (expand_tuple(a, 4) == expand_tuple(b, 4))

    def test_length(self):
        assert len(expand_tuple((1, 2, 3), 5)) == 15
