"""Bitplane backend ≡ pulse bit-level ≡ word-level arrays.

The packed-bitplane engine claims §8's equivalence twice over: its
uint64 plane kernels must reproduce the pulse-simulated bit-level
arrays bit for bit (results, pulse counts, collector tags), and both
must equal the word-level originals.  Hypothesis sweeps widths 1–64
and signed values; deterministic cases pin the ragged plane tails
(n not a multiple of 64 lanes) that random small relations never
reach.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import compare_all_pairs, compare_tuples
from repro.bitlevel import (
    bit_level_compare_all_pairs,
    bit_level_compare_tuples,
    bit_level_intersection,
    bit_level_three_way_compare,
    plane_three_way,
)
from repro.errors import SimulationError
from repro.relational import Relation, Schema, algebra
from repro.systolic.engine import default_backend, resolve_backend
from repro.errors import ConfigError
from repro.systolic.engine.bitplane import BitplaneEngine
from repro.workloads import overlapping_pair

SMALL = settings(max_examples=25, deadline=None)

#: Widths spanning one uint64 plane set; values stay below 2**63 so the
#: lattice/bitplane int64 staging is exact even at width 64.
widths = st.integers(min_value=1, max_value=64)


def values_for(width: int):
    hi = min(2**width, 2**63) - 1
    return st.integers(min_value=0, max_value=hi)


@st.composite
def tuple_pairs(draw):
    width = draw(widths)
    arity = draw(st.integers(1, 3))
    value = values_for(width)
    a = tuple(draw(value) for _ in range(arity))
    # Half the time compare against a perturbed copy of a so equality
    # is common even at 64-bit widths.
    if draw(st.booleans()):
        b = tuple(draw(value) for _ in range(arity))
    else:
        b = tuple(
            v if draw(st.booleans()) else draw(value) for v in a
        )
    return width, a, b


@st.composite
def relation_pairs(draw):
    width = draw(widths)
    value = values_for(width)
    pool = [
        tuple(draw(value) for _ in range(2))
        for _ in range(draw(st.integers(1, 4)))
    ]
    pick = st.sampled_from(pool)
    n_a = draw(st.integers(1, 5))
    n_b = draw(st.integers(1, 5))
    a = list(dict.fromkeys(draw(pick) for _ in range(n_a)))
    b = list(dict.fromkeys(draw(pick) for _ in range(n_b)))
    return width, a, b


class TestLinearPlans:
    @SMALL
    @given(case=tuple_pairs())
    def test_compare_tuples_matches_pulse(self, case):
        width, a, b = case
        pulse = bit_level_compare_tuples(a, b, width=width, backend="pulse")
        plane = bit_level_compare_tuples(a, b, width=width, backend="bitplane")
        assert plane.equal == pulse.equal == (tuple(a) == tuple(b))
        assert plane.run.pulses == pulse.run.pulses

    def test_false_seed(self):
        assert not bit_level_compare_tuples(
            [3], [3], seed=False, backend="bitplane"
        ).equal


class TestGridPlans:
    @SMALL
    @given(case=relation_pairs())
    def test_compare_all_pairs_three_ways(self, case):
        width, a, b = case
        word = compare_all_pairs(a, b)
        pulse = bit_level_compare_all_pairs(a, b, width=width, backend="pulse")
        plane = bit_level_compare_all_pairs(
            a, b, width=width, backend="bitplane"
        )
        assert plane.t_matrix == pulse.t_matrix == word.t_matrix
        assert plane.run.pulses == pulse.run.pulses

    @SMALL
    @given(case=relation_pairs())
    def test_intersection(self, case):
        width, a_rows, b_rows = case
        schema = Schema.of(("x", None), ("y", None))
        a = Relation(schema, a_rows)
        b = Relation(schema, b_rows)
        pulse = bit_level_intersection(a, b, width=width, backend="pulse")
        plane = bit_level_intersection(a, b, width=width, backend="bitplane")
        assert plane.relation == pulse.relation == algebra.intersection(a, b)
        assert plane.run.pulses == pulse.run.pulses

    def test_empty_sides(self):
        schema = Schema.of(("x", None), ("y", None))
        full = Relation(schema, [(1, 2)])
        empty = Relation(schema)
        for a, b in ((empty, full), (full, empty), (empty, empty)):
            result = bit_level_intersection(a, b, backend="bitplane")
            assert result.relation == algebra.intersection(a, b)


class TestThreeWay:
    @SMALL
    @given(width=widths, data=st.data())
    def test_matches_cell_chain(self, width, data):
        value = values_for(width)
        a = [data.draw(value) for _ in range(4)]
        b = [
            data.draw(value) if data.draw(st.booleans()) else a[i]
            for i in range(4)
        ]
        vector = plane_three_way(a, b, width=width)
        expected = [
            bit_level_three_way_compare(x, y, width=width)
            for x, y in zip(a, b)
        ]
        assert vector.tolist() == expected

    def test_width_too_small_raises(self):
        with pytest.raises(SimulationError):
            plane_three_way([255], [1], width=4)


class TestRaggedTails:
    """n not a multiple of 64: the packed planes end mid-word."""

    def test_ragged_matrix_matches_lattice(self):
        a, b = overlapping_pair(70, 129, 30, arity=2, seed=11)
        plane = compare_all_pairs(a.tuples, b.tuples, backend="bitplane")
        word = compare_all_pairs(a.tuples, b.tuples, backend="lattice")
        assert plane.t_matrix == word.t_matrix
        assert plane.run.pulses == word.run.pulses

    def test_single_lane_tail(self):
        a = [(i,) for i in range(65)]
        b = [(i * 2,) for i in range(65)]
        plane = compare_all_pairs(a, b, backend="bitplane")
        word = compare_all_pairs(a, b, backend="lattice")
        assert plane.t_matrix == word.t_matrix

    def test_negative_values(self):
        a = [(-5, 7), (3, -9), (-(2**40), 0)]
        b = [(3, -9), (-5, 7), (12, 12)]
        plane = compare_all_pairs(a, b, backend="bitplane")
        word = compare_all_pairs(a, b, backend="lattice")
        assert plane.t_matrix == word.t_matrix

    def test_int64_extremes(self):
        lo, hi = -(2**63), 2**63 - 1
        a = [(lo,), (hi,), (0,)]
        b = [(hi,), (lo,), (0,)]
        plane = compare_all_pairs(a, b, backend="bitplane")
        word = compare_all_pairs(a, b, backend="lattice")
        assert plane.t_matrix == word.t_matrix

    def test_three_way_ragged(self):
        rng = np.random.default_rng(7)
        a = rng.integers(-1000, 1000, size=131).tolist()
        b = rng.integers(-1000, 1000, size=131).tolist()
        b[:40] = a[:40]  # common prefix: plenty of EQ outcomes
        vector = plane_three_way(a, b)
        expected = [(x > y) - (x < y) for x, y in zip(a, b)]
        assert vector.tolist() == expected


class TestBackendEnvDefault:
    def test_unset_means_pulse(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "pulse"
        assert type(resolve_backend(None)).__name__ == "PulseEngine"

    def test_env_selects_bitplane(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bitplane")
        assert default_backend() == "bitplane"
        assert isinstance(resolve_backend(None), BitplaneEngine)

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", " Lattice ")
        assert default_backend() == "lattice"

    def test_garbage_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "warp")
        with pytest.raises(ConfigError, match="REPRO_BACKEND"):
            default_backend()

    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "warp")  # never consulted
        assert isinstance(resolve_backend("bitplane"), BitplaneEngine)
