#!/usr/bin/env python3
"""Gate benchmark wall-clock against the committed baselines.

CI's bench-smoke job regenerates ``BENCH_engines.json`` and
``BENCH_planner.json`` in the working tree; this tool compares every
freshly measured entry against the version committed at ``HEAD`` and
fails if any wall-clock field regressed by more than the threshold
(default 30%)::

    python tools/check_bench_regression.py BENCH_engines.json BENCH_planner.json
    python tools/check_bench_regression.py --threshold 0.5 BENCH_engines.json

Only the top-level ``entries`` list is gated.  Sections that record
host-dependent wall-clock (``host_execution``, ``plan_cache``) are
informational and skipped — a CI runner's core count and numpy build
legitimately differ from the machine that produced the baseline.
Entries are matched by their identity fields (everything that is not a
measurement); a new entry with no committed counterpart passes — it
*is* the new baseline.  Improvements never fail the gate.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

#: Fields that carry measured wall-clock, by suffix.
_CLOCK_SUFFIXES = ("_seconds", "_ms")
#: Derived/simulated fields never gated: simulated pulse-clock times are
#: deterministic (equality-checked by the bench itself), and ratios are
#: noisy quotients of the gated quantities.
_SKIP_FIELDS = {
    "speedup", "pipelined_ms", "store_and_forward_ms",
    "law_pipelined_ms", "predicted_ms",
}


def _is_clock(field: str) -> bool:
    return field.endswith(_CLOCK_SUFFIXES) and field not in _SKIP_FIELDS


def _identity(entry: dict) -> tuple:
    """An entry's identity: every non-measurement field, sorted."""
    return tuple(sorted(
        (k, v) for k, v in entry.items()
        if not _is_clock(k) and k not in _SKIP_FIELDS
        and not isinstance(v, (dict, list))
    ))


def _committed(path: Path, ref: str) -> dict | None:
    """The baseline JSON at ``ref``, or None if not committed there."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{path.as_posix()}"],
        capture_output=True, text=True,
        cwd=path.resolve().parent,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def check_file(path: Path, ref: str, threshold: float) -> list[str]:
    """Regression messages for one report file (empty = clean)."""
    current = json.loads(path.read_text())
    baseline = _committed(path, ref)
    if baseline is None:
        print(f"{path}: no committed baseline at {ref}; skipping")
        return []
    base_by_id = {
        _identity(entry): entry for entry in baseline.get("entries", [])
    }
    failures: list[str] = []
    for entry in current.get("entries", []):
        base = base_by_id.get(_identity(entry))
        if base is None:
            print(f"{path}: new entry {dict(_identity(entry))} — no baseline")
            continue
        for field, value in entry.items():
            if not _is_clock(field) or field not in base:
                continue
            committed = base[field]
            if committed <= 0:
                continue
            ratio = value / committed
            marker = "FAIL" if ratio > 1 + threshold else "ok"
            print(f"{path}: {dict(_identity(entry))} {field}: "
                  f"{committed} -> {value} ({ratio:.2f}x) {marker}")
            if ratio > 1 + threshold:
                failures.append(
                    f"{path}: {field} of {dict(_identity(entry))} regressed "
                    f"{ratio:.2f}x (committed {committed}, measured {value}, "
                    f"threshold {1 + threshold:.2f}x)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="BENCH_*.json files to gate")
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    parser.add_argument(
        "--ref", default="HEAD",
        help="git ref holding the committed baseline (default HEAD)",
    )
    args = parser.parse_args(argv)
    failures: list[str] = []
    for name in args.files:
        failures.extend(check_file(Path(name), args.ref, args.threshold))
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("no wall-clock regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
