#!/usr/bin/env python3
"""CI smoke test for ``repro serve``.

Starts the server as a subprocess with ``--trace --metrics``, drives
two concurrent tenants through the E6 equi-join over the wire, shuts
the server down cleanly (SIGINT), and then asserts that

* both clients got the same, correct number of rows;
* the server exited 0 after printing its clean-shutdown line;
* the JSONL trace it wrote contains nonzero ``service.*`` metrics
  (admissions and per-tenant query counters actually moved).

Usage: PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.serve import ServiceClient  # noqa: E402
from repro.workloads import join_pair  # noqa: E402

QUERY = "project(join(R, S, #0 == #0), #0, #1)"


def main() -> int:
    trace_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-serve-smoke-"), "serve_trace.jsonl"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--max-concurrent", "2",
            "--trace", trace_path, "--metrics",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO,
    )
    try:
        line = proc.stdout.readline().strip()
        if not line.startswith("serving on "):
            raise SystemExit(f"unexpected server banner: {line!r}")
        host, port_text = line.removeprefix("serving on ").rsplit(":", 1)
        port = int(port_text)
        print(f"server up at {host}:{port}")

        ja, jb = join_pair(40, 30, 8, seed=31)
        rows: dict[str, int] = {}
        errors: list[BaseException] = []

        def tenant_run(tag: str) -> None:
            try:
                with ServiceClient(host, port, tenant=tag) as db:
                    db.store("R", ja)
                    db.store("S", jb)
                    reply = db.query(QUERY)
                    rows[tag] = reply["rows"]
            except BaseException as exc:  # report, don't hang the join
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant_run, args=(f"tenant{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        if errors:
            raise SystemExit(f"client errors: {errors}")
        if len(rows) != 2 or len(set(rows.values())) != 1:
            raise SystemExit(f"tenants disagree: {rows}")
        if next(iter(rows.values())) == 0:
            raise SystemExit("E6 equi-join over the wire returned no rows")
        print(f"both tenants answered: {rows}")
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            output, _ = proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise SystemExit("server did not shut down on SIGINT")

    if proc.returncode != 0:
        raise SystemExit(
            f"server exited {proc.returncode}; output:\n{output}"
        )
    if "server stopped" not in output:
        raise SystemExit(f"no clean-shutdown line; output:\n{output}")
    print("server shut down cleanly")

    deadline = time.monotonic() + 10.0
    while not os.path.exists(trace_path) and time.monotonic() < deadline:
        time.sleep(0.1)
    service_metrics: dict[str, float] = {}
    with open(trace_path) as stream:
        for raw in stream:
            raw = raw.strip()
            if not raw:
                continue
            obj = json.loads(raw)
            name = obj.get("metric", "")
            if name.startswith("service."):
                service_metrics[name] = obj.get(
                    "value", obj.get("count", 0)
                )
    print(f"service metrics in trace: {service_metrics}")
    if not service_metrics:
        raise SystemExit("trace holds no service.* metrics")
    for required in ("service.queries", "service.admissions"):
        if service_metrics.get(required, 0) <= 0:
            raise SystemExit(f"{required} is zero in the trace")
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
