#!/usr/bin/env python3
"""CI chaos gate: a fixed-seed fault plan over a sharded, multi-tenant
run must recover **bit-identically** — results, timeline steps, and
span structures equal to the fault-free run — with a nonzero fault
ledger (docs/ROBUSTNESS.md).

Run:  PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.faults import parse_faults
from repro.machine import Base, EnginePool, Join
from repro.obs import metrics
from repro.workloads import join_pair

TENANTS = ("acme", "blue")
SHARDS = 3
#: Every transient fault kind, fixed seed: device faults, a disk-read
#: error, shard crashes, and dropped interconnect exchanges.
SPEC = "device:join0:1,device:comparison0:1,disk:R:1,shard:1:2,exchange:*:2"
SEED = 42


def run_cluster(faults=None):
    """All tenants' (results, steps, span structures), one pool."""
    pool = EnginePool(faults=faults)
    observed = {}
    for tenant in TENANTS:
        session = pool.session(tenant, shards=SHARDS)
        a, b = join_pair(48, 36, 12, seed=7)
        session.store("R", a, key="key")
        session.store("S", b, key="key")
        plans = [
            Join(Base("R"), Base("S"), on=(("key", "key"),)),  # local
            Join(Base("R"), Base("S"), on=((1, 1),)),          # re-partition
        ]
        tracer = obs.start(obs.Tracer())
        try:
            results, report = session.run_many(plans)
        finally:
            obs.stop()
        observed[tenant] = (
            results,
            [(s.label, s.device, s.start, s.end) for s in report.steps],
            [root.structure() for root in tracer.roots],
        )
    return observed


def main() -> int:
    clean = run_cluster()

    metrics.reset()
    metrics.enable()
    try:
        faults = parse_faults(SPEC, seed=SEED)
        chaos = run_cluster(faults=faults)
        injected = metrics.counter("faults.injected")
        retries = metrics.counter("faults.retries")
    finally:
        metrics.disable()

    failures = []
    for tenant in TENANTS:
        labels = ("results", "timeline steps", "span structures")
        for label, got, want in zip(labels, chaos[tenant], clean[tenant]):
            if got != want:
                failures.append(
                    f"tenant {tenant!r}: {label} diverged under faults"
                )
    if injected == 0:
        failures.append(f"fault plan {SPEC!r} injected nothing")
    if retries == 0:
        failures.append("recovery never retried — faults were not exercised")
    if faults.quarantined():
        failures.append(
            f"transient-only plan quarantined {faults.quarantined()}"
        )

    print(
        f"chaos smoke: {len(TENANTS)} tenants x {SHARDS} shards, "
        f"spec {SPEC!r} seed {SEED}"
    )
    print(f"  {faults.summary()}")
    print(f"  metrics: faults.injected={injected} faults.retries={retries}")
    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "  recovered bit-identically: results, timelines, and span "
        "structures all match the fault-free run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
