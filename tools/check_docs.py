#!/usr/bin/env python3
"""Keep the documentation and the code from drifting apart.

Two checks, both run in CI next to the bench gate::

    python tools/check_docs.py

1. **Metric-name contract.**  The metric table in
   ``docs/OBSERVABILITY.md`` must list exactly the names declared in
   ``repro.obs.names.METRICS``, with matching kinds.  A metric renamed
   in code but not in the docs (or vice versa) fails here; a metric
   declared but never recorded fails ``tests/obs/test_metrics_names.py``
   instead.

2. **Intra-repository markdown links.**  Every relative link target in
   the repository's markdown files must exist (anchors stripped).
   External links (``http(s)://``, ``mailto:``) and pure anchors are
   ignored.

3. **Package inventory.**  Every ``src/repro/*`` package must have a
   ``repro.<name>`` row in ARCHITECTURE.md's package inventory — a new
   subsystem that never makes it into the map fails here.

4. **CLI flags.**  Every ``--flag`` mentioned in backticks anywhere in
   the markdown must be defined by this repository's entry points
   (``repro.__main__``, ``benchmarks/*.py``, ``tools/*.py``) or sit on
   the short external-tool allowlist — documentation of a renamed or
   removed flag fails here.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.names import METRICS  # noqa: E402

OBSERVABILITY = ROOT / "docs" / "OBSERVABILITY.md"

ARCHITECTURE = ROOT / "docs" / "ARCHITECTURE.md"

#: A metric row: | `name` | kind | meaning |
_METRIC_ROW = re.compile(r"^\|\s*`([a-z_.]+)`\s*\|\s*(\w+)\s*\|")
#: Inline markdown links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: A long option mentioned in docs prose: `--flag` (possibly `--flag VAL`).
_DOC_FLAG = re.compile(r"`(--[a-z0-9][a-z0-9-]*)")
#: A long option defined in an argparse entry point: "--flag".
_CODE_FLAG = re.compile(r'"(--[a-z0-9][a-z0-9-]*)"')

#: Flags of tools we document but do not own (pytest, pytest-benchmark).
_EXTERNAL_FLAGS = {"--lf", "--ff", "--benchmark-only", "--benchmark-disable"}


def documented_metrics(text: str) -> dict[str, str]:
    """``{name: kind}`` parsed from the OBSERVABILITY.md metric table."""
    found: dict[str, str] = {}
    for line in text.splitlines():
        match = _METRIC_ROW.match(line.strip())
        if match and "." in match.group(1):
            found[match.group(1)] = match.group(2)
    return found


def check_metric_table() -> list[str]:
    problems: list[str] = []
    if not OBSERVABILITY.exists():
        return [f"{OBSERVABILITY.relative_to(ROOT)} is missing"]
    documented = documented_metrics(OBSERVABILITY.read_text())
    declared = {name: kind for name, (kind, _) in METRICS.items()}
    where = OBSERVABILITY.relative_to(ROOT)
    for name in sorted(set(declared) - set(documented)):
        problems.append(
            f"{where}: metric {name!r} is declared in repro.obs.names "
            f"but missing from the metric table"
        )
    for name in sorted(set(documented) - set(declared)):
        problems.append(
            f"{where}: metric {name!r} is documented but not declared "
            f"in repro.obs.names.METRICS"
        )
    for name in sorted(set(documented) & set(declared)):
        if documented[name] != declared[name]:
            problems.append(
                f"{where}: metric {name!r} documented as "
                f"{documented[name]!r}, declared as {declared[name]!r}"
            )
    return problems


def markdown_files() -> list[Path]:
    skip_parts = {".git", ".venv", "node_modules", "__pycache__"}
    return sorted(
        path for path in ROOT.rglob("*.md")
        if not skip_parts & set(path.relative_to(ROOT).parts)
    )


def check_links() -> list[str]:
    problems: list[str] = []
    for path in markdown_files():
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(ROOT)}: broken link -> {target}"
                )
    return problems


def repro_packages() -> list[str]:
    """Top-level ``repro.*`` packages under ``src/``, sorted."""
    return sorted(
        entry.name
        for entry in (ROOT / "src" / "repro").iterdir()
        if entry.is_dir() and (entry / "__init__.py").exists()
    )


def check_package_inventory() -> list[str]:
    if not ARCHITECTURE.exists():
        return [f"{ARCHITECTURE.relative_to(ROOT)} is missing"]
    text = ARCHITECTURE.read_text()
    where = ARCHITECTURE.relative_to(ROOT)
    return [
        f"{where}: package 'repro.{name}' (src/repro/{name}/) has no "
        f"row in the package inventory"
        for name in repro_packages()
        if f"`repro.{name}`" not in text
    ]


def defined_flags() -> set[str]:
    """Long options defined by this repo's argparse entry points."""
    sources = [ROOT / "src" / "repro" / "__main__.py"]
    sources += sorted((ROOT / "benchmarks").glob("*.py"))
    sources += sorted((ROOT / "tools").glob("*.py"))
    flags: set[str] = set()
    for source in sources:
        flags.update(_CODE_FLAG.findall(source.read_text()))
    return flags


def check_cli_flags() -> list[str]:
    defined = defined_flags() | _EXTERNAL_FLAGS
    problems: list[str] = []
    for path in markdown_files():
        for flag in _DOC_FLAG.findall(path.read_text()):
            if flag not in defined:
                problems.append(
                    f"{path.relative_to(ROOT)}: documents flag {flag!r}, "
                    f"which no entry point defines"
                )
    return problems


def main() -> int:
    problems = (
        check_metric_table() + check_links()
        + check_package_inventory() + check_cli_flags()
    )
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    files = len(markdown_files())
    print(
        f"check_docs: metric table in sync ({len(METRICS)} names), "
        f"links resolve across {files} markdown files, "
        f"{len(repro_packages())} packages in the inventory, "
        f"documented CLI flags all defined"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
