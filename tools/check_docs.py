#!/usr/bin/env python3
"""Keep the documentation and the code from drifting apart.

Two checks, both run in CI next to the bench gate::

    python tools/check_docs.py

1. **Metric-name contract.**  The metric table in
   ``docs/OBSERVABILITY.md`` must list exactly the names declared in
   ``repro.obs.names.METRICS``, with matching kinds.  A metric renamed
   in code but not in the docs (or vice versa) fails here; a metric
   declared but never recorded fails ``tests/obs/test_metrics_names.py``
   instead.

2. **Intra-repository markdown links.**  Every relative link target in
   the repository's markdown files must exist (anchors stripped).
   External links (``http(s)://``, ``mailto:``) and pure anchors are
   ignored.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.names import METRICS  # noqa: E402

OBSERVABILITY = ROOT / "docs" / "OBSERVABILITY.md"

#: A metric row: | `name` | kind | meaning |
_METRIC_ROW = re.compile(r"^\|\s*`([a-z_.]+)`\s*\|\s*(\w+)\s*\|")
#: Inline markdown links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def documented_metrics(text: str) -> dict[str, str]:
    """``{name: kind}`` parsed from the OBSERVABILITY.md metric table."""
    found: dict[str, str] = {}
    for line in text.splitlines():
        match = _METRIC_ROW.match(line.strip())
        if match and "." in match.group(1):
            found[match.group(1)] = match.group(2)
    return found


def check_metric_table() -> list[str]:
    problems: list[str] = []
    if not OBSERVABILITY.exists():
        return [f"{OBSERVABILITY.relative_to(ROOT)} is missing"]
    documented = documented_metrics(OBSERVABILITY.read_text())
    declared = {name: kind for name, (kind, _) in METRICS.items()}
    where = OBSERVABILITY.relative_to(ROOT)
    for name in sorted(set(declared) - set(documented)):
        problems.append(
            f"{where}: metric {name!r} is declared in repro.obs.names "
            f"but missing from the metric table"
        )
    for name in sorted(set(documented) - set(declared)):
        problems.append(
            f"{where}: metric {name!r} is documented but not declared "
            f"in repro.obs.names.METRICS"
        )
    for name in sorted(set(documented) & set(declared)):
        if documented[name] != declared[name]:
            problems.append(
                f"{where}: metric {name!r} documented as "
                f"{documented[name]!r}, declared as {declared[name]!r}"
            )
    return problems


def markdown_files() -> list[Path]:
    skip_parts = {".git", ".venv", "node_modules", "__pycache__"}
    return sorted(
        path for path in ROOT.rglob("*.md")
        if not skip_parts & set(path.relative_to(ROOT).parts)
    )


def check_links() -> list[str]:
    problems: list[str] = []
    for path in markdown_files():
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(ROOT)}: broken link -> {target}"
                )
    return problems


def main() -> int:
    problems = check_metric_table() + check_links()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    files = len(markdown_files())
    print(
        f"check_docs: metric table in sync ({len(METRICS)} names), "
        f"links resolve across {files} markdown files"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
