#!/usr/bin/env python3
"""Trace an E6 equi-join through the database machine (repro.obs).

Runs `project(join(R, S))` on the Fig 9-1 machine with the
observability layer switched on, then:

* writes a Chrome trace-event file you can open at chrome://tracing or
  https://ui.perfetto.dev — one lane per host thread, spans for the
  compile, every physical op, the pipelined chain, each device
  execution, and the engine runs underneath;
* prints the metrics registry (plan-cache hits, pulses, disk reads, …)
  and a human summary of the hottest spans.

The same data is reachable from the CLI via `--trace FILE --metrics`;
see docs/OBSERVABILITY.md.

Run:  python examples/trace_a_join.py
"""

import tempfile
from pathlib import Path

from repro import obs
from repro.machine import SystolicDatabaseMachine
from repro.machine.plan import Base, Join, Project
from repro.obs import metrics
from repro.workloads import join_pair


def main() -> None:
    machine = SystolicDatabaseMachine()
    r, s = join_pair(48, 36, matches=10, seed=6)
    machine.store("R", r)
    machine.store("S", s)

    # The E6 workload: equi-join on the key column, keep one payload
    # column from each side.
    plan = Project(Join(Base("R"), Base("S"), on=((0, 0),)), (0, 1))

    metrics.reset()
    metrics.enable()
    tracer = obs.Tracer()
    try:
        with obs.tracing(tracer):
            results, report = machine.run(plan)
    finally:
        metrics.disable()

    print(f"E6 equi-join: {len(results)} result tuples, "
          f"simulated makespan {report.makespan * 1e3:.3f} ms\n")

    trace_path = Path(tempfile.gettempdir()) / "repro_trace_a_join.json"
    events = obs.write_chrome_trace(tracer, trace_path, metrics=metrics)
    print(f"Chrome trace: {events} events -> {trace_path}")
    print("  (open chrome://tracing or https://ui.perfetto.dev and "
          "load the file)\n")

    print("metrics registry after the run:")
    print(metrics.render(), "\n")

    print("hottest spans (same view as `repro trace summarize`):")
    print(obs.summarize_spans(tracer.roots, top=8))


if __name__ == "__main__":
    main()
