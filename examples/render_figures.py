#!/usr/bin/env python3
"""Print the paper's figures, drawn from the live simulated hardware.

Every schematic below is rendered from an actually-constructed network
(the same objects the simulator drives), so diagram and implementation
cannot disagree.

Run:  python examples/render_figures.py
"""

from repro.arrays.comparison_array import build_comparison_array
from repro.arrays.division import build_division_array
from repro.arrays.intersection import build_intersection_array
from repro.arrays.join import build_join_array
from repro.figures import (
    division_schematic,
    grid_schematic,
    machine_schematic,
    network_summary,
)
from repro.machine import SystolicDatabaseMachine
from repro.workloads import division_example, three_by_three_pair


def banner(text: str) -> None:
    print()
    print(f"--- {text} " + "-" * max(0, 60 - len(text)))


def main() -> None:
    a, b = three_by_three_pair()

    banner("Fig 3-3: two-dimensional comparison array (3x3 relations)")
    network, schedule, layout = build_comparison_array(a.tuples, b.tuples)
    print(grid_schematic(layout))
    print()
    print(network_summary(network))

    banner("Fig 4-1: intersection array (comparison + accumulation column)")
    network, schedule, layout = build_intersection_array(a, b)
    print(grid_schematic(layout))
    print()
    print(network_summary(network))

    banner("Fig 6-1: join array (single join column)")
    network, schedule, layout = build_join_array(
        [(row[0],) for row in a.tuples], [(row[0],) for row in b.tuples],
        ops=["=="],
    )
    print(grid_schematic(layout))

    banner("Fig 7-2: division array (the Fig 7-1 example)")
    dividend, divisor, _ = division_example()
    groups = dividend.schema[0].domain
    values = dividend.schema[1].domain
    distinct_x, seen = [], set()
    for x, _y in dividend.tuples:
        if x not in seen:
            seen.add(x)
            distinct_x.append(groups.decode(x))
    network, schedule, layout = build_division_array(
        list(dividend.tuples), [groups.encode(x) for x in distinct_x],
        [row[0] for row in divisor.tuples],
    )
    print(division_schematic(
        distinct_x, [values.decode(v[0]) for v in divisor.tuples]
    ))
    print()
    print(network_summary(network))

    banner("Fig 9-1: the integrated systolic database machine")
    print(machine_schematic(SystolicDatabaseMachine()))


if __name__ == "__main__":
    main()
