#!/usr/bin/env python3
"""Codd's suppliers-and-parts shipments join on a 4-shard cluster.

Both S (suppliers) and SP (shipments) are hash-partitioned on `sno`,
so the shard planner proves the equi-join distributive: each of the
four simulated machines joins only its own tuples, nothing crosses the
interconnect, and the merged result is bit-identical to one machine
(docs/SHARDING.md).  The cluster timeline interleaves the four shards'
steps; `--trace` additionally records the span tree — one
`shard.run`/`machine.run` subtree per shard — and writes a Chrome
trace-event file.

Run:  python examples/sharded_join.py [--trace]
"""

import argparse
import tempfile
from pathlib import Path

from repro import obs
from repro.machine import Base, EnginePool, Join, Project
from repro.obs import metrics
from repro.workloads.suppliers_parts import suppliers_parts_database

SHARDS = 4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", action="store_true",
                        help="record spans and write a Chrome trace file")
    args = parser.parse_args()

    db = suppliers_parts_database()
    pool = EnginePool()
    cluster = pool.session("example", shards=SHARDS)
    cluster.store("S", db["S"], key="sno")
    cluster.store("SP", db["SP"], key="sno")

    # Which supplier names ship which parts?  The join pair covers both
    # partition keys, so every shard answers for its own suppliers.
    plan = Project(Join(Base("S"), Base("SP"), on=(("sno", "sno"),)),
                   ("sname", "pno"))

    compiled = cluster.compile(plan)
    print(f"shard plan across {SHARDS} machines:")
    print(compiled.plan.explain())
    print()

    metrics.reset()
    metrics.enable()
    tracer = obs.Tracer()
    try:
        with obs.tracing(tracer):
            (result,), report = cluster.run_many([plan])
    finally:
        metrics.disable()

    print(f"{len(result)} result tuples, simulated cluster makespan "
          f"{report.makespan * 1e3:.3f} ms, interconnect "
          f"{report.exchange_seconds * 1e3:.3f} ms")
    print("  ->", sorted(result.decoded()))
    print()

    print("per-shard machine runs:")
    for index, span in enumerate(tracer.find("machine.run")):
        print(f"  shard {index}: {span.attrs['ops']} ops, "
              f"simulated {span.attrs['makespan_ms']:.3f} ms")
    print(f"  shard-local equi-joins: "
          f"{metrics.counter('shard.local_joins')} "
          f"(broadcasts: {metrics.counter('shard.broadcasts')})")
    print()

    print("composed cluster timeline:")
    print(report.timeline())

    if args.trace:
        trace_path = Path(tempfile.gettempdir()) / "repro_sharded_join.json"
        events = obs.write_chrome_trace(tracer, trace_path, metrics=metrics)
        print(f"\nChrome trace: {events} events -> {trace_path}")
        print("  (open chrome://tracing or https://ui.perfetto.dev; one "
              "shard.run subtree per shard)")


if __name__ == "__main__":
    main()
