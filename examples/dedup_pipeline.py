#!/usr/bin/env python3
"""Dedup pipeline: the §5 operators built on remove-duplicates.

The paper derives three operators from one array: remove-duplicates
marks later copies of each tuple (§5.1), union is remove-duplicates
over a concatenation (§5.2), and projection is a column drop followed
by remove-duplicates (§5.3).  This example runs all three over one
order log, then repeats the pipeline on the vectorized lattice backend
and checks it matches the pulse-level simulation bit for bit.

Run:  python examples/dedup_pipeline.py
"""

from repro import Domain, Schema
from repro.arrays import (
    systolic_projection,
    systolic_remove_duplicates,
    systolic_union,
)
from repro.relational import algebra
from repro.relational.relation import MultiRelation, Relation


def main() -> None:
    customers = Domain("customer")
    items = Domain("item")
    schema = Schema.of(("customer", customers), ("item", items))

    # 1. An order log is a multiset: repeat purchases are duplicates.
    orders = MultiRelation.from_values(schema, [
        ("ada", "coffee"), ("grace", "tea"), ("ada", "coffee"),
        ("edsger", "tea"), ("grace", "tea"), ("ada", "scone"),
    ])
    dedup = systolic_remove_duplicates(orders, tagged=True)
    print("Distinct (customer, item) pairs via the §5 array:")
    print(dedup.relation.pretty())
    print(f"  drop vector (TRUE = duplicate removed): {dedup.drop_vector}")
    print(f"  array ran {dedup.run.pulses} pulses on the "
          f"{dedup.run.backend!r} backend\n")
    assert dedup.relation == algebra.remove_duplicates(orders)

    # 2. Projection: drop the item column, dedup what remains (§5.3).
    buyers = systolic_projection(dedup.relation, ["customer"])
    print("Customers who ordered anything (projection):")
    print(buyers.relation.pretty(), "\n")

    # 3. Union with a second day's distinct orders (§5.2).
    day_two = Relation.from_values(schema, [
        ("ada", "coffee"), ("turing", "tea"),
    ])
    union = systolic_union(dedup.relation, day_two)
    print("Both days combined (union):")
    print(union.relation.pretty(), "\n")

    # 4. The same pipeline on the lattice backend: identical answers
    #    and identical pulse counts, without pulse-level simulation.
    fast = systolic_remove_duplicates(orders, tagged=True, backend="lattice")
    assert fast.relation == dedup.relation
    assert fast.drop_vector == dedup.drop_vector
    assert fast.run.pulses == dedup.run.pulses
    print(f"lattice backend agrees: {len(fast.relation)} tuples in "
          f"{fast.run.pulses} pulses (backend={fast.run.backend!r})")


if __name__ == "__main__":
    main()
