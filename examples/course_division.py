#!/usr/bin/env python3
"""Relational division on the Fig 7-2 array (paper §7).

The classic division query: *which students have taken every required
course?*  The dividend is the enrollment relation (student, course),
the divisor the required-course list; the quotient is the set of
students paired with all of them.  The script first replays the paper's
own Fig 7-1 example, then the student workload, printing the array's
internal quotient bits.

Run:  python examples/course_division.py
"""

from repro import Domain, Relation, Schema, systolic_divide
from repro.relational import algebra
from repro.workloads import division_example


def main() -> None:
    # --- The paper's Fig 7-1 example -----------------------------------
    a, b, expected = division_example()
    result = systolic_divide(a, b)
    print("Fig 7-1: A ÷ B")
    print("dividend A:")
    print(a.pretty())
    print("divisor B:", [v[0] for v in b.decoded()])
    print("quotient C:", [v[0] for v in result.relation.decoded()],
          "(paper:", [v[0] for v in expected.decoded()], ")")
    print("per-row quotient bits:",
          dict(zip([a.schema[0].domain.decode(x) for x in result.distinct_x],
                   result.quotient_bits)))
    assert result.relation == expected
    print()

    # --- Students and required courses ---------------------------------
    students = Domain("student")
    courses = Domain("course")
    enrolled = Relation.from_values(
        Schema.of(("student", students), ("course", courses)),
        [
            ("maria", "databases"), ("maria", "compilers"),
            ("maria", "networks"), ("maria", "graphics"),
            ("chen", "databases"), ("chen", "networks"),
            ("amir", "databases"), ("amir", "compilers"),
            ("amir", "networks"),
            ("lena", "compilers"), ("lena", "graphics"),
        ],
    )
    required = Relation.from_values(
        Schema.of(("course", courses)),
        [("databases",), ("compilers",), ("networks",)],
    )

    result = systolic_divide(enrolled, required)
    assert result.relation == algebra.divide(enrolled, required)

    print("Who completed every required course?")
    print("required:", [c[0] for c in required.decoded()])
    rows = zip(result.distinct_x, result.quotient_bits)
    for code, qualified in rows:
        name = students.decode(code)
        mark = "yes" if qualified else "no "
        taken = [
            courses.decode(course)
            for student, course in enrolled.tuples if student == code
        ]
        print(f"  {mark}  {name:<6} took {taken}")
    print("\narray geometry:", f"{result.run.rows} dividend rows × "
          f"{result.run.cols} columns, {result.run.pulses} pulses")


if __name__ == "__main__":
    main()
