#!/usr/bin/env python3
"""Kill a join array and crash a shard mid-query — and get the same
answer anyway.

The E6 equi-join runs on a 3-shard cluster whose machines carry a
*redundant* join array (two instead of Fig 9-1's one).  A fault plan
then kills ``join0`` permanently and crashes shard 1's first two stage
runs.  Recovery is layered (docs/ROBUSTNESS.md): the crashed shard's
run is retried, the dead device's retries exhaust, it is quarantined,
and the shard replans onto the surviving ``join1`` — so the recovered
result is **bit-identical** to the fault-free run, with the whole
story visible in the fault ledger and `faults.*` metrics.

Run:  python examples/chaos_join.py
"""

from repro.faults import parse_faults
from repro.machine import Base, EnginePool, Join
from repro.machine.plan import (
    DEVICE_COMPARISON,
    DEVICE_DIVISION,
    DEVICE_JOIN,
)
from repro.obs import metrics
from repro.workloads import join_pair

SHARDS = 3
#: Fig 9-1 plus one spare join array — redundancy is what makes the
#: kill survivable (the CPU only runs selections).
REDUNDANT = (
    (DEVICE_COMPARISON, 1), (DEVICE_JOIN, 2), (DEVICE_DIVISION, 1),
)
SPEC = "device:join0:kill,shard:1:2"


def run(faults=None):
    pool = EnginePool(devices=REDUNDANT, faults=faults)
    session = pool.session("chaos", shards=SHARDS)
    a, b = join_pair(60, 45, 15, seed=3)
    session.store("R", a, key="key")
    session.store("S", b, key="key")
    plan = Join(Base("R"), Base("S"), on=(("key", "key"),))
    (result,), report = session.run_many([plan])
    return result, report


def main() -> None:
    clean_result, clean_report = run()
    print(f"fault-free run: {len(clean_result)} join tuples, makespan "
          f"{clean_report.makespan * 1e3:.3f} ms")
    print()

    faults = parse_faults(SPEC, seed=1)
    print(f"injecting {SPEC!r}: join0 dies permanently, shard 1 "
          f"crashes twice")
    metrics.reset()
    metrics.enable()
    try:
        result, report = run(faults=faults)
    finally:
        metrics.disable()

    print(f"recovered run:  {len(result)} join tuples, makespan "
          f"{report.makespan * 1e3:.3f} ms")
    print()

    snap = faults.snapshot()
    print("retry trace:")
    print(f"  injected by kind: {snap['injected']}")
    print(f"  recovery retries: {snap['retries']}")
    print(f"  quarantined:      {snap['quarantined']}")
    print(f"  replans:          {metrics.counter('faults.replans')}, "
          f"ops re-dispatched: {metrics.counter('faults.redispatches')}")
    print()

    assert result == clean_result, "recovered result diverged!"
    print("bit-identity: the recovered result equals the fault-free "
          "result exactly — only the metrics can tell the runs apart.")


if __name__ == "__main__":
    main()
