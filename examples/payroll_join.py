#!/usr/bin/env python3
"""Payroll analytics on the join array (paper §6).

An employee/department workload: an equi-join to attach department
budgets, then a θ-join (greater-than, §6.3.2) to flag employees earning
above a department-specific cap — both on pulse-level simulations of
the Fig 6-1 array, with the §8 technology model translating pulse
counts into 1980 NMOS wall-clock time.

Run:  python examples/payroll_join.py
"""

from repro import Domain, Relation, Schema, systolic_join, systolic_theta_join
from repro.perf import PAPER_CONSERVATIVE, estimate_array_area
from repro.relational import algebra


def main() -> None:
    depts = Domain("dept")
    text = Domain("text")
    money = Domain("money")  # dictionary-encodes salaries; order-preserving
    for amount in range(0, 200, 5):
        money.encode(amount * 1000)  # dense codes keep < comparisons honest

    employees = Relation.from_values(
        Schema.of(("name", text), ("dept", depts), ("salary", money)),
        [
            ("ada", "research", 120_000),
            ("grace", "research", 150_000),
            ("edsger", "theory", 95_000),
            ("barbara", "systems", 135_000),
            ("tony", "theory", 90_000),
            ("frances", "systems", 125_000),
        ],
    )
    departments = Relation.from_values(
        Schema.of(("dept", depts), ("budget", money), ("cap", money)),
        [
            ("research", 140_000, 140_000),
            ("theory", 100_000, 100_000),
            ("systems", 130_000, 130_000),
        ],
    )

    # Equi-join: every employee with their department's numbers.
    payroll = systolic_join(employees, departments, on=[("dept", "dept")])
    assert payroll.relation == algebra.join(employees, departments,
                                            [("dept", "dept")])
    print("Employees ⋈ departments (equi-join array):")
    print(payroll.relation.pretty(), "\n")

    # θ-join: employees whose salary exceeds their department cap.
    # Two processor columns: dept == dept AND salary > cap (§6.3).
    over_cap = systolic_theta_join(
        employees, departments,
        on=[("dept", "dept"), ("salary", "cap")],
        ops=["==", ">"],
    )
    print("Employees paid above their department cap (θ-join, §6.3.2):")
    print(over_cap.relation.pretty(), "\n")

    # What would this array cost in 1980 silicon?
    run = payroll.run
    area = estimate_array_area(run.rows, run.cols, PAPER_CONSERVATIVE,
                               element_bits=32)
    seconds = PAPER_CONSERVATIVE.pulses_to_seconds(run.pulses)
    print("§8 technology model for the equi-join run:")
    print(f"  array: {run.rows}×{run.cols} word processors "
          f"= {area.bit_comparators} bit comparators on {area.chips} chip(s)")
    print(f"  {run.pulses} pulses × 350 ns = {seconds * 1e6:.2f} µs")


if __name__ == "__main__":
    main()
