#!/usr/bin/env python3
"""Watch data pulse through the comparison array — Fig 3-4, animated.

Rebuilds the paper's 3×3 running example on the two-dimensional
comparison array, records every pulse with the trace recorder, and
renders the Fig 3-4-style grid for each step: relation A's elements
marching down, B's marching up, partial results rippling right.

Run:  python examples/watch_the_array.py
"""

from repro.arrays.comparison_array import build_comparison_array
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.trace import TraceRecorder, render_grid
from repro.workloads import three_by_three_pair


def label(ports) -> str:
    """Render a cell's contents like the paper: a over b, t to the side."""
    parts = []
    if "a_in" in ports:
        parts.append(f"a:{ports['a_in'].value}")
    if "b_in" in ports:
        parts.append(f"b:{ports['b_in'].value}")
    if "t_in" in ports:
        parts.append("T" if ports["t_in"].value else "F")
    return "/".join(parts)


def main() -> None:
    a, b = three_by_three_pair()
    print("relation A:", a.tuples)
    print("relation B:", b.tuples)
    print("(A and B share exactly one tuple — watch its T survive)\n")

    network, schedule, layout = build_comparison_array(
        a.tuples, b.tuples, tagged=True
    )
    recorder = TraceRecorder()
    simulator = SystolicSimulator(network, observer=recorder)
    simulator.run(schedule.comparison_pulses)

    for pulse in range(schedule.comparison_pulses):
        snapshot = recorder.at(pulse)
        if not snapshot:
            continue
        print(f"--- pulse {pulse} "
              f"({sum(len(v) for v in snapshot.values())} tokens in flight)")
        print(render_grid(snapshot, layout, fmt=label))
        print()

    print("T matrix read off the right edge:")
    from repro.arrays import compare_all_pairs

    result = compare_all_pairs(a.tuples, b.tuples)
    for i, row in enumerate(result.t_matrix):
        print(f"  t[{i}] = {['T' if v else 'F' for v in row]}")


if __name__ == "__main__":
    main()
