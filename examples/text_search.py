#!/usr/bin/env python3
"""Streaming text search on the §8 pattern-match chip.

The one systolic design the paper reports as already fabricated and
working: "The pattern-match chip can be viewed as a scaled-down version
of the comparison array in Section 3."  Text characters stream through
at one per pulse; match results trail at half speed, accumulating one
comparison per pattern cell; `?` is the wildcard.

Run:  python examples/text_search.py
"""

from repro.patterns import match_pattern
from repro.perf import PAPER_CONSERVATIVE


TEXT = (
    "the systolic array rhythmically pumps data in and out, "
    "the way the heart pumps blood, so that a regular flow of data "
    "is kept up in the network"
)


def show(pattern: str) -> None:
    result = match_pattern(TEXT, pattern)
    print(f"pattern {pattern!r}: {len(result.matches)} matches "
          f"({result.run.pulses} pulses on {result.run.cells} cells)")
    for position in result.matches:
        window = TEXT[max(0, position - 10):position + len(pattern) + 10]
        print(f"  @{position:>3}  ...{window}...")
    print()


def main() -> None:
    print(f"text: {len(TEXT)} characters\n")
    show("pumps")
    show("the ")
    show("d?ta")      # wildcard: matches 'data'
    show("?????ically")

    result = match_pattern(TEXT, "data")
    seconds = PAPER_CONSERVATIVE.pulses_to_seconds(result.run.pulses)
    rate = len(TEXT) / seconds / 1e6
    print(f"§8 NMOS model: {result.run.pulses} pulses × 350 ns = "
          f"{seconds * 1e6:.1f} µs -> {rate:.0f} MB/s of text scanned")


if __name__ == "__main__":
    main()
