#!/usr/bin/env python3
"""Codd's suppliers-and-parts database, answered by systolic hardware.

The paper's reference [1] is Codd's relational model; this is his
canonical example database, queried through the repo's expression
language with every operator executing on a pulse-level simulated
array — including the famous division query, "which suppliers supply
*every* part?".

Run:  python examples/suppliers_parts.py
"""

from repro.lang import query
from repro.workloads.suppliers_parts import suppliers_parts_database


QUERIES = [
    ("Cities hosting both suppliers and parts  (intersection array, §4)",
     "intersect(project(S, city), project(P, city))"),
    ("Suppliers who ship nothing  (difference array, §4.3)",
     "difference(project(S, sno), project(SP, sno))"),
    ("Part/city pairs via shipments  (join array, §6)",
     "project(join(SP, S, sno == sno), pno, city)"),
    ("Suppliers supplying EVERY part  (division array, §7)",
     "divide(project(SP, sno, pno), project(P, pno), "
     "group = sno, value = pno, by = pno)"),
]


def main() -> None:
    db = suppliers_parts_database()
    print("The S/P/SP database (Codd [1], the paper's first reference):\n")
    for name, relation in db.items():
        print(f"{name}: {len(relation)} tuples over {relation.schema.names}")
    print()

    for title, source in QUERIES:
        result = query(source, db, engine="systolic")
        print(title)
        print(f"  {source}")
        print("  ->", sorted(result.decoded()))
        print()

    # The θ-join needs an order-preserving encoding (IntegerDomain):
    screw = db["P"].schema.column("pname").domain.encode("Screw")
    heavier = query(
        f"project(join(P, select(P, pname == {screw}), weight > weight), pno)",
        db, engine="systolic",
    )
    print("Parts heavier than some screw  (θ-join array, §6.3.2)")
    print("  ->", sorted(heavier.decoded()))


if __name__ == "__main__":
    main()
