#!/usr/bin/env python3
"""A transaction on the Fig 9-1 integrated systolic database machine.

Disk → memories → crossbar → systolic devices → memory, exactly as
paper §9 describes, with the query written in the repo's small
relational-algebra language.  Prints the scheduled timeline, showing
independent operations overlapping on the crossbar.

Run:  python examples/database_machine.py
"""

from repro.lang import parse
from repro.machine import MachineDisk, SystolicDatabaseMachine, gantt
from repro.workloads import join_pair, overlapping_pair


def main() -> None:
    # A machine with a logic-per-track disk (§9, ref [8]) so simple
    # selections ride the read for free.
    machine = SystolicDatabaseMachine(disk=MachineDisk(logic_per_track=True))

    customers_a, customers_b = overlapping_pair(60, 50, 20, arity=3, seed=1)
    orders, products = join_pair(48, 40, 18, seed=2)
    machine.store("CUST_EU", customers_a)
    machine.store("CUST_US", customers_b)
    machine.store("ORDERS", orders)
    machine.store("PRODUCTS", products)

    print(machine, "\n")

    transaction = [
        # customers active on both continents
        parse("intersect(CUST_EU, CUST_US)"),
        # orders joined with their products, projected to two columns
        parse("project(join(ORDERS, PRODUCTS, key == key), key, a0)"),
        # customers unique to the EU side
        parse("difference(CUST_EU, CUST_US)"),
    ]
    results, report = machine.run_many(transaction)

    print("results:")
    for plan, relation in zip(transaction, results):
        print(f"  {plan.describe():<20} -> {len(relation)} tuples")
    print()

    print("schedule (crossbar overlaps independent operations):")
    print(report.timeline())
    print()
    print("device occupancy (gantt):")
    print(gantt(report))
    print()
    print(f"peak concurrent crossbar links: "
          f"{machine.crossbar.concurrency_profile()}")
    print("device busy time:")
    for device, busy in sorted(report.device_busy_seconds().items()):
        print(f"  {device:<14} {busy * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
