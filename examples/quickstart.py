#!/usr/bin/env python3
"""Quickstart: relational operations on simulated systolic arrays.

Builds two small relations, runs intersection / difference / union /
join on pulse-level simulations of the paper's arrays, and checks each
answer against the software reference implementation.

Run:  python examples/quickstart.py
"""

from repro import (
    Domain,
    Relation,
    Schema,
    systolic_difference,
    systolic_intersection,
    systolic_join,
    systolic_union,
)
from repro.relational import algebra


def main() -> None:
    # 1. Declare domains and schemas.  Values are dictionary-encoded to
    #    integers (paper §2.3); union-compatibility needs shared domains.
    names = Domain("name")
    langs = Domain("language")
    schema = Schema.of(("person", names), ("language", langs))

    knows_sql = Relation.from_values(schema, [
        ("ada", "sql"), ("grace", "sql"), ("edsger", "sql"),
    ])
    knows_apl = Relation.from_values(schema, [
        ("grace", "sql"), ("ada", "apl"), ("edsger", "sql"),
    ])

    # 2. Intersection on the Fig 4-1 array.
    inter = systolic_intersection(knows_sql, knows_apl)
    print("A ∩ B on the intersection array:")
    print(inter.relation.pretty())
    print(f"  t vector: {inter.t_vector}")
    print(f"  array: {inter.run.rows}×{inter.run.cols} processors, "
          f"{inter.run.pulses} pulses\n")
    assert inter.relation == algebra.intersection(knows_sql, knows_apl)

    # 3. Difference — the same hardware, output bit inverted (§4.3).
    diff = systolic_difference(knows_sql, knows_apl)
    print("A − B (same array, inverted output):")
    print(diff.relation.pretty(), "\n")

    # 4. Union — remove-duplicates over the concatenation (§5).
    union = systolic_union(knows_sql, knows_apl)
    print("A ∪ B via the remove-duplicates array:")
    print(union.relation.pretty(), "\n")

    # 5. Join on the Fig 6-1 array.
    titles = Domain("title")
    people = Relation.from_values(
        Schema.of(("person", names), ("title", titles)),
        [("ada", "countess"), ("grace", "rear admiral")],
    )
    joined = systolic_join(knows_sql, people, on=[("person", "person")])
    print("A ⋈ titles on the join array:")
    print(joined.relation.pretty())
    print(f"  matching (i, j) pairs off the array edge: {joined.matches}")


if __name__ == "__main__":
    main()
