"""An interactive session with the systolic database machine.

``python -m repro shell`` drops into a small REPL over a
:class:`~repro.machine.system.SystolicDatabaseMachine`:

::

    sys> load EMP employees.csv
    sys> load DEPT departments.csv
    sys> query project(join(EMP, DEPT, dept == dept), name, budget)
    sys> timeline
    sys> let MERGED = union(EMP, EMP)
    sys> show MERGED
    sys> engines intersect(EMP, EMP)      # cross-check all engines
    sys> quit

The shell is also the library's scriptable face: every command is a
method (``do_*``), so tests drive it through ``onecmd`` without a tty.
"""

from __future__ import annotations

import cmd
import shlex
from typing import Optional

from repro.errors import ReproError
from repro.lang import execute_plan, optimize, parse
from repro.machine import SystolicDatabaseMachine
from repro.machine.scheduler import ExecutionReport
from repro.relational.csv_io import DomainRegistry, load_csv
from repro.relational.relation import Relation

__all__ = ["SystolicShell"]


class SystolicShell(cmd.Cmd):
    """The REPL; one instance wraps one machine and one catalog."""

    intro = (
        "systolic database machine — type 'help' for commands, "
        "'quit' to leave"
    )
    prompt = "sys> "

    def __init__(self, machine: Optional[SystolicDatabaseMachine] = None,
                 **cmd_kwargs) -> None:
        super().__init__(**cmd_kwargs)
        self.machine = machine if machine is not None else (
            SystolicDatabaseMachine()
        )
        self.catalog: dict[str, Relation] = {}
        self.registry: DomainRegistry = {}
        self.last_report: Optional[ExecutionReport] = None
        self.auto_optimize = False

    # -- helpers -----------------------------------------------------------

    def _say(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _fail(self, exc: Exception) -> None:
        self._say(f"error: {exc}")

    def _plan(self, source: str):
        plan = parse(source)
        if not self.auto_optimize:
            return plan
        schemas = {name: rel.schema for name, rel in self.catalog.items()}
        return optimize(plan, schemas=schemas)

    # -- commands ------------------------------------------------------------

    def do_load(self, line: str) -> None:
        """load NAME FILE.csv — read a CSV relation onto the machine's disk."""
        try:
            name, path = shlex.split(line)
        except ValueError:
            self._say("usage: load NAME FILE.csv")
            return
        try:
            relation = load_csv(path, registry=self.registry)
        except (ReproError, OSError) as exc:
            self._fail(exc)
            return
        self.catalog[name] = relation
        self.machine.store(name, relation)
        self._say(f"{name}: {len(relation)} tuples, "
                  f"columns {', '.join(relation.schema.names)}")

    def do_relations(self, line: str) -> None:
        """relations — list everything loaded or computed."""
        if not self.catalog:
            self._say("(nothing loaded)")
        for name, relation in sorted(self.catalog.items()):
            self._say(f"  {name:<12} {len(relation):>6} tuples  "
                      f"({', '.join(relation.schema.names)})")

    def do_show(self, line: str) -> None:
        """show NAME — print a relation."""
        relation = self.catalog.get(line.strip())
        if relation is None:
            self._say(f"no relation named {line.strip()!r}")
            return
        self._say(relation.pretty(max_rows=30))

    def do_query(self, line: str) -> None:
        """query EXPR — run on the machine; result printed, timeline kept."""
        try:
            result, report = self.machine.run(self._plan(line))
        except ReproError as exc:
            self._fail(exc)
            return
        self.last_report = report
        self._say(result.pretty(max_rows=30))
        self._say(f"({len(result)} tuples, "
                  f"makespan {report.makespan * 1e3:.3f} ms)")

    def do_let(self, line: str) -> None:
        """let NAME = EXPR — evaluate (software engine) and keep the result."""
        name, _, source = line.partition("=")
        name = name.strip()
        if not name or not source.strip():
            self._say("usage: let NAME = EXPR")
            return
        try:
            result = execute_plan(self._plan(source), self.catalog,
                                  engine="software")
        except ReproError as exc:
            self._fail(exc)
            return
        self.catalog[name] = result
        self.machine.store(name, result)
        self._say(f"{name}: {len(result)} tuples")

    def do_engines(self, line: str) -> None:
        """engines EXPR — run on software + systolic engines; must agree."""
        try:
            plan = self._plan(line)
            software = execute_plan(plan, self.catalog, engine="software")
            systolic = execute_plan(plan, self.catalog, engine="systolic")
        except ReproError as exc:
            self._fail(exc)
            return
        verdict = "AGREE" if software == systolic else "DISAGREE (bug!)"
        self._say(f"software: {len(software)} tuples; "
                  f"systolic: {len(systolic)} tuples — {verdict}")

    def do_explain(self, line: str) -> None:
        """explain EXPR — compile for the machine; show the physical plan."""
        try:
            physical = self.machine.compile(self._plan(line))
        except ReproError as exc:
            self._fail(exc)
            return
        self._say(physical.explain())

    def do_timeline(self, line: str) -> None:
        """timeline — the last machine query's schedule."""
        if self.last_report is None:
            self._say("no machine query has run yet")
            return
        self._say(self.last_report.timeline())

    def do_optimize(self, line: str) -> None:
        """optimize on|off — toggle plan rewrites for later queries."""
        setting = line.strip().lower()
        if setting not in ("on", "off"):
            self._say("usage: optimize on|off")
            return
        self.auto_optimize = setting == "on"
        self._say(f"plan rewrites {'enabled' if self.auto_optimize else 'disabled'}")

    def do_quit(self, line: str) -> bool:
        """quit — leave the shell."""
        return True

    do_exit = do_quit
    do_EOF = do_quit

    def emptyline(self) -> None:
        pass  # an empty line does nothing (default repeats the last command)

    def default(self, line: str) -> None:
        self._say(f"unknown command: {line.split()[0]!r} (try 'help')")
