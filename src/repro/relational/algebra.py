"""Software reference implementations of the paper's relational operators.

These are the "host CPU" versions of every operation the systolic arrays
of §3–§7 compute in hardware.  They serve two purposes:

* **Oracles.**  Every array in :mod:`repro.arrays` is tested against
  these functions on randomized and property-based inputs.
* **Baselines.**  Experiment E14 races the pipelined arrays against a
  sequential processor.  The :class:`ComparisonCounter` instruments the
  nested-loop variants with the same unit of work the paper counts —
  element (and bit) comparisons — so the speed-up arithmetic of §8 can
  be reproduced.

Set-semantics functions return :class:`~repro.relational.relation.Relation`;
bag-producing steps (projection before dedup) return
:class:`~repro.relational.relation.MultiRelation`.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import RelationError, SchemaError
from repro.relational.relation import EncodedTuple, MultiRelation, Relation
from repro.relational.schema import ColumnRef, Schema

__all__ = [
    "COMPARISON_OPS",
    "ComparisonCounter",
    "intersection",
    "difference",
    "union",
    "remove_duplicates",
    "project",
    "project_multi",
    "join",
    "equi_join_layout",
    "theta_join",
    "theta_join_layout",
    "divide",
    "divide_general",
    "select",
    "semijoin",
    "antijoin",
    "nested_loop_intersection",
    "nested_loop_join",
    "nested_loop_remove_duplicates",
    "nested_loop_divide",
]

#: The binary comparison operators a θ-join cell may be programmed with
#: (§6.3.2: "any sort of binary comparison (e.g. <, >, etc.)").
COMPARISON_OPS: dict[str, Callable[[int, int], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass
class ComparisonCounter:
    """Counts the element comparisons performed by a sequential baseline.

    ``element_comparisons`` counts word-level comparisons; multiplying by
    the element width in bits gives the paper's bit-comparison count
    (§8 does exactly that: 1500 bit comparisons per 1500-bit tuple pair).
    """

    element_comparisons: int = 0
    tuple_comparisons: int = 0
    _element_bits: int = field(default=32, repr=False)

    def compare(self, a: int, b: int) -> bool:
        """One element equality test, counted."""
        self.element_comparisons += 1
        return a == b

    def compare_tuples(self, a: Sequence[int], b: Sequence[int]) -> bool:
        """Short-circuiting tuple equality, counting element work."""
        self.tuple_comparisons += 1
        for x, y in zip(a, b):
            if not self.compare(x, y):
                return False
        return True

    def bit_comparisons(self, element_bits: int | None = None) -> int:
        """Element comparisons scaled to bit comparisons."""
        bits = self._element_bits if element_bits is None else element_bits
        return self.element_comparisons * bits


# ---------------------------------------------------------------------------
# Set-oriented reference implementations (oracles)
# ---------------------------------------------------------------------------


def intersection(a: Relation, b: Relation) -> Relation:
    """``A ∩ B`` over union-compatible relations (§4.1)."""
    a.schema.require_union_compatible(b.schema)
    members = set(b.tuples)
    return Relation(a.schema, (t for t in a.tuples if t in members))


def difference(a: Relation, b: Relation) -> Relation:
    """``A − B`` over union-compatible relations (§4.3)."""
    a.schema.require_union_compatible(b.schema)
    members = set(b.tuples)
    return Relation(a.schema, (t for t in a.tuples if t not in members))


def union(a: Relation, b: Relation) -> Relation:
    """``A ∪ B`` = remove-duplicates(A + B) (§5)."""
    a.schema.require_union_compatible(b.schema)
    return Relation(a.schema, list(a.tuples) + list(b.tuples))


def remove_duplicates(a: MultiRelation) -> Relation:
    """Collapse a multi-relation to a relation, keeping first occurrences.

    Mirrors the array's §5 policy: a tuple is removed iff an *earlier*
    tuple equals it, so the survivor of each duplicate group is the
    first one fed into the array.
    """
    return a.distinct()


def project_multi(a: Relation | MultiRelation, columns: Sequence[ColumnRef]) -> MultiRelation:
    """Column selection *without* dedup — the intermediate of §5.

    This is the multi-relation ``A_f`` the paper constructs "during the
    time when the original tuples are retrieved from storage".
    """
    positions = a.schema.resolve_many(columns)
    new_schema = a.schema.project(columns)
    rows = [tuple(row[i] for i in positions) for row in a.tuples]
    return MultiRelation(new_schema, rows)


def project(a: Relation | MultiRelation, columns: Sequence[ColumnRef]) -> Relation:
    """Projection: column selection followed by duplicate removal (§5)."""
    return project_multi(a, columns).distinct()


def select(
    a: Relation, column: ColumnRef, op: str, value: int
) -> Relation:
    """Simple selection σ — not systolic in the paper, provided for plans."""
    comparison = COMPARISON_OPS.get(op)
    if comparison is None:
        raise SchemaError(f"unknown comparison operator {op!r}")
    position = a.schema.resolve(column)
    return Relation(a.schema, (t for t in a.tuples if comparison(t[position], value)))


def equi_join_layout(
    a: Relation, b: Relation, on: Sequence[tuple[ColumnRef, ColumnRef]]
) -> tuple[list[int], list[int], Schema, list[int]]:
    """Resolve join columns, check domains, build the output schema.

    Returns ``(a_positions, b_positions, schema, b_keep)`` where
    ``b_keep`` lists the positions of B's columns that survive into the
    concatenation (the matching columns of B are dropped — the paper's
    ``|{CA,CB}`` operator keeps a single copy; it follows Codd [1] in
    omitting the redundant column, see footnote 2 of §6.1).
    """
    if not on:
        raise SchemaError("a join requires at least one column pair")
    a_positions = a.schema.resolve_many([ca for ca, _ in on])
    b_positions = b.schema.resolve_many([cb for _, cb in on])
    for (ca, cb), pa, pb in zip(on, a_positions, b_positions):
        da = a.schema[pa].domain
        db = b.schema[pb].domain
        if da != db:
            raise SchemaError(
                f"join columns {ca!r}/{cb!r} are on different domains "
                f"({da.name!r} vs {db.name!r}); the join is not well-defined"
            )
    dropped = set(b_positions)
    b_keep = [i for i in range(len(b.schema)) if i not in dropped]
    if b_keep:
        b_schema = b.schema.project(b_keep)
        schema = a.schema.concat(b_schema)
    else:
        schema = a.schema
    return a_positions, b_positions, schema, b_keep


def join(
    a: Relation, b: Relation, on: Sequence[tuple[ColumnRef, ColumnRef]]
) -> Relation:
    """Equi-join ``A |X|_{CA=CB} B`` (§6.1, §6.3.1).

    ``on`` is a list of ``(column_of_A, column_of_B)`` pairs; the result
    is the concatenation of matching tuples with B's join columns
    removed (one copy of each matched column is kept).
    """
    a_positions, b_positions, schema, b_keep = equi_join_layout(a, b, on)
    index: dict[tuple[int, ...], list[EncodedTuple]] = {}
    for row in b.tuples:
        index.setdefault(tuple(row[i] for i in b_positions), []).append(row)
    out: list[EncodedTuple] = []
    for row in a.tuples:
        key = tuple(row[i] for i in a_positions)
        for match in index.get(key, ()):
            out.append(row + tuple(match[i] for i in b_keep))
    return Relation(schema, out)


def theta_join_layout(
    a: Relation,
    b: Relation,
    on: Sequence[tuple[ColumnRef, ColumnRef]],
    ops: Sequence[str],
) -> tuple[list[int], list[int], Schema, list[int]]:
    """Resolve θ-join columns and build the output schema.

    Only equality columns are redundant; columns compared with other
    operators are kept from both sides.  Returns the same shape as
    :func:`equi_join_layout`.
    """
    if len(ops) != len(on):
        raise SchemaError(
            f"need one operator per column pair: {len(ops)} ops, {len(on)} pairs"
        )
    for op in ops:
        if op not in COMPARISON_OPS:
            raise SchemaError(f"unknown comparison operator {op!r}")
    a_positions = a.schema.resolve_many([ca for ca, _ in on])
    b_positions = b.schema.resolve_many([cb for _, cb in on])
    dropped = {pb for pb, op in zip(b_positions, ops) if op == "=="}
    b_keep = [i for i in range(len(b.schema)) if i not in dropped]
    schema = a.schema.concat(b.schema.project(b_keep)) if b_keep else a.schema
    return a_positions, b_positions, schema, b_keep


def theta_join(
    a: Relation,
    b: Relation,
    on: Sequence[tuple[ColumnRef, ColumnRef]],
    ops: Sequence[str],
) -> Relation:
    """θ-join: arbitrary binary comparisons per column pair (§6.3.2).

    For non-equality operators both compared columns are kept in the
    output (there is no redundant column to drop); equality columns are
    deduplicated as in :func:`join`.
    """
    a_positions, b_positions, schema, b_keep = theta_join_layout(a, b, on, ops)
    comparisons = [COMPARISON_OPS[op] for op in ops]
    out: list[EncodedTuple] = []
    for row_a in a.tuples:
        for row_b in b.tuples:
            if all(
                fn(row_a[pa], row_b[pb])
                for fn, pa, pb in zip(comparisons, a_positions, b_positions)
            ):
                out.append(row_a + tuple(row_b[i] for i in b_keep))
    return Relation(schema, out)


def divide(
    a: Relation,
    b: Relation,
    a_value: ColumnRef = 1,
    a_group: ColumnRef | None = None,
    b_value: ColumnRef = 0,
) -> Relation:
    """Relational division ``A ÷ B`` (§7).

    In the paper's restricted case A is binary with columns (A₁, A₂) and
    B unary with column B₁; ``x`` appears in the quotient iff ``(x, y)``
    is in A for *every* ``y`` in B₁.  Here ``a_group`` is the kept
    column (A₁, default: the other column of a binary A), ``a_value``
    the matched column (A₂), ``b_value`` the divisor column.
    """
    value_pos = a.schema.resolve(a_value)
    if a_group is None:
        if len(a.schema) != 2:
            raise SchemaError(
                "a_group may only be omitted for a binary dividend relation"
            )
        group_pos = 1 - value_pos
    else:
        group_pos = a.schema.resolve(a_group)
        if group_pos == value_pos:
            raise SchemaError("a_group and a_value must be different columns")
    divisor_pos = b.schema.resolve(b_value)
    if a.schema[value_pos].domain != b.schema[divisor_pos].domain:
        raise SchemaError(
            f"division columns are on different domains "
            f"({a.schema[value_pos].domain.name!r} vs "
            f"{b.schema[divisor_pos].domain.name!r})"
        )
    required = {row[divisor_pos] for row in b.tuples}
    images: dict[int, set[int]] = {}
    order: list[int] = []
    for row in a.tuples:
        x = row[group_pos]
        if x not in images:
            images[x] = set()
            order.append(x)
        images[x].add(row[value_pos])
    quotient_schema = a.schema.project([group_pos])
    members = [(x,) for x in order if required <= images[x]]
    return Relation(quotient_schema, members)


# ---------------------------------------------------------------------------
# Instrumented nested-loop baselines (the sequential processor of E14)
# ---------------------------------------------------------------------------


def nested_loop_intersection(
    a: Relation, b: Relation, counter: ComparisonCounter
) -> Relation:
    """Intersection by exhaustive pairwise comparison, counting work.

    This performs the same ``|A|·|B|`` tuple comparisons the array does
    (no hashing, no short-circuit across pairs) so its comparison count
    matches the paper's §8 arithmetic exactly when short-circuiting
    within a tuple is disabled by equal tuples.
    """
    a.schema.require_union_compatible(b.schema)
    out = []
    for row_a in a.tuples:
        member = False
        for row_b in b.tuples:
            if counter.compare_tuples(row_a, row_b):
                member = True
        if member:
            out.append(row_a)
    return Relation(a.schema, out)


def nested_loop_join(
    a: Relation,
    b: Relation,
    on: Sequence[tuple[ColumnRef, ColumnRef]],
    counter: ComparisonCounter,
) -> Relation:
    """Equi-join by exhaustive pairwise comparison, counting work."""
    a_positions, b_positions, schema, b_keep = equi_join_layout(a, b, on)
    out = []
    for row_a in a.tuples:
        for row_b in b.tuples:
            counter.tuple_comparisons += 1
            if all(
                counter.compare(row_a[pa], row_b[pb])
                for pa, pb in zip(a_positions, b_positions)
            ):
                out.append(row_a + tuple(row_b[i] for i in b_keep))
    return Relation(schema, out)


def nested_loop_remove_duplicates(
    a: MultiRelation, counter: ComparisonCounter
) -> Relation:
    """Dedup by comparing each tuple to all earlier ones, counting work."""
    kept: list[EncodedTuple] = []
    for row in a.tuples:
        duplicate = False
        for earlier in kept:
            if counter.compare_tuples(row, earlier):
                duplicate = True
        if not duplicate:
            kept.append(row)
    return Relation(a.schema, kept)


def nested_loop_divide(
    a: Relation, b: Relation, counter: ComparisonCounter
) -> Relation:
    """Division (binary ÷ unary) by exhaustive scanning, counting work."""
    if len(a.schema) != 2 or len(b.schema) != 1:
        raise RelationError(
            "nested_loop_divide implements the paper's restricted case: "
            "binary dividend, unary divisor"
        )
    if a.schema[1].domain != b.schema[0].domain:
        raise SchemaError("division columns are on different domains")
    order: list[int] = []
    seen: set[int] = set()
    for row in a.tuples:
        if row[0] not in seen:
            seen.add(row[0])
            order.append(row[0])
    out = []
    for x in order:
        covers_all = True
        for (y,) in b.tuples:
            found = False
            for row in a.tuples:
                if counter.compare(row[0], x) and counter.compare(row[1], y):
                    found = True
            if not found:
                covers_all = False
        if covers_all:
            out.append((x,))
    return Relation(a.schema.project([0]), out)


def divide_general(
    a: Relation,
    b: Relation,
    a_group: Sequence[ColumnRef],
    a_value: Sequence[ColumnRef],
    b_value: Sequence[ColumnRef] | None = None,
) -> Relation:
    """Division over column *lists* — §7's general case.

    "The extension from this to the general case is straightforward
    (as in the preceding section on the join)": group and value may
    each span several columns.  ``x`` (a group-column combination)
    belongs to the quotient iff it is paired in A with *every*
    value-column combination appearing in B.
    """
    if not a_group or not a_value:
        raise SchemaError("division needs non-empty group and value column lists")
    group_pos = a.schema.resolve_many(list(a_group))
    value_pos = a.schema.resolve_many(list(a_value))
    if set(group_pos) & set(value_pos):
        raise SchemaError("group and value column lists must be disjoint")
    if b_value is None:
        b_value = list(range(len(b.schema)))
    divisor_pos = b.schema.resolve_many(list(b_value))
    if len(divisor_pos) != len(value_pos):
        raise SchemaError(
            f"value/divisor column counts differ: {len(value_pos)} vs "
            f"{len(divisor_pos)}"
        )
    for pa, pb in zip(value_pos, divisor_pos):
        if a.schema[pa].domain != b.schema[pb].domain:
            raise SchemaError(
                f"division columns {pa}/{pb} are on different domains"
            )
    required = {tuple(row[p] for p in divisor_pos) for row in b.tuples}
    images: dict[EncodedTuple, set[EncodedTuple]] = {}
    order: list[EncodedTuple] = []
    for row in a.tuples:
        x = tuple(row[p] for p in group_pos)
        if x not in images:
            images[x] = set()
            order.append(x)
        images[x].add(tuple(row[p] for p in value_pos))
    quotient_schema = a.schema.project(list(a_group))
    return Relation(
        quotient_schema, (x for x in order if required <= images[x])
    )


def semijoin(
    a: Relation, b: Relation, on: Sequence[tuple[ColumnRef, ColumnRef]]
) -> Relation:
    """Semi-join ``A ⋉ B``: tuples of A with a join partner in B.

    Not named in the paper, but it *is* the §4 membership test applied
    to the join columns instead of whole tuples — the same hardware
    with projected feeds.
    """
    a_positions, b_positions, _, _ = equi_join_layout(a, b, on)
    keys = {tuple(row[p] for p in b_positions) for row in b.tuples}
    return Relation(
        a.schema,
        (row for row in a.tuples
         if tuple(row[p] for p in a_positions) in keys),
    )


def antijoin(
    a: Relation, b: Relation, on: Sequence[tuple[ColumnRef, ColumnRef]]
) -> Relation:
    """Anti-join ``A ▷ B``: tuples of A with *no* join partner in B.

    The §4.3 inverter applied to the semi-join bit.
    """
    a_positions, b_positions, _, _ = equi_join_layout(a, b, on)
    keys = {tuple(row[p] for p in b_positions) for row in b.tuples}
    return Relation(
        a.schema,
        (row for row in a.tuples
         if tuple(row[p] for p in a_positions) not in keys),
    )
