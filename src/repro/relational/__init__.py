"""Relational substrate: domains, schemas, relations, reference algebra.

This package implements the data model of paper §2 — integer-encoded
domains (§2.3), union-compatibility (§2.4), relations and
multi-relations (§2.5) — plus a complete software implementation of
every relational operator, used both as a correctness oracle for the
systolic arrays and as the sequential baseline of experiment E14.
"""

from repro.relational.algebra import (
    COMPARISON_OPS,
    ComparisonCounter,
    difference,
    divide,
    intersection,
    join,
    project,
    project_multi,
    remove_duplicates,
    select,
    theta_join,
    union,
)
from repro.relational.domain import Domain, IntegerDomain
from repro.relational.relation import EncodedTuple, MultiRelation, Relation
from repro.relational.schema import Column, ColumnRef, Schema

__all__ = [
    "COMPARISON_OPS",
    "Column",
    "ColumnRef",
    "ComparisonCounter",
    "Domain",
    "EncodedTuple",
    "IntegerDomain",
    "MultiRelation",
    "Relation",
    "Schema",
    "difference",
    "divide",
    "intersection",
    "join",
    "project",
    "project_multi",
    "remove_duplicates",
    "select",
    "theta_join",
    "union",
]
