"""CSV import/export for relations.

The paper's machine reads relations from disk; a downstream user reads
them from files.  :func:`load_csv` builds a relation whose columns are
dictionary-encoded through :class:`~repro.relational.domain.Domain`
objects drawn from a shared *registry* keyed by column name — so two
files with a column of the same name automatically share a domain,
making them join- and union-compatible without ceremony (pass separate
registries to keep files apart).

Values that parse as integers are stored as Python ints, everything
else as strings; both round-trip through :func:`dump_csv`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Hashable, Optional

from repro.errors import RelationError
from repro.relational.domain import Domain
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema

__all__ = ["load_csv", "dump_csv", "DomainRegistry"]

#: Column name → Domain; share one registry across files to make their
#: same-named columns union/join-compatible.
DomainRegistry = dict[str, Domain]


def _parse(cell: str) -> Hashable:
    text = cell.strip()
    if text and (text.isdigit() or (text[0] == "-" and text[1:].isdigit())):
        return int(text)
    return text


def load_csv(
    path: str | Path,
    registry: Optional[DomainRegistry] = None,
    has_header: bool = True,
) -> Relation:
    """Read a relation from a CSV file.

    Without a header, columns are named ``c0, c1, ...``.

    With a shared ``registry``, same-named columns across files share
    one :class:`Domain` (same dictionary, consistent codes) and are
    therefore join/union-compatible.  Without one, each file's domains
    are namespaced by its filename, so relations from different files
    are deliberately *incompatible* — two private dictionaries could
    assign the same code to different values, and a silent wrong answer
    is worse than a loud schema error.
    """
    path = Path(path)
    prefix = ""
    if registry is None:
        registry = {}
        prefix = f"{path.stem}."
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row and any(cell.strip() for cell in row)]
    if not rows:
        raise RelationError(f"{path}: no rows to read")
    if has_header:
        header = [name.strip() for name in rows[0]]
        data_rows = rows[1:]
    else:
        header = [f"c{k}" for k in range(len(rows[0]))]
        data_rows = rows
    if len(set(header)) != len(header):
        raise RelationError(f"{path}: duplicate column names in header {header}")

    columns = []
    for name in header:
        domain = registry.get(name)
        if domain is None:
            domain = Domain(prefix + name)
            registry[name] = domain
        columns.append(Column(name, domain))
    schema = Schema(columns)

    parsed = []
    for line_number, row in enumerate(data_rows, start=2 if has_header else 1):
        if len(row) != len(header):
            raise RelationError(
                f"{path}:{line_number}: expected {len(header)} fields, "
                f"got {len(row)}"
            )
        parsed.append(tuple(_parse(cell) for cell in row))
    return Relation.from_values(schema, parsed)


def dump_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation (decoded values) to a CSV file with a header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation.decoded():
            writer.writerow(row)
