"""Relations and multi-relations (paper §2.3, §2.5).

A :class:`Relation` is a *set* of tuples; a :class:`MultiRelation`
allows duplicates (the paper's "multi-relation", §2.5 — typically an
intermediate result such as an un-deduplicated projection).  Both store
tuples in their integer-encoded form, exactly as the paper's arrays see
them; decoding back to domain values happens only on demand.

Tuple order is preserved as given (relations are logically unordered,
but a deterministic iteration order keeps the systolic feeding schedules
and the tests reproducible).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from repro.errors import RelationError
from repro.relational.schema import ColumnRef, Schema

__all__ = ["Relation", "MultiRelation", "EncodedTuple"]

#: A tuple in its stored (integer-encoded) form.
EncodedTuple = tuple[int, ...]


class _TupleStore:
    """Shared machinery for relations and multi-relations."""

    #: Subclasses set this: do we reject duplicate tuples?
    _allow_duplicates = False

    def __init__(self, schema: Schema, tuples: Iterable[EncodedTuple] = ()) -> None:
        self.schema = schema
        self._tuples: list[EncodedTuple] = []
        self._seen: set[EncodedTuple] = set()
        for item in tuples:
            self._add(item)

    # -- construction -------------------------------------------------------

    def _add(self, item: Sequence[int]) -> None:
        encoded = tuple(item)
        if len(encoded) != len(self.schema):
            raise RelationError(
                f"tuple arity {len(encoded)} does not match schema arity "
                f"{len(self.schema)}: {encoded!r}"
            )
        for element in encoded:
            if isinstance(element, bool) or not isinstance(element, int):
                raise RelationError(
                    f"stored tuples are integer-encoded; got element "
                    f"{element!r} in {encoded!r}"
                )
        if encoded in self._seen:
            if not self._allow_duplicates:
                return  # set semantics: silently idempotent
        else:
            self._seen.add(encoded)
        self._tuples.append(encoded)

    @classmethod
    def from_values(
        cls, schema: Schema, rows: Iterable[Sequence[Hashable]]
    ) -> "_TupleStore":
        """Build from human-readable rows, encoding via the column domains."""
        encoded_rows = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(schema):
                raise RelationError(
                    f"row arity {len(row)} does not match schema arity "
                    f"{len(schema)}: {row!r}"
                )
            encoded_rows.append(
                tuple(
                    column.domain.encode(value)
                    for column, value in zip(schema, row)
                )
            )
        return cls(schema, encoded_rows)

    # -- access --------------------------------------------------------------

    @property
    def tuples(self) -> tuple[EncodedTuple, ...]:
        """The stored (encoded) tuples, in deterministic order."""
        return tuple(self._tuples)

    @property
    def cardinality(self) -> int:
        """Number of stored tuples (``n`` in the paper's notation)."""
        return len(self._tuples)

    @property
    def arity(self) -> int:
        """Number of elements per tuple (``m`` in the paper's notation)."""
        return len(self.schema)

    def contains(self, item: Sequence[int]) -> bool:
        """Membership test on an encoded tuple."""
        return tuple(item) in self._seen

    def decoded(self) -> list[tuple[Hashable, ...]]:
        """All tuples decoded back to domain values."""
        domains = self.schema.domains
        return [
            tuple(domain.decode(code) for domain, code in zip(domains, row))
            for row in self._tuples
        ]

    def column_values(self, ref: ColumnRef) -> list[int]:
        """The encoded values of one column, in tuple order."""
        position = self.schema.resolve(ref)
        return [row[position] for row in self._tuples]

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[EncodedTuple]:
        return iter(self._tuples)

    def __contains__(self, item: object) -> bool:
        return isinstance(item, tuple) and item in self._seen

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __eq__(self, other: object) -> bool:
        """Set equality for relations, bag equality for multi-relations."""
        if not isinstance(other, _TupleStore):
            return NotImplemented
        if self._allow_duplicates != other._allow_duplicates:
            return NotImplemented
        if not self.schema.union_compatible_with(other.schema):
            return False
        if self._allow_duplicates:
            return sorted(self._tuples) == sorted(other._tuples)
        return self._seen == other._seen

    def __hash__(self) -> int:
        return hash((self.schema, frozenset(self._seen)))

    def __repr__(self) -> str:
        kind = type(self).__name__
        return f"{kind}({self.schema!r}, {len(self)} tuples)"

    def pretty(self, max_rows: int = 20) -> str:
        """A small fixed-width rendering for examples and debugging."""
        headers = list(self.schema.names)
        rows = [[str(v) for v in row] for row in self.decoded()[:max_rows]]
        widths = [len(h) for h in headers]
        for row in rows:
            widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines += [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows]
        if len(self) > max_rows:
            lines.append(f"... ({len(self) - max_rows} more)")
        return "\n".join(lines)


class Relation(_TupleStore):
    """A set of tuples over a schema (duplicates are dropped on insert).

    The Python set operators delegate to the reference algebra:
    ``a & b`` = intersection (§4), ``a | b`` = union (§5), ``a - b`` =
    difference (§4.3), ``<=``/``>=`` = subset/superset.  These are the
    *software* semantics; for the simulated hardware call the
    ``systolic_*`` runners in :mod:`repro.arrays`.
    """

    _allow_duplicates = False

    def to_multi(self) -> "MultiRelation":
        """View this relation as a multi-relation (copying tuples)."""
        return MultiRelation(self.schema, self._tuples)

    def __and__(self, other: "Relation") -> "Relation":
        if not isinstance(other, Relation):
            return NotImplemented
        return _algebra().intersection(self, other)

    def __or__(self, other: "Relation") -> "Relation":
        if not isinstance(other, Relation):
            return NotImplemented
        return _algebra().union(self, other)

    def __sub__(self, other: "Relation") -> "Relation":
        if not isinstance(other, Relation):
            return NotImplemented
        return _algebra().difference(self, other)

    def __le__(self, other: "Relation") -> bool:
        """Subset test: every tuple of self appears in other."""
        if not isinstance(other, Relation):
            return NotImplemented
        self.schema.require_union_compatible(other.schema)
        return set(self.tuples) <= set(other.tuples)

    def __ge__(self, other: "Relation") -> bool:
        """Superset test."""
        if not isinstance(other, Relation):
            return NotImplemented
        self.schema.require_union_compatible(other.schema)
        return set(self.tuples) >= set(other.tuples)


class MultiRelation(_TupleStore):
    """A bag of tuples over a schema (duplicates preserved, §2.5)."""

    _allow_duplicates = True

    def distinct(self) -> Relation:
        """The relation obtained by dropping duplicates (order-preserving).

        This is the *semantic* answer of the paper's remove-duplicates
        array (§5); the array itself lives in
        :mod:`repro.arrays.duplicates`.
        """
        return Relation(self.schema, self._tuples)

    def concat(self, other: "MultiRelation | Relation") -> "MultiRelation":
        """Bag concatenation ``A + B`` (used to build union, §5)."""
        self.schema.require_union_compatible(other.schema)
        return MultiRelation(self.schema, list(self._tuples) + list(other.tuples))


def _algebra():
    """Late import: algebra depends on this module."""
    from repro.relational import algebra

    return algebra
