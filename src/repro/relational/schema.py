"""Schemas, columns, and the union-compatibility test of paper §2.4.

A :class:`Schema` is an ordered sequence of named :class:`Column`\\ s,
each tied to a :class:`~repro.relational.domain.Domain`.  Two relations
are *union-compatible* when they have the same number of columns and
corresponding columns are drawn from the same underlying domain; column
*names* are presentation only and do not affect compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from repro.errors import SchemaError, UnionCompatibilityError
from repro.relational.domain import Domain

__all__ = ["Column", "Schema", "ColumnRef"]

#: Columns may be referenced by zero-based position or by name.
ColumnRef = Union[int, str]


@dataclass(frozen=True)
class Column:
    """A named column bound to a domain."""

    name: str
    domain: Domain

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("a column requires a non-empty name")

    def __repr__(self) -> str:
        return f"Column({self.name!r}, domain={self.domain.name!r})"


class Schema:
    """An ordered, immutable list of columns.

    Column names must be unique within a schema so that name-based
    references (:data:`ColumnRef`) are unambiguous.
    """

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns = tuple(columns)
        if not self._columns:
            raise SchemaError("a schema requires at least one column")
        names = [c.name for c in self._columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names in schema: {dupes}")
        self._index = {c.name: i for i, c in enumerate(self._columns)}

    @classmethod
    def of(cls, *specs: tuple[str, Domain]) -> "Schema":
        """Build a schema from ``(name, domain)`` pairs."""
        return cls(Column(name, domain) for name, domain in specs)

    # -- column resolution -------------------------------------------------

    def resolve(self, ref: ColumnRef) -> int:
        """Map a column reference (index or name) to its position."""
        if isinstance(ref, bool):
            raise SchemaError(f"invalid column reference {ref!r}")
        if isinstance(ref, int):
            if -len(self._columns) <= ref < len(self._columns):
                return ref % len(self._columns)
            raise SchemaError(
                f"column index {ref} out of range for {len(self._columns)} columns"
            )
        if isinstance(ref, str):
            try:
                return self._index[ref]
            except KeyError:
                raise SchemaError(
                    f"no column named {ref!r}; have {list(self._index)}"
                ) from None
        raise SchemaError(f"invalid column reference {ref!r}")

    def resolve_many(self, refs: Sequence[ColumnRef]) -> list[int]:
        """Resolve several references, rejecting duplicates."""
        positions = [self.resolve(r) for r in refs]
        if len(set(positions)) != len(positions):
            raise SchemaError(f"duplicate columns in reference list {list(refs)}")
        return positions

    def column(self, ref: ColumnRef) -> Column:
        """Return the column for a reference."""
        return self._columns[self.resolve(ref)]

    def project(self, refs: Sequence[ColumnRef]) -> "Schema":
        """Schema of the projection onto ``refs`` (order preserved)."""
        return Schema(self._columns[i] for i in self.resolve_many(refs))

    def drop(self, ref: ColumnRef) -> "Schema":
        """Schema with one column removed."""
        keep = self.resolve(ref)
        remaining = [c for i, c in enumerate(self._columns) if i != keep]
        if not remaining:
            raise SchemaError("cannot drop the only column of a schema")
        return Schema(remaining)

    def concat(self, other: "Schema", rename: bool = True) -> "Schema":
        """Schema of the concatenation of two tuples (used by join).

        When ``rename`` is true, clashing names from ``other`` get a
        ``_2`` suffix (repeated until unique), mirroring common SQL
        behaviour for ``A.x`` / ``B.x`` collisions.
        """
        taken = {c.name for c in self._columns}
        new_columns = list(self._columns)
        for column in other:
            name = column.name
            if rename:
                while name in taken:
                    name += "_2"
            new_columns.append(Column(name, column.domain))
            taken.add(name)
        return Schema(new_columns)

    # -- compatibility -----------------------------------------------------

    def union_compatible_with(self, other: "Schema") -> bool:
        """Paper §2.4: same arity and same domains column-by-column."""
        if len(self) != len(other):
            return False
        return all(a.domain == b.domain for a, b in zip(self, other))

    def require_union_compatible(self, other: "Schema") -> None:
        """Raise :class:`UnionCompatibilityError` unless compatible."""
        if len(self) != len(other):
            raise UnionCompatibilityError(
                f"arity mismatch: {len(self)} columns vs {len(other)}"
            )
        for position, (a, b) in enumerate(zip(self, other)):
            if a.domain != b.domain:
                raise UnionCompatibilityError(
                    f"column {position}: domain {a.domain.name!r} vs "
                    f"{b.domain.name!r} — not the same underlying domain"
                )

    # -- container protocol --------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Column names, in order."""
        return tuple(c.name for c in self._columns)

    @property
    def domains(self) -> tuple[Domain, ...]:
        """Column domains, in order."""
        return tuple(c.domain for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, position: int) -> Column:
        return self._columns[position]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._columns == other._columns
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.domain.name}" for c in self._columns)
        return f"Schema({cols})"
