"""Domains and the integer dictionary encoding of paper §2.3.

The paper assumes every column of a relation draws its values from one
underlying *domain*, and that each member of the domain is "uniquely and
reversably encoded into an integer".  Relations then store tuples of
integers; encoding/decoding happens only at the human boundary (input
and output).  :class:`Domain` implements exactly that dictionary
encoding.

Two domains are interchangeable for union-compatibility purposes iff
they are the *same* domain; we identify domains by name (paper §2.4
speaks of "the same underlying domain", not structurally equal ones).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.errors import DomainError

__all__ = ["Domain", "IntegerDomain"]


class Domain:
    """A named value universe with a reversible integer encoding.

    Values may be any hashable Python objects (strings, dates, ints...).
    Codes are assigned densely in first-seen order, which keeps encoded
    relations small and makes tests deterministic.

    Parameters
    ----------
    name:
        Identifying name; domains compare equal iff names are equal.
    values:
        Optional initial members, encoded in iteration order.
    frozen:
        If true, encoding an unseen value raises :class:`DomainError`
        instead of extending the dictionary.
    """

    def __init__(
        self,
        name: str,
        values: Iterable[Hashable] = (),
        frozen: bool = False,
    ) -> None:
        if not name:
            raise DomainError("a domain requires a non-empty name")
        self.name = name
        self._codes: dict[Hashable, int] = {}
        self._values: list[Hashable] = []
        self._frozen = False
        for value in values:
            self.encode(value)
        self._frozen = frozen

    # -- encoding ---------------------------------------------------------

    def encode(self, value: Hashable) -> int:
        """Return the integer code for ``value``, assigning one if new."""
        try:
            code = self._codes.get(value)
        except TypeError as exc:
            raise DomainError(
                f"domain values must be hashable, got {type(value).__name__}"
            ) from exc
        if code is not None:
            return code
        if self._frozen:
            raise DomainError(
                f"value {value!r} is not a member of frozen domain {self.name!r}"
            )
        code = len(self._values)
        self._codes[value] = code
        self._values.append(value)
        return code

    def decode(self, code: int) -> Hashable:
        """Return the value whose code is ``code``."""
        if not isinstance(code, int) or isinstance(code, bool):
            raise DomainError(f"codes are plain ints, got {code!r}")
        if 0 <= code < len(self._values):
            return self._values[code]
        raise DomainError(f"code {code} is not assigned in domain {self.name!r}")

    def encode_many(self, values: Iterable[Hashable]) -> list[int]:
        """Encode a sequence of values."""
        return [self.encode(v) for v in values]

    def decode_many(self, codes: Iterable[int]) -> list[Hashable]:
        """Decode a sequence of codes."""
        return [self.decode(c) for c in codes]

    # -- introspection ----------------------------------------------------

    @property
    def frozen(self) -> bool:
        """Whether new values may still be added."""
        return self._frozen

    def freeze(self) -> "Domain":
        """Disallow further extension; returns self for chaining."""
        self._frozen = True
        return self

    def __contains__(self, value: Hashable) -> bool:
        return value in self._codes

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Domain):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        state = "frozen, " if self._frozen else ""
        return f"Domain({self.name!r}, {state}{len(self)} values)"


class IntegerDomain(Domain):
    """A domain whose members *are* their codes.

    The paper stores relations as tuples of integers; when a workload is
    already integer-valued there is nothing to encode.  This subclass
    makes that identity explicit and side-steps the dictionary.
    """

    def __init__(self, name: str = "int") -> None:
        super().__init__(name)

    def encode(self, value: Hashable) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise DomainError(
                f"IntegerDomain {self.name!r} accepts plain ints, got {value!r}"
            )
        if value < 0:
            raise DomainError(
                f"IntegerDomain {self.name!r} codes are non-negative, got {value}"
            )
        return value

    def decode(self, code: int) -> int:
        if isinstance(code, bool) or not isinstance(code, int) or code < 0:
            raise DomainError(f"code {code!r} is not a member of {self.name!r}")
        return code

    def __contains__(self, value: Hashable) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def __len__(self) -> int:  # pragma: no cover - conceptually unbounded
        raise DomainError("IntegerDomain is unbounded; len() is undefined")

    def __iter__(self) -> Iterator[Hashable]:  # pragma: no cover
        raise DomainError("IntegerDomain is unbounded; iteration is undefined")

    def __repr__(self) -> str:
        return f"IntegerDomain({self.name!r})"
