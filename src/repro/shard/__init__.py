"""Shard-aware execution: relations partitioned across machines.

§8 scales one operation past one array by decomposition; this package
scales the whole machine past one *machine* by partitioning relations
across a cluster of simulated systolic machines and lowering plans into
shard-local fragments plus explicit, costed exchanges.  See
``docs/SHARDING.md`` for the layer's design.
"""

from repro.shard.catalog import (
    PARTITIONED,
    Placement,
    REPLICATED,
    ShardedCatalog,
)
from repro.shard.executor import (
    INTERCONNECT,
    ShardedCompilation,
    ShardedExecutionReport,
    ShardedExecutor,
)
from repro.shard.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    STRATEGIES,
)
from repro.shard.planner import (
    BROADCAST,
    Distribution,
    ExchangeStep,
    REPARTITION,
    SCATTERED,
    ShardedPlan,
    ShardPlanner,
    co_partitioned,
)

__all__ = [
    "BROADCAST",
    "Distribution",
    "ExchangeStep",
    "HashPartitioner",
    "INTERCONNECT",
    "PARTITIONED",
    "Partitioner",
    "Placement",
    "RangePartitioner",
    "REPARTITION",
    "REPLICATED",
    "SCATTERED",
    "STRATEGIES",
    "ShardPlanner",
    "ShardedCatalog",
    "ShardedCompilation",
    "ShardedExecutionReport",
    "ShardedExecutor",
    "ShardedPlan",
    "co_partitioned",
]
