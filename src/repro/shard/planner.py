"""Lowering logical plans onto a cluster of shards.

The :class:`ShardPlanner` decides, operator by operator, whether a plan
node can run **shard-local** — every shard computes its piece of the
answer independently — or needs an **exchange** first (a broadcast or a
re-partition moving tuples between shards).  The analysis tracks a
:class:`Distribution` per sub-plan:

* ``partitioned(key, fp)`` — tuples are split by a key column under a
  known partitioner, so equal key values co-locate;
* ``replicated`` — every shard holds the full sub-result;
* ``scattered`` — tuples are spread with no usable invariant.

Correctness rests on set semantics: the final merge (and every
re-partition) unions the shard pieces as *sets*, so any operator that
distributes over union — selection, projection, dedup, union itself,
and any operator with a replicated other side — may run shard-local
even over scattered input.  Equality-sensitive binary operators
(∩, −, equi-join, division grouping) additionally need equal tuples to
co-locate, which is exactly what a shared partition key proves.

When an exchange is unavoidable the planner *costs* the alternatives —
broadcast either side vs. re-partition both — with the
:mod:`repro.perf.cost` exchange terms plus the § 3–8 device cost of the
per-shard compute, and picks the minimum predicted completion, the same
way the physical planner already picks among devices.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.errors import PlanError
from repro.machine.inference import estimate_rows, infer_schema
from repro.machine.physical import estimate_cost
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    PlanNode,
    Project,
    Select,
    Union,
)
from repro.perf.cost import ExchangeCost, broadcast_cost, shuffle_cost
from repro.relational.schema import Schema
from repro.shard.catalog import (
    PARTITIONED,
    REPLICATED,
    ShardedCatalog,
)
from repro.shard.partition import HashPartitioner, Partitioner

__all__ = [
    "Distribution",
    "ExchangeStep",
    "ShardedPlan",
    "ShardPlanner",
    "SCATTERED",
    "BROADCAST",
    "REPARTITION",
]

SCATTERED = "scattered"
BROADCAST = "broadcast"
REPARTITION = "repartition"


@dataclass(frozen=True)
class Distribution:
    """How one sub-plan's tuples lie across the shards."""

    kind: str
    key: Optional[int] = None  # partition-key column position
    fp: Optional[tuple] = None  # partitioner fingerprint

    def describe(self) -> str:
        if self.kind == PARTITIONED:
            return f"partitioned(col {self.key}, {self.fp[0]})"
        return self.kind


def co_partitioned(left: Distribution, right: Distribution) -> bool:
    """Equal tuples of union-compatible inputs provably co-locate."""
    return (
        left.kind == PARTITIONED
        and right.kind == PARTITIONED
        and left.fp == right.fp
        and left.key == right.key
    )


@dataclass
class ExchangeStep:
    """One cross-shard data movement the lowered plan requires.

    ``plan`` is the shard-local fragment each shard evaluates first;
    its per-shard results are then redistributed (``broadcast`` or
    ``repartition`` by ``key``) and preloaded on every shard under
    ``name``, which downstream fragments reference as a base relation.
    """

    name: str
    plan: PlanNode
    kind: str
    key: Optional[int]
    partitioner: Optional[Partitioner]
    rows: int  # estimated logical rows exchanged
    cost: ExchangeCost

    def describe(self) -> str:
        target = f" by col {self.key}" if self.kind == REPARTITION else ""
        return (
            f"{self.kind}{target} -> {self.name} "
            f"(~{self.rows} rows, {self.cost.seconds * 1e3:.3f} ms)"
        )


@dataclass
class ShardedPlan:
    """A logical transaction lowered onto the shards.

    ``exchanges`` run in order (each is a fragment plus a
    redistribution); ``roots`` are the final per-shard plans whose
    results merge — in shard order, under set semantics — into the
    transaction's answers.
    """

    shards: int
    roots: list[PlanNode]
    distributions: list[Distribution]
    exchanges: list[ExchangeStep] = field(default_factory=list)
    local_joins: int = 0

    @property
    def broadcasts(self) -> int:
        return sum(1 for e in self.exchanges if e.kind == BROADCAST)

    @property
    def repartitions(self) -> int:
        return sum(1 for e in self.exchanges if e.kind == REPARTITION)

    @property
    def exchange_seconds(self) -> float:
        """Predicted simulated seconds spent on cross-shard links."""
        return sum(e.cost.seconds for e in self.exchanges)

    def explain(self) -> str:
        lines = [f"sharded plan over {self.shards} shards:"]
        for step in self.exchanges:
            lines.append(f"  exchange: {step.describe()}")
        if not self.exchanges:
            lines.append("  no exchanges: every stage runs shard-local")
        for root, dist in zip(self.roots, self.distributions):
            lines.append(f"  root: {root!r}  [{dist.describe()}]")
        lines.append(
            f"  local joins: {self.local_joins}, "
            f"broadcasts: {self.broadcasts}, "
            f"repartitions: {self.repartitions}"
        )
        return "\n".join(lines)


class ShardPlanner:
    """Lowers logical plans against a :class:`ShardedCatalog`.

    ``devices`` (the pool's complement) supply the §3–8 cost model used
    to weigh exchange strategies; lowering itself never touches data.
    """

    def __init__(
        self,
        catalog: ShardedCatalog,
        devices: Sequence = (),
        element_bits: int = 32,
    ) -> None:
        self.catalog = catalog
        self.shards = catalog.shard_count
        self.devices = list(devices)
        self.element_bits = element_bits
        self._schemas = catalog.schemas()
        self._cards = catalog.cardinalities()
        self._counter = itertools.count()
        self._exchanges: list[ExchangeStep] = []
        self._memo: dict[int, tuple[PlanNode, Distribution]] = {}
        self._local_joins = 0
        self._repartitioner = HashPartitioner()

    def lower(self, plans: Sequence[PlanNode] | PlanNode) -> ShardedPlan:
        """Lower a transaction; returns the per-shard plans + exchanges."""
        if isinstance(plans, PlanNode):
            plans = [plans]
        roots: list[PlanNode] = []
        distributions: list[Distribution] = []
        for plan in plans:
            lowered, dist = self._lower(plan)
            roots.append(lowered)
            distributions.append(dist)
        return ShardedPlan(
            shards=self.shards,
            roots=roots,
            distributions=distributions,
            exchanges=self._exchanges,
            local_joins=self._local_joins,
        )

    # -- recursion ---------------------------------------------------------

    def _lower(self, node: PlanNode) -> tuple[PlanNode, Distribution]:
        memoised = self._memo.get(id(node))
        if memoised is not None:
            return memoised
        lowered = self._lower_node(node)
        self._memo[id(node)] = lowered
        return lowered

    def _lower_node(self, node: PlanNode) -> tuple[PlanNode, Distribution]:
        if isinstance(node, Base):
            placement = self.catalog.placement(node.name)
            if placement.kind == REPLICATED:
                return node, Distribution(REPLICATED)
            return node, Distribution(
                PARTITIONED, key=placement.key, fp=placement.fp
            )
        if isinstance(node, Select):
            child, dist = self._lower(node.child)
            return self._rebuild(node, child=child), dist
        if isinstance(node, Dedup):
            # Dedup distributes over set union: local duplicates vanish
            # here, cross-shard ones at the next repartition or merge.
            child, dist = self._lower(node.child)
            return self._rebuild(node, child=child), dist
        if isinstance(node, Project):
            return self._lower_project(node)
        if isinstance(node, Union):
            return self._lower_union(node)
        if isinstance(node, (Intersect, Difference)):
            return self._lower_comparison(node)
        if isinstance(node, Join):
            return self._lower_join(node)
        if isinstance(node, Divide):
            return self._lower_divide(node)
        raise PlanError(f"cannot shard {node.describe()}")

    @staticmethod
    def _rebuild(node: PlanNode, **children: PlanNode) -> PlanNode:
        if all(
            children[name] is getattr(node, name) for name in children
        ):
            return node
        return replace(node, **children)

    def _lower_project(self, node: Project) -> tuple[PlanNode, Distribution]:
        child_schema = self._schema(node.child)
        child, dist = self._lower(node.child)
        lowered = self._rebuild(node, child=child)
        if dist.kind == REPLICATED:
            return lowered, Distribution(REPLICATED)
        positions = child_schema.resolve_many(list(node.columns))
        if dist.kind == PARTITIONED and dist.key in positions:
            return lowered, Distribution(
                PARTITIONED, key=positions.index(dist.key), fp=dist.fp
            )
        return lowered, Distribution(SCATTERED)

    def _lower_union(self, node: Union) -> tuple[PlanNode, Distribution]:
        # (∪ᵢAᵢ) ∪ (∪ᵢBᵢ) = ∪ᵢ(Aᵢ ∪ Bᵢ): always shard-local as sets.
        left, dl = self._lower(node.left)
        right, dr = self._lower(node.right)
        lowered = self._rebuild(node, left=left, right=right)
        if co_partitioned(dl, dr):
            return lowered, dl
        if dl.kind == REPLICATED and dr.kind == REPLICATED:
            return lowered, Distribution(REPLICATED)
        return lowered, Distribution(SCATTERED)

    def _lower_comparison(
        self, node: Intersect | Difference
    ) -> tuple[PlanNode, Distribution]:
        left, dl = self._lower(node.left)
        right, dr = self._lower(node.right)
        if co_partitioned(dl, dr):
            return self._rebuild(node, left=left, right=right), dl
        if dr.kind == REPLICATED:
            # Aᵢ ∩ B and Aᵢ − B both distribute over ∪ᵢAᵢ.
            return self._rebuild(node, left=left, right=right), dl
        if isinstance(node, Intersect) and dl.kind == REPLICATED:
            # A ∩ Bᵢ distributes; A − Bᵢ does not (B's other pieces).
            return self._rebuild(node, left=left, right=right), dr
        # Equal tuples agree on every column, so re-partitioning both
        # sides by column 0 co-locates them.
        left, dl = self._align(left, node.left, dl, key=0)
        right, dr = self._align(right, node.right, dr, key=0)
        return self._rebuild(node, left=left, right=right), dl

    def _lower_join(self, node: Join) -> tuple[PlanNode, Distribution]:
        a_schema = self._schema(node.left)
        b_schema = self._schema(node.right)
        a_positions = a_schema.resolve_many([ca for ca, _ in node.on])
        b_positions = b_schema.resolve_many([cb for _, cb in node.on])
        ops = node.ops or ("==",) * len(node.on)
        left, dl = self._lower(node.left)
        right, dr = self._lower(node.right)

        equi_pairs = [
            index for index, op in enumerate(ops) if op == "=="
        ]
        if (
            dl.kind == PARTITIONED
            and dr.kind == PARTITIONED
            and dl.fp == dr.fp
        ):
            for index in equi_pairs:
                if (
                    a_positions[index] == dl.key
                    and b_positions[index] == dr.key
                ):
                    # Co-partitioned equi-join: matching keys co-locate,
                    # zero cross-shard traffic.
                    self._local_joins += 1
                    return (
                        self._rebuild(node, left=left, right=right),
                        Distribution(
                            PARTITIONED, key=a_positions[index], fp=dl.fp
                        ),
                    )
        if dr.kind == REPLICATED:
            # (∪ᵢAᵢ) ⋈ B = ∪ᵢ(Aᵢ ⋈ B); output rows carry Aᵢ's columns
            # first, so A-side partitioning survives at the same
            # position.
            self._local_joins += 1
            out = dl if dl.kind == PARTITIONED else Distribution(SCATTERED)
            if dl.kind == REPLICATED:
                out = Distribution(REPLICATED)
            return self._rebuild(node, left=left, right=right), out
        if dl.kind == REPLICATED:
            self._local_joins += 1
            return (
                self._rebuild(node, left=left, right=right),
                Distribution(SCATTERED),
            )

        # No shard-local proof: cost the exchange strategies and take
        # the minimum predicted completion (exchange + per-shard
        # compute), exactly how the physical planner weighs devices.
        n_a = self._rows(node.left)
        n_b = self._rows(node.right)
        shards = self.shards
        per = lambda n: -(-n // shards)  # ceil
        arity_b = len(b_schema)
        arity_a = len(a_schema)
        candidates: list[tuple[float, int, str]] = []
        if equi_pairs:
            pair = equi_pairs[0]
            seconds = self._join_seconds(node, per(n_a), per(n_b))
            if not self._hash_partitioned(dl, a_positions[pair]):
                seconds += shuffle_cost(
                    n_a, arity_a, self.element_bits, shards
                ).seconds
            if not self._hash_partitioned(dr, b_positions[pair]):
                seconds += shuffle_cost(
                    n_b, arity_b, self.element_bits, shards
                ).seconds
            candidates.append((seconds, len(candidates), REPARTITION))
        candidates.append((
            broadcast_cost(n_b, arity_b, self.element_bits, shards).seconds
            + self._join_seconds(node, per(n_a), n_b),
            len(candidates), "broadcast_right",
        ))
        candidates.append((
            broadcast_cost(n_a, arity_a, self.element_bits, shards).seconds
            + self._join_seconds(node, n_a, per(n_b)),
            len(candidates), "broadcast_left",
        ))
        _, _, strategy = min(candidates)

        if strategy == REPARTITION:
            pair = equi_pairs[0]
            left, dl = self._align(
                left, node.left, dl, key=a_positions[pair]
            )
            right, dr = self._align(
                right, node.right, dr, key=b_positions[pair]
            )
            self._local_joins += 1  # runs shard-local after the shuffle
            return (
                self._rebuild(node, left=left, right=right),
                Distribution(PARTITIONED, key=a_positions[pair], fp=dl.fp),
            )
        if strategy == "broadcast_right":
            right, dr = self._exchange(right, node.right, BROADCAST)
            out = dl if dl.kind == PARTITIONED else Distribution(SCATTERED)
            return self._rebuild(node, left=left, right=right), out
        left, dl = self._exchange(left, node.left, BROADCAST)
        return (
            self._rebuild(node, left=left, right=right),
            Distribution(SCATTERED),
        )

    def _lower_divide(self, node: Divide) -> tuple[PlanNode, Distribution]:
        a_schema = self._schema(node.left)
        value_pos = a_schema.resolve(node.a_value)
        if node.a_group is None:
            if len(a_schema) != 2:
                raise PlanError(
                    "a_group may only be omitted for a binary dividend "
                    "relation"
                )
            group_pos = 1 - value_pos
        else:
            group_pos = a_schema.resolve(node.a_group)
        left, dl = self._lower(node.left)
        right, dr = self._lower(node.right)
        if dr.kind != REPLICATED:
            # Every shard needs the whole divisor row (§7's comparands).
            right, dr = self._exchange(right, node.right, BROADCAST)
        if dl.kind == PARTITIONED and dl.key == group_pos:
            out = Distribution(PARTITIONED, key=0, fp=dl.fp)
        elif dl.kind == REPLICATED:
            out = Distribution(REPLICATED)
        else:
            # Groups must not straddle shards: re-partition the dividend
            # by its group column.
            left, dl = self._align(left, node.left, dl, key=group_pos)
            out = Distribution(PARTITIONED, key=0, fp=dl.fp)
        return self._rebuild(node, left=left, right=right), out

    # -- exchanges ---------------------------------------------------------

    def _align(
        self,
        lowered: PlanNode,
        original: PlanNode,
        dist: Distribution,
        key: int,
    ) -> tuple[PlanNode, Distribution]:
        """Re-partition a side by ``key`` unless it already is."""
        if self._hash_partitioned(dist, key):
            return lowered, dist
        return self._exchange(lowered, original, REPARTITION, key=key)

    def _hash_partitioned(self, dist: Distribution, key: int) -> bool:
        return (
            dist.kind == PARTITIONED
            and dist.key == key
            and dist.fp == self._repartitioner.fingerprint()
        )

    def _exchange(
        self,
        lowered: PlanNode,
        original: PlanNode,
        kind: str,
        key: Optional[int] = None,
    ) -> tuple[PlanNode, Distribution]:
        """Materialize a fragment and redistribute its result."""
        name = f"__shard_x{next(self._counter)}"
        schema = self._schema(original)
        rows = self._rows(original)
        if kind == BROADCAST:
            cost = broadcast_cost(
                rows, len(schema), self.element_bits, self.shards
            )
            partitioner = None
            dist = Distribution(REPLICATED)
        else:
            cost = shuffle_cost(
                rows, len(schema), self.element_bits, self.shards
            )
            partitioner = self._repartitioner
            dist = Distribution(
                PARTITIONED, key=key, fp=partitioner.fingerprint()
            )
        self._exchanges.append(ExchangeStep(
            name=name, plan=lowered, kind=kind, key=key,
            partitioner=partitioner, rows=rows, cost=cost,
        ))
        self._schemas[name] = schema
        self._cards[name] = rows
        return Base(name), dist

    # -- estimates ---------------------------------------------------------

    def _schema(self, node: PlanNode) -> Schema:
        return infer_schema(node, self._schemas)

    def _rows(self, node: PlanNode) -> int:
        return estimate_rows(node, self._cards)

    def _join_seconds(self, node: Join, n_a: int, n_b: int) -> float:
        """Predicted per-shard device seconds for one join strategy."""
        device = self._device_for(node.device_kind)
        if device is None:
            return 0.0
        cost = estimate_cost(
            node, n_a, n_b, 0, len(node.on),
            device.capacity.max_rows, device.capacity.max_cols,
        )
        return device.technology.pulses_to_seconds(cost.total_pulses)

    def _device_for(self, kind: str):
        for device in self.devices:
            if device.kind == kind and hasattr(device, "capacity"):
                return device
        return None
