"""The sharded catalog: one logical namespace over per-shard catalogs.

A :class:`ShardedCatalog` presents the same ``store``/``preload`` verbs
as a single-tenant :class:`~repro.machine.catalog.Catalog`, but splits
every relation across ``shards`` ordinary catalogs — one per simulated
machine — and remembers *how* each relation was placed:

* **partitioned** (the default): the relation is split by a key column
  through the catalog's :class:`~repro.shard.partition.Partitioner`;
  shard *i* holds exactly the tuples whose key maps to *i*;
* **replicated** (``replicate=True``): every shard holds a full copy —
  the right placement for small divisors and broadcast-style lookup
  relations.

The placement map is what the :class:`~repro.shard.planner.ShardPlanner`
reads to prove operations shard-local; the per-shard catalogs are what
the executor compiles and runs against, so every existing machine layer
(physical planner, plan cache, executor) works unchanged below the
shard layer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import PlanError
from repro.machine.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef, Schema
from repro.shard.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    STRATEGIES,
)

__all__ = ["Placement", "ShardedCatalog", "PARTITIONED", "REPLICATED"]

PARTITIONED = "partitioned"
REPLICATED = "replicated"


@dataclass(frozen=True)
class Placement:
    """How one logical relation is laid out across the shards."""

    kind: str
    key: Optional[int] = None  # partition-key column position
    fp: Optional[tuple] = None  # partitioner fingerprint

    def describe(self) -> str:
        if self.kind == REPLICATED:
            return "replicated"
        return f"partitioned(col {self.key}, {self.fp[0]})"


class ShardedCatalog:
    """Maps a logical relation namespace onto ``shards`` catalogs.

    Thread-safe like the single-machine catalog.  The partitioner is
    fixed per catalog: ``strategy="hash"`` builds one eagerly;
    ``strategy="range"`` derives equi-depth cuts from the first
    partitioned relation's key values (deterministic), so later
    relations sharing the key domain co-partition with it.
    """

    def __init__(
        self,
        tenant: str = "default",
        shards: int = 2,
        strategy: str = "hash",
        element_bits: int = 32,
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        if shards < 1:
            raise PlanError(f"shard count must be >= 1, got {shards}")
        if strategy not in STRATEGIES:
            raise PlanError(
                f"unknown shard strategy {strategy!r}; "
                f"use one of {sorted(STRATEGIES)}"
            )
        self.tenant = tenant
        self.shard_count = shards
        self.strategy = strategy
        self.element_bits = element_bits
        self.shards = [
            Catalog(tenant=f"{tenant}/shard{i}", element_bits=element_bits)
            for i in range(shards)
        ]
        self._lock = threading.RLock()
        self._partitioner = partitioner
        if self._partitioner is None and strategy == "hash":
            self._partitioner = HashPartitioner()
        self._placements: dict[str, Placement] = {}
        self._schemas: dict[str, Schema] = {}
        self._cardinalities: dict[str, int] = {}

    # -- mutation ----------------------------------------------------------

    def store(
        self,
        name: str,
        relation: Relation,
        key: Optional[ColumnRef] = None,
        replicate: bool = False,
    ) -> None:
        """Place a relation on every shard's disk (split or replicated).

        ``key`` names the partition column (default: column 0);
        ``replicate=True`` stores a full copy per shard instead.
        """
        self._place(name, relation, key, replicate, preload=False)

    def preload(
        self,
        name: str,
        relation: Relation,
        key: Optional[ColumnRef] = None,
        replicate: bool = False,
    ) -> None:
        """Mark a relation memory-resident on every shard."""
        self._place(name, relation, key, replicate, preload=True)

    def _place(
        self,
        name: str,
        relation: Relation,
        key: Optional[ColumnRef],
        replicate: bool,
        preload: bool,
    ) -> None:
        with self._lock:
            if replicate:
                pieces = [relation] * self.shard_count
                placement = Placement(REPLICATED)
            else:
                position = relation.schema.resolve(0 if key is None else key)
                partitioner = self._ensure_partitioner(relation, position)
                pieces = partitioner.partition(
                    relation, position, self.shard_count
                )
                placement = Placement(
                    PARTITIONED, key=position, fp=partitioner.fingerprint()
                )
            for catalog, piece in zip(self.shards, pieces):
                if preload:
                    catalog.preload(name, piece)
                else:
                    catalog.store(name, piece)
            self._placements[name] = placement
            self._schemas[name] = relation.schema
            self._cardinalities[name] = len(relation)

    def _ensure_partitioner(
        self, relation: Relation, position: int
    ) -> Partitioner:
        if self._partitioner is None:
            # strategy == "range": equi-depth cuts from the first
            # partitioned relation's key values.
            self._partitioner = RangePartitioner.from_values(
                relation.column_values(position), self.shard_count
            )
        return self._partitioner

    # -- inspection --------------------------------------------------------

    @property
    def partitioner(self) -> Optional[Partitioner]:
        """The catalog's partitioner (None until a range one is derived)."""
        with self._lock:
            return self._partitioner

    def placement(self, name: str) -> Placement:
        with self._lock:
            try:
                return self._placements[name]
            except KeyError:
                raise PlanError(
                    f"no relation named {name!r} in the sharded catalog; "
                    f"have {sorted(self._placements)}"
                ) from None

    def names(self) -> list[str]:
        with self._lock:
            return list(self._placements)

    def schemas(self) -> dict[str, Schema]:
        """Logical name → schema, for planning."""
        with self._lock:
            return dict(self._schemas)

    def cardinalities(self) -> dict[str, int]:
        """Logical name → total (cross-shard) cardinality."""
        with self._lock:
            return dict(self._cardinalities)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._placements

    def content_fingerprint(self) -> tuple:
        """Everything shard planning reads, as a hashable value.

        Composed from the per-shard catalog fingerprints plus the shard
        count, strategy, and placement map — so plans cached against a
        2-shard layout can never answer a 4-shard compile.
        """
        with self._lock:
            placements = tuple(
                (name, p.kind, p.key, p.fp)
                for name, p in sorted(self._placements.items())
            )
            return (
                self.shard_count,
                self.strategy,
                placements,
                tuple(c.content_fingerprint() for c in self.shards),
            )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ShardedCatalog(tenant={self.tenant!r}, "
                f"{self.shard_count} shards, {self.strategy}, "
                f"{len(self._placements)} relations)"
            )
