"""Deterministic partitioning of relations across shards.

§8 chops one oversized problem into blocks that fit one array; the
shard layer applies the same idea one level up, chopping a *relation*
into pieces that fit one machine.  A :class:`Partitioner` maps the
encoded value of a chosen key column to a shard index — the same tuple
always lands on the same shard, on any host, in any process — which is
what lets two relations partitioned the same way join shard-locally
with zero cross-shard traffic.

Two strategies, following the array-storage literature's chunking
vocabulary:

* :class:`HashPartitioner` — multiplicative (Fibonacci) hashing of the
  encoded key; spreads any key distribution near-uniformly and is the
  canonical partitioner for planner-inserted re-partition exchanges;
* :class:`RangePartitioner` — explicit cut points over the encoded
  (order-preserving) value space; keeps key ranges together, the way a
  clustered store would.

A partitioner's :meth:`~Partitioner.fingerprint` is a hashable identity
two relations must share (along with the key position) to count as
co-partitioned; it also feeds the sharded catalog's content
fingerprint, so the shared plan cache distinguishes placements.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from repro.errors import PlanError
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "STRATEGIES",
]

#: Accepted ``REPRO_SHARD_STRATEGY`` / ``shard_strategy=`` spellings.
STRATEGIES = ("hash", "range")

_MASK = (1 << 64) - 1
#: 2^64 / φ — Knuth's multiplicative-hash constant.
_MIX = 0x9E3779B97F4A7C15


class Partitioner(ABC):
    """Maps encoded key values to shard indices, deterministically."""

    @abstractmethod
    def shard_of(self, value: int, shards: int) -> int:
        """The shard index in ``[0, shards)`` owning ``value``."""

    @abstractmethod
    def fingerprint(self) -> tuple:
        """Hashable identity: equal fingerprints partition identically."""

    def partition(
        self, relation: Relation, key: ColumnRef, shards: int
    ) -> list[Relation]:
        """Split a relation into ``shards`` pieces by its key column.

        Pieces keep the input's schema and tuple order; their disjoint
        union is the input relation.
        """
        if shards < 1:
            raise PlanError(f"shard count must be >= 1, got {shards}")
        position = relation.schema.resolve(key)
        buckets: list[list] = [[] for _ in range(shards)]
        for row in relation.tuples:
            buckets[self.shard_of(row[position], shards)].append(row)
        return [Relation(relation.schema, bucket) for bucket in buckets]


class HashPartitioner(Partitioner):
    """Fibonacci hashing of the encoded key value.

    The multiply-and-fold mixes low and high bits, so consecutive keys
    (the common case after dictionary encoding) spread evenly across
    shards instead of striping.
    """

    def shard_of(self, value: int, shards: int) -> int:
        mixed = ((value & _MASK) * _MIX) & _MASK
        mixed ^= mixed >> 29
        return mixed % shards

    def fingerprint(self) -> tuple:
        return ("hash", _MIX)

    def __repr__(self) -> str:
        return "HashPartitioner()"


class RangePartitioner(Partitioner):
    """Cut-point partitioning over the encoded value space.

    ``cuts`` are strictly increasing boundaries: values ``<= cuts[0]``
    go to shard 0, values in ``(cuts[k-1], cuts[k]]`` to shard ``k``,
    and values above the last cut to the last shard.  Encoded integer
    values are order-preserving, so ranges over encodings are ranges
    over the original values.
    """

    def __init__(self, cuts: Sequence[int]) -> None:
        self.cuts = tuple(cuts)
        if list(self.cuts) != sorted(set(self.cuts)):
            raise PlanError(
                f"range cuts must be strictly increasing, got {cuts!r}"
            )

    @classmethod
    def from_values(
        cls, values: Iterable[int], shards: int
    ) -> "RangePartitioner":
        """Equi-depth cuts derived from observed key values.

        Distinct values are split into ``shards`` runs of near-equal
        population; deterministic for a given value multiset.
        """
        if shards < 1:
            raise PlanError(f"shard count must be >= 1, got {shards}")
        distinct = sorted(set(values))
        cuts = []
        for k in range(1, shards):
            index = (k * len(distinct)) // shards
            if 0 < index < len(distinct):
                cuts.append(distinct[index - 1])
        return cls(sorted(set(cuts)))

    def shard_of(self, value: int, shards: int) -> int:
        return min(bisect.bisect_left(self.cuts, value), shards - 1)

    def fingerprint(self) -> tuple:
        return ("range", self.cuts)

    def __repr__(self) -> str:
        return f"RangePartitioner(cuts={self.cuts!r})"
