"""Executing sharded plans on a cluster of simulated machines.

The :class:`ShardedExecutor` is the shard layer's counterpart of
:class:`~repro.machine.pool.EnginePool.execute`: it admits one query
through the pool's gate, then drives *per-shard* machines — each an
ordinary fresh :class:`~repro.machine.execution.MachineState` compiled
through the pool's shared plan cache — in stages:

1. for every :class:`~repro.shard.planner.ExchangeStep`, each shard
   evaluates the step's fragment locally, the per-shard results are
   redistributed (broadcast or re-partition), and every shard preloads
   the exchanged relation under the step's name;
2. each shard evaluates the final per-shard plans;
3. the per-shard answers merge — in shard order, under the relation's
   set semantics — into the logical results.

Determinism mirrors the single machine's two-phase contract: shard
machines may *compute* on concurrent host threads, but every
cross-shard decision (bucket assignment, merge order, timeline
composition) is a pure function of the plan and the data, so a
parallel sharded run is bit-identical — results, report, and trace —
to a serial one, and each shard's ``machine.run`` span is exactly what
a standalone machine produces on that shard's piece of the data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from itertools import chain
from typing import Optional, Sequence

from repro import obs
from repro.errors import DeviceFaultError, ShardFaultError
from repro.faults.recovery import (
    DEFAULT_RETRY_POLICY,
    CancelToken,
    cancellable_sleep,
    retry_call,
    run_with_deadline,
)
from repro.machine.catalog import Catalog
from repro.machine.execution import PlanExecutor
from repro.machine.inference import infer_schema
from repro.machine.plan import PlanNode
from repro.machine.scheduler import (
    ExecutionReport,
    HostExecutor,
    ScheduledStep,
)
from repro.obs import metrics
from repro.relational.relation import Relation
from repro.shard.catalog import ShardedCatalog
from repro.shard.planner import (
    BROADCAST,
    ExchangeStep,
    ShardedPlan,
    ShardPlanner,
)

__all__ = [
    "ShardedCompilation",
    "ShardedExecutionReport",
    "ShardedExecutor",
    "INTERCONNECT",
]

#: Device name carried by exchange steps on the composed timeline.
INTERCONNECT = "interconnect"


@dataclass
class ShardedCompilation:
    """A sharded plan plus its per-shard physical compilations."""

    plan: ShardedPlan
    physicals: list  # final-stage PhysicalPlan per shard
    predicted_makespan: float

    @property
    def shards(self) -> int:
        return self.plan.shards


@dataclass
class ShardedExecutionReport(ExecutionReport):
    """The composed cross-shard timeline of one sharded query.

    ``steps`` holds every shard's replayed steps — labelled
    ``shard{i}:`` and offset so stages follow each other in simulated
    time — plus one ``interconnect`` step per exchange.  The plain
    :class:`ExecutionReport` accessors (makespan, timeline, busy
    seconds) work unchanged; ``shard_reports`` keeps each shard's final
    unshifted report for per-machine inspection.
    """

    shards: int = 1
    shard_reports: list[ExecutionReport] = field(default_factory=list)
    exchanges: list[ExchangeStep] = field(default_factory=list)

    @property
    def exchange_seconds(self) -> float:
        """Simulated seconds spent on the cross-shard interconnect."""
        return sum(
            s.duration for s in self.steps if s.device == INTERCONNECT
        )


class ShardedExecutor:
    """Runs logical plans over a :class:`ShardedCatalog` on a pool.

    One executor per (tenant, shard layout); sessions construct one
    lazily when opened with ``shards > 1``.  The pool supplies the
    device complement, plan cache, host thread budget, and admission
    gate; every shard of every query still executes against a private
    fresh machine state.
    """

    def __init__(self, pool, catalog: ShardedCatalog) -> None:
        self.pool = pool
        self.catalog = catalog
        self.shards = catalog.shard_count

    # -- planning ----------------------------------------------------------

    def plan(self, plans: Sequence[PlanNode] | PlanNode) -> ShardedPlan:
        """Lower logical plans into per-shard plans plus exchanges."""
        return ShardPlanner(
            self.catalog,
            devices=self.pool.devices,
            element_bits=self.catalog.element_bits,
        ).lower(plans)

    def compile(
        self,
        plans: Sequence[PlanNode] | PlanNode,
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        use_cache: bool = True,
    ) -> ShardedCompilation:
        """Lower and compile without executing.

        Exchange intermediates are compiled against empty placeholder
        relations (their true sizes are data-dependent), so the
        predicted makespan is the planner's estimate — exact for
        exchange-free plans, a documented approximation otherwise.
        """
        sharded = self.plan(plans)
        lanes = self._lanes()
        predicted = 0.0
        for step in sharded.exchanges:
            per_shard = [
                self.pool.compile(
                    lane, step.plan, pipeline=pipeline, use_cache=use_cache
                )
                for lane in lanes
            ]
            predicted += max(
                p.predicted_makespan for p in per_shard
            ) + step.cost.seconds
            schema = infer_schema(step.plan, self.catalog.schemas())
            for lane in lanes:
                lane.preload(step.name, Relation(schema))
        physicals = [
            self.pool.compile(
                lane, sharded.roots, arrivals,
                pipeline=pipeline, use_cache=use_cache,
            )
            for lane in lanes
        ]
        predicted += max(p.predicted_makespan for p in physicals)
        return ShardedCompilation(
            plan=sharded, physicals=physicals, predicted_makespan=predicted
        )

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        plans: Sequence[PlanNode] | PlanNode,
        arrivals: Optional[Sequence[float]] = None,
        pipeline: bool = True,
        parallel: bool = True,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> tuple[list[Relation], ShardedExecutionReport]:
        """Admit, lower, and run one query across all shards.

        Occupies **one** admission slot: the shards of a query are one
        unit of work to the pool, like the devices of one machine.
        """
        if isinstance(plans, PlanNode):
            plans = [plans]
        pool = self.pool
        pool.gate.acquire(priority=priority, timeout=timeout)
        started = time.perf_counter()
        cancel = CancelToken() if pool.query_deadline is not None else None
        try:
            results, report = run_with_deadline(
                lambda: self._run_admitted(
                    plans, arrivals, pipeline, parallel, priority, cancel
                ),
                pool.query_deadline,
                cancel=cancel,
                label=f"query[{self.catalog.tenant}]",
            )
        finally:
            pool.gate.release()
        pool.record_query(
            self.catalog.tenant, time.perf_counter() - started
        )
        return results, report

    def _run_admitted(
        self,
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]],
        pipeline: bool,
        parallel: bool,
        priority: int,
        cancel: Optional[CancelToken],
    ) -> tuple[list[Relation], ShardedExecutionReport]:
        with obs.span(
            "service.query", tenant=self.catalog.tenant,
            plans=len(plans), priority=priority, shards=self.shards,
        ) as sp:
            sharded = self.plan(plans)
            lanes = self._lanes()
            report = ShardedExecutionReport(
                shards=self.shards, exchanges=list(sharded.exchanges),
            )
            offset = 0.0
            for index, step in enumerate(sharded.exchanges):
                with obs.span(
                    "shard.stage", stage=index, kind=step.kind,
                    relation=step.name,
                ):
                    outcomes = self._run_stage(
                        lanes, [step.plan], None, pipeline, parallel,
                        stage_key=f"stage{index}", cancel=cancel,
                    )
                    pieces = self._exchange(
                        step, [res[0] for res, _ in outcomes], cancel
                    )
                    for lane, piece in zip(lanes, pieces):
                        lane.preload(step.name, piece)
                offset = self._fold_stage(
                    report, outcomes, offset, step
                )
            with obs.span("shard.stage", stage="final"):
                outcomes = self._run_stage(
                    lanes, sharded.roots, arrivals, pipeline, parallel,
                    stage_key="final", cancel=cancel,
                )
            self._fold_stage(report, outcomes, offset, None)
            report.shard_reports = [rep for _, rep in outcomes]
            results = self._merge(
                sharded.roots, [res for res, _ in outcomes]
            )
            if sharded.local_joins:
                metrics.inc("shard.local_joins", sharded.local_joins)
            sp.set(
                makespan_ms=report.makespan * 1e3,
                exchanges=len(sharded.exchanges),
            )
        return results, report

    # -- stages ------------------------------------------------------------

    def _lanes(self) -> list[Catalog]:
        """Per-query shard catalogs: shared disks, private preload sets.

        Exchange intermediates are preloaded per query, so they must
        not leak into the shard catalogs other queries read.
        """
        lanes = []
        for shard in self.catalog.shards:
            lane = Catalog(tenant=shard.tenant, disk=shard.disk)
            for name, relation in shard.preloaded():
                lane.preload(name, relation)
            lanes.append(lane)
        return lanes

    def _run_stage(
        self,
        lanes: list[Catalog],
        plans: Sequence[PlanNode],
        arrivals: Optional[Sequence[float]],
        pipeline: bool,
        parallel: bool,
        stage_key: str = "final",
        cancel: Optional[CancelToken] = None,
    ) -> list[tuple[list[Relation], ExecutionReport]]:
        """Run one stage's plans on every shard; returns shard-ordered
        ``(results, report)`` pairs.

        Shards compute on host threads through the same wave scheduler
        the machine uses for its thunks; each shard's subtree is a
        detached ``shard.run`` span adopted back in shard order, so the
        trace (like the results) is independent of thread timing.

        A shard machine that crashes (an injected
        :class:`ShardFaultError`) is re-run with bounded backoff; the
        crash is injected *before* its ``shard.run`` span opens and a
        crashed attempt's span is never adopted, so a recovered run's
        trace — like its results and timeline, which re-execute the
        identical pure stage — is bit-identical to a fault-free run.
        A shard that quarantines a device replans against the pool's
        surviving roster, same as an unsharded query.
        """
        pool = self.pool
        faults = pool.faults
        spans: dict[int, object] = {}
        compiled: dict[int, object] = {}

        def shard_thunk(index: int):
            lane = lanes[index]

            def run_once() -> tuple[list[Relation], ExecutionReport]:
                devices = pool.healthy_devices()
                with obs.detached("shard.run", shard=index) as sp:
                    physical = pool.compile(
                        lane, plans, arrivals, pipeline=pipeline,
                        devices=devices,
                    )
                    previous = compiled.get(index)
                    if previous is not None and previous is not physical:
                        # A degraded recompile: count the ops a replan
                        # moved onto surviving devices.
                        moved = sum(
                            1 for old, new in zip(previous.ops, physical.ops)
                            if old.device != new.device
                        )
                        if moved:
                            metrics.inc("faults.redispatches", moved)
                    compiled[index] = physical
                    executor = PlanExecutor(
                        pool.fresh_state(lane, devices=devices),
                        host_workers=pool.host_workers,
                        roster_fairness=pool.roster_fairness,
                        faults=faults,
                        cancel=cancel,
                        fault_scope=f"{self.catalog.tenant}/shard{index}",
                    )
                    outcome = executor.run_physical(
                        physical, parallel=parallel
                    )
                spans[index] = sp
                return outcome

            def attempt() -> tuple[list[Relation], ExecutionReport]:
                if faults is not None:
                    fault = faults.shard_fault(index, stage_key)
                    if fault is not None:
                        raise fault
                return run_once()

            def run(_resolved) -> tuple[list[Relation], ExecutionReport]:
                if faults is None and cancel is None:
                    return run_once()
                replans = 0
                while True:
                    try:
                        return retry_call(
                            attempt,
                            policy=DEFAULT_RETRY_POLICY,
                            site=f"shard:{index}:{stage_key}",
                            plan=faults,
                            cancel=cancel,
                            retryable=(ShardFaultError,),
                        )
                    except DeviceFaultError as exc:
                        if (
                            faults is None
                            or not exc.quarantined
                            or exc.device is None
                            or replans >= len(pool.devices)
                        ):
                            raise
                        replans += 1
                        metrics.inc("faults.replans")

            return run

        thunks = {
            i: ((), shard_thunk(i)) for i in range(len(lanes))
        }
        workers = pool.host_workers if parallel else 1
        resolved = HostExecutor(max_workers=workers).run(thunks)
        for index in range(len(lanes)):
            span = spans.get(index)
            if span is not None:
                obs.adopt(span)
        return [resolved[i] for i in range(len(lanes))]

    def _exchange(
        self,
        step: ExchangeStep,
        pieces: list[Relation],
        cancel: Optional[CancelToken],
    ) -> list[Relation]:
        """Redistribute, re-sending exchanges the fault plan drops.

        A dropped exchange loses its payload in flight; the source
        shards still hold their stage results, so the re-send replays
        :meth:`_redistribute` over the identical pieces — same buckets,
        same broadcast, bit-identical downstream state.  Re-sends are
        counted in ``faults.exchange_resends``; the composed timeline
        charges the exchange once (the *recovered* transfer), exactly
        as a fault-free run would.
        """
        faults = self.pool.faults
        if faults is None:
            return self._redistribute(step, pieces)
        policy = DEFAULT_RETRY_POLICY
        for attempt in range(1, policy.attempts + 1):
            if cancel is not None:
                cancel.check()
            fault = faults.exchange_fault(step.name)
            if fault is None:
                if attempt > 1:
                    metrics.inc("faults.exchange_resends", attempt - 1)
                return self._redistribute(step, pieces)
            if attempt == policy.attempts:
                raise fault
            faults.note_retry()
            delay = policy.delay(attempt, f"exchange:{step.name}")
            metrics.observe("faults.backoff_seconds", delay)
            cancellable_sleep(delay, cancel)
        raise AssertionError("unreachable")  # pragma: no cover

    def _redistribute(
        self, step: ExchangeStep, pieces: list[Relation]
    ) -> list[Relation]:
        """Move a stage's per-shard results where the plan needs them."""
        schema = pieces[0].schema
        if step.kind == BROADCAST:
            full = Relation(
                schema, chain.from_iterable(p.tuples for p in pieces)
            )
            metrics.inc("shard.broadcasts")
            return [full] * self.shards
        buckets: list[list] = [[] for _ in range(self.shards)]
        moved = 0
        for source, piece in enumerate(pieces):
            for row in piece.tuples:
                dest = step.partitioner.shard_of(row[step.key], self.shards)
                buckets[dest].append(row)
                if dest != source:
                    moved += 1
        metrics.inc("shard.repartition_tuples", moved)
        return [Relation(schema, bucket) for bucket in buckets]

    def _fold_stage(
        self,
        report: ShardedExecutionReport,
        outcomes: list[tuple[list[Relation], ExecutionReport]],
        offset: float,
        step: Optional[ExchangeStep],
    ) -> float:
        """Append one stage's shard timelines (plus its exchange) to the
        composed report; returns the next stage's start offset."""
        stage_span = 0.0
        for index, (_, shard_report) in enumerate(outcomes):
            stage_span = max(stage_span, shard_report.makespan)
            for st in shard_report.steps:
                report.steps.append(replace(
                    st,
                    label=f"shard{index}:{st.label}",
                    start=st.start + offset,
                    end=st.end + offset,
                ))
        end = offset + stage_span
        if step is None:
            return end
        report.steps.append(ScheduledStep(
            label=f"exchange:{step.kind}:{step.name}",
            device=INTERCONNECT,
            start=end,
            end=end + step.cost.seconds,
            output_key=step.name,
            output_memory=INTERCONNECT,
            nbytes_out=step.cost.nbytes,
        ))
        return end + step.cost.seconds

    def _merge(
        self, roots: Sequence[PlanNode], per_shard: list[list[Relation]]
    ) -> list[Relation]:
        """Union each root's shard pieces, in shard order, as sets."""
        started = time.perf_counter()
        results = []
        with obs.span("shard.merge", roots=len(roots)):
            for position in range(len(roots)):
                pieces = [shard[position] for shard in per_shard]
                results.append(Relation(
                    pieces[0].schema,
                    chain.from_iterable(p.tuples for p in pieces),
                ))
        metrics.observe(
            "shard.merge_seconds", time.perf_counter() - started
        )
        return results

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(tenant={self.catalog.tenant!r}, "
            f"{self.shards} shards)"
        )
