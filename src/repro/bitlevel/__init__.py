"""Bit-level designs: §8's word→bit partition.

MSB-first bit encodings, the bit-magnitude comparator cell, packed
``uint64`` bitplane kernels (:mod:`~repro.bitlevel.planes`, the
bitplane engine's substrate), and bit-level versions of the comparison
arrays whose results are provably identical to the word-level
originals.

The array-level helpers are re-exported lazily: they sit on top of
:mod:`repro.arrays`, which itself loads the engine registry (including
the bitplane engine, which needs :mod:`repro.bitlevel.planes`) — eager
imports here would close that cycle.
"""

from repro.bitlevel.bits import (
    bits_to_word,
    expand_tuple,
    required_width,
    word_to_bits,
)
from repro.bitlevel.cells import EQ, GT, LT, BitMagnitudeCell
from repro.bitlevel.planes import (
    PLANE_BITS,
    pack_bits,
    pack_planes,
    plane_equal_matrix,
    plane_shift_width,
    plane_three_way,
    unpack_bits,
)

__all__ = [
    "BitArrayStats",
    "BitMagnitudeCell",
    "EQ",
    "GT",
    "LT",
    "PLANE_BITS",
    "bit_array_stats",
    "bit_level_compare_all_pairs",
    "bit_level_compare_tuples",
    "bit_level_intersection",
    "bit_level_three_way_compare",
    "bits_to_word",
    "expand_tuple",
    "pack_bits",
    "pack_planes",
    "plane_equal_matrix",
    "plane_shift_width",
    "plane_three_way",
    "required_width",
    "unpack_bits",
    "word_to_bits",
]

#: Names that live in :mod:`repro.bitlevel.arrays`, resolved on first
#: access (PEP 562) to keep the engine-registry import acyclic.
_ARRAY_EXPORTS = frozenset({
    "BitArrayStats",
    "bit_array_stats",
    "bit_level_compare_all_pairs",
    "bit_level_compare_tuples",
    "bit_level_intersection",
    "bit_level_three_way_compare",
})


def __getattr__(name: str):
    if name in _ARRAY_EXPORTS:
        from repro.bitlevel import arrays

        return getattr(arrays, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
