"""Bit-level designs: §8's word→bit partition.

MSB-first bit encodings, the bit-magnitude comparator cell, and
bit-level versions of the comparison arrays whose results are provably
identical to the word-level originals.
"""

from repro.bitlevel.arrays import (
    BitArrayStats,
    bit_array_stats,
    bit_level_compare_all_pairs,
    bit_level_compare_tuples,
    bit_level_intersection,
    bit_level_three_way_compare,
)
from repro.bitlevel.bits import (
    bits_to_word,
    expand_tuple,
    required_width,
    word_to_bits,
)
from repro.bitlevel.cells import EQ, GT, LT, BitMagnitudeCell

__all__ = [
    "BitArrayStats",
    "BitMagnitudeCell",
    "EQ",
    "GT",
    "LT",
    "bit_array_stats",
    "bit_level_compare_all_pairs",
    "bit_level_compare_tuples",
    "bit_level_intersection",
    "bit_level_three_way_compare",
    "bits_to_word",
    "expand_tuple",
    "required_width",
    "word_to_bits",
]
