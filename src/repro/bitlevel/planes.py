"""Packed bitplanes: §8's bit-serial comparators as bulk word ops.

The word→bit transformation of :mod:`repro.bitlevel` replaces every
word comparator by ``width`` bit comparators.  Simulating those bit
cells one token at a time is exactly as slow as it sounds; this module
applies the PR 1 lattice treatment one level down, the way bulk-bitwise
processing-in-memory evaluates bit-serial logic: lay each **bit
position** out as one plane of packed ``uint64`` machine words (64
tuples per word, over the tuple axis) and evaluate the whole plane with
one ``np.bitwise_*`` sweep.

* **Equality** is an XOR/OR-reduce over the planes: two values differ
  iff any bit position differs, so ``NEQ = OR_p (a_p XOR b_p)`` and the
  verdict plane is its complement.
* **Magnitude** is the :class:`~repro.bitlevel.cells.BitMagnitudeCell`
  state ripple (EQ / LT / GT, MSB-first) vectorized across the plane:
  at each bit position the still-EQ lanes whose bits differ resolve to
  GT or LT by the ``a`` bit, exactly the cell's transition table.

Values are signed ``int64`` (the lattice engine's element type); they
are translated by the common minimum into ``uint64`` — a shift that
preserves both equality and order, keeps every element in
``[0, 2⁶⁴)``, and makes the MSB-first ripple correct for negative
inputs too.  ``n`` not a multiple of 64 leaves a ragged tail in the
last word; every kernel masks by slicing the unpacked plane back to
``n``, so tail garbage never reaches a verdict.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "PLANE_BITS",
    "plane_shift_width",
    "pack_bits",
    "unpack_bits",
    "pack_planes",
    "equality_planes",
    "magnitude_planes",
    "PLANE_OPS",
    "plane_op",
    "plane_equal_matrix",
    "plane_three_way",
]

#: Tuples packed per machine word — one ``uint64`` lane per plane word.
PLANE_BITS = 64

_SHIFTS = np.arange(PLANE_BITS, dtype=np.uint64)
_ONE = np.uint64(1)
_ZERO = np.uint64(0)
_ALL = ~np.uint64(0)
_MASK64 = (1 << 64) - 1


def plane_shift_width(*matrices: np.ndarray) -> tuple[list[np.ndarray], int]:
    """Translate signed matrices into ``uint64`` planes-ready form.

    Subtracting the common minimum preserves equality and order; the
    translated range fits ``[0, 2⁶⁴)`` for any ``int64`` inputs, so the
    wrapping ``uint64`` arithmetic is exact.  Returns the translated
    matrices and the bit width of the widest translated value.
    """
    mats = [np.asarray(m, dtype=np.int64) for m in matrices]
    if not mats or all(m.size == 0 for m in mats):
        return [m.astype(np.uint64) for m in mats], 1
    lo = min(int(m.min()) for m in mats if m.size)
    hi = max(int(m.max()) for m in mats if m.size)
    width = max(1, (hi - lo).bit_length())
    shift = np.uint64(lo & _MASK64)
    return [m.astype(np.uint64) - shift for m in mats], width


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 1-D 0/1 vector into ``uint64`` words, 64 lanes per word.

    Lane ``j`` of word ``w`` holds element ``64·w + j`` (LSB-first
    within the word); a ragged tail is zero-padded.
    """
    n = bits.shape[0]
    n_words = max(1, -(-n // PLANE_BITS))
    padded = np.zeros(n_words * PLANE_BITS, dtype=np.uint64)
    padded[:n] = bits.astype(np.uint64)
    lanes = padded.reshape(n_words, PLANE_BITS)
    return np.bitwise_or.reduce(lanes << _SHIFTS[None, :], axis=1)


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack plane words back to a boolean vector of length ``n``.

    The inverse of :func:`pack_bits`; slicing to ``n`` drops the ragged
    tail, so padding lanes never surface.  Works on any leading shape
    (the last axis is the word axis).
    """
    lanes = (words[..., :, None] >> _SHIFTS) & _ONE
    flat = lanes.reshape(*words.shape[:-1], words.shape[-1] * PLANE_BITS)
    return flat[..., :n].astype(bool)


def pack_planes(matrix: np.ndarray, width: int) -> np.ndarray:
    """Bitplanes of a translated ``(n, m)`` ``uint64`` matrix.

    Returns a ``(m, width, n_words)`` array: plane ``[k, p]`` packs bit
    position ``p`` (MSB-first, matching
    :func:`repro.bitlevel.bits.word_to_bits`) of column ``k`` across
    all ``n`` tuples.
    """
    if width < 1 or width > PLANE_BITS:
        raise SimulationError(
            f"plane width must be in [1, {PLANE_BITS}], got {width}"
        )
    n, m = matrix.shape
    n_words = max(1, -(-n // PLANE_BITS))
    planes = np.empty((m, width, n_words), dtype=np.uint64)
    for k in range(m):
        column = matrix[:, k]
        for p in range(width):
            bit = (column >> np.uint64(width - 1 - p)) & _ONE
            planes[k, p] = pack_bits(bit)
    return planes


def _lane_masks(values: np.ndarray, position: int, width: int) -> np.ndarray:
    """Broadcast masks (all-ones / all-zeros per lane) of one bit
    position of a streamed ``uint64`` value vector."""
    bit = (values >> np.uint64(width - 1 - position)) & _ONE
    return np.where(bit != 0, _ALL, _ZERO)[:, None]


def equality_planes(
    a_matrix: np.ndarray, b_planes: np.ndarray, width: int
) -> np.ndarray:
    """Packed NEQ accumulation of ``a`` rows against ``b`` planes.

    ``a_matrix`` is ``(c, m)`` translated values (the streamed side),
    ``b_planes`` ``(m, width, n_words)`` packed planes (the resident
    side).  Returns the packed equality verdicts, ``(c, n_words)``:
    lane ``j`` of row ``i`` is set iff tuples ``a[i]`` and ``b[j]``
    agree on every bit of every column — the XOR/OR-reduce.
    """
    c = a_matrix.shape[0]
    m, _, n_words = b_planes.shape
    neq = np.zeros((c, n_words), dtype=np.uint64)
    for k in range(m):
        for p in range(width):
            a_mask = _lane_masks(a_matrix[:, k], p, width)
            neq |= a_mask ^ b_planes[k, p][None, :]
    return ~neq


def magnitude_planes(
    a_values: np.ndarray, b_planes_k: np.ndarray, width: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The bit-magnitude ripple of one column, whole planes at a time.

    ``a_values`` is ``(c,)`` translated stream values, ``b_planes_k``
    the ``(width, n_words)`` planes of the resident column.  Rips the
    EQ / GT / LT state MSB-first exactly as a chain of
    :class:`~repro.bitlevel.cells.BitMagnitudeCell`\\ s would: a lane
    still EQ whose bits differ resolves by the ``a`` bit.  Returns the
    packed ``(eq, gt, lt)`` state planes, each ``(c, n_words)``.
    """
    c = a_values.shape[0]
    n_words = b_planes_k.shape[1]
    eq = np.full((c, n_words), _ALL, dtype=np.uint64)
    gt = np.zeros((c, n_words), dtype=np.uint64)
    lt = np.zeros((c, n_words), dtype=np.uint64)
    for p in range(width):
        a_mask = _lane_masks(a_values, p, width)
        b_plane = b_planes_k[p][None, :]
        diff = a_mask ^ b_plane
        gt |= eq & diff & a_mask
        lt |= eq & diff & ~a_mask
        eq &= ~diff
    return eq, gt, lt


#: Comparison op code → verdict plane from the rippled (eq, gt, lt)
#: state, matching :data:`repro.relational.algebra.COMPARISON_OPS`.
PLANE_OPS = {
    "==": lambda eq, gt, lt: eq,
    "!=": lambda eq, gt, lt: ~eq,
    "<": lambda eq, gt, lt: lt,
    "<=": lambda eq, gt, lt: lt | eq,
    ">": lambda eq, gt, lt: gt,
    ">=": lambda eq, gt, lt: gt | eq,
}


def plane_op(op: str):
    try:
        return PLANE_OPS[op]
    except KeyError:
        raise SimulationError(
            f"unknown comparison operator {op!r}; have {sorted(PLANE_OPS)}"
        ) from None


def plane_equal_matrix(
    a_values: Sequence[int], b_values: Sequence[int]
) -> tuple[np.ndarray, int]:
    """Boolean equality matrix ``a[i] == b[j]`` via packed planes.

    Returns ``(matrix, planes)`` where ``planes`` counts the bit planes
    the kernel swept (``width``, the work unit the bitplane engine
    meters).
    """
    a = np.asarray(a_values, dtype=np.int64)
    b = np.asarray(b_values, dtype=np.int64)
    if a.size == 0 or b.size == 0:
        return np.zeros((a.size, b.size), dtype=bool), 0
    (a_s, b_s), width = plane_shift_width(a, b)
    b_planes = pack_planes(b_s.reshape(-1, 1), width)
    packed = equality_planes(a_s.reshape(-1, 1), b_planes, width)
    return unpack_bits(packed, b.size), width


def plane_three_way(
    a_values: Sequence[int],
    b_values: Sequence[int],
    width: Optional[int] = None,
) -> np.ndarray:
    """Element-wise three-way compare (−1 / 0 / +1) via the ripple.

    The vectorized counterpart of
    :func:`repro.bitlevel.arrays.bit_level_three_way_compare`: each
    ``(a[i], b[i])`` pair resolves by the same MSB-first EQ/GT/LT state
    machine, evaluated one packed plane per bit position.  ``width``
    (when given) must hold every translated value.
    """
    a = np.asarray(a_values, dtype=np.int64)
    b = np.asarray(b_values, dtype=np.int64)
    if a.shape != b.shape:
        raise SimulationError(
            f"three-way compare needs matched shapes, got {a.shape} "
            f"vs {b.shape}"
        )
    if a.size == 0:
        return np.zeros(0, dtype=np.int64)
    (a_s, b_s), data_width = plane_shift_width(a, b)
    if width is None:
        width = data_width
    elif width < data_width:
        raise SimulationError(
            f"width {width} cannot hold {data_width}-bit translated "
            f"values"
        )
    if width > PLANE_BITS:
        raise SimulationError(
            f"plane width must be in [1, {PLANE_BITS}], got {width}"
        )
    b_planes = pack_planes(b_s.reshape(-1, 1), width)[0]
    # Pair i compares against resident lane i: ripple each stream value
    # against the diagonal of the resident planes.  Packing keeps the
    # kernel identical; only lane i of row i is read back.
    eq, gt, lt = magnitude_planes(a_s, b_planes, width)
    n = a.size
    gt_diag = np.diagonal(unpack_bits(gt, n))
    lt_diag = np.diagonal(unpack_bits(lt, n))
    return gt_diag.astype(np.int64) - lt_diag.astype(np.int64)
