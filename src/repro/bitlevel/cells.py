"""Bit-level processors (§8, ref [3]).

Equality at the bit level needs no new cell: a bit is just a 1-bit word
and the Fig 3-2 comparison processor ANDs bit equalities exactly as it
ANDs word equalities.  *Magnitude* comparison does need a new cell: a
single bit pair cannot decide ``<`` — the decision belongs to the most
significant bit position where the operands differ.

:class:`BitMagnitudeCell` implements the spatial MSB-first scheme: a
three-valued state token (EQ / LT / GT, encoded 0 / −1 / +1) travels
left-to-right through a chain of bit cells.  A cell only refines the
state while it is still EQ; once decided, the state passes through
untouched.  After the full width the state is the three-way comparison
of the two words, from which any of <, ≤, >, ≥, =, ≠ can be read off.
"""

from __future__ import annotations

from typing import Optional

from repro.systolic.cell import Cell, PortMap
from repro.systolic.values import Token

__all__ = ["BitMagnitudeCell", "EQ", "LT", "GT"]

#: Three-way comparison states carried by the travelling token.
EQ, LT, GT = 0, -1, 1


class BitMagnitudeCell(Cell):
    """One bit position of a spatial MSB-first magnitude comparator."""

    IN_PORTS = ("a_in", "b_in", "s_in")
    OUT_PORTS = ("a_out", "b_out", "s_out")

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        a = inputs.get("a_in")
        b = inputs.get("b_in")
        state = inputs.get("s_in")
        outputs: dict[str, Optional[Token]] = {}
        if a is not None:
            outputs["a_out"] = a
        if b is not None:
            outputs["b_out"] = b
        if state is None:
            if a is not None and b is not None:
                raise self.protocol_error(
                    "bits met with no comparison state on s_in — the "
                    "state-injection schedule missed this meeting"
                )
            return outputs
        if a is None or b is None:
            raise self.protocol_error(
                "a comparison state arrived without a bit pair — the bit "
                "streams are mis-staggered"
            )
        current = state.value
        if current == EQ:
            if a.value > b.value:
                current = GT
            elif a.value < b.value:
                current = LT
        outputs["s_out"] = Token(current, state.tag)
        return outputs
