"""Bit-level operator arrays and the word→bit design transformation (§8).

Equality-based arrays transform mechanically: replace each word column
by ``width`` bit columns and feed the MSB-first expansion of every
tuple (:func:`~repro.bitlevel.bits.expand_tuple`).  The resulting array
computes the identical ``T`` matrix — verified against the word-level
arrays in the tests — while its area is expressible directly in §8's
bit-comparator unit.

Magnitude comparison uses a chain of
:class:`~repro.bitlevel.cells.BitMagnitudeCell`\\ s: the three-way state
ripples through the bit positions MSB-first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arrays.comparison_array import ComparisonMatrixResult, compare_all_pairs
from repro.arrays.linear_comparison import LinearComparisonResult, compare_tuples
from repro.arrays.base import run_array
from repro.bitlevel.bits import expand_tuple, required_width, word_to_bits
from repro.bitlevel.cells import EQ, GT, LT, BitMagnitudeCell
from repro.errors import SimulationError
from repro.systolic.streams import ScheduleFeeder
from repro.systolic.values import Token
from repro.systolic.wiring import Network

__all__ = [
    "bit_level_compare_tuples",
    "bit_level_compare_all_pairs",
    "bit_level_intersection",
    "bit_level_three_way_compare",
    "BitArrayStats",
    "bit_array_stats",
]


@dataclass(frozen=True)
class BitArrayStats:
    """Geometry of a bit-level array vs its word-level original."""

    word_rows: int
    word_cols: int
    width: int

    @property
    def bit_cols(self) -> int:
        """Columns after the transformation (word columns × width)."""
        return self.word_cols * self.width

    @property
    def bit_cells(self) -> int:
        """Total bit-comparators — §8's area unit."""
        return self.word_rows * self.bit_cols


def bit_array_stats(rows: int, cols: int, width: int) -> BitArrayStats:
    """Describe the bit-level version of a ``rows × cols`` word array."""
    if rows < 1 or cols < 1 or width < 1:
        raise SimulationError(
            f"array geometry must be positive: {rows}×{cols} @ {width}b"
        )
    return BitArrayStats(word_rows=rows, word_cols=cols, width=width)


def _width_for(*tuple_sets: Sequence[Sequence[int]], width: int | None) -> int:
    if width is not None:
        if width < 1:
            raise SimulationError(f"width must be >= 1, got {width}")
        return width
    values = [v for tuples in tuple_sets for row in tuples for v in row]
    return required_width(values)


def bit_level_compare_tuples(
    a: Sequence[int],
    b: Sequence[int],
    width: int | None = None,
    seed: bool = True,
    backend=None,
) -> LinearComparisonResult:
    """Fig 3-1 at bit level: the linear array widened by the bit expansion."""
    bit_width = _width_for([a], [b], width=width)
    return compare_tuples(
        expand_tuple(a, bit_width), expand_tuple(b, bit_width), seed=seed,
        backend=backend,
    )


def bit_level_compare_all_pairs(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    width: int | None = None,
    backend=None,
) -> ComparisonMatrixResult:
    """Fig 3-3 at bit level: same T matrix from the expanded tuples."""
    bit_width = _width_for(a_tuples, b_tuples, width=width)
    expanded_a = [expand_tuple(row, bit_width) for row in a_tuples]
    expanded_b = [expand_tuple(row, bit_width) for row in b_tuples]
    return compare_all_pairs(expanded_a, expanded_b, backend=backend)


def bit_level_three_way_compare(
    a: int, b: int, width: int | None = None
) -> int:
    """Three-way compare two words on a chain of bit-magnitude cells.

    Returns −1 / 0 / +1 for a < b / a == b / a > b, computed by the
    MSB-first state ripple.  This is the processor §6.3.2's
    greater-than-join would be built from at bit level.
    """
    if width is None:
        width = required_width([a, b])
    a_bits = word_to_bits(a, width)
    b_bits = word_to_bits(b, width)
    network = Network("bit-magnitude-chain")
    for position in range(width):
        network.add(BitMagnitudeCell(f"mag[{position}]"))
    for position in range(width):
        name = f"mag[{position}]"
        if position + 1 < width:
            network.connect(name, "s_out", f"mag[{position + 1}]", "s_in")
        network.feed(name, "a_in",
                     ScheduleFeeder({position: Token(a_bits[position])}))
        network.feed(name, "b_in",
                     ScheduleFeeder({position: Token(b_bits[position])}))
    network.feed("mag[0]", "s_in", ScheduleFeeder({0: Token(EQ)}))
    network.tap("state", f"mag[{width - 1}]", "s_out")
    simulator = run_array(network, pulses=width)
    token = simulator.collector("state").at(width - 1)
    if token is None:
        raise SimulationError("the comparison state never left the chain")
    if token.value not in (EQ, LT, GT):
        raise SimulationError(f"invalid comparison state {token.value!r}")
    return token.value


def bit_level_intersection(a, b, width: int | None = None, backend=None):
    """``A ∩ B`` with the whole Fig 4-1 array at bit level (§8).

    Tuples are expanded to their MSB-first bit vectors and the full
    intersection array — bit comparators plus the accumulation column —
    runs on the widened relations.  The answer is identical to the
    word-level array's; the pulse count grows by the extra columns.
    ``backend`` picks the engine the widened array runs on, like every
    word-level operator.
    """
    from repro.arrays.intersection import systolic_intersection
    from repro.relational.domain import Domain
    from repro.relational.relation import Relation
    from repro.relational.schema import Column, Schema

    a_tuples, b_tuples = a.tuples, b.tuples
    a.schema.require_union_compatible(b.schema)
    if not a_tuples or not b_tuples:
        word = systolic_intersection(a, b, backend=backend)
        return word
    bit_width = _width_for(a_tuples, b_tuples, width=width)
    bit_domain = Domain("bit", values=(0, 1), frozen=True)
    bit_schema = Schema(
        Column(f"b{k}", bit_domain)
        for k in range(len(a_tuples[0]) * bit_width)
    )
    expanded_a = Relation(
        bit_schema, (expand_tuple(row, bit_width) for row in a_tuples)
    )
    expanded_b = Relation(
        bit_schema, (expand_tuple(row, bit_width) for row in b_tuples)
    )
    result = systolic_intersection(expanded_a, expanded_b, backend=backend)
    # Map the surviving bit tuples back to the original rows via the
    # (order-preserving, injective) expansion.
    kept = (
        row for row, keep in zip(a_tuples, result.t_vector) if keep
    )
    from repro.arrays.intersection import MembershipResult

    return MembershipResult(
        relation=Relation(a.schema, kept),
        t_vector=result.t_vector,
        run=result.run,
    )
