"""Bit-vector encoding of word elements (§8's word→bit partition).

"Each word processor can be partitioned into bit processors to achieve
modularity at the bit-level."  The partition starts with a fixed-width
binary encoding of each element; this module provides it, MSB-first
(magnitude comparators must see the most significant bit first).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError

__all__ = ["word_to_bits", "bits_to_word", "required_width", "expand_tuple"]


def required_width(values: Sequence[int]) -> int:
    """The smallest bit width that represents every value in ``values``."""
    worst = max(values, default=0)
    if worst < 0:
        raise ReproError("bit encoding covers non-negative encoded elements")
    return max(1, worst.bit_length())


def word_to_bits(value: int, width: int) -> tuple[int, ...]:
    """MSB-first bits of ``value`` in a ``width``-bit field."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(f"elements are plain ints, got {value!r}")
    if value < 0:
        raise ReproError(f"encoded elements are non-negative, got {value}")
    if width < 1:
        raise ReproError(f"width must be >= 1, got {width}")
    if value >= (1 << width):
        raise ReproError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - position)) & 1 for position in range(width))


def bits_to_word(bits: Sequence[int]) -> int:
    """Inverse of :func:`word_to_bits` (MSB-first)."""
    if not bits:
        raise ReproError("cannot decode an empty bit vector")
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ReproError(f"bits are 0/1, got {bit!r}")
        value = (value << 1) | bit
    return value


def expand_tuple(values: Sequence[int], width: int) -> tuple[int, ...]:
    """Concatenate the MSB-first bits of every element of a tuple.

    An m-element tuple becomes an ``m·width``-element bit tuple; tuple
    equality is preserved (two tuples are equal iff their expansions
    are), which is what lets a word-level comparison array be replaced
    by a wider bit-level one.
    """
    expanded: list[int] = []
    for value in values:
        expanded.extend(word_to_bits(value, width))
    return tuple(expanded)
