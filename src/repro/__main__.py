"""Command-line interface: run algebra queries over CSV relations.

Examples::

    python -m repro query "join(EMP, DEPT, dept == dept)" \\
        --relation EMP=employees.csv --relation DEPT=departments.csv

    python -m repro query "intersect(A, B)" -r A=a.csv -r B=b.csv \\
        --engine software --out result.csv

    python -m repro machine "project(join(E, D, dept == dept), name)" \\
        -r E=employees.csv -r D=departments.csv

    python -m repro query "divide(project(join(A, B, k == k), x, y), D)" \\
        -r A=a.csv -r B=b.csv -r D=d.csv --machine --explain

``query`` evaluates on the pulse-level systolic arrays (default) or the
software reference engine; ``machine`` (or ``query --machine``) runs
the plan on the Fig 9-1 integrated database machine and prints the
scheduled timeline.  ``--explain`` additionally shows the compiled
physical plan: per-operator device assignments, §8 block counts, fused
pipeline chains, and the predicted vs simulated makespan.

Observability (docs/OBSERVABILITY.md): ``--profile`` prints per-stage
host wall-clock, ``--trace FILE`` writes a Chrome trace-event file of
the whole run, ``--metrics`` prints the metrics registry, and
``trace summarize FILE`` tabulates a previously written trace.

Columns with the same name across files share a domain, so they are
join/union-compatible automatically.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro import obs
from repro.errors import ReproError
from repro.lang import execute_plan, optimize, parse
from repro.obs import metrics
from repro.relational.csv_io import DomainRegistry, dump_csv, load_csv
from repro.relational.relation import Relation


class _Observation:
    """Per-invocation observability: ``--profile``, ``--trace``,
    ``--metrics``.

    All three are views over the same :mod:`repro.obs` spans and
    metrics registry.  ``--profile`` and ``--trace`` activate a tracer
    for the duration of the command (every layer's spans land in it;
    the CLI adds one ``cli.<stage>`` span per pipeline stage);
    ``--metrics`` enables the registry.  On success the requested
    reports are printed/written; previous tracer/registry state is
    restored either way, so in-process callers (tests, notebooks) are
    unaffected.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.profile = getattr(args, "profile", False)
        self.trace_path = getattr(args, "trace", None)
        self.show_metrics = getattr(args, "metrics", False)
        self.tracer: obs.Tracer | None = None
        self._previous: obs.Tracer | obs.NullTracer | None = None
        self._owns_metrics = False
        self._stage_spans: list = []

    def __enter__(self) -> "_Observation":
        if self.profile or self.trace_path:
            self._previous = obs.get_tracer()
            self.tracer = obs.Tracer()
            obs.start(self.tracer)
        if self.show_metrics and not metrics.enabled:
            metrics.reset()
            metrics.enable()
            self._owns_metrics = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self.report()
        finally:
            if self.tracer is not None:
                obs.stop()
                if self._previous is not None and self._previous.enabled:
                    obs.start(self._previous)
            if self._owns_metrics:
                metrics.disable()

    @contextlib.contextmanager
    def stage(self, name: str):
        """One CLI pipeline stage, recorded as a ``cli.<name>`` span."""
        with obs.span(f"cli.{name}") as sp:
            yield
        if self.tracer is not None:
            self._stage_spans.append(sp)

    def report(self) -> None:
        if self.trace_path and self.tracer is not None:
            registry = metrics if metrics.enabled else None
            events = obs.write_chrome_trace(
                self.tracer, self.trace_path, metrics=registry
            )
            print(f"trace: {events} events written to {self.trace_path}")
        if self.show_metrics:
            print()
            print(metrics.render())
        if self.profile:
            self._print_profile()

    def _print_profile(self) -> None:
        """The ``--profile`` table: host wall-clock per ``cli.*`` span."""
        stages = [
            (sp.name[len("cli."):], sp.seconds) for sp in self._stage_spans
        ]
        if not stages:
            return
        total = sum(seconds for _, seconds in stages)
        width = max(len(name) for name, _ in stages)
        print()
        print("profile (host wall-clock):")
        for name, seconds in stages:
            share = (seconds / total * 100.0) if total > 0 else 0.0
            print(f"  {name:<{width}}  {seconds * 1e3:>9.3f} ms  {share:5.1f}%")
        print(f"  {'total':<{width}}  {total * 1e3:>9.3f} ms")


def _store_dir(args: argparse.Namespace) -> str | None:
    """``--store-dir``, defaulting to $REPRO_STORE_DIR when set."""
    import os

    from repro.store import STORE_DIR_ENV

    return getattr(args, "store_dir", None) or os.environ.get(STORE_DIR_ENV)


def _fault_plan(args: argparse.Namespace):
    """The ``--faults`` plan, or None when chaos is off."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro.faults import parse_faults

    return parse_faults(spec, seed=getattr(args, "fault_seed", 0))


def _load_relations(specs: list[str]) -> dict[str, Relation]:
    registry: DomainRegistry = {}
    catalog: dict[str, Relation] = {}
    for spec in specs:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise ReproError(
                f"--relation expects NAME=path.csv, got {spec!r}"
            )
        catalog[name] = load_csv(path, registry=registry)
    return catalog


def _emit(relation: Relation, out: str | None) -> None:
    if out:
        dump_csv(relation, out)
        print(f"{len(relation)} tuples written to {out}")
    else:
        print(relation.pretty(max_rows=50))
        print(f"({len(relation)} tuples)")


def _cmd_query(args: argparse.Namespace) -> int:
    if (
        args.machine
        or getattr(args, "shards", 1) > 1
        or getattr(args, "faults", None)
        or getattr(args, "store_dir", None)
    ):
        # sharding, fault injection, and persistent storage are
        # properties of the simulated machine, so --shards/--faults/
        # --store-dir imply the machine path
        return _run_on_machine(args)
    with _Observation(args) as observed:
        with observed.stage("load"):
            catalog = _load_relations(args.relation)
        with observed.stage("parse"):
            plan = parse(args.expression)
        if args.optimize:
            with observed.stage("optimize"):
                plan = optimize(
                    plan, schemas={n: r.schema for n, r in catalog.items()}
                )
        with observed.stage("execute"):
            result = execute_plan(
                plan, catalog,
                engine=args.engine, backend=args.backend, optimize=False,
            )
        with observed.stage("materialize"):
            _emit(result, args.out)
    return 0


def _run_on_machine(args: argparse.Namespace) -> int:
    """Shared body of ``machine`` and ``query --machine``."""
    from repro.machine import MachineDisk, SystolicDatabaseMachine

    if getattr(args, "shards", 1) > 1:
        return _run_sharded(args)
    faults = _fault_plan(args)
    with _Observation(args) as observed:
        with observed.stage("load"):
            catalog = _load_relations(args.relation)
            machine = SystolicDatabaseMachine(
                disk=MachineDisk(
                    logic_per_track=getattr(args, "logic_per_track", False)
                ),
                backend=args.backend,
                faults=faults,
            )
            store_dir = _store_dir(args)
            if store_dir:
                from repro.store import RelationStore

                machine.attach_store(RelationStore(store_dir))
            for name, relation in catalog.items():
                machine.store(name, relation)
        with observed.stage("parse"):
            plan = parse(args.expression)
        if args.optimize:
            with observed.stage("optimize"):
                plan = optimize(
                    plan, schemas={n: r.schema for n, r in catalog.items()}
                )
        with observed.stage("compile"):
            physical = machine.compile(
                plan, pipeline=not getattr(args, "store_and_forward", False)
            )
        if args.explain:
            print(physical.explain())
            print()
        with observed.stage("execute"):
            if faults is not None:
                # run_many owns the quarantine-and-replan loop; the
                # pre-compiled plan above still feeds --explain.
                (result,), report = machine.run_many(
                    [plan],
                    pipeline=not getattr(args, "store_and_forward", False),
                )
            else:
                (result,), report = machine.run_physical(physical)
        with observed.stage("materialize"):
            _emit(result, args.out)
        print()
        print(report.timeline())
        if faults is not None:
            print(faults.summary())
        if args.explain:
            print(
                f"predicted makespan {physical.predicted_makespan * 1e3:.3f} "
                f"ms, simulated {report.makespan * 1e3:.3f} ms"
            )
    return 0


def _run_sharded(args: argparse.Namespace) -> int:
    """``query/machine --shards N``: run on a cluster of machines."""
    from repro.machine.pool import EnginePool

    if getattr(args, "logic_per_track", False):
        print("--logic-per-track is a single-disk feature; it cannot be "
              "combined with --shards")
        return 2
    if getattr(args, "store_dir", None):
        print("--store-dir is a single-machine feature; it cannot be "
              "combined with --shards")
        return 2
    faults = _fault_plan(args)
    with _Observation(args) as observed:
        with observed.stage("load"):
            catalog = _load_relations(args.relation)
            pool = EnginePool(backend=args.backend, faults=faults)
            session = pool.session(
                "cli", shards=args.shards,
                shard_strategy=args.shard_strategy,
            )
            for name, relation in catalog.items():
                session.store(name, relation)
        with observed.stage("parse"):
            plan = parse(args.expression)
        if args.optimize:
            with observed.stage("optimize"):
                plan = optimize(
                    plan, schemas={n: r.schema for n, r in catalog.items()}
                )
        pipeline = not getattr(args, "store_and_forward", False)
        if args.explain:
            with observed.stage("compile"):
                compiled = session.compile(plan, pipeline=pipeline)
            print(compiled.plan.explain())
            print()
        with observed.stage("execute"):
            (result,), report = session.run_many([plan], pipeline=pipeline)
        with observed.stage("materialize"):
            _emit(result, args.out)
        print()
        print(report.timeline())
        if faults is not None:
            print(faults.summary())
        if args.explain:
            print(
                f"predicted makespan "
                f"{compiled.predicted_makespan * 1e3:.3f} ms, simulated "
                f"{report.makespan * 1e3:.3f} ms "
                f"({args.shards} shards, "
                f"{report.exchange_seconds * 1e3:.3f} ms on the "
                f"interconnect)"
            )
    return 0


def _cmd_machine(args: argparse.Namespace) -> int:
    return _run_on_machine(args)


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    print(obs.summarize_file(args.file, top=args.top))
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.selftest import run_selftest

    report = run_selftest(seed=args.seed, size=args.size, backend=args.backend)
    print(report.summary())
    return 0 if report.passed else 1


def _cmd_shell(args: argparse.Namespace) -> int:
    from repro.shell import SystolicShell

    SystolicShell().cmdloop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the multi-tenant engine pool over TCP until interrupted."""
    import asyncio
    import signal

    from repro.machine.pool import EnginePool
    from repro.serve.server import ReproServer

    tracer = None
    if args.trace or args.metrics:
        metrics.reset()
        metrics.enable()
    if args.trace:
        tracer = obs.start()

    faults = _fault_plan(args)

    async def serve() -> None:
        pool = EnginePool(
            backend=args.backend,
            max_concurrent=args.max_concurrent,
            admission_timeout=args.admission_timeout,
            faults=faults,
            query_deadline=args.query_deadline,
        )
        server = ReproServer(
            pool, host=args.host, port=args.port,
            shards=args.shards, shard_strategy=args.shard_strategy,
            store_dir=_store_dir(args),
        )
        host, port = await server.start()
        print(f"serving on {host}:{port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        finally:
            await server.stop()
            if faults is not None:
                print(faults.summary(), flush=True)
            print("server stopped", flush=True)

    try:
        asyncio.run(serve())
    finally:
        if args.trace:
            obs.stop()
            obs.write_jsonl(
                tracer, args.trace,
                metrics=metrics if args.metrics else None,
            )
            print(f"trace written to {args.trace}", flush=True)
        elif args.metrics:
            print(metrics.render(), flush=True)
        if args.trace or args.metrics:
            metrics.disable()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systolic-array relational queries over CSV files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("expression", help="relational-algebra expression")
        p.add_argument(
            "--relation", "-r", action="append", default=[],
            metavar="NAME=FILE", help="bind a relation name to a CSV file",
        )
        p.add_argument("--out", "-o", help="write the result to a CSV file")
        p.add_argument(
            "--optimize", action="store_true", default=True,
            help="apply algebraic rewrites (selection pushdown incl. "
                 "joins, dedup elimination, subplan sharing) before "
                 "execution (the default)",
        )
        p.add_argument(
            "--no-optimize", dest="optimize", action="store_false",
            help="execute the plan exactly as written",
        )

    def backend_option(p: argparse.ArgumentParser) -> None:
        from repro.systolic.engine import DEFAULT_BACKEND, ENGINES

        p.add_argument(
            "--backend", choices=sorted(ENGINES), default=None,
            help="array execution backend: "
                 f"{', '.join(sorted(ENGINES))} — results and pulse "
                 "counts are identical (default: $REPRO_BACKEND or "
                 f"{DEFAULT_BACKEND})",
        )

    def explain_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--explain", action="store_true",
            help="print the compiled physical plan (device assignments, "
                 "block counts, fused chains) and the predicted vs "
                 "simulated makespan",
        )

    def profile_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile", action="store_true",
            help="print per-stage host wall-clock times (load, parse, "
                 "optimize, compile, execute, materialize)",
        )

    def shard_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--shards", type=int, default=1, metavar="N",
            help="partition relations across N simulated machines and "
                 "run the plan shard-local with costed exchanges "
                 "(default 1: the single Fig 9-1 machine)",
        )
        p.add_argument(
            "--shard-strategy", choices=("hash", "range"), default="hash",
            help="how relations split across shards: multiplicative "
                 "hashing of the key (default) or equi-depth key ranges",
        )

    def fault_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--faults", metavar="SPEC", default=None,
            help="inject deterministic faults and recover from them: "
                 "comma-separated rules like "
                 "'device:join0:2,disk:R,shard:1,exchange:*,"
                 "device:join1:kill' (grammar in docs/ROBUSTNESS.md); "
                 "recovered results are bit-identical to a fault-free run",
        )
        p.add_argument(
            "--fault-seed", type=int, default=0, metavar="N",
            help="seed for the fault plan's deterministic coin flips "
                 "(probability rules; default 0)",
        )

    def store_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store-dir", metavar="DIR", default=None,
            help="attach a persistent columnar relation store rooted at "
                 "DIR (docs/STORAGE.md): stored relations are queryable "
                 "by name, selections prune chunks through the grid "
                 "index during the disk read (default: $REPRO_STORE_DIR)",
        )

    def obs_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", metavar="FILE",
            help="record spans for the whole run (compile, physical "
                 "ops, device executions, engine runs) and write a "
                 "Chrome trace-event file — open it in chrome://tracing "
                 "or https://ui.perfetto.dev",
        )
        p.add_argument(
            "--metrics", action="store_true",
            help="collect the repro.obs metrics registry during the "
                 "run and print it afterwards",
        )

    query = sub.add_parser("query", help="evaluate on an execution engine")
    common(query)
    query.add_argument(
        "--engine", choices=("systolic", "software"), default="systolic",
        help="pulse-level arrays (default) or the software reference",
    )
    query.add_argument(
        "--machine", action="store_true",
        help="run on the Fig 9-1 integrated database machine instead "
             "(timed physical plan; implies a machine-resident catalog)",
    )
    explain_option(query)
    profile_option(query)
    obs_options(query)
    backend_option(query)
    shard_options(query)
    fault_options(query)
    store_option(query)
    query.set_defaults(handler=_cmd_query)

    machine = sub.add_parser(
        "machine", help="run on the Fig 9-1 integrated database machine"
    )
    common(machine)
    machine.add_argument(
        "--logic-per-track", action="store_true",
        help="give the disk §9's logic-per-track selection capability",
    )
    machine.add_argument(
        "--store-and-forward", action="store_true",
        help="disable §9 chain pipelining: every operation runs to "
             "completion before its consumer starts",
    )
    explain_option(machine)
    profile_option(machine)
    obs_options(machine)
    backend_option(machine)
    shard_options(machine)
    fault_options(machine)
    store_option(machine)
    machine.set_defaults(handler=_cmd_machine)

    selftest = sub.add_parser(
        "selftest",
        help="verify every array against the reference algebra",
    )
    selftest.add_argument("--seed", type=int, default=0)
    selftest.add_argument(
        "--size", type=int, default=8,
        help="relation cardinality used by the sweep (default 8)",
    )
    backend_option(selftest)
    selftest.set_defaults(handler=_cmd_selftest)

    shell = sub.add_parser(
        "shell", help="interactive session with the database machine"
    )
    shell.set_defaults(handler=_cmd_shell)

    serve = sub.add_parser(
        "serve",
        help="serve concurrent multi-tenant queries over TCP "
             "(newline-delimited JSON protocol, docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=4, metavar="N",
        help="queries executing simultaneously; excess queries queue "
             "at the admission gate (default 4)",
    )
    serve.add_argument(
        "--admission-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long a query may wait for a pool slot before being "
             "refused with an admission error (default 30)",
    )
    serve.add_argument(
        "--trace", metavar="FILE",
        help="on shutdown, write every span (and --metrics counters) "
             "of the serving run as a JSON-lines trace file",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="collect the metrics registry while serving (printed on "
             "shutdown, or embedded in --trace output)",
    )
    serve.add_argument(
        "--query-deadline", type=float, default=None, metavar="SECONDS",
        help="cancel any query still running after SECONDS with a "
             "deadline error and free its pool slot (default: "
             "$REPRO_QUERY_DEADLINE, else unlimited)",
    )
    backend_option(serve)
    shard_options(serve)
    fault_options(serve)
    store_option(serve)
    serve.set_defaults(handler=_cmd_serve)

    trace = sub.add_parser(
        "trace", help="inspect trace files written by --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="per-span count/total/share table for a trace file "
             "(Chrome trace-event or JSON lines)",
    )
    summarize.add_argument("file", help="path to the trace file")
    summarize.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N most expensive span names",
    )
    summarize.set_defaults(handler=_cmd_trace_summarize)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
