"""The persistent columnar relation store (out-of-core §8 blocks).

The paper's machine assumes base relations arrive from mass storage in
blocks; everywhere else in this repo the disk is a pure *timing* model
over in-memory relations.  This module stores relations for real:

* one directory per relation holding ``chunk-NNNNN.bin`` files —
  column-major little-endian int64, ``chunk_rows`` tuples per chunk
  (the §8 block unit) — plus a ``manifest.json`` describing schema,
  chunk row counts, per-chunk per-column min/max **zone maps**, and an
  optional :class:`~repro.store.grid.GridIndex`;
* reads are chunk-at-a-time through ``numpy.memmap``, so a selection
  touches only the chunks its predicate can match — the surviving
  chunks are filtered host-side, the machine never sees pruned bytes;
* a relation's **digest** is the SHA-256 of its manifest bytes, the
  unit the plan cache's content fingerprint folds in: rewriting a
  relation (new chunking, new index, new data) changes the digest and
  invalidates exactly the plans compiled against the old bytes.

Durability is manifest-last: chunks and manifest are written into a
temporary sibling directory and atomically renamed over the old one, so
a relation is visible iff its manifest parses — a torn write leaves the
previous version (or nothing) in place, never a half relation.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigError, StoreError
from repro.obs import metrics
from repro.relational.algebra import COMPARISON_OPS
from repro.relational.domain import Domain, IntegerDomain
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef, Schema
from repro.store.grid import (
    GridIndex,
    build_scales,
    cell_coords,
    cluster_order,
)

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "STORE_DIR_ENV",
    "MANIFEST_VERSION",
    "RelationStore",
    "StoredRelation",
    "StoreScan",
]

#: Tuples per chunk file — the store's §8 block unit.
DEFAULT_CHUNK_ROWS = 65536

#: Environment variable naming the default store root.
STORE_DIR_ENV = "REPRO_STORE_DIR"

MANIFEST_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")

_ELEMENT_DTYPE = np.dtype("<i8")
_ELEMENT_BYTES = _ELEMENT_DTYPE.itemsize

#: JSON-safe domain value types; anything else fails loudly on write
#: instead of coming back subtly different after a JSON round trip.
_JSON_VALUE_TYPES = (str, int, float, bool, type(None))


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise StoreError(
            f"invalid relation name {name!r}: need a filesystem-safe "
            f"identifier matching {_NAME_RE.pattern}"
        )
    return name


# -- schema (de)serialisation ----------------------------------------------


def _domain_to_json(domain: Domain) -> dict:
    if isinstance(domain, IntegerDomain):
        return {"kind": "integer", "name": domain.name}
    values = list(domain)
    for value in values:
        if isinstance(value, bool) or not isinstance(
            value, _JSON_VALUE_TYPES
        ):
            raise StoreError(
                f"domain {domain.name!r} holds {value!r} "
                f"({type(value).__name__}), which does not survive a JSON "
                f"round trip; store only str/int/float/None dictionary values"
            )
    return {
        "kind": "dictionary",
        "name": domain.name,
        "values": values,
        "frozen": domain.frozen,
    }


def _schema_to_json(schema: Schema) -> list[dict]:
    return [
        {"name": column.name, "domain": _domain_to_json(column.domain)}
        for column in schema
    ]


def _schema_from_json(data: list[dict]) -> Schema:
    domains: dict[str, Domain] = {}

    def domain_of(spec: dict) -> Domain:
        name = spec["name"]
        if name in domains:
            return domains[name]
        if spec["kind"] == "integer":
            domain: Domain = IntegerDomain(name)
        elif spec["kind"] == "dictionary":
            domain = Domain(name, spec["values"], frozen=spec["frozen"])
        else:
            raise StoreError(f"unknown domain kind {spec['kind']!r}")
        domains[name] = domain
        return domain

    try:
        return Schema.of(
            *((col["name"], domain_of(col["domain"])) for col in data)
        )
    except (KeyError, TypeError) as exc:
        raise StoreError(f"malformed schema in manifest: {exc}") from exc


# -- scan results ----------------------------------------------------------


@dataclass(frozen=True)
class StoreScan:
    """What one :meth:`StoredRelation.read` touched and produced.

    ``relation`` holds the (predicate-filtered) tuples; the counters
    describe the scan itself — ``rows_scanned`` and ``nbytes`` cover the
    chunks *read*, so a pruned scan bills only the surviving blocks.
    """

    relation: Relation
    chunks_total: int
    chunks_read: int
    rows_scanned: int
    nbytes: int

    @property
    def chunks_pruned(self) -> int:
        return self.chunks_total - self.chunks_read


@dataclass(frozen=True)
class _Chunk:
    file: str
    rows: int
    #: per-column (min, max) zone map.
    stats: tuple[tuple[int, int], ...]


class StoredRelation:
    """A read handle over one on-disk relation (manifest + chunks)."""

    def __init__(self, path: Path, manifest: dict, digest: str) -> None:
        self.path = path
        self.name = manifest["name"]
        self.digest = digest
        self.rows = int(manifest["rows"])
        self.chunk_rows = int(manifest["chunk_rows"])
        self.schema = _schema_from_json(manifest["schema"])
        self.arity = len(self.schema)
        self.chunks = tuple(
            _Chunk(
                file=spec["file"],
                rows=int(spec["rows"]),
                stats=tuple(
                    (int(lo), int(hi)) for lo, hi in spec["stats"]
                ),
            )
            for spec in manifest["chunks"]
        )
        index = manifest.get("index")
        self.index: Optional[GridIndex] = (
            GridIndex.from_json(index) if index is not None else None
        )

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    def chunk_bytes(self, chunk_id: int) -> int:
        return self.chunks[chunk_id].rows * self.arity * _ELEMENT_BYTES

    # -- raw column access --------------------------------------------------

    def chunk_column(self, chunk_id: int, position: int) -> np.ndarray:
        """One column of one chunk as a read-only memory map."""
        chunk = self.chunks[chunk_id]
        if not 0 <= position < self.arity:
            raise StoreError(
                f"column {position} out of range for arity {self.arity}"
            )
        return np.memmap(
            self.path / chunk.file,
            dtype=_ELEMENT_DTYPE,
            mode="r",
            offset=position * chunk.rows * _ELEMENT_BYTES,
            shape=(chunk.rows,),
        )

    def _chunk_array(self, chunk_id: int) -> np.ndarray:
        """One chunk as an (rows, arity) int64 array."""
        chunk = self.chunks[chunk_id]
        raw = np.fromfile(self.path / chunk.file, dtype=_ELEMENT_DTYPE)
        expected = chunk.rows * self.arity
        if raw.size != expected:
            raise StoreError(
                f"chunk {chunk.file} of {self.name!r} holds {raw.size} "
                f"elements, manifest says {expected}"
            )
        return raw.reshape(self.arity, chunk.rows).T

    # -- pruning ------------------------------------------------------------

    def select_chunks(
        self, column: ColumnRef, op: str, value: int
    ) -> list[int]:
        """Chunk ids that can contain rows matching the predicate.

        Grid-directory probe first (when the column is indexed and the
        operator is prunable), then per-chunk zone maps — always a
        superset of the true answer; :meth:`read` re-applies the exact
        predicate on the survivors.
        """
        if op not in COMPARISON_OPS:
            raise StoreError(f"unknown comparison operator {op!r}")
        if isinstance(value, bool) or not isinstance(value, int):
            raise StoreError(
                f"selection values are encoded integers, got {value!r}"
            )
        position = self.schema.resolve(column)
        metrics.inc("store.index_probes")
        if self.index is not None:
            candidates = self.index.candidate_chunks(position, op, value)
        else:
            candidates = None
        survivors = []
        for chunk_id, chunk in enumerate(self.chunks):
            if candidates is not None and chunk_id not in candidates:
                continue
            lo, hi = chunk.stats[position]
            if _zone_admits(op, value, lo, hi):
                survivors.append(chunk_id)
        return survivors

    # -- reading ------------------------------------------------------------

    def read(
        self,
        selection: Optional[tuple[ColumnRef, str, int]] = None,
    ) -> StoreScan:
        """Scan the relation, pruning chunks when ``selection`` allows.

        Returns a :class:`StoreScan` whose relation holds the matching
        tuples (all tuples when ``selection`` is ``None``); only the
        chunks actually read are counted and billed.
        """
        if selection is None:
            chunk_ids = list(range(self.n_chunks))
            position = None
        else:
            column, op, value = selection
            chunk_ids = self.select_chunks(column, op, value)
            position = self.schema.resolve(column)
        rows_scanned = 0
        nbytes = 0
        parts: list[np.ndarray] = []
        for chunk_id in chunk_ids:
            block = self._chunk_array(chunk_id)
            rows_scanned += len(block)
            nbytes += self.chunk_bytes(chunk_id)
            if position is not None:
                ufunc = getattr(np, _NUMPY_OPS[op])
                block = block[ufunc(block[:, position], value)]
            parts.append(block)
        metrics.inc("store.chunks_read", len(chunk_ids))
        metrics.inc("store.chunks_pruned", self.n_chunks - len(chunk_ids))
        metrics.inc("store.bytes_read", nbytes)
        if parts:
            combined = np.concatenate(parts)
            tuples = map(tuple, combined.tolist())
        else:
            tuples = iter(())
        return StoreScan(
            relation=Relation(self.schema, tuples),
            chunks_total=self.n_chunks,
            chunks_read=len(chunk_ids),
            rows_scanned=rows_scanned,
            nbytes=nbytes,
        )

    def __repr__(self) -> str:
        indexed = (
            f", grid on {list(self.index.columns)}" if self.index else ""
        )
        return (
            f"StoredRelation({self.name!r}, {self.rows} rows, "
            f"{self.n_chunks} chunks{indexed})"
        )


_NUMPY_OPS = {
    "==": "equal",
    "!=": "not_equal",
    "<": "less",
    "<=": "less_equal",
    ">": "greater",
    ">=": "greater_equal",
}


def _zone_admits(op: str, value: int, lo: int, hi: int) -> bool:
    if op == "==":
        return lo <= value <= hi
    if op == "!=":
        return not (lo == hi == value)
    if op == "<":
        return lo < value
    if op == "<=":
        return lo <= value
    if op == ">":
        return hi > value
    return hi >= value  # ">="


class RelationStore:
    """A directory of persistent relations, one subdirectory each."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get(STORE_DIR_ENV)
        if not root:
            raise ConfigError(
                f"RelationStore needs a root directory: pass one or set "
                f"{STORE_DIR_ENV}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: name -> (manifest mtime_ns, handle); reopened when the
        #: manifest changes underneath us.
        self._handles: dict[str, tuple[int, StoredRelation]] = {}

    # -- catalogue ----------------------------------------------------------

    def names(self) -> list[str]:
        """Relations with a parseable manifest, sorted."""
        found = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and (entry / "manifest.json").is_file():
                found.append(entry.name)
        return found

    def holds(self, name: str) -> bool:
        return (self.root / name / "manifest.json").is_file() if (
            isinstance(name, str) and _NAME_RE.match(name)
        ) else False

    def drop(self, name: str) -> None:
        """Remove a relation (idempotent)."""
        _check_name(name)
        self._handles.pop(name, None)
        target = self.root / name
        if target.exists():
            shutil.rmtree(target)

    def fingerprint(self) -> tuple[tuple[str, str], ...]:
        """(name, manifest digest) per relation — the plan-cache input."""
        return tuple(
            (name, self.open(name).digest) for name in self.names()
        )

    # -- opening ------------------------------------------------------------

    def open(self, name: str) -> StoredRelation:
        _check_name(name)
        manifest_path = self.root / name / "manifest.json"
        try:
            mtime = manifest_path.stat().st_mtime_ns
        except OSError:
            raise StoreError(
                f"no stored relation named {name!r}; have {self.names()}"
            ) from None
        cached = self._handles.get(name)
        if cached is not None and cached[0] == mtime:
            return cached[1]
        raw = manifest_path.read_bytes()
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt manifest for {name!r}: {exc}"
            ) from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise StoreError(
                f"manifest for {name!r} has version "
                f"{manifest.get('version')!r}, this library reads "
                f"{MANIFEST_VERSION}"
            )
        handle = StoredRelation(
            self.root / name,
            manifest,
            hashlib.sha256(raw).hexdigest(),
        )
        self._handles[name] = (mtime, handle)
        return handle

    # -- writing ------------------------------------------------------------

    def write(
        self,
        name: str,
        relation: Relation,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        index_columns: Optional[Sequence[ColumnRef]] = None,
    ) -> StoredRelation:
        """Persist a relation, replacing any previous version."""
        array = _to_array(relation)
        return self._write_rows(
            name, array, relation.schema, chunk_rows, index_columns
        )

    def write_array(
        self,
        name: str,
        rows: np.ndarray,
        schema: Schema,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        index_columns: Optional[Sequence[ColumnRef]] = None,
    ) -> StoredRelation:
        """Persist an already-encoded ``(n, arity)`` integer array.

        The bulk-load path: generators can hand the store millions of
        rows without building a :class:`Relation` first.  Rows must be
        distinct under the relation's set semantics — the store trusts
        the caller here and the machine's engines deduplicate anyway.
        """
        array = np.asarray(rows)
        if array.ndim != 2 or array.shape[1] != len(schema):
            raise StoreError(
                f"write_array needs an (n, {len(schema)}) array, got shape "
                f"{array.shape}"
            )
        try:
            array = array.astype(np.int64, casting="safe", copy=False)
        except TypeError as exc:
            raise StoreError(
                f"stored elements must fit int64: {exc}"
            ) from exc
        return self._write_rows(name, array, schema, chunk_rows,
                                index_columns)

    def _write_rows(
        self,
        name: str,
        array: np.ndarray,
        schema: Schema,
        chunk_rows: int,
        index_columns: Optional[Sequence[ColumnRef]],
    ) -> StoredRelation:
        _check_name(name)
        if chunk_rows < 1:
            raise StoreError(f"chunk_rows must be >= 1, got {chunk_rows}")
        n = len(array)
        n_chunks = -(-n // chunk_rows) if n else 0

        if index_columns is None:
            positions = list(range(min(2, len(schema))))
        else:
            positions = schema.resolve_many(index_columns)

        index: Optional[GridIndex] = None
        if positions and n:
            cells_per_axis = _cells_per_axis(n_chunks, len(positions))
            scales = [
                build_scales(array[:, p], cells_per_axis) for p in positions
            ]
            coords = cell_coords([array[:, p] for p in positions], scales)
            order = cluster_order(coords)
            array = array[order]
            coords = coords[order]
            chunk_of_row = np.arange(n) // chunk_rows
            index = GridIndex.build(positions, coords, scales, chunk_of_row)

        staging = self.root / f".tmp-{name}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            chunks = []
            for chunk_id in range(n_chunks):
                block = array[chunk_id * chunk_rows:(chunk_id + 1) * chunk_rows]
                file = f"chunk-{chunk_id:05d}.bin"
                block.T.astype(_ELEMENT_DTYPE).tofile(staging / file)
                chunks.append({
                    "file": file,
                    "rows": len(block),
                    "stats": [
                        [int(block[:, c].min()), int(block[:, c].max())]
                        for c in range(len(schema))
                    ],
                })
            manifest = {
                "version": MANIFEST_VERSION,
                "name": name,
                "rows": n,
                "arity": len(schema),
                "chunk_rows": chunk_rows,
                "schema": _schema_to_json(schema),
                "chunks": chunks,
                "index": index.to_json() if index is not None else None,
            }
            (staging / "manifest.json").write_text(
                json.dumps(manifest, indent=1, sort_keys=True) + "\n"
            )
            final = self.root / name
            if final.exists():
                shutil.rmtree(final)
            os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._handles.pop(name, None)
        return self.open(name)

    def __repr__(self) -> str:
        return f"RelationStore({str(self.root)!r}, {len(self.names())} relations)"


def _cells_per_axis(n_chunks: int, ndims: int) -> int:
    """Grid resolution: ≈4 cells per chunk, split evenly over the axes."""
    if n_chunks <= 1:
        return 1
    target = 4 * n_chunks
    per_axis = max(1, round(target ** (1.0 / ndims)))
    return per_axis


def _to_array(relation: Relation) -> np.ndarray:
    if len(relation) == 0:
        return np.empty((0, relation.arity), dtype=np.int64)
    try:
        return np.array(relation.tuples, dtype=np.int64)
    except OverflowError as exc:
        raise StoreError(
            f"stored elements must fit a signed 64-bit integer: {exc}"
        ) from exc
