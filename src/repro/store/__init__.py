"""Out-of-core columnar relation storage with grid-file indexing.

``repro.store`` is the persistence layer under the Fig 9-1 machine's
disk: relations live on the host filesystem as chunked column-major
binary files plus a JSON manifest, and a grid-file directory
(:class:`~repro.store.grid.GridIndex`) lets equality/range selections
resolve to a chunk subset before a single byte is read — §8's block
decomposition applied to storage, with pruning happening *ahead* of the
arrays.  :class:`~repro.machine.disk.MachineDisk` attaches a
:class:`RelationStore` to make stored relations queryable; the physical
planner costs pruned reads and ``explain()`` shows the pruning.

See ``docs/STORAGE.md`` for the on-disk layout and a worked
grid-directory example.
"""

from repro.store.columnar import (
    DEFAULT_CHUNK_ROWS,
    MANIFEST_VERSION,
    STORE_DIR_ENV,
    RelationStore,
    StoredRelation,
    StoreScan,
)
from repro.store.grid import GridIndex, build_scales, cell_coords, cluster_order

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "MANIFEST_VERSION",
    "STORE_DIR_ENV",
    "RelationStore",
    "StoredRelation",
    "StoreScan",
    "GridIndex",
    "build_scales",
    "cell_coords",
    "cluster_order",
]
