"""Grid-file indexing for the columnar relation store.

Following Nievergelt/Hinterberger/Sevcik's grid file (via *Using Grid
Files for a Relational Database Management System*), a relation's value
space is cut by per-column **scales** — sorted split points — into a
grid of cells, and a **directory** maps each occupied cell to the set
of chunks holding tuples that fall in it.  A single-column comparison
predicate then resolves to a cell interval along that column's axis,
and the union of the interval's directory entries is a *superset* of
the chunks that can contain matches — every other chunk is pruned
without being read.

Pruning only bites when tuples near each other in grid space share
chunks, so :func:`cluster_order` sorts rows by the Morton (z-order)
interleaving of their cell coordinates before chunking: each chunk then
covers a compact blob of cells and *every* indexed column prunes, not
just the first sort key.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional, Sequence

import numpy as np

from repro.errors import StoreError

__all__ = ["GridIndex", "build_scales", "cell_coords", "cluster_order"]

#: Comparison operators the index can answer (a superset check; the
#: store re-applies the exact predicate on the surviving chunks).
_PRUNABLE_OPS = ("==", "<", "<=", ">", ">=")


def build_scales(
    values: np.ndarray, cells: int
) -> tuple[int, ...]:
    """Split points cutting ``values`` into ≈``cells`` equal-count cells.

    Scales are strictly increasing value boundaries; a value ``v`` lands
    in cell ``bisect_right(scales, v)``, so ``k`` split points make
    ``k + 1`` cells.  Quantile placement keeps cells balanced under any
    value distribution, and duplicate boundaries collapse (a heavily
    repeated value simply owns its cell).
    """
    if cells < 1:
        raise StoreError(f"a grid axis needs >= 1 cells, got {cells}")
    if cells == 1 or len(values) == 0:
        return ()
    ordered = np.sort(values)
    positions = [
        (len(ordered) * i) // cells for i in range(1, cells)
    ]
    splits = sorted({int(ordered[p]) for p in positions})
    return tuple(splits)


def cell_coords(
    columns: Sequence[np.ndarray], scales: Sequence[Sequence[int]]
) -> np.ndarray:
    """Per-row grid-cell coordinates (n × ndims) for indexed columns."""
    coords = np.empty((len(columns[0]), len(columns)), dtype=np.int64)
    for d, (values, axis) in enumerate(zip(columns, scales)):
        coords[:, d] = np.searchsorted(
            np.asarray(axis, dtype=np.int64), values, side="right"
        ) if len(axis) else 0
    return coords


def cluster_order(coords: np.ndarray, bits: int = 21) -> np.ndarray:
    """A stable row order sorting by Morton-interleaved cell coordinates.

    Interleaving the coordinate bits (z-order) keeps rows from the same
    and neighbouring cells adjacent in *every* indexed dimension, so
    chunk boundaries cut the grid into compact blobs instead of slabs
    along the first axis only.
    """
    if coords.ndim != 2:
        raise StoreError("cluster_order expects an (n, ndims) array")
    n, ndims = coords.shape
    if n == 0 or ndims == 0:
        return np.arange(n)
    key = np.zeros(n, dtype=np.uint64)
    unsigned = coords.astype(np.uint64)
    for bit in range(bits):
        for d in range(ndims):
            key |= ((unsigned[:, d] >> np.uint64(bit)) & np.uint64(1)) << (
                np.uint64(bit * ndims + d)
            )
    return np.argsort(key, kind="stable")


class GridIndex:
    """Per-relation grid directory: cell coordinates → chunk ids."""

    def __init__(
        self,
        columns: Sequence[int],
        scales: Sequence[Sequence[int]],
        directory: dict[tuple[int, ...], tuple[int, ...]],
    ) -> None:
        if len(columns) != len(scales):
            raise StoreError(
                f"grid index needs one scale per column: "
                f"{len(columns)} columns, {len(scales)} scales"
            )
        self.columns = tuple(int(c) for c in columns)
        self.scales = tuple(tuple(int(s) for s in axis) for axis in scales)
        self.directory = {
            tuple(int(c) for c in cell): tuple(sorted(int(i) for i in ids))
            for cell, ids in directory.items()
        }

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        columns: Sequence[int],
        coords: np.ndarray,
        scales: Sequence[Sequence[int]],
        chunk_of_row: np.ndarray,
    ) -> "GridIndex":
        """Directory from per-row cell coordinates and chunk assignment."""
        directory: dict[tuple[int, ...], set[int]] = {}
        if len(coords):
            cells = np.concatenate(
                [coords, chunk_of_row.reshape(-1, 1)], axis=1
            )
            for row in np.unique(cells, axis=0):
                cell = tuple(int(c) for c in row[:-1])
                directory.setdefault(cell, set()).add(int(row[-1]))
        return cls(
            columns,
            scales,
            {cell: tuple(sorted(ids)) for cell, ids in directory.items()},
        )

    # -- probing ------------------------------------------------------------

    def axis_of(self, position: int) -> Optional[int]:
        """The grid dimension indexing column ``position``, if any."""
        try:
            return self.columns.index(position)
        except ValueError:
            return None

    def candidate_chunks(
        self, position: int, op: str, value: int
    ) -> Optional[frozenset[int]]:
        """Chunk ids that *may* hold rows satisfying the predicate.

        ``None`` means the index cannot help (unindexed column or a
        non-prunable operator such as ``!=``) and the caller should fall
        back to per-chunk zone maps.  ``cell(x) = bisect_right(scale,
        x)`` is monotone in ``x``, so a comparison against ``value``
        bounds the matching cells to one side of ``cell(value)`` —
        the returned set is always a superset of the true answer.
        """
        axis = self.axis_of(position)
        if axis is None or op not in _PRUNABLE_OPS:
            return None
        cell = bisect_right(self.scales[axis], value)
        if op == "==":
            keep = lambda c: c == cell  # noqa: E731
        elif op in ("<", "<="):
            keep = lambda c: c <= cell  # noqa: E731
        else:
            keep = lambda c: c >= cell  # noqa: E731
        hits: set[int] = set()
        for coords, ids in self.directory.items():
            if keep(coords[axis]):
                hits.update(ids)
        return frozenset(hits)

    # -- (de)serialisation --------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-encodable form, deterministic for fingerprinting."""
        return {
            "columns": list(self.columns),
            "scales": [list(axis) for axis in self.scales],
            "directory": [
                [list(cell), list(ids)]
                for cell, ids in sorted(self.directory.items())
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "GridIndex":
        try:
            return cls(
                data["columns"],
                data["scales"],
                {tuple(cell): tuple(ids) for cell, ids in data["directory"]},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed grid index: {exc}") from exc

    def __repr__(self) -> str:
        cells = len(self.directory)
        return (
            f"GridIndex(columns={list(self.columns)}, "
            f"{cells} occupied cells)"
        )
