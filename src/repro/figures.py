"""Render the paper's figures from the live simulated hardware.

Each function draws an ASCII schematic of an *actual constructed
network* — cells and wires as built by :mod:`repro.arrays` — so the
diagrams cannot drift from the implementation.  Covered:

* Fig 2-1: the orthogonal and linear connection patterns;
* Fig 3-1 / 3-3 / 4-1 / 6-1: the operator arrays, drawn from their
  builders' layouts;
* Fig 7-2: the division array with its preloaded elements;
* Fig 9-1: the integrated machine's boxes and the crossbar.

``python examples/render_figures.py`` prints the full set.
"""

from __future__ import annotations

from typing import Mapping

from repro.machine.system import SystolicDatabaseMachine
from repro.systolic.wiring import Network

__all__ = [
    "network_summary",
    "grid_schematic",
    "division_schematic",
    "machine_schematic",
]


def network_summary(network: Network) -> str:
    """A one-glance census of a network: cell types, wires, boundaries."""
    histogram: dict[str, int] = {}
    for cell in network:
        kind = type(cell).__name__
        histogram[kind] = histogram.get(kind, 0) + 1
    lines = [f"network {network.name!r}:"]
    for kind in sorted(histogram):
        lines.append(f"  {histogram[kind]:>4} × {kind}")
    lines.append(f"  {len(network.wires):>4} wires")
    lines.append(f"  {len(network.feeders):>4} boundary feeders")
    lines.append(f"  {len(network.taps):>4} output taps")
    dangling = network.unconnected_inputs()
    lines.append(f"  {len(dangling):>4} unconnected inputs")
    return "\n".join(lines)


def grid_schematic(
    layout: Mapping[str, tuple[int, int]],
    label: Mapping[str, str] | None = None,
    cell_width: int = 5,
) -> str:
    """Draw a grid layout the way the paper draws its arrays.

    ``layout`` is the cell-name → (row, col) mapping the array builders
    return; ``label`` optionally overrides the text in each box
    (default: a glyph from the cell-name prefix: ``cmp``→``=``,
    ``acc``→``+``, ``dm``/``dg``/``dv``→``÷``).
    """
    if not layout:
        return "(empty layout)"
    rows = max(r for r, _ in layout.values()) + 1
    cols = max(c for _, c in layout.values()) + 1
    boxes = [["" for _ in range(cols)] for _ in range(rows)]
    for name, (row, col) in layout.items():
        if label and name in label:
            text = label[name]
        elif name.startswith("cmp"):
            text = "="
        elif name.startswith("acc"):
            text = "+"
        elif name.startswith(("dm", "dg", "dv")):
            text = "÷"
        else:
            text = "?"
        boxes[row][col] = text
    inner = cell_width - 2
    lines = []
    for row in range(rows):
        tops, mids, bottoms = [], [], []
        for col in range(cols):
            text = boxes[row][col]
            if text:
                tops.append("+" + "-" * inner + "+")
                mids.append("|" + text.center(inner) + "|")
                bottoms.append("+" + "-" * inner + "+")
            else:
                tops.append(" " * cell_width)
                mids.append(" " * cell_width)
                bottoms.append(" " * cell_width)
        lines.append(" ".join(tops))
        lines.append("-".join(mids))  # the horizontal t-wires
        lines.append(" ".join(bottoms))
    return "\n".join(lines)


def division_schematic(distinct_x: list, divisor: list) -> str:
    """Fig 7-2's shape: dividend columns beside the divisor rows."""
    lines = ["  dividend     divisor rows"]
    for x in distinct_x:
        stored = " ".join(f"[{value}]" for value in divisor)
        lines.append(f"  [{x}]->[gate] -> {stored} -> AND")
    lines.append("   ^x     ^y   (pairs stream upward; the sweep moves right)")
    return "\n".join(lines)


def machine_schematic(machine: SystolicDatabaseMachine) -> str:
    """Fig 9-1: memories on the left, devices on the right, crossbar between."""
    memory_names = [memory.name for memory in machine.memories]
    device_names = [device.name for device in machine.devices] + ["disk"]
    height = max(len(memory_names), len(device_names))
    memory_width = max(len(name) for name in memory_names) + 2
    lines = ["      (Fig 9-1)"]
    for index in range(height):
        memory = (
            f"[{memory_names[index]}]".ljust(memory_width)
            if index < len(memory_names) else " " * memory_width
        )
        device = (
            f"[{device_names[index]}]" if index < len(device_names) else ""
        )
        crossbar = "--X--" if index < len(memory_names) else "  |  "
        lines.append(f"  {memory}{crossbar}{device}")
    lines.append(
        f"  crossbar: every memory to every device, "
        f"{machine.crossbar.configurations()} links so far"
    )
    return "\n".join(lines)
