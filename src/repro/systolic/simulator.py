"""The synchronous pulse simulator.

All data in a systolic array "moves synchronously" (§2.1): on every
pulse each processor latches its inputs, performs its short
computation, and emits outputs that arrive at neighbours on the next
pulse.  :class:`SystolicSimulator` implements exactly that two-phase
semantics over a :class:`~repro.systolic.wiring.Network`:

1. **Compute phase** — every cell's :meth:`~repro.systolic.cell.Cell.step`
   runs on the tokens latched at the end of the previous pulse (boundary
   inputs come from feeders, evaluated at the current pulse).
2. **Transfer phase** — outputs propagate along wires into the latches
   the next pulse will read; tapped outputs are recorded into
   collectors.

Because phase 1 reads only previous-pulse latches, cell evaluation
order is immaterial — the simulator is deterministic and faithful to a
globally-clocked array.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.systolic.cell import Cell
from repro.systolic.metrics import ActivityMeter
from repro.systolic.streams import Collector
from repro.systolic.values import Token
from repro.systolic.wiring import Endpoint, Network

__all__ = ["SystolicSimulator"]

#: Optional per-pulse observer: (pulse, inputs-by-cell, outputs-by-cell).
PulseObserver = Callable[[int, dict[str, dict[str, Optional[Token]]], dict[str, dict[str, Optional[Token]]]], None]


class SystolicSimulator:
    """Drives a network pulse by pulse and records tap output.

    Parameters
    ----------
    network:
        The cell network to simulate.
    meter:
        Optional :class:`ActivityMeter` for utilization accounting.
    observer:
        Optional callback invoked after every pulse with the full
        input/output picture (used by the trace recorder).
    strict:
        Validate the network with strict wiring checks before running.
    """

    def __init__(
        self,
        network: Network,
        meter: Optional[ActivityMeter] = None,
        observer: Optional[PulseObserver] = None,
        strict: bool = False,
    ) -> None:
        network.validate(strict=strict)
        self.network = network
        self.meter = meter
        self.observer = observer
        self.pulse = 0
        #: input endpoint -> token latched for the *next* compute phase
        self._latches: dict[Endpoint, Token] = {}
        self.collectors: dict[str, Collector] = {
            name: Collector(name) for name in network.taps
        }
        #: tap lookup: output endpoint -> collector names observing it
        self._taps_by_endpoint: dict[Endpoint, list[str]] = {}
        for name, endpoint in network.taps.items():
            self._taps_by_endpoint.setdefault(endpoint, []).append(name)
        for cell in network:
            cell.reset()

    # -- running -----------------------------------------------------------

    def step_once(self) -> None:
        """Advance the array by one pulse."""
        network = self.network
        pulse = self.pulse
        feeders = network.feeders

        inputs_by_cell: dict[str, dict[str, Optional[Token]]] = {}
        busy: set[str] = set()
        for name, cell in network.cells.items():
            inputs: dict[str, Optional[Token]] = {}
            for port in cell.IN_PORTS:
                endpoint = Endpoint(name, port)
                token = self._latches.pop(endpoint, None)
                feeder = feeders.get(endpoint)
                if feeder is not None:
                    fed = feeder(pulse)
                    if fed is not None:
                        if token is not None:
                            raise SimulationError(
                                f"pulse {pulse}: feeder and wire both "
                                f"delivered to {endpoint!r}"
                            )
                        token = fed
                inputs[port] = token
                if token is not None:
                    busy.add(name)
            inputs_by_cell[name] = inputs

        outputs_by_cell: dict[str, dict[str, Optional[Token]]] = {}
        for name, cell in network.cells.items():
            try:
                outputs = cell.step(inputs_by_cell[name]) or {}
            except SimulationError as exc:
                raise SimulationError(f"pulse {pulse}: {exc}") from exc
            for port in outputs:
                if port not in cell.OUT_PORTS:
                    raise SimulationError(
                        f"pulse {pulse}: cell {name!r} emitted on undeclared "
                        f"output port {port!r}"
                    )
            outputs_by_cell[name] = outputs

        # Transfer phase: move outputs into next-pulse latches and taps.
        new_latches: dict[Endpoint, Token] = {}
        for wire in network.wires:
            token = outputs_by_cell.get(wire.source.cell, {}).get(wire.source.port)
            if token is not None:
                if wire.target in new_latches:
                    raise SimulationError(
                        f"pulse {pulse}: two tokens latched at {wire.target!r}"
                    )
                new_latches[wire.target] = token
        # Preserve latches not consumed this pulse?  No: a systolic latch
        # holds data for exactly one pulse; anything unconsumed is gone.
        self._latches = new_latches

        for endpoint, names in self._taps_by_endpoint.items():
            token = outputs_by_cell.get(endpoint.cell, {}).get(endpoint.port)
            if token is not None:
                for tap_name in names:
                    self.collectors[tap_name].record(pulse, token)

        if self.meter is not None:
            self.meter.observe(pulse, busy, len(network.cells))
        if self.observer is not None:
            self.observer(pulse, inputs_by_cell, outputs_by_cell)
        self.pulse += 1

    def run(self, pulses: int) -> "SystolicSimulator":
        """Advance by ``pulses`` pulses; returns self for chaining."""
        if pulses < 0:
            raise SimulationError(f"cannot run {pulses} pulses")
        for _ in range(pulses):
            self.step_once()
        return self

    def run_until_quiet(self, settle: int = 4, limit: int = 1_000_000) -> int:
        """Run until no token moves for ``settle`` consecutive pulses.

        Returns the number of pulses executed.  Useful for drains after
        all feeders are exhausted; ``limit`` guards against networks
        with self-sustaining token loops.
        """
        quiet = 0
        executed = 0
        while quiet < settle:
            before = self.pulse
            had_latch = bool(self._latches)
            will_feed = any(
                feeder(before) is not None for feeder in self.network.feeders.values()
            )
            self.step_once()
            executed += 1
            if had_latch or will_feed or self._latches:
                quiet = 0
            else:
                quiet += 1
            if executed > limit:
                raise SimulationError(
                    f"network {self.network.name!r} did not quiesce within "
                    f"{limit} pulses"
                )
        return executed

    # -- results -----------------------------------------------------------

    def collector(self, name: str) -> Collector:
        """Look up a collector by tap name."""
        try:
            return self.collectors[name]
        except KeyError:
            raise SimulationError(
                f"no tap named {name!r}; have {sorted(self.collectors)}"
            ) from None

    def __repr__(self) -> str:
        return f"SystolicSimulator({self.network!r}, pulse={self.pulse})"
