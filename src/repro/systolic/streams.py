"""Feeders and collectors: the array's boundary with the outside world.

The paper's arrays receive data from memories in carefully *staggered*
schedules (§3.1–§3.2) and emit results off an edge at
schedule-determined pulses.  Feeders produce the inbound schedule;
:class:`Collector` records what leaves a tap, pulse-stamped, so the
operator layer can map arrival times back to tuple indices exactly as a
hardware result-collector would.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.errors import SimulationError
from repro.systolic.values import Token

__all__ = [
    "ScheduleFeeder",
    "PeriodicFeeder",
    "ConstantFeeder",
    "silent",
    "Collector",
]


class ScheduleFeeder:
    """Feeds an explicit ``{pulse: token}`` schedule; empty otherwise."""

    def __init__(self, schedule: dict[int, Token]) -> None:
        for pulse in schedule:
            if pulse < 0:
                raise SimulationError(f"schedule pulse {pulse} is negative")
        self._schedule = dict(schedule)

    def __call__(self, pulse: int) -> Optional[Token]:
        return self._schedule.get(pulse)

    @property
    def last_pulse(self) -> int:
        """The final pulse on which this feeder emits (-1 if never)."""
        return max(self._schedule, default=-1)

    def __repr__(self) -> str:
        return f"ScheduleFeeder({len(self._schedule)} entries)"


class PeriodicFeeder:
    """Feeds ``tokens[q]`` at pulse ``start + q * period``.

    This is the paper's tuple-feeding pattern: "each tuple is two steps
    behind the tuple that preceded it" (§3.2) is ``period=2``; the
    fixed-relation variant of §8 uses ``period=1``.
    """

    def __init__(self, tokens: Sequence[Optional[Token]], start: int, period: int) -> None:
        if period < 1:
            raise SimulationError(f"feeder period must be >= 1, got {period}")
        if start < 0:
            raise SimulationError(f"feeder start must be >= 0, got {start}")
        self._tokens = list(tokens)
        self._start = start
        self._period = period

    def __call__(self, pulse: int) -> Optional[Token]:
        offset = pulse - self._start
        if offset < 0 or offset % self._period:
            return None
        index = offset // self._period
        if index >= len(self._tokens):
            return None
        return self._tokens[index]

    @property
    def last_pulse(self) -> int:
        """The final pulse on which this feeder can emit."""
        if not self._tokens:
            return -1
        return self._start + (len(self._tokens) - 1) * self._period

    def __repr__(self) -> str:
        return (
            f"PeriodicFeeder({len(self._tokens)} tokens, start={self._start}, "
            f"period={self._period})"
        )


class ConstantFeeder:
    """Feeds the same token every pulse (optionally within a window)."""

    def __init__(
        self, token: Token, start: int = 0, stop: Optional[int] = None
    ) -> None:
        self._token = token
        self._start = start
        self._stop = stop

    def __call__(self, pulse: int) -> Optional[Token]:
        if pulse < self._start:
            return None
        if self._stop is not None and pulse >= self._stop:
            return None
        return self._token

    def __repr__(self) -> str:
        window = f", start={self._start}, stop={self._stop}"
        return f"ConstantFeeder({self._token!r}{window})"


def silent(pulse: int) -> Optional[Token]:
    """A feeder that never emits (an explicitly-quiet boundary input)."""
    return None


class Collector:
    """Pulse-stamped record of the tokens leaving one tap.

    Only non-empty pulses are recorded.  ``at(pulse)`` answers "what
    left on pulse p" — the primitive a hardware collector's timing
    arithmetic is built on.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._records: list[tuple[int, Token]] = []
        self._by_pulse: dict[int, Token] = {}

    def record(self, pulse: int, token: Token) -> None:
        """Append one observation (called by the simulator)."""
        if pulse in self._by_pulse:
            raise SimulationError(
                f"collector {self.name!r} saw two tokens on pulse {pulse}"
            )
        self._records.append((pulse, token))
        self._by_pulse[pulse] = token

    # -- queries ---------------------------------------------------------

    @property
    def records(self) -> tuple[tuple[int, Token], ...]:
        """All observations as ``(pulse, token)`` pairs, in pulse order."""
        return tuple(self._records)

    def at(self, pulse: int) -> Optional[Token]:
        """The token recorded on ``pulse``, or None."""
        return self._by_pulse.get(pulse)

    def tokens(self) -> list[Token]:
        """Just the tokens, in arrival order."""
        return [token for _, token in self._records]

    def values(self) -> list[Any]:
        """Just the payloads, in arrival order."""
        return [token.value for _, token in self._records]

    def pulses(self) -> list[int]:
        """Pulses on which something arrived."""
        return [pulse for pulse, _ in self._records]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[tuple[int, Token]]:
        return iter(self._records)

    def __repr__(self) -> str:
        return f"Collector({self.name!r}, {len(self._records)} records)"
