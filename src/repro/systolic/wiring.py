"""Cell networks: local, regular interconnection (paper property 2).

A :class:`Network` owns a set of named cells and the wires between
them.  Wires connect one cell's output port to another cell's input
port; an output may fan out, but each input has at most one driver.
Boundary input ports are driven by *feeders* (see
:mod:`repro.systolic.streams`); boundary outputs are observed by
named *taps* which the simulator records into collectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import WiringError
from repro.systolic.cell import Cell
from repro.systolic.values import Token

__all__ = ["Network", "Wire", "Endpoint", "Feeder"]

#: A feeder maps a pulse number to the token injected on that pulse.
Feeder = Callable[[int], Optional[Token]]


@dataclass(frozen=True)
class Endpoint:
    """One end of a wire: a port on a named cell."""

    cell: str
    port: str

    def __repr__(self) -> str:
        return f"{self.cell}.{self.port}"


@dataclass(frozen=True)
class Wire:
    """A directed connection from an output port to an input port."""

    source: Endpoint
    target: Endpoint

    def __repr__(self) -> str:
        return f"{self.source!r} -> {self.target!r}"


class Network:
    """A graph of cells, wires, feeders, and output taps."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._cells: dict[str, Cell] = {}
        self._wires: list[Wire] = []
        #: input endpoint -> driving output endpoint
        self._driver: dict[Endpoint, Endpoint] = {}
        #: input endpoint -> feeder
        self._feeders: dict[Endpoint, Feeder] = {}
        #: tap name -> observed output endpoint
        self._taps: dict[str, Endpoint] = {}

    # -- construction -------------------------------------------------------

    def add(self, cell: Cell) -> Cell:
        """Register a cell; names must be unique; returns the cell."""
        if cell.name in self._cells:
            raise WiringError(f"duplicate cell name {cell.name!r}")
        self._cells[cell.name] = cell
        return cell

    def _endpoint(self, cell: str, port: str, direction: str) -> Endpoint:
        owner = self._cells.get(cell)
        if owner is None:
            raise WiringError(f"unknown cell {cell!r}")
        ports = owner.OUT_PORTS if direction == "out" else owner.IN_PORTS
        if port not in ports:
            raise WiringError(
                f"cell {cell!r} has no {direction}put port {port!r}; "
                f"has {list(ports)}"
            )
        return Endpoint(cell, port)

    def connect(
        self, src_cell: str, src_port: str, dst_cell: str, dst_port: str
    ) -> Wire:
        """Wire ``src_cell.src_port`` (output) to ``dst_cell.dst_port`` (input)."""
        source = self._endpoint(src_cell, src_port, "out")
        target = self._endpoint(dst_cell, dst_port, "in")
        self._claim_input(target, f"wire from {source!r}")
        wire = Wire(source, target)
        self._wires.append(wire)
        self._driver[target] = source
        return wire

    def feed(self, cell: str, port: str, feeder: Feeder, merge: bool = False) -> None:
        """Drive a boundary input port from a feeder.

        With ``merge=True`` the port may also be wire-driven: the wire
        supplies the token on pulses where the feeder is silent, and
        the simulator raises if both produce a token on the same pulse.
        (Used by arrays whose injection points lie on through-traffic
        paths, e.g. the hexagonal mesh.)  Two feeders on one port are
        never allowed.
        """
        target = self._endpoint(cell, port, "in")
        if target in self._feeders:
            raise WiringError(
                f"input {target!r} already driven by a feeder; "
                f"cannot attach feeder"
            )
        if not merge:
            self._claim_input(target, "feeder")
        self._feeders[target] = feeder

    def _claim_input(self, target: Endpoint, claimant: str) -> None:
        if target in self._driver:
            raise WiringError(
                f"input {target!r} already driven by {self._driver[target]!r}; "
                f"cannot attach {claimant}"
            )
        if target in self._feeders:
            raise WiringError(
                f"input {target!r} already driven by a feeder; "
                f"cannot attach {claimant}"
            )

    def tap(self, name: str, cell: str, port: str) -> None:
        """Observe a boundary output port under ``name``."""
        if name in self._taps:
            raise WiringError(f"duplicate tap name {name!r}")
        self._taps[name] = self._endpoint(cell, port, "out")

    # -- introspection -------------------------------------------------------

    @property
    def cells(self) -> dict[str, Cell]:
        """Registered cells by name."""
        return dict(self._cells)

    @property
    def wires(self) -> tuple[Wire, ...]:
        """All wires."""
        return tuple(self._wires)

    @property
    def feeders(self) -> dict[Endpoint, Feeder]:
        """Feeder-driven boundary inputs."""
        return dict(self._feeders)

    @property
    def taps(self) -> dict[str, Endpoint]:
        """Named output taps."""
        return dict(self._taps)

    def cell(self, name: str) -> Cell:
        """Look up a cell by name."""
        try:
            return self._cells[name]
        except KeyError:
            raise WiringError(f"unknown cell {name!r}") from None

    def driver_of(self, cell: str, port: str) -> Optional[Endpoint]:
        """The output endpoint driving an input port, if wired."""
        return self._driver.get(Endpoint(cell, port))

    def unconnected_inputs(self) -> list[Endpoint]:
        """Input ports with neither a wire nor a feeder (read empty)."""
        dangling = []
        for name, cell in self._cells.items():
            for port in cell.IN_PORTS:
                endpoint = Endpoint(name, port)
                if endpoint not in self._driver and endpoint not in self._feeders:
                    dangling.append(endpoint)
        return dangling

    def validate(self, strict: bool = False) -> None:
        """Check structural soundness.

        Always verifies that wires reference live cells/ports (enforced
        at construction).  With ``strict=True`` additionally rejects
        dangling input ports, which otherwise read as permanently-empty
        wires.
        """
        if strict:
            dangling = self.unconnected_inputs()
            if dangling:
                raise WiringError(
                    f"network {self.name!r} has unconnected inputs: "
                    f"{dangling[:8]}{'...' if len(dangling) > 8 else ''}"
                )

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, {len(self._cells)} cells, "
            f"{len(self._wires)} wires)"
        )
