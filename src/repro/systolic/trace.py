"""Trace recording — reproducing Fig 3-4-style data-movement snapshots.

Figure 3-4 of the paper shows the contents of the two-dimensional
comparison array at one instant: which ``a`` elements, ``b`` elements,
and partial ``t`` results sit in which processors.  The
:class:`TraceRecorder` plugs into the simulator's per-pulse observer
hook, remembers what every cell saw on every pulse, and can render any
pulse as a text grid given a layout (cell name → grid coordinate).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.errors import SimulationError
from repro.systolic.values import Token

__all__ = ["TraceRecorder", "render_grid"]

#: cell name -> (row, column) position used when rendering snapshots.
Layout = Mapping[str, tuple[int, int]]


class TraceRecorder:
    """Records the tokens present at each cell on each pulse.

    Attach via ``SystolicSimulator(network, observer=recorder)``.  Only
    non-empty ports are stored, so memory stays proportional to actual
    traffic.  ``window`` bounds how many recent pulses are retained
    (``None`` = keep everything).
    """

    def __init__(self, window: Optional[int] = None) -> None:
        if window is not None and window < 1:
            raise SimulationError(f"trace window must be >= 1, got {window}")
        self._window = window
        #: pulse -> cell -> port -> token (inputs seen during the pulse)
        self._inputs: dict[int, dict[str, dict[str, Token]]] = {}

    def __call__(
        self,
        pulse: int,
        inputs_by_cell: dict[str, dict[str, Optional[Token]]],
        outputs_by_cell: dict[str, dict[str, Optional[Token]]],
    ) -> None:
        snapshot: dict[str, dict[str, Token]] = {}
        for cell, ports in inputs_by_cell.items():
            present = {port: token for port, token in ports.items() if token is not None}
            if present:
                snapshot[cell] = present
        self._inputs[pulse] = snapshot
        if self._window is not None:
            for stale in [p for p in self._inputs if p <= pulse - self._window]:
                del self._inputs[stale]

    # -- queries -------------------------------------------------------------

    @property
    def pulses(self) -> list[int]:
        """Pulses with a retained snapshot, ascending."""
        return sorted(self._inputs)

    def at(self, pulse: int) -> dict[str, dict[str, Token]]:
        """The inputs seen by every busy cell on ``pulse``."""
        try:
            return self._inputs[pulse]
        except KeyError:
            raise SimulationError(
                f"no snapshot retained for pulse {pulse}; have {self.pulses[:10]}"
            ) from None

    def cell_history(self, cell: str) -> list[tuple[int, dict[str, Token]]]:
        """Every (pulse, inputs) pair at which ``cell`` was busy."""
        history = []
        for pulse in self.pulses:
            ports = self._inputs[pulse].get(cell)
            if ports:
                history.append((pulse, ports))
        return history


def render_grid(
    snapshot: Mapping[str, Mapping[str, Token]],
    layout: Layout,
    fmt: Callable[[Mapping[str, Token]], str] | None = None,
    empty: str = ".",
) -> str:
    """Render one snapshot as a text grid (the Fig 3-4 view).

    ``layout`` places each cell at a (row, column); ``fmt`` turns a
    cell's port→token mapping into a short label (default: comma-joined
    payloads).  Cells absent from the snapshot render as ``empty``.
    """
    if not layout:
        return ""
    if fmt is None:
        def fmt(ports: Mapping[str, Token]) -> str:
            return ",".join(str(ports[p].value) for p in sorted(ports))

    rows = max(r for r, _ in layout.values()) + 1
    cols = max(c for _, c in layout.values()) + 1
    grid = [[empty for _ in range(cols)] for _ in range(rows)]
    for cell, (row, col) in layout.items():
        ports = snapshot.get(cell)
        if ports:
            grid[row][col] = fmt(ports)
    width = max(max(len(label) for label in line) for line in grid)
    return "\n".join(
        " ".join(label.center(width) for label in line) for line in grid
    )
