"""The accumulation processor of §4.2 (right-hand module of Fig 4-1).

An accumulation processor "takes its left input (some ``t_ij`` from the
comparison array), ORs that with the top input (some ``t_i``), and
passes on the result as its output (the updated ``t_i``) to the
processor below".  When it isn't busy — no ``t_ij`` arriving from the
left — it "simply passes on the ``t_i`` that it has".

The descending value enters the column as ``t_i^initial = FALSE`` and
leaves the bottom as ``t_i = OR_j t_ij`` (equation 4.1).

Ghost tags: descending accumulators carry ``("acc", i)``; left inputs
carry ``("t", i, j)``.  When both are tagged, the cell proves that the
schedule merged row results into the right tuple's accumulator.
"""

from __future__ import annotations

from typing import Optional

from repro.systolic.cell import Cell, PortMap
from repro.systolic.values import Token

__all__ = ["AccumulationCell"]


class AccumulationCell(Cell):
    """One processor of the linear (vertical) accumulation array."""

    IN_PORTS = ("t_left", "t_top")
    OUT_PORTS = ("t_bottom",)

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        left = inputs.get("t_left")
        top = inputs.get("t_top")
        if left is None and top is None:
            return {}
        if left is None:
            # Not busy: pass the descending accumulator through unchanged.
            return {"t_bottom": top}
        if top is None:
            raise self.protocol_error(
                "a row result arrived from the left with no descending "
                "accumulator to merge into — t_i injection is misaligned"
            )
        self._check_tags(left, top)
        return {"t_bottom": Token(bool(top.value) or bool(left.value), top.tag)}

    def _check_tags(self, left: Token, top: Token) -> None:
        left_tag = left.tag
        top_tag = top.tag
        if (
            isinstance(left_tag, tuple)
            and len(left_tag) == 3
            and left_tag[0] == "t"
            and isinstance(top_tag, tuple)
            and len(top_tag) == 2
            and top_tag[0] == "acc"
            and left_tag[1] != top_tag[1]
        ):
            raise self.protocol_error(
                f"row result {left_tag!r} merged into accumulator {top_tag!r}"
            )
