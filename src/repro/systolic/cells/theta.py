"""The programmable join comparator of §6 (Fig 6-1, §6.3.2).

A join-array processor compares the ``a`` and ``b`` join-column values
passing through it and emits the individual ``t_ij`` to the right — no
accumulation follows (§6.2: "here we are interested in the t_ij
individually").  For joins over several columns the partial results
chain left-to-right exactly as in the comparison array (§6.3.1), so
``t_in`` is ANDed when present and treated as TRUE at the leftmost
column.

§6.3.2 generalizes the equality test to "any sort of binary comparison
(e.g. <, >, etc.)"; the operation "might be preloaded into the array of
processors" — here it is a constructor argument, the simulated
equivalent of preloading.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.relational.algebra import COMPARISON_OPS
from repro.systolic.cell import Cell, PortMap
from repro.systolic.values import Token

__all__ = ["ThetaCell"]


class ThetaCell(Cell):
    """One processor of the join array, preloaded with a comparison op."""

    IN_PORTS = ("a_in", "b_in", "t_in")
    OUT_PORTS = ("a_out", "b_out", "t_out")

    def __init__(self, name: str, op: str = "==") -> None:
        super().__init__(name)
        compare = COMPARISON_OPS.get(op)
        if compare is None:
            raise SimulationError(
                f"cell {name!r}: unknown comparison operator {op!r}; "
                f"have {sorted(COMPARISON_OPS)}"
            )
        self.op = op
        self._compare = compare

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        a = inputs.get("a_in")
        b = inputs.get("b_in")
        t = inputs.get("t_in")
        outputs: dict[str, Optional[Token]] = {}
        if a is not None:
            outputs["a_out"] = a
        if b is not None:
            outputs["b_out"] = b
        if a is not None and b is not None:
            result = self._compare(a.value, b.value)
            if t is not None:
                result = bool(t.value) and result
            outputs["t_out"] = Token(result, self._pair_tag(a, b, t))
        elif t is not None:
            raise self.protocol_error(
                "a partial join result arrived without an element pair — "
                "the join-column schedule is mis-staggered"
            )
        return outputs

    @staticmethod
    def _pair_tag(a: Token, b: Token, t: Optional[Token]) -> Optional[tuple]:
        """Derive the ``("t", i, j)`` tag from the meeting elements."""
        if t is not None and t.tag is not None:
            return t.tag
        a_tag = a.tag
        b_tag = b.tag
        if (
            isinstance(a_tag, tuple)
            and len(a_tag) == 3
            and a_tag[0] == "a"
            and isinstance(b_tag, tuple)
            and len(b_tag) == 3
            and b_tag[0] == "b"
        ):
            return ("t", a_tag[1], b_tag[1])
        return None
