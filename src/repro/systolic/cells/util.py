"""Utility cells: plumbing that appears around the main arrays.

* :class:`LatchCell` — a pure one-pulse delay (the transfer along its
  wire provides the delay; the cell itself just forwards).  Used to
  align streams, e.g. the extra hop between the comparison array's edge
  and the accumulation column in Fig 4-1.
* :class:`InverterCell` — §4.3's "inverter on the output line of the
  accumulation array", turning the intersection array into a difference
  array without touching the main hardware.
"""

from __future__ import annotations

from typing import Optional

from repro.systolic.cell import Cell, PortMap
from repro.systolic.values import Token

__all__ = ["LatchCell", "InverterCell"]


class LatchCell(Cell):
    """Forwards its input unchanged (net effect: one pulse of delay)."""

    IN_PORTS = ("d_in",)
    OUT_PORTS = ("d_out",)

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        token = inputs.get("d_in")
        if token is None:
            return {}
        return {"d_out": token}


class InverterCell(Cell):
    """Negates the boolean payload, preserving the tag (§4.3)."""

    IN_PORTS = ("t_in",)
    OUT_PORTS = ("t_out",)

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        token = inputs.get("t_in")
        if token is None:
            return {}
        return {"t_out": Token(not bool(token.value), token.tag)}
