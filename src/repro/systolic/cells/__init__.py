"""The paper's processor library.

One class per processor type: the comparison processor (Fig 3-2), the
accumulation processor (§4.2), the programmable θ-join comparator
(§6.3.2), the three division-array processors (§7), and small utility
cells (delay latch, output inverter).
"""

from repro.systolic.cells.accumulator import AccumulationCell
from repro.systolic.cells.comparator import ComparisonCell
from repro.systolic.cells.dynamic import DynamicThetaCell
from repro.systolic.cells.division import (
    DividendGateCell,
    DividendMatchCell,
    DivisorCell,
)
from repro.systolic.cells.theta import ThetaCell
from repro.systolic.cells.util import InverterCell, LatchCell

__all__ = [
    "AccumulationCell",
    "ComparisonCell",
    "DividendGateCell",
    "DividendMatchCell",
    "DivisorCell",
    "DynamicThetaCell",
    "InverterCell",
    "LatchCell",
    "ThetaCell",
]
