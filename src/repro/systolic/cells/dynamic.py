"""The op-code-carrying join comparator — §6.3.2's second option.

"The particular operation to be performed might be encoded in a few
bits, and passed along with the a_ij and b_ij.  Or, it might be
preloaded into the array of processors."

:class:`~repro.systolic.cells.theta.ThetaCell` is the preloaded form;
this cell is the other one: an op code travels down the array alongside
relation A's join-column elements (same staggering, same speed), and
each processor performs whatever comparison the arriving code names.
"This illustrates that some degree of programability can often be
provided to a processor array at the expense of additional logic" —
here, the extra op port and the operation decoder.
"""

from __future__ import annotations

from typing import Optional

from repro.relational.algebra import COMPARISON_OPS
from repro.systolic.cell import Cell, PortMap
from repro.systolic.values import Token

__all__ = ["DynamicThetaCell"]


class DynamicThetaCell(Cell):
    """A join comparator whose operation arrives with the data."""

    IN_PORTS = ("a_in", "b_in", "t_in", "op_in")
    OUT_PORTS = ("a_out", "b_out", "t_out", "op_out")

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        a = inputs.get("a_in")
        b = inputs.get("b_in")
        t = inputs.get("t_in")
        op = inputs.get("op_in")
        outputs: dict[str, Optional[Token]] = {}
        if a is not None:
            outputs["a_out"] = a
        if b is not None:
            outputs["b_out"] = b
        if op is not None:
            outputs["op_out"] = op
        if (a is None) != (op is None):
            raise self.protocol_error(
                "the op code must travel with relation A's element — "
                "one arrived without the other"
            )
        if a is not None and b is not None:
            assert op is not None  # guaranteed by the pairing check above
            compare = COMPARISON_OPS.get(op.value)
            if compare is None:
                raise self.protocol_error(
                    f"unknown op code {op.value!r} arrived on op_in"
                )
            result = compare(a.value, b.value)
            if t is not None:
                result = bool(t.value) and result
            outputs["t_out"] = Token(result, self._pair_tag(a, b, t))
        elif t is not None:
            raise self.protocol_error(
                "a partial join result arrived without an element pair"
            )
        return outputs

    @staticmethod
    def _pair_tag(a: Token, b: Token, t: Optional[Token]) -> Optional[tuple]:
        if t is not None and t.tag is not None:
            return t.tag
        a_tag = a.tag
        b_tag = b.tag
        if (
            isinstance(a_tag, tuple) and len(a_tag) == 3 and a_tag[0] == "a"
            and isinstance(b_tag, tuple) and len(b_tag) == 3 and b_tag[0] == "b"
        ):
            return ("t", a_tag[1], b_tag[1])
        return None
