"""The comparison processor of Fig 3-2 — the workhorse of the paper.

On each pulse the cell passes ``a`` downward and ``b`` upward
unchanged, and computes ``t_out = t_in AND (a == b)``: the running AND
of element comparisons that, after ``m`` columns, is the tuple-equality
bit (§3.1).  The "surprising" property noted in §3.1 — a FALSE fed in
guarantees FALSE out — is what the remove-duplicates array's triangular
masking (§5) relies on.

Ghost-tag discipline (verification only): ``a`` tokens are tagged
``("a", i, k)``, ``b`` tokens ``("b", j, k)``, and ``t`` tokens
``("t", i, j)``.  When tags are present the cell proves the schedule:
the elements meeting here belong to the tuples the travelling ``t``
claims to compare, and sit in the same element position ``k``.
"""

from __future__ import annotations

from typing import Optional

from repro.systolic.cell import Cell, PortMap
from repro.systolic.values import Token

__all__ = ["ComparisonCell"]


def _structured(tag: object, head: str) -> Optional[tuple]:
    """Return the tag as a tuple if it follows the ``(head, ...)`` scheme."""
    if isinstance(tag, tuple) and len(tag) == 3 and tag[0] == head:
        return tag
    return None


class ComparisonCell(Cell):
    """One processor of the (linear or 2-D) comparison array.

    Parameters
    ----------
    name:
        Unique cell name.
    require_t:
        When true (default), two elements meeting without an
        accompanying partial result is treated as a feeding-schedule
        violation.  Correctly staggered inputs always deliver the
        travelling ``t`` together with the element pair (§3.1).
    """

    IN_PORTS = ("a_in", "b_in", "t_in")
    OUT_PORTS = ("a_out", "b_out", "t_out")

    def __init__(self, name: str, require_t: bool = True) -> None:
        super().__init__(name)
        self.require_t = require_t

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        a = inputs.get("a_in")
        b = inputs.get("b_in")
        t = inputs.get("t_in")
        outputs: dict[str, Optional[Token]] = {}
        if a is not None:
            outputs["a_out"] = a
        if b is not None:
            outputs["b_out"] = b

        if t is not None:
            if a is None or b is None:
                raise self.protocol_error(
                    "a partial result arrived without an element pair to "
                    "compare — the input schedule is mis-staggered"
                )
            self._check_tags(a, b, t)
            result = bool(t.value) and (a.value == b.value)
            outputs["t_out"] = Token(result, t.tag)
        elif a is not None and b is not None and self.require_t:
            raise self.protocol_error(
                "elements met with no partial result on t_in — the t "
                "injection schedule missed this meeting"
            )
        return outputs

    def _check_tags(self, a: Token, b: Token, t: Token) -> None:
        a_tag = _structured(a.tag, "a")
        b_tag = _structured(b.tag, "b")
        t_tag = _structured(t.tag, "t")
        if a_tag and b_tag and a_tag[2] != b_tag[2]:
            raise self.protocol_error(
                f"element positions disagree: {a.tag!r} vs {b.tag!r}"
            )
        if t_tag and a_tag and t_tag[1] != a_tag[1]:
            raise self.protocol_error(
                f"t claims tuple a_{t_tag[1]} but element is {a.tag!r}"
            )
        if t_tag and b_tag and t_tag[2] != b_tag[1]:
            raise self.protocol_error(
                f"t claims tuple b_{t_tag[2]} but element is {b.tag!r}"
            )
