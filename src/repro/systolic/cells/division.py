"""The three processor types of the division array (§7, Fig 7-2).

The dividend array has two columns.  The **left** column stores the
distinct elements of the dividend's ``A₁`` column (one per processor);
as each pair ``(x, y)`` streams upward, the left processor compares the
passing ``x`` against its stored element and ships the match bit right.
The **right** column carries the ``y`` of each pair "one step behind"
its ``x``; when the match bit arrives together with ``y``, the
processor gates ``y`` out of the right side of the array — or "some
null value" (an explicit :data:`~repro.systolic.values.NULL_VALUE`
token) when the match bit is FALSE.

Each divisor-array row stores the divisor's elements (one per
processor).  The gated ``y`` stream passes along the row; a processor
sets a sticky flag when it sees its stored element.  "After the
dividend passes through the array", an AND token sweeps the row,
collecting ``AND`` of all flags: TRUE at the right edge means the
stored ``x`` of that row belongs to the quotient.
"""

from __future__ import annotations

from typing import Optional

from repro.systolic.cell import Cell, PortMap
from repro.systolic.values import NULL_VALUE, Token

__all__ = ["DividendMatchCell", "DividendGateCell", "DivisorCell"]


class DividendMatchCell(Cell):
    """Left-column dividend processor: stores one distinct ``A₁`` value."""

    IN_PORTS = ("x_in",)
    OUT_PORTS = ("x_out", "t_out")

    def __init__(self, name: str, stored: int) -> None:
        super().__init__(name)
        self.stored = stored

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        x = inputs.get("x_in")
        if x is None:
            return {}
        matched = x.value == self.stored
        return {"x_out": x, "t_out": Token(matched, x.tag)}


class DividendGateCell(Cell):
    """Right-column dividend processor: gates ``y`` by the match bit.

    The ``y`` and its match bit arrive on the same pulse (the ``y``
    trails its ``x`` by exactly the one pulse the bit needs to cross
    from the left column); either arriving alone is a schedule
    violation.
    """

    IN_PORTS = ("y_in", "t_in")
    OUT_PORTS = ("y_out", "y_pass")

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        y = inputs.get("y_in")
        t = inputs.get("t_in")
        if y is None and t is None:
            return {}
        if y is None or t is None:
            raise self.protocol_error(
                "y and its match bit must arrive together — the pair "
                "stream is mis-staggered"
            )
        self._check_tags(y, t)
        gated = y if bool(t.value) else Token(NULL_VALUE, y.tag)
        return {"y_out": y, "y_pass": gated}

    def _check_tags(self, y: Token, t: Token) -> None:
        y_tag = y.tag
        t_tag = t.tag
        if (
            isinstance(y_tag, tuple)
            and len(y_tag) == 2
            and y_tag[0] == "pair"
            and isinstance(t_tag, tuple)
            and len(t_tag) == 2
            and t_tag[0] == "pair"
            and y_tag[1] != t_tag[1]
        ):
            raise self.protocol_error(
                f"y of pair {y_tag[1]} met the match bit of pair {t_tag[1]}"
            )


class DivisorCell(Cell):
    """Divisor-array processor: stores one divisor element, flags sightings.

    State: ``seen`` latches TRUE the first time the stored element
    passes by on the ``y`` stream (explicit nulls never match).  The
    AND sweep reads the flag: ``and_out = and_in AND seen``.
    """

    IN_PORTS = ("y_in", "and_in")
    OUT_PORTS = ("y_out", "and_out")

    def __init__(self, name: str, stored: int) -> None:
        super().__init__(name)
        self.stored = stored
        self.seen = False

    def reset(self) -> None:
        self.seen = False

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        outputs: dict[str, Optional[Token]] = {}
        y = inputs.get("y_in")
        if y is not None:
            outputs["y_out"] = y
            if y.value is not NULL_VALUE and y.value == self.stored:
                self.seen = True
        and_token = inputs.get("and_in")
        if and_token is not None:
            outputs["and_out"] = Token(bool(and_token.value) and self.seen,
                                       and_token.tag)
        return outputs
