"""Activity accounting for systolic networks.

§8 observes that "only half of the processors in a systolic array are
busy at any one time" in the counter-streaming designs, and that fixing
one relation in place removes the inefficiency.  Experiment E11
quantifies both claims; this module provides the bookkeeping.

A cell is *busy* on a pulse when it received at least one token (it had
work to latch and transform); otherwise it idled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ActivityMeter", "UtilizationReport", "ComparisonWorkMeter"]


@dataclass
class UtilizationReport:
    """Aggregate activity over a run."""

    pulses: int
    cells: int
    busy_cell_pulses: int

    @property
    def cell_pulses(self) -> int:
        """Total cell-pulse slots available."""
        return self.pulses * self.cells

    @property
    def utilization(self) -> float:
        """Fraction of cell-pulse slots that did work."""
        if self.cell_pulses == 0:
            return 0.0
        return self.busy_cell_pulses / self.cell_pulses

    def __repr__(self) -> str:
        return (
            f"UtilizationReport(pulses={self.pulses}, cells={self.cells}, "
            f"utilization={self.utilization:.3f})"
        )


@dataclass
class ActivityMeter:
    """Counts busy pulses per cell during a simulation."""

    busy_pulses: dict[str, int] = field(default_factory=dict)
    pulses_observed: int = 0

    def observe(self, pulse: int, busy_cells: set[str], all_cells: int) -> None:
        """Record one pulse's activity (called by the simulator)."""
        self.pulses_observed += 1
        self._cell_count = all_cells
        for name in busy_cells:
            self.busy_pulses[name] = self.busy_pulses.get(name, 0) + 1

    def absorb(
        self, busy_counts: dict[str, int], pulses: int, cells: int
    ) -> None:
        """Merge a bulk-computed activity profile in one call.

        Vectorized engines derive each cell's busy-pulse count in
        closed form from the schedule instead of observing pulses one
        at a time; this entry point lets them fill the meter with the
        exact counts :meth:`observe` would have accumulated.  Cells
        with zero busy pulses must be omitted (``observe`` never
        creates zero entries either).
        """
        self.pulses_observed += pulses
        self._cell_count = cells
        for name, count in busy_counts.items():
            if count:
                self.busy_pulses[name] = self.busy_pulses.get(name, 0) + count

    def report(self, cells: int | None = None) -> UtilizationReport:
        """Summarize activity across ``cells`` cells (default: as observed)."""
        if cells is None:
            cells = getattr(self, "_cell_count", len(self.busy_pulses))
        return UtilizationReport(
            pulses=self.pulses_observed,
            cells=cells,
            busy_cell_pulses=sum(self.busy_pulses.values()),
        )

    def busiest(self, top: int = 5) -> list[tuple[str, int]]:
        """The ``top`` busiest cells as ``(name, busy_pulses)`` pairs."""
        ranked = sorted(self.busy_pulses.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]


class ComparisonWorkMeter:
    """Counts the cells *performing a comparison* on each pulse.

    §8's utilization remark is about useful work, not mere data
    presence: a comparator does work on a pulse exactly when it emits a
    partial result (``t_out``).  This observer (plug into the
    simulator's ``observer`` hook) tallies that per pulse, so the
    counter-streaming design's ≈½ busy fraction and the fixed-relation
    variant's ≈full busy fraction can both be measured.
    """

    def __init__(self, port: str = "t_out") -> None:
        self.port = port
        self.per_pulse: list[int] = []

    def __call__(self, pulse: int, inputs_by_cell, outputs_by_cell) -> None:
        working = sum(
            1
            for outputs in outputs_by_cell.values()
            if outputs.get(self.port) is not None
        )
        self.per_pulse.append(working)

    @property
    def peak(self) -> int:
        """Most cells comparing on any single pulse."""
        return max(self.per_pulse, default=0)

    def steady_state_mean(self) -> float:
        """Mean busy cells over the window where any work happened."""
        active = [count for count in self.per_pulse if count > 0]
        if not active:
            return 0.0
        return sum(active) / len(active)

    def utilization(self, comparison_cells: int, steady: bool = True) -> float:
        """Fraction of comparison cells doing work.

        ``steady=True`` measures over the active window (the §8 claim
        is about the loaded array); ``steady=False`` averages over the
        whole run including fill and drain.
        """
        if comparison_cells <= 0:
            return 0.0
        if steady:
            return self.steady_state_mean() / comparison_cells
        if not self.per_pulse:
            return 0.0
        return sum(self.per_pulse) / (len(self.per_pulse) * comparison_cells)
