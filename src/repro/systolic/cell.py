"""The systolic processor prototype (paper §2.2, Fig 2-2).

Every processor in the paper's arrays is an instance of one prototype:
a handful of input lines, a handful of output lines, and a short
computation performed between pulses.  :class:`Cell` captures that
contract.  Concrete cells (comparison processor, accumulation
processor, θ-comparator, division cells) live in
:mod:`repro.systolic.cells`.

Cells are deliberately *time-invariant*: ``step`` receives only the
current inputs, never the global pulse number — just like the hardware,
whose behaviour is a pure function of inputs and local registers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Optional

from repro.errors import SimulationError
from repro.systolic.values import Token

__all__ = ["Cell", "PortMap"]

#: What a cell sees and produces each pulse: port name -> token (or None).
PortMap = Mapping[str, Optional[Token]]


class Cell(ABC):
    """One systolic processor.

    Subclasses declare their ports via the ``IN_PORTS`` / ``OUT_PORTS``
    class attributes and implement :meth:`step`, the per-pulse
    transformation.  Internal registers (preloaded elements, sticky
    flags) are ordinary instance attributes, reset by :meth:`reset`.
    """

    IN_PORTS: tuple[str, ...] = ()
    OUT_PORTS: tuple[str, ...] = ()

    def __init__(self, name: str) -> None:
        if not name:
            raise SimulationError("a cell requires a non-empty name")
        self.name = name

    @abstractmethod
    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        """Compute one pulse: consume latched inputs, emit outputs.

        ``inputs`` maps every declared input port to a token or ``None``
        (empty wire).  The returned mapping may omit ports; omitted or
        ``None`` entries mean the output wire is empty this pulse.
        """

    def reset(self) -> None:
        """Clear internal registers (default: stateless, nothing to do)."""

    def protocol_error(self, message: str) -> SimulationError:
        """Build a schedule-violation error attributed to this cell."""
        return SimulationError(f"cell {self.name!r}: {message}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
