"""The lattice engine: whole anti-diagonal wavefronts as bulk numpy ops.

The pulse simulator moves every token one cell per pulse; this engine
observes that the *schedule arithmetic is closed-form* — for any pair
``(i, j)`` the meeting row, exit pulse, and travelling-``t`` value are
known without simulating — and evaluates entire wavefronts of meetings
as vectorized numpy operations.  All observable outputs are
reconstructed exactly:

* **collector records** — same tap names, pulse stamps, payload values
  (Python bools), and ghost tags as the pulse engine;
* **pulse counts** — the plan's schedule-derived run length;
* **activity metrics** — per-cell busy-pulse counts derived from the
  token families' occupancy (a cell is busy on a pulse iff at least
  one token arrives, the simulator's definition), folded into the
  caller's :class:`~repro.systolic.metrics.ActivityMeter` via
  :meth:`~repro.systolic.metrics.ActivityMeter.absorb`.

The derivations mirror the schedules: an ``a`` element fed to column
``k`` at pulse ``e`` occupies row ``r`` at pulse ``e + r``; a ``b``
element climbing from the bottom row occupies row ``R − 1 − s`` at its
entry pulse plus ``s``; travelling ``t`` tokens and streamed op codes
always ride *with* a scheduled meeting, so they add no busy slots of
their own; the descending accumulator of tuple ``i`` visits
``acc[row]`` at its seed pulse plus ``row``, and each row result
merges exactly on one of those visits.

Limits: trace recording and hex-mesh metering genuinely require the
cell network — both raise, pointing at ``backend="pulse"``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro import obs
from repro.config import env_int
from repro.errors import SimulationError
from repro.obs import metrics
from repro.systolic.engine.hexmesh import (
    U_C,
    c_start,
    hex_positions,
    hex_tap_name,
    meeting_cell,
)
from repro.systolic.engine.plan import (
    ColumnarTap,
    DivisionPlan,
    EngineRun,
    ExecutionPlan,
    GridPlan,
    HexPlan,
    LinearPlan,
    acc_name,
    cmp_name,
)
from repro.systolic.metrics import ActivityMeter
from repro.systolic.streams import Collector
from repro.systolic.values import Token

__all__ = ["LatticeEngine", "DEFAULT_CHUNK_BYTES"]

#: Default bound on the comparison intermediate (``chunk × n_b × m``
#: int64 elements), overridable per engine or via the
#: ``REPRO_LATTICE_CHUNK_BYTES`` environment variable.
DEFAULT_CHUNK_BYTES = 16_000_000

#: Comparison op code → numpy ufunc, matching
#: :data:`repro.relational.algebra.COMPARISON_OPS` element-wise.
_OP_UFUNCS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _op_ufunc(op: str):
    try:
        return _OP_UFUNCS[op]
    except KeyError:
        raise SimulationError(
            f"unknown comparison operator {op!r}; have {sorted(_OP_UFUNCS)}"
        ) from None


def _int_matrix(tuples, n: int, m: int, label: str) -> np.ndarray:
    try:
        return np.asarray([tuple(row) for row in tuples],
                          dtype=np.int64).reshape(n, m)
    except (ValueError, TypeError, OverflowError) as exc:
        raise SimulationError(
            f"the lattice engine needs integer-encoded {label} elements "
            f"(see §2.3 domain encoding): {exc}"
        ) from None


def _make_collectors(
    records: dict[str, list[tuple[int, Token]]]
) -> dict[str, Collector]:
    collectors: dict[str, Collector] = {}
    for name, recs in records.items():
        collector = Collector(name)
        if any(recs[k][0] > recs[k + 1][0] for k in range(len(recs) - 1)):
            recs = sorted(recs, key=lambda pt: pt[0])
        for pulse, token in recs:
            collector.record(pulse, token)
        collectors[name] = collector
    return collectors


class LatticeEngine:
    """Bulk wavefront execution of the same plans the simulator runs.

    ``chunk_bytes`` bounds the transient comparison intermediate (the
    broadcast ``chunk × n_b × m`` element block); it defaults to
    :data:`DEFAULT_CHUNK_BYTES` and can also be set process-wide with
    the ``REPRO_LATTICE_CHUNK_BYTES`` environment variable.
    """

    name = "lattice"

    def __init__(self, chunk_bytes: Optional[int] = None) -> None:
        if chunk_bytes is None:
            chunk_bytes = env_int(
                "REPRO_LATTICE_CHUNK_BYTES", DEFAULT_CHUNK_BYTES, minimum=1
            )
        if chunk_bytes < 1:
            raise SimulationError(
                f"chunk_bytes must be >= 1, got {chunk_bytes}"
            )
        self.chunk_bytes = chunk_bytes

    def run(
        self,
        plan: ExecutionPlan,
        meter: Optional[ActivityMeter] = None,
        trace: Optional[Any] = None,
    ) -> EngineRun:
        if trace is not None:
            raise SimulationError(
                "trace recording needs the pulse-level cell network; run "
                "this plan with backend='pulse'"
            )
        with obs.span(
            "engine.run", engine=self.name,
            plan=type(plan).__name__, pulses=plan.pulses, cells=plan.cells,
        ):
            if isinstance(plan, GridPlan):
                run = self._run_grid(plan, meter)
            elif isinstance(plan, DivisionPlan):
                run = self._run_division(plan, meter)
            elif isinstance(plan, LinearPlan):
                run = self._run_linear(plan, meter)
            elif isinstance(plan, HexPlan):
                run = self._run_hex(plan, meter)
            else:
                raise SimulationError(
                    f"unknown plan type {type(plan).__name__}"
                )
        metrics.inc("engine.runs")
        metrics.observe("engine.run.pulses", plan.pulses)
        return run

    def __repr__(self) -> str:
        return f"LatticeEngine(chunk_bytes={self.chunk_bytes})"

    # -- the rectangular grid (Figs 3-3, 4-1, 6-1) -------------------------

    def _run_grid(self, plan: GridPlan, meter: Optional[ActivityMeter]) -> EngineRun:
        sched = plan.schedule
        n_a, n_b, m = sched.n_a, sched.n_b, sched.arity
        A = _int_matrix(plan.a_tuples, n_a, m, "A")
        B = _int_matrix(plan.b_tuples, n_b, m, "B")

        V = self._verdict_matrix(plan, A, B)
        if plan.t_init is not None:
            mask_fn = getattr(plan.t_init, "lattice_mask", None)
            if mask_fn is not None:
                # Canonical t_init: one whole-grid broadcast mask.
                mask = mask_fn(n_a, n_b)
                if mask is not None:
                    V &= mask
            else:
                t_init = plan.t_init
                for i in range(n_a):
                    V[i] &= np.fromiter(
                        (bool(t_init(i, j)) for j in range(n_b)), bool, n_b
                    )

        taps: dict[str, ColumnarTap] = {}
        if plan.row_taps:
            taps.update(self._row_taps(plan, V))
        if plan.accumulate:
            taps["t_i"] = self._accumulator_tap(plan, V)

        if meter is not None:
            meter.absorb(self._grid_busy(plan), plan.pulses, plan.cells)
        return EngineRun(
            engine=self.name, pulses=plan.pulses, cells=plan.cells,
            columnar=taps, meter=meter,
        )

    def _verdict_matrix(
        self, plan: GridPlan, A: np.ndarray, B: np.ndarray
    ) -> np.ndarray:
        """``V[i, j]`` = the comparison verdict pair ``(i, j)`` exits
        with (before ``t_init``), evaluated in bulk — row-chunked to
        bound the ``n_a × n_b × m`` intermediate.  The word-level
        comparator kernel; subclasses substitute their own."""
        sched = plan.schedule
        n_a, n_b, m = sched.n_a, sched.n_b, sched.arity
        V = np.empty((n_a, n_b), dtype=bool)
        chunk = max(1, self.chunk_bytes // max(1, 8 * n_b * m))
        for lo in range(0, n_a, chunk):
            metrics.inc("engine.lattice.chunks")
            hi = min(n_a, lo + chunk)
            if plan.ops is None:
                V[lo:hi] = (A[lo:hi, None, :] == B[None, :, :]).all(axis=2)
            else:
                acc = np.ones((hi - lo, n_b), dtype=bool)
                for k, op in enumerate(plan.ops):
                    acc &= _op_ufunc(op)(A[lo:hi, k][:, None], B[None, :, k])
                V[lo:hi] = acc
        return V

    def _row_taps(self, plan: GridPlan, V: np.ndarray) -> dict[str, ColumnarTap]:
        """Every ``t_row[r]`` tap at once: the schedule's meeting rows
        and exit pulses are affine in (i, j), so one broadcast plus one
        lexsort replaces the per-pair Python loop."""
        sched = plan.schedule
        n_a, n_b = sched.n_a, sched.n_b
        shape = (n_a, n_b)
        I = np.arange(n_a, dtype=np.int64)[:, None]
        J = np.arange(n_b, dtype=np.int64)[None, :]
        if plan.variant == "counter":
            rows = sched.mid + J - I
            exits = sched.mid + I + J + (sched.arity - 1)
        else:
            rows = np.broadcast_to(J, shape)
            exits = I + J + (sched.arity - 1)
        rows = np.broadcast_to(rows, shape).ravel()
        exits = np.broadcast_to(exits, shape).ravel()
        order = np.lexsort((exits, rows))
        rows_s = rows[order]
        exits_s = exits[order]
        vals_s = V.ravel()[order]
        if plan.tagged:
            ti_s = np.broadcast_to(I, shape).ravel()[order]
            tj_s = np.broadcast_to(J, shape).ravel()[order]
        bounds = np.searchsorted(rows_s, np.arange(sched.rows + 1))
        taps: dict[str, ColumnarTap] = {}
        for row in range(sched.rows):
            lo, hi = int(bounds[row]), int(bounds[row + 1])
            taps[f"t_row[{row}]"] = ColumnarTap(
                name=f"t_row[{row}]",
                pulses=exits_s[lo:hi],
                values=vals_s[lo:hi],
                tag_kind="t" if plan.tagged else None,
                tag_indices=(
                    (ti_s[lo:hi], tj_s[lo:hi]) if plan.tagged else ()
                ),
            )
        return taps

    def _accumulator_tap(self, plan: GridPlan, V: np.ndarray) -> ColumnarTap:
        """The ``t_i`` tap in bulk: exit pulses are affine in i (slope 2
        counter-streaming, slope 1 fixed-relation)."""
        sched = plan.schedule
        step = 2 if plan.variant == "counter" else 1
        i = np.arange(sched.n_a, dtype=np.int64)
        return ColumnarTap(
            name="t_i",
            pulses=step * i + (sched.arity + sched.rows - 1),
            values=V.any(axis=1),
            tag_kind="acc" if plan.tagged else None,
            tag_indices=(i,) if plan.tagged else (),
        )

    def _grid_busy(self, plan: GridPlan) -> dict[str, int]:
        sched = plan.schedule
        R, m, P = sched.rows, sched.arity, plan.pulses
        busy: dict[str, int] = {}
        if plan.variant == "fixed":
            # The preloaded operand is always present (ConstantFeeder):
            # every comparator is busy on every pulse of the run (§8).
            for r in range(R):
                for c in range(m):
                    busy[cmp_name(r, c)] = P
        else:
            i = np.arange(sched.n_a)
            j = np.arange(sched.n_b)
            for r in range(R):
                s = R - 1 - r  # steps b has climbed to reach row r
                for c in range(m):
                    arrivals = np.concatenate((2 * i + c + r, 2 * j + c + s))
                    count = int(np.unique(arrivals[arrivals < P]).size)
                    if count:
                        busy[cmp_name(r, c)] = count
        if plan.accumulate:
            step = 2 if plan.variant == "counter" else 1
            seeds = step * np.arange(sched.n_a, dtype=np.int64) + m
            for row in range(R):
                count = int(((seeds + row) < P).sum())
                if count:
                    busy[acc_name(row)] = count
        return busy

    # -- the division array (Fig 7-2) --------------------------------------

    def _run_division(
        self, plan: DivisionPlan, meter: Optional[ActivityMeter]
    ) -> EngineRun:
        sched = plan.schedule
        xs = np.asarray([x for x, _ in plan.pairs], dtype=np.int64)
        ys = np.asarray([y for _, y in plan.pairs], dtype=np.int64)
        divisor = np.asarray(plan.divisor, dtype=np.int64)
        distinct = np.asarray(plan.distinct_x, dtype=np.int64)
        p_rows = len(plan.distinct_x)

        bits = self._division_bits(xs, ys, divisor, distinct)

        rows = np.arange(p_rows, dtype=np.int64)
        pulses = (sched.n_pairs + 2 + (p_rows - 1 - rows)
                  + sched.n_divisor - 1)
        taps = {
            f"and_row[{row}]": ColumnarTap(
                name=f"and_row[{row}]",
                pulses=pulses[row:row + 1],
                values=bits[row:row + 1],
                tag_kind="and" if plan.tagged else None,
                tag_indices=(rows[row:row + 1],) if plan.tagged else (),
            )
            for row in range(p_rows)
        }

        if meter is not None:
            meter.absorb(self._division_busy(plan), plan.pulses, plan.cells)
        return EngineRun(
            engine=self.name, pulses=plan.pulses, cells=plan.cells,
            columnar=taps, meter=meter,
        )

    def _division_bits(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        divisor: np.ndarray,
        distinct: np.ndarray,
    ) -> np.ndarray:
        """Quotient bit of every dividend row, evaluated in bulk.

        Row ``r`` sees exactly the y values gated by its stored x; its
        quotient bit is "divisor ⊆ that set" — here: count the distinct
        divisor values each distinct x co-occurs with.  Subclasses
        substitute their own gating kernel."""
        d_vals = np.unique(divisor)
        u_vals, x_codes = np.unique(xs, return_inverse=True)
        y_pos = np.searchsorted(d_vals, ys).clip(0, d_vals.size - 1)
        gated = d_vals[y_pos] == ys
        codes = np.unique(x_codes[gated] * d_vals.size + y_pos[gated])
        counts = np.bincount(codes // d_vals.size, minlength=u_vals.size)
        u_bits = counts == d_vals.size
        # Map each dividend row's stored x onto its unique-x slot; a
        # stored x that never streams past gates nothing (bit FALSE).
        row_pos = np.searchsorted(u_vals, distinct).clip(0, u_vals.size - 1)
        return (u_vals[row_pos] == distinct) & u_bits[row_pos]

    def _division_busy(self, plan: DivisionPlan) -> dict[str, int]:
        sched = plan.schedule
        P = plan.pulses
        n_pairs, p_rows, n_div = sched.n_pairs, sched.p_rows, sched.n_divisor
        busy: dict[str, int] = {}
        for row in range(p_rows):
            lift = p_rows - 1 - row  # pulses to climb from the entry row
            # x arrivals at dm[row]: q + lift; y (+ match bit) at
            # dg[row]: one pulse later; the gated stream reaches
            # dv[row,s] after 1 + s more, and the AND sweep follows.
            busy[f"dm[{row}]"] = int(min(n_pairs, max(0, P - lift)))
            busy[f"dg[{row}]"] = int(min(n_pairs, max(0, P - lift - 1)))
            for s in range(n_div):
                count = min(n_pairs, max(0, P - lift - 2 - s))
                if sched.and_inject_pulse(row) + s < P:
                    count += 1
                busy[f"dv[{row},{s}]"] = int(count)
        return busy

    # -- the linear array (Fig 3-1) -----------------------------------------

    def _run_linear(
        self, plan: LinearPlan, meter: Optional[ActivityMeter]
    ) -> EngineRun:
        equal = self._linear_equal(plan)
        records = {"t": [(
            plan.arity - 1,
            Token(equal, ("t", 0, 0) if plan.tagged else None),
        )]}
        if meter is not None:
            # cmp[k] sees its staggered a, b, and travelling t exactly
            # on pulse k.
            meter.absorb(
                {f"cmp[{k}]": 1 for k in range(plan.arity)},
                plan.pulses, plan.cells,
            )
        return EngineRun(
            engine=self.name, pulses=plan.pulses, cells=plan.cells,
            collectors=_make_collectors(records), meter=meter,
        )

    def _linear_equal(self, plan: LinearPlan) -> bool:
        """The travelling ``t`` value of the linear chain — the seed
        ANDed with every element comparison.  The word-level kernel;
        subclasses substitute their own."""
        equal = bool(plan.seed)
        for x, y in zip(plan.a, plan.b):
            equal = equal and (x == y)
        return equal

    # -- the hexagonal mesh (§2.1, [5]) -------------------------------------

    def _run_hex(self, plan: HexPlan, meter: Optional[ActivityMeter]) -> EngineRun:
        if meter is not None:
            raise SimulationError(
                "activity metering on the hexagonal mesh needs the "
                "pulse-level cell network; run this plan with "
                "backend='pulse'"
            )
        n_a, n_b, m = plan.n_a, plan.n_b, plan.inner
        semiring = plan.semiring
        positions = hex_positions(n_a, n_b, m)
        tapped = {
            meeting_cell(i, j, m - 1)
            for i in range(n_a) for j in range(n_b)
        }
        records: dict[str, list[tuple[int, Token]]] = {
            name: [] for name in plan.tap_names()
        }
        # Walk each c token down its U_C line: its value folds in one
        # (a, b) interaction per scheduled meeting (pulse i + j + k),
        # passes through every other cell unchanged, and a tap records
        # its c_out on every pulse it crosses a tapped cell — including
        # other pairs' final-meeting cells — until it leaves the mesh.
        for i in range(n_a):
            a_row = plan.a_rows[i]
            for j in range(n_b):
                b_col = plan.b_cols[j]
                value = semiring.identity
                tag = ("c", i, j) if plan.tagged else None
                pos = c_start(i, j)
                for p in range(plan.pulses):
                    if pos not in positions:
                        break
                    k = p - (i + j)
                    if 0 <= k < m:
                        value = semiring.combine(
                            value, semiring.interact(a_row[k], b_col[k])
                        )
                    if pos in tapped:
                        records[hex_tap_name(pos)].append(
                            (p, Token(value, tag))
                        )
                    pos = (pos[0] + U_C[0], pos[1] + U_C[1])
        # firing(p) = #{(i, j, k) : i + j + k = p} — a triple convolution.
        firing = np.convolve(
            np.convolve(np.ones(n_a, dtype=np.int64),
                        np.ones(n_b, dtype=np.int64)),
            np.ones(m, dtype=np.int64),
        )
        return EngineRun(
            engine=self.name, pulses=plan.pulses, cells=plan.cells,
            collectors=_make_collectors(records),
            peak_firing=int(firing.max()),
        )
