"""Plan → cell network: the pulse-level materialization layer.

The arrays of §3–§7 are all assembled from the same parts: a grid of
processors (orthogonally connected, Fig 2-1a), column feeders that
stagger tuple elements (§3.1), left-edge injectors for initial partial
results, and an optional accumulation column (Fig 4-1).  This module
builds those parts once — from a plan or from raw operands — so the
operator layer and the :class:`~repro.systolic.engine.pulse.PulseEngine`
only state what is *different* about each array.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import SimulationError
from repro.systolic.cell import Cell
from repro.systolic.cells import (
    AccumulationCell,
    ComparisonCell,
    DividendGateCell,
    DividendMatchCell,
    DivisorCell,
    DynamicThetaCell,
    ThetaCell,
)
from repro.systolic.engine.hexmesh import build_hex_network
from repro.systolic.engine.plan import (
    DivisionPlan,
    ExecutionPlan,
    GridPlan,
    HexPlan,
    LinearPlan,
    TInit,
    acc_name,
    check_tuples,
    cmp_name,
)
from repro.systolic.engine.schedule import (
    CounterStreamSchedule,
    DivisionSchedule,
    FixedRelationSchedule,
)
from repro.systolic.streams import ConstantFeeder, PeriodicFeeder, ScheduleFeeder
from repro.systolic.values import Token
from repro.systolic.wiring import Network

__all__ = [
    "CellFactory",
    "build_counter_stream_grid",
    "build_fixed_relation_grid",
    "attach_accumulation_column",
    "attach_op_stream",
    "build_division_network",
    "build_linear_network",
    "materialize",
]

#: Builds the processor for grid position (row, col) — ComparisonCell
#: for the comparison array, ThetaCell for join columns.
CellFactory = Callable[[str, int, int], Cell]


def _default_cell_factory(name: str, row: int, col: int) -> Cell:
    return ComparisonCell(name)


def _element_token(
    kind: str, tuple_index: int, col: int, value: int, tagged: bool
) -> Token:
    return Token(value, (kind, tuple_index, col) if tagged else None)


def build_counter_stream_grid(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    schedule: CounterStreamSchedule,
    t_init: Optional[TInit] = None,
    cell_factory: CellFactory = _default_cell_factory,
    tagged: bool = False,
    name: str = "comparison-array",
) -> tuple[Network, dict[str, tuple[int, int]]]:
    """Assemble the Fig 3-3 grid: A streams down, B streams up.

    Returns the network and a layout (cell name → (row, col)) for the
    trace renderer.  ``t_init`` installs the left-edge partial-result
    injections; omit it for the join array, whose cells originate their
    own ``t`` at the first column (§6.2).
    """
    rows, cols = schedule.rows, schedule.arity
    check_tuples(a_tuples, schedule.n_a, cols, "A")
    check_tuples(b_tuples, schedule.n_b, cols, "B")

    network = Network(name)
    layout: dict[str, tuple[int, int]] = {}
    for row in range(rows):
        for col in range(cols):
            cell = cell_factory(cmp_name(row, col), row, col)
            network.add(cell)
            layout[cell.name] = (row, col)

    for row in range(rows):
        for col in range(cols):
            if row + 1 < rows:
                network.connect(cmp_name(row, col), "a_out",
                                cmp_name(row + 1, col), "a_in")
                network.connect(cmp_name(row + 1, col), "b_out",
                                cmp_name(row, col), "b_in")
            if col + 1 < cols:
                network.connect(cmp_name(row, col), "t_out",
                                cmp_name(row, col + 1), "t_in")

    for col in range(cols):
        a_stream = [
            _element_token("a", i, col, row_values[col], tagged)
            for i, row_values in enumerate(a_tuples)
        ]
        network.feed(cmp_name(0, col), "a_in",
                     PeriodicFeeder(a_stream, start=col, period=2))
        b_stream = [
            _element_token("b", j, col, row_values[col], tagged)
            for j, row_values in enumerate(b_tuples)
        ]
        network.feed(cmp_name(rows - 1, col), "b_in",
                     PeriodicFeeder(b_stream, start=col, period=2))

    if t_init is not None:
        for row in range(rows):
            injections = {
                schedule.t_init_pulse(i, j): Token(
                    bool(t_init(i, j)), ("t", i, j) if tagged else None
                )
                for i, j in schedule.row_pairs(row)
            }
            if injections:
                network.feed(cmp_name(row, 0), "t_in",
                             ScheduleFeeder(injections))
    return network, layout


def build_fixed_relation_grid(
    a_tuples: Sequence[Sequence[int]],
    b_tuples: Sequence[Sequence[int]],
    schedule: FixedRelationSchedule,
    t_init: Optional[TInit] = None,
    cell_factory: CellFactory = _default_cell_factory,
    tagged: bool = False,
    name: str = "fixed-relation-array",
) -> tuple[Network, dict[str, tuple[int, int]]]:
    """Assemble the §8 variant: B preloaded (one tuple per row), A moves.

    Preloading is realized by a constant feeder on each cell's ``b_in``
    — the stored operand is simply always present, so the unmodified
    comparison processor serves both designs.
    """
    rows, cols = schedule.rows, schedule.arity
    check_tuples(a_tuples, schedule.n_a, cols, "A")
    check_tuples(b_tuples, schedule.n_b, cols, "B")

    network = Network(name)
    layout: dict[str, tuple[int, int]] = {}
    for row in range(rows):
        for col in range(cols):
            cell = cell_factory(cmp_name(row, col), row, col)
            network.add(cell)
            layout[cell.name] = (row, col)
            network.feed(
                cell.name, "b_in",
                ConstantFeeder(
                    _element_token("b", row, col, b_tuples[row][col], tagged)
                ),
            )

    for row in range(rows):
        for col in range(cols):
            if row + 1 < rows:
                network.connect(cmp_name(row, col), "a_out",
                                cmp_name(row + 1, col), "a_in")
            if col + 1 < cols:
                network.connect(cmp_name(row, col), "t_out",
                                cmp_name(row, col + 1), "t_in")

    for col in range(cols):
        a_stream = [
            _element_token("a", i, col, row_values[col], tagged)
            for i, row_values in enumerate(a_tuples)
        ]
        network.feed(cmp_name(0, col), "a_in",
                     PeriodicFeeder(a_stream, start=col, period=1))

    if t_init is not None:
        for row in range(rows):
            injections = {
                schedule.t_init_pulse(i, row): Token(
                    bool(t_init(i, row)), ("t", i, row) if tagged else None
                )
                for i in range(schedule.n_a)
            }
            network.feed(cmp_name(row, 0), "t_in", ScheduleFeeder(injections))
    return network, layout


def attach_accumulation_column(
    network: Network,
    schedule: CounterStreamSchedule | FixedRelationSchedule,
    layout: Optional[dict[str, tuple[int, int]]] = None,
    tagged: bool = False,
    tap: str = "t_i",
) -> None:
    """Bolt the Fig 4-1 accumulation array onto a comparison grid.

    One accumulation processor per row; each takes the row's final
    ``t_ij`` from the left and the descending ``t_i`` from above.  The
    descending value is seeded FALSE at the top on the schedule's seed
    pulses and tapped at the bottom under ``tap``.
    """
    rows, cols = schedule.rows, schedule.arity
    for row in range(rows):
        network.add(AccumulationCell(acc_name(row)))
        if layout is not None:
            layout[acc_name(row)] = (row, cols)
    for row in range(rows):
        network.connect(cmp_name(row, cols - 1), "t_out",
                        acc_name(row), "t_left")
        if row + 1 < rows:
            network.connect(acc_name(row), "t_bottom",
                            acc_name(row + 1), "t_top")
    seeds = {
        schedule.accumulator_seed_pulse(i): Token(
            False, ("acc", i) if tagged else None
        )
        for i in range(schedule.n_a)
    }
    network.feed(acc_name(0), "t_top", ScheduleFeeder(seeds))
    network.tap(tap, acc_name(rows - 1), "t_bottom")


def attach_op_stream(
    network: Network,
    schedule: CounterStreamSchedule,
    ops: Sequence[str],
) -> None:
    """Stream op codes down each column alongside relation A (§6.3.2).

    Same staggering and two-pulse tuple spacing as the ``a`` elements,
    so each op code meets exactly the comparisons of its tuple.
    """
    for row in range(schedule.rows - 1):
        for col in range(schedule.arity):
            network.connect(cmp_name(row, col), "op_out",
                            cmp_name(row + 1, col), "op_in")
    for col in range(schedule.arity):
        op_stream = [Token(ops[col]) for _ in range(schedule.n_a)]
        network.feed(cmp_name(0, col), "op_in",
                     PeriodicFeeder(op_stream, start=col, period=2))


def build_division_network(
    pairs: Sequence[tuple[int, int]],
    distinct_x: Sequence[int],
    divisor: Sequence[int],
    schedule: DivisionSchedule,
    tagged: bool = False,
) -> tuple[Network, dict[str, tuple[int, int]]]:
    """Assemble Fig 7-2 for encoded ``(x, y)`` pairs and divisor values."""
    network = Network("division-array")
    layout: dict[str, tuple[int, int]] = {}
    p_rows = schedule.p_rows

    for row, stored in enumerate(distinct_x):
        match_cell = network.add(DividendMatchCell(f"dm[{row}]", stored))
        gate_cell = network.add(DividendGateCell(f"dg[{row}]"))
        layout[match_cell.name] = (row, 0)
        layout[gate_cell.name] = (row, 1)
        network.connect(f"dm[{row}]", "t_out", f"dg[{row}]", "t_in")
    for row in range(p_rows - 1, 0, -1):
        network.connect(f"dm[{row}]", "x_out", f"dm[{row - 1}]", "x_in")
        network.connect(f"dg[{row}]", "y_out", f"dg[{row - 1}]", "y_in")

    for row in range(p_rows):
        for s, stored in enumerate(divisor):
            cell = network.add(DivisorCell(f"dv[{row},{s}]", stored))
            layout[cell.name] = (row, 2 + s)
        network.connect(f"dg[{row}]", "y_pass", f"dv[{row},0]", "y_in")
        for s in range(len(divisor) - 1):
            network.connect(f"dv[{row},{s}]", "y_out", f"dv[{row},{s + 1}]", "y_in")
            network.connect(f"dv[{row},{s}]", "and_out", f"dv[{row},{s + 1}]", "and_in")
        network.feed(
            f"dv[{row},0]", "and_in",
            ScheduleFeeder({
                schedule.and_inject_pulse(row): Token(
                    True, ("and", row) if tagged else None
                )
            }),
        )
        network.tap(f"and_row[{row}]", f"dv[{row},{len(divisor) - 1}]", "and_out")

    x_stream = [
        Token(x, ("pair", q) if tagged else None) for q, (x, _) in enumerate(pairs)
    ]
    y_stream = [
        Token(y, ("pair", q) if tagged else None) for q, (_, y) in enumerate(pairs)
    ]
    network.feed(f"dm[{p_rows - 1}]", "x_in",
                 PeriodicFeeder(x_stream, start=0, period=1))
    network.feed(f"dg[{p_rows - 1}]", "y_in",
                 PeriodicFeeder(y_stream, start=1, period=1))
    return network, layout


def build_linear_network(
    a: Sequence[int],
    b: Sequence[int],
    seed: bool = True,
    tagged: bool = False,
) -> tuple[Network, dict[str, tuple[int, int]]]:
    """Assemble the Fig 3-1 array for one staggered tuple pair."""
    if len(a) != len(b):
        raise SimulationError(
            f"tuples must have equal arity: {len(a)} vs {len(b)}"
        )
    if not a:
        raise SimulationError("cannot compare zero-arity tuples")
    arity = len(a)
    network = Network("linear-comparison")
    layout: dict[str, tuple[int, int]] = {}
    for k in range(arity):
        network.add(ComparisonCell(f"cmp[{k}]"))
        layout[f"cmp[{k}]"] = (0, k)
    for k in range(arity):
        name = f"cmp[{k}]"
        if k + 1 < arity:
            network.connect(name, "t_out", f"cmp[{k + 1}]", "t_in")
        network.feed(
            name, "a_in",
            ScheduleFeeder({k: Token(a[k], ("a", 0, k) if tagged else None)}),
        )
        network.feed(
            name, "b_in",
            ScheduleFeeder({k: Token(b[k], ("b", 0, k) if tagged else None)}),
        )
    network.feed(
        "cmp[0]", "t_in",
        ScheduleFeeder({0: Token(bool(seed), ("t", 0, 0) if tagged else None)}),
    )
    network.tap("t", f"cmp[{arity - 1}]", "t_out")
    return network, layout


def _grid_factory(plan: GridPlan) -> CellFactory:
    if plan.ops is None:
        return _default_cell_factory
    if plan.dynamic_ops:
        return lambda name, row, col: DynamicThetaCell(name)
    ops = plan.ops

    def theta_factory(name: str, row: int, col: int) -> Cell:
        return ThetaCell(name, op=ops[col])

    return theta_factory


def materialize(plan: ExecutionPlan) -> Network:
    """Build the full cell network a plan describes, taps included."""
    if isinstance(plan, GridPlan):
        factory = _grid_factory(plan)
        if plan.variant == "counter":
            network, layout = build_counter_stream_grid(
                plan.a_tuples, plan.b_tuples, plan.schedule,
                t_init=plan.t_init, cell_factory=factory,
                tagged=plan.tagged, name=plan.name,
            )
            if plan.dynamic_ops:
                attach_op_stream(network, plan.schedule, plan.ops)
        else:
            network, layout = build_fixed_relation_grid(
                plan.a_tuples, plan.b_tuples, plan.schedule,
                t_init=plan.t_init, cell_factory=factory,
                tagged=plan.tagged, name=plan.name,
            )
        if plan.accumulate:
            attach_accumulation_column(
                network, plan.schedule, layout, tagged=plan.tagged
            )
        if plan.row_taps:
            for row in range(plan.rows):
                network.tap(f"t_row[{row}]",
                            cmp_name(row, plan.cols - 1), "t_out")
        return network
    if isinstance(plan, DivisionPlan):
        network, _ = build_division_network(
            plan.pairs, plan.distinct_x, plan.divisor, plan.schedule,
            tagged=plan.tagged,
        )
        return network
    if isinstance(plan, LinearPlan):
        network, _ = build_linear_network(
            plan.a, plan.b, seed=plan.seed, tagged=plan.tagged
        )
        return network
    if isinstance(plan, HexPlan):
        network, _ = build_hex_network(
            plan.a_rows, plan.b_cols, plan.semiring, tagged=plan.tagged
        )
        return network
    raise SimulationError(f"unknown plan type {type(plan).__name__}")
