"""Pluggable execution engines for the paper's systolic arrays.

The split: a *plan* (:mod:`~repro.systolic.engine.plan`) says what an
array computes — operands, timing discipline, taps — and an *engine*
says how.  Three ship:

* ``"pulse"`` — :class:`PulseEngine`, the cycle-accurate reference:
  every cell and latch of the paper's design, driven pulse by pulse.
* ``"lattice"`` — :class:`LatticeEngine`, the same schedule arithmetic
  evaluated as bulk numpy wavefronts; bit-identical outputs, orders of
  magnitude faster on large relations.
* ``"bitplane"`` — :class:`BitplaneEngine`, the §8 word→bit design
  executed as packed ``uint64`` bitplane sweeps; bit-identical outputs
  again, and the only engine whose work unit is §8's bit comparator.

``resolve_backend`` turns the user-facing ``backend=`` argument (a
name, ``None``, or an engine instance) into an engine; ``None`` means
the process default — :data:`DEFAULT_BACKEND` unless the
``REPRO_BACKEND`` environment variable picks another registered name.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import env_choice
from repro.errors import SimulationError
from repro.systolic.engine.hexmesh import (
    BOOLEAN_SEMIRING,
    COMPARISON_SEMIRING,
    Semiring,
)
from repro.systolic.engine.bitplane import BitplaneEngine
from repro.systolic.engine.lattice import DEFAULT_CHUNK_BYTES, LatticeEngine
from repro.systolic.engine.plan import (
    ColumnarTap,
    DivisionPlan,
    Engine,
    EngineRun,
    ExecutionPlan,
    GridPlan,
    HexPlan,
    LinearPlan,
    TInit,
    t_init_strict_lower,
    t_init_true,
)
from repro.systolic.engine.pulse import PulseEngine
from repro.systolic.engine.schedule import (
    CounterStreamSchedule,
    DivisionSchedule,
    FixedRelationSchedule,
)

__all__ = [
    "Engine",
    "EngineRun",
    "ExecutionPlan",
    "GridPlan",
    "DivisionPlan",
    "LinearPlan",
    "HexPlan",
    "TInit",
    "t_init_true",
    "t_init_strict_lower",
    "ColumnarTap",
    "DEFAULT_CHUNK_BYTES",
    "CounterStreamSchedule",
    "FixedRelationSchedule",
    "DivisionSchedule",
    "Semiring",
    "COMPARISON_SEMIRING",
    "BOOLEAN_SEMIRING",
    "PulseEngine",
    "LatticeEngine",
    "BitplaneEngine",
    "ENGINES",
    "DEFAULT_BACKEND",
    "default_backend",
    "resolve_backend",
]

#: Registered engine names → constructors.
ENGINES: dict[str, type] = {
    "pulse": PulseEngine,
    "lattice": LatticeEngine,
    "bitplane": BitplaneEngine,
}

DEFAULT_BACKEND = "pulse"

BackendSpec = Union[str, Engine, None]


def default_backend() -> str:
    """The process-wide default engine name.

    :data:`DEFAULT_BACKEND` unless the ``REPRO_BACKEND`` environment
    variable selects another registered engine
    (:class:`~repro.errors.ConfigError` on an unknown name, matching
    every other ``REPRO_*`` knob).
    """
    return env_choice("REPRO_BACKEND", DEFAULT_BACKEND, tuple(ENGINES))


def resolve_backend(backend: BackendSpec = None) -> Engine:
    """Resolve a ``backend=`` argument to an engine instance.

    Accepts an engine name from :data:`ENGINES`, ``None`` (meaning
    :func:`default_backend` — ``REPRO_BACKEND`` or
    :data:`DEFAULT_BACKEND`), or any object with a ``run`` method
    (a caller-supplied engine, passed through untouched).
    """
    if backend is None:
        backend = default_backend()
    if isinstance(backend, str):
        try:
            return ENGINES[backend]()
        except KeyError:
            raise SimulationError(
                f"unknown backend {backend!r}; available: {sorted(ENGINES)}"
            ) from None
    if hasattr(backend, "run"):
        return backend
    raise SimulationError(
        f"backend must be an engine name or an Engine instance, "
        f"got {type(backend).__name__}"
    )
