"""Execution plans: what an array computes, separated from how.

A plan captures the *geometry and schedule* of one array run — the
operand tuples, the timing discipline, the taps to read — with no
commitment to pulse-by-pulse simulation.  An
:class:`Engine` turns a plan into an :class:`EngineRun`:

* :class:`~repro.systolic.engine.pulse.PulseEngine` materializes the
  cell network and drives the reference
  :class:`~repro.systolic.simulator.SystolicSimulator`;
* :class:`~repro.systolic.engine.lattice.LatticeEngine` evaluates the
  same schedule arithmetic as bulk anti-diagonal wavefronts.

Both produce bit-identical collector records, pulse counts, and
activity metrics; the differential harness in
``tests/systolic/test_engine_equivalence.py`` is the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, Sequence, Union, runtime_checkable

import numpy as np

from repro.errors import SimulationError
from repro.systolic.engine.hexmesh import (
    Semiring,
    hex_horizon,
    hex_positions,
    hex_tap_name,
    meeting_cell,
)
from repro.systolic.engine.schedule import (
    CounterStreamSchedule,
    DivisionSchedule,
    FixedRelationSchedule,
)
from repro.systolic.metrics import ActivityMeter
from repro.systolic.streams import Collector
from repro.systolic.values import Token

__all__ = [
    "TInit",
    "t_init_true",
    "t_init_strict_lower",
    "ColumnarTap",
    "GridPlan",
    "DivisionPlan",
    "LinearPlan",
    "HexPlan",
    "ExecutionPlan",
    "EngineRun",
    "Engine",
    "check_tuples",
    "cmp_name",
    "acc_name",
]

#: Chooses the initial t fed for pair (i, j): TRUE everywhere for
#: intersection, lower-triangle-only for remove-duplicates (§5).
TInit = Callable[[int, int], bool]


def _true_lattice_mask(n_a: int, n_b: int) -> Optional[np.ndarray]:
    return None  # all-true: nothing to mask


def _strict_lower_lattice_mask(n_a: int, n_b: int) -> Optional[np.ndarray]:
    return np.arange(n_b, dtype=np.int64)[None, :] < np.arange(
        n_a, dtype=np.int64
    )[:, None]


def t_init_true(i: int, j: int) -> bool:
    """TRUE everywhere — the intersection/membership seed (§4)."""
    return True


def t_init_strict_lower(i: int, j: int) -> bool:
    """TRUE only below the diagonal — remove-duplicates' mask (§5)."""
    return j < i


# Canonical t_init callables expose their whole-grid boolean mask so the
# lattice engine can apply them as one broadcast instead of calling the
# function n_a × n_b times.  ``lattice_mask(n_a, n_b)`` returns either a
# bool matrix or ``None`` when nothing needs masking; the pulse engine
# ignores the attribute and just calls the function per pair.
t_init_true.lattice_mask = _true_lattice_mask  # type: ignore[attr-defined]
t_init_strict_lower.lattice_mask = _strict_lower_lattice_mask  # type: ignore[attr-defined]


def cmp_name(row: int, col: int) -> str:
    """Canonical name of the comparator at grid position (row, col)."""
    return f"cmp[{row},{col}]"


def acc_name(row: int) -> str:
    """Canonical name of the accumulation processor beside ``row``."""
    return f"acc[{row}]"


def check_tuples(
    tuples: Sequence[Sequence[int]], expected_n: int, arity: int, label: str
) -> None:
    """Validate operand shape against the schedule's expectations."""
    if len(tuples) != expected_n:
        raise SimulationError(
            f"relation {label} has {len(tuples)} tuples but the schedule "
            f"expects {expected_n}"
        )
    for row_values in tuples:
        if len(row_values) != arity:
            raise SimulationError(
                f"relation {label} tuple {tuple(row_values)!r} has arity "
                f"{len(row_values)}, expected {arity}"
            )


@dataclass
class GridPlan:
    """One run of the rectangular comparison/join grid (Figs 3-3, 4-1, 6-1).

    The schedule instance selects the geometry variant:
    :class:`CounterStreamSchedule` is the figures' counter-streaming
    design, :class:`FixedRelationSchedule` the §8 preloaded-B variant.

    Exactly one of ``t_init`` (comparison grid: travelling partial
    results injected at the left edge) or ``ops`` (join grid: θ-cells
    originate their own t at column 0) must be given.  ``dynamic_ops``
    streams the op codes down the columns alongside relation A
    (§6.3.2) instead of preloading them — same answers, different
    hardware programmability story.
    """

    a_tuples: Sequence[Sequence[int]]
    b_tuples: Sequence[Sequence[int]]
    schedule: Union[CounterStreamSchedule, FixedRelationSchedule]
    t_init: Optional[TInit] = None
    ops: Optional[tuple[str, ...]] = None
    dynamic_ops: bool = False
    accumulate: bool = False
    row_taps: bool = False
    tagged: bool = False
    name: str = "grid-array"

    def __post_init__(self) -> None:
        check_tuples(self.a_tuples, self.schedule.n_a, self.schedule.arity, "A")
        check_tuples(self.b_tuples, self.schedule.n_b, self.schedule.arity, "B")
        if (self.t_init is None) == (self.ops is None):
            raise SimulationError(
                "a grid plan needs exactly one of t_init (comparison grid) "
                "or ops (join grid)"
            )
        if self.ops is not None and len(self.ops) != self.schedule.arity:
            raise SimulationError(
                f"need one operator per column: {len(self.ops)} ops for "
                f"arity {self.schedule.arity}"
            )
        if self.dynamic_ops:
            if self.ops is None:
                raise SimulationError("dynamic_ops requires ops")
            if self.variant != "counter":
                raise SimulationError(
                    "op streaming is defined for the counter-streaming "
                    "grid only"
                )
        if not (self.accumulate or self.row_taps):
            raise SimulationError(
                "a grid plan with no accumulator and no row taps computes "
                "nothing observable"
            )

    @property
    def variant(self) -> str:
        """``"counter"`` or ``"fixed"``, from the schedule type."""
        if isinstance(self.schedule, CounterStreamSchedule):
            return "counter"
        return "fixed"

    @property
    def rows(self) -> int:
        return self.schedule.rows

    @property
    def cols(self) -> int:
        return self.schedule.arity

    @property
    def pulses(self) -> int:
        """Run length: through the accumulator when one is attached."""
        if self.accumulate:
            return self.schedule.total_pulses
        return self.schedule.comparison_pulses

    @property
    def cells(self) -> int:
        return self.rows * self.cols + (self.rows if self.accumulate else 0)

    def tap_names(self) -> list[str]:
        """Every collector the run produces (possibly with no records)."""
        names: list[str] = []
        if self.row_taps:
            names.extend(f"t_row[{row}]" for row in range(self.rows))
        if self.accumulate:
            names.append("t_i")
        return names


@dataclass
class DivisionPlan:
    """One run of the Fig 7-2 division array (§7)."""

    pairs: Sequence[tuple[int, int]]
    distinct_x: Sequence[int]
    divisor: Sequence[int]
    tagged: bool = False

    def __post_init__(self) -> None:
        self.schedule  # validates non-emptiness

    @property
    def schedule(self) -> DivisionSchedule:
        return DivisionSchedule(
            n_pairs=len(self.pairs),
            p_rows=len(self.distinct_x),
            n_divisor=len(self.divisor),
        )

    @property
    def pulses(self) -> int:
        return self.schedule.total_pulses

    @property
    def cells(self) -> int:
        return len(self.distinct_x) * (2 + len(self.divisor))

    def tap_names(self) -> list[str]:
        return [f"and_row[{row}]" for row in range(len(self.distinct_x))]


@dataclass
class LinearPlan:
    """One tuple comparison on the Fig 3-1 linear array."""

    a: Sequence[int]
    b: Sequence[int]
    seed: bool = True
    tagged: bool = False

    def __post_init__(self) -> None:
        if len(self.a) != len(self.b):
            raise SimulationError(
                f"tuples must have equal arity: {len(self.a)} vs {len(self.b)}"
            )
        if not self.a:
            raise SimulationError("cannot compare zero-arity tuples")

    @property
    def arity(self) -> int:
        return len(self.a)

    @property
    def pulses(self) -> int:
        return self.arity

    @property
    def cells(self) -> int:
        return self.arity

    def tap_names(self) -> list[str]:
        return ["t"]


@dataclass
class HexPlan:
    """One semiring matrix product on the hexagonal mesh (§2.1, [5])."""

    a_rows: Sequence[Sequence[Any]]
    b_cols: Sequence[Sequence[Any]]
    semiring: Semiring
    tagged: bool = True

    def __post_init__(self) -> None:
        if not self.a_rows or not self.b_cols:
            raise SimulationError("the hex array needs non-empty operands")
        m = len(self.a_rows[0])
        if m == 0 or any(len(r) != m for r in self.a_rows) or any(
            len(r) != m for r in self.b_cols
        ):
            raise SimulationError(
                "operands must share a positive inner dimension"
            )

    @property
    def n_a(self) -> int:
        return len(self.a_rows)

    @property
    def n_b(self) -> int:
        return len(self.b_cols)

    @property
    def inner(self) -> int:
        return len(self.a_rows[0])

    @property
    def pulses(self) -> int:
        return hex_horizon(self.n_a, self.n_b, self.inner) + 1

    @property
    def cells(self) -> int:
        return len(hex_positions(self.n_a, self.n_b, self.inner))

    def tap_names(self) -> list[str]:
        names: list[str] = []
        seen: set[tuple[int, int]] = set()
        for i in range(self.n_a):
            for j in range(self.n_b):
                pos = meeting_cell(i, j, self.inner - 1)
                if pos not in seen:
                    seen.add(pos)
                    names.append(hex_tap_name(pos))
        return names


ExecutionPlan = Union[GridPlan, DivisionPlan, LinearPlan, HexPlan]


@dataclass
class ColumnarTap:
    """One tap's output as bulk arrays: the Token-free fast path.

    ``pulses[k]`` is the exit pulse of the ``k``-th record and
    ``values[k]`` its payload, in pulse order — the same observations a
    :class:`~repro.systolic.streams.Collector` holds, without allocating
    a :class:`~repro.systolic.values.Token` per record.  Ghost tags are
    kept columnar too: ``tag_kind`` names the tag family (``"t"``,
    ``"acc"``, ``"and"``) and ``tag_indices`` holds one index array per
    tag slot, so ``("t", i, j)`` is two arrays.  ``to_collector()``
    materializes the classic Token records on demand, bit-identical to
    the pulse engine's (Python ``int`` pulses, Python ``bool`` payloads).
    """

    name: str
    pulses: np.ndarray
    values: np.ndarray
    tag_kind: Optional[str] = None
    tag_indices: tuple[np.ndarray, ...] = ()

    def __len__(self) -> int:
        return int(self.pulses.size)

    def to_collector(self) -> Collector:
        collector = Collector(self.name)
        pulses = self.pulses.tolist()
        values = self.values.tolist()
        if self.tag_kind is None:
            for pulse, value in zip(pulses, values):
                collector.record(pulse, Token(value))
        else:
            kind = self.tag_kind
            columns = [column.tolist() for column in self.tag_indices]
            for k, (pulse, value) in enumerate(zip(pulses, values)):
                tag = (kind, *(column[k] for column in columns))
                collector.record(pulse, Token(value, tag))
        return collector


class EngineRun:
    """What executing a plan produced, independent of the engine used.

    Taps arrive either as eager Token-record ``collectors`` (the pulse
    engine's native output) or as ``columnar`` arrays (the lattice fast
    path); consumers that only need bulk arrays read :meth:`tap`, and
    ``run.collectors`` / :meth:`collector` materialize Token records
    lazily — and cache them — only when a trace/tagged consumer asks.
    """

    def __init__(
        self,
        engine: str,
        pulses: int,
        cells: int,
        collectors: Optional[dict[str, Collector]] = None,
        meter: Optional[ActivityMeter] = None,
        trace: Optional[Any] = None,
        peak_firing: Optional[int] = None,
        columnar: Optional[dict[str, ColumnarTap]] = None,
    ) -> None:
        if collectors is None and columnar is None:
            raise SimulationError(
                "an EngineRun needs eager collectors or columnar taps"
            )
        self.engine = engine
        self.pulses = pulses
        self.cells = cells
        self.meter = meter
        self.trace = trace
        #: peak number of hex cells firing on one pulse (HexPlan runs only)
        self.peak_firing = peak_firing
        #: Token-free tap arrays (empty dict on the pulse engine).
        self.columnar: dict[str, ColumnarTap] = dict(columnar or {})
        self._collectors: Optional[dict[str, Collector]] = (
            dict(collectors) if collectors is not None else None
        )

    @property
    def collectors(self) -> dict[str, Collector]:
        """All taps as Token-record collectors (materialized on demand)."""
        if self._collectors is None:
            self._collectors = {}
        for name, tap in self.columnar.items():
            if name not in self._collectors:
                self._collectors[name] = tap.to_collector()
        return self._collectors

    def tap(self, name: str) -> Optional[ColumnarTap]:
        """The columnar arrays for ``name``, or None on eager runs."""
        return self.columnar.get(name)

    def tap_names(self) -> list[str]:
        """Every tap this run produced, by either representation."""
        names = set(self.columnar)
        if self._collectors is not None:
            names.update(self._collectors)
        return sorted(names)

    def collector(self, name: str) -> Collector:
        """Look up a collector by tap name (mirrors the simulator API)."""
        if self._collectors is not None and name in self._collectors:
            return self._collectors[name]
        tap = self.columnar.get(name)
        if tap is not None:
            if self._collectors is None:
                self._collectors = {}
            collector = self._collectors[name] = tap.to_collector()
            return collector
        raise SimulationError(
            f"no tap named {name!r}; have {self.tap_names()}"
        )

    def __repr__(self) -> str:
        kind = "columnar" if self.columnar else "eager"
        return (
            f"EngineRun(engine={self.engine!r}, pulses={self.pulses}, "
            f"cells={self.cells}, taps={len(self.tap_names())} {kind})"
        )


@runtime_checkable
class Engine(Protocol):
    """An execution backend: turns plans into runs.

    Implementations must honour the schedule arithmetic exactly — the
    equivalence harness asserts collector records (pulse stamps,
    values, ghost tags), pulse counts, and per-cell busy counts all
    match the pulse-level reference.
    """

    name: str

    def run(
        self,
        plan: ExecutionPlan,
        meter: Optional[ActivityMeter] = None,
        trace: Optional[Any] = None,
    ) -> EngineRun:
        """Execute ``plan`` and return its observable outcome."""
        ...
