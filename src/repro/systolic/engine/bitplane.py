"""The bitplane engine: §8's bit-level arrays as packed-plane sweeps.

The third backend.  The pulse engine simulates the paper's cells token
by token; the lattice engine evaluates the word-level comparators as
bulk numpy wavefronts; this engine evaluates the **bit-level** design
(§8's word→bit transformation, :mod:`repro.bitlevel`) the same bulk
way: every element is its MSB-first bit expansion, every bit position
one packed ``uint64`` plane (:mod:`repro.bitlevel.planes`), and one
``np.bitwise_*`` sweep per plane replaces ``width`` columns of bit
comparators —

* equality as the XOR/OR-reduce over all ``arity × width`` planes;
* magnitude (``<``, ``<=``, ``>``, ``>=``, ``!=``) as the
  :class:`~repro.bitlevel.cells.BitMagnitudeCell` EQ/GT/LT state
  rippled MSB-first across whole planes at once;
* the division array's gating as two packed equality matrices.

All observable outputs — collector records, pulse stamps, ghost tags,
activity metering — are the word-level plan's, reconstructed through
the shared :class:`~repro.systolic.engine.lattice.LatticeEngine`
schedule arithmetic; only the comparator kernels differ, so the run is
bit-identical to the other engines (the equivalence harness enforces
it).  Signed elements are translated by the common minimum before
packing, which preserves equality and order exactly (see
:mod:`repro.bitlevel.planes`).

Limits are the lattice engine's: trace recording and hex-mesh metering
need the pulse-level cell network; the hexagonal mesh (whose payloads
are arbitrary semiring values, not bit-encodable words) falls back to
the inherited lattice walk.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bitlevel.planes import (
    equality_planes,
    magnitude_planes,
    pack_planes,
    plane_equal_matrix,
    plane_op,
    plane_shift_width,
    unpack_bits,
)
from repro.errors import SimulationError
from repro.obs import metrics
from repro.systolic.engine.lattice import LatticeEngine
from repro.systolic.engine.plan import GridPlan, LinearPlan

__all__ = ["BitplaneEngine"]


class BitplaneEngine(LatticeEngine):
    """Bit-level execution of the same plans, one packed plane a sweep.

    ``chunk_bytes`` bounds the transient per-plane intermediate (the
    ``chunk × n_words`` ``uint64`` state planes), sharing the lattice
    engine's default and ``REPRO_LATTICE_CHUNK_BYTES`` override.
    """

    name = "bitplane"

    # -- the rectangular grid: packed-plane comparator kernels ---------------

    def _verdict_matrix(
        self, plan: GridPlan, A: np.ndarray, B: np.ndarray
    ) -> np.ndarray:
        sched = plan.schedule
        n_a, n_b, m = sched.n_a, sched.n_b, sched.arity
        (A_s, B_s), width = plane_shift_width(A, B)
        b_planes = pack_planes(B_s, width)
        n_words = b_planes.shape[2]
        V = np.empty((n_a, n_b), dtype=bool)
        # Each rippled state plane is chunk × n_words uint64 words.
        chunk = max(1, self.chunk_bytes // max(1, 8 * n_words))
        swept = 0
        for lo in range(0, n_a, chunk):
            hi = min(n_a, lo + chunk)
            if plan.ops is None:
                packed = equality_planes(A_s[lo:hi], b_planes, width)
                swept += m * width
            else:
                packed = None
                for k, op in enumerate(plan.ops):
                    eq, gt, lt = magnitude_planes(
                        A_s[lo:hi, k], b_planes[k], width
                    )
                    col = plane_op(op)(eq, gt, lt)
                    packed = col if packed is None else packed & col
                    swept += width
            V[lo:hi] = unpack_bits(packed, n_b)
        metrics.inc("engine.bitplane_planes", swept)
        return V

    # -- the division array: gating as packed equality matrices --------------

    def _division_bits(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        divisor: np.ndarray,
        distinct: np.ndarray,
    ) -> np.ndarray:
        d_vals = np.unique(divisor)
        # Row r's gate fires for pair q iff xs[q] == distinct[r]; the
        # gated y covers divisor value d iff ys[q] == d — both equality
        # matrices evaluated plane-wise.
        gates, w_x = plane_equal_matrix(xs, distinct)
        covers, w_y = plane_equal_matrix(ys, d_vals)
        metrics.inc("engine.bitplane_planes", w_x + w_y)
        if d_vals.size == 0 or xs.size == 0:
            return np.zeros(distinct.shape[0], dtype=bool)
        covered = (
            gates.T.astype(np.int64) @ covers.astype(np.int64)
        ) > 0
        return covered.all(axis=1)

    # -- the linear array: one tuple pair, still plane-wise -----------------

    def _linear_equal(self, plan: LinearPlan) -> bool:
        try:
            a = np.asarray(plan.a, dtype=np.int64)
            b = np.asarray(plan.b, dtype=np.int64)
        except (ValueError, TypeError, OverflowError) as exc:
            raise SimulationError(
                f"the bitplane engine needs integer-encoded elements "
                f"(see §2.3 domain encoding): {exc}"
            ) from None
        if a.size == 0:
            return bool(plan.seed)
        (a_s, b_s), width = plane_shift_width(a, b)
        one = np.uint64(1)
        neq = False
        for p in range(width):
            shift = np.uint64(width - 1 - p)
            neq = neq or bool(
                (((a_s >> shift) ^ (b_s >> shift)) & one).any()
            )
        metrics.inc("engine.bitplane_planes", width)
        return bool(plan.seed) and not neq

    def __repr__(self) -> str:
        return f"BitplaneEngine(chunk_bytes={self.chunk_bytes})"
