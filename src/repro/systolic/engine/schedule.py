"""Feeding-schedule arithmetic for the paper's arrays (§3.1–§3.2, §8).

"To make this all work, all of the data must be in the right place at
the right time" (§3.1).  This module is the closed-form answer to
*when* and *where*: entry pulses for staggered elements, meeting
rows/pulses for tuple pairs, exit pulses for results, and the inverse
maps a hardware result-collector would use to turn an arrival
``(row, pulse)`` back into tuple indices.

Schedules are pure arithmetic — no cells, no wires — which is what
lets an :class:`~repro.systolic.engine.Engine` evaluate them either
pulse-by-pulse (the reference simulator) or as bulk wavefronts.

Three disciplines are covered:

* :class:`CounterStreamSchedule` — the design of Fig 3-3: relation A
  streams top-to-bottom and B bottom-to-top, tuples two pulses apart,
  elements staggered one pulse.  Every pair ``(a_i, b_j)`` meets in
  exactly one row.  Needs ``R = 2·max(n_A, n_B) − 1`` rows (and R must
  be odd, or counter-moving tuples would swap between cells without
  ever co-residing).
* :class:`FixedRelationSchedule` — the §8 optimization: B is held
  still (one tuple per row, elements preloaded) and only A moves, so
  tuples can follow each other one pulse apart and every processor
  compares on every pulse once the pipeline fills.
* :class:`DivisionSchedule` — the Fig 7-2 division array (§7):
  dividend pairs stream up the two dividend columns, gated ``y``
  values flow along the divisor rows, and an AND token sweeps each row
  one pulse behind the last ``y``.

All pulse numbers follow the simulator convention: a feeder value at
pulse ``p`` is processed by its cell during pulse ``p``; the cell's
output is processed by the downstream neighbour during pulse ``p+1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = [
    "CounterStreamSchedule",
    "FixedRelationSchedule",
    "DivisionSchedule",
]


@dataclass(frozen=True)
class CounterStreamSchedule:
    """Timing of the counter-streaming two-dimensional array (§3.2).

    Parameters: ``n_a`` and ``n_b`` are the relation cardinalities,
    ``arity`` the tuple length ``m`` (= number of processor columns).
    """

    n_a: int
    n_b: int
    arity: int

    def __post_init__(self) -> None:
        if self.n_a < 1 or self.n_b < 1:
            raise SimulationError(
                f"schedules need non-empty relations (n_a={self.n_a}, "
                f"n_b={self.n_b}); empty operands short-circuit upstream"
            )
        if self.arity < 1:
            raise SimulationError(f"arity must be >= 1, got {self.arity}")

    # -- geometry ----------------------------------------------------------

    @property
    def rows(self) -> int:
        """Processor rows needed so every pair meets: 2·max − 1 (odd)."""
        return 2 * max(self.n_a, self.n_b) - 1

    @property
    def mid(self) -> int:
        """The central row index M = max(n_a, n_b) − 1 where a₀ meets b₀."""
        return max(self.n_a, self.n_b) - 1

    # -- input schedule ------------------------------------------------------

    def a_entry_pulse(self, i: int, k: int) -> int:
        """Pulse at which element ``a[i][k]`` enters the top of column k."""
        return 2 * i + k

    def b_entry_pulse(self, j: int, k: int) -> int:
        """Pulse at which element ``b[j][k]`` enters the bottom of column k."""
        return 2 * j + k

    def t_init_pulse(self, i: int, j: int) -> int:
        """Pulse at which the initial t for pair (i, j) enters column 0."""
        return self.mid + i + j

    def row_pairs(self, row: int) -> list[tuple[int, int]]:
        """All pairs (i, j) that meet in ``row``, in meeting order.

        A row hosts a fixed index difference ``d = j − i = row − M``;
        successive pairs meet two pulses apart.
        """
        d = row - self.mid
        lo = max(0, -d)
        hi = min(self.n_a, self.n_b - d)
        return [(i, i + d) for i in range(lo, hi)]

    # -- meetings ------------------------------------------------------------

    def meeting_row(self, i: int, j: int) -> int:
        """The row in which tuples a_i and b_j cross (M + j − i)."""
        return self.mid + j - i

    def meeting_pulse(self, i: int, j: int, k: int = 0) -> int:
        """Pulse at which elements a[i][k] and b[j][k] co-reside."""
        return self.mid + i + j + k

    # -- output schedule -------------------------------------------------------

    def t_exit_pulse(self, i: int, j: int) -> int:
        """Pulse at which t_ij leaves the last comparator of its row."""
        return self.mid + i + j + self.arity - 1

    def pair_from_exit(self, row: int, pulse: int) -> tuple[int, int]:
        """Invert :meth:`t_exit_pulse`: which pair produced this arrival."""
        d = row - self.mid
        total = pulse - self.arity + 1 - self.mid  # i + j
        if (total - d) % 2:
            raise SimulationError(
                f"arrival (row={row}, pulse={pulse}) matches no pair "
                f"in the schedule"
            )
        i = (total - d) // 2
        j = i + d
        if not (0 <= i < self.n_a and 0 <= j < self.n_b):
            raise SimulationError(
                f"arrival (row={row}, pulse={pulse}) decodes to pair "
                f"({i}, {j}) outside the relations"
            )
        return i, j

    # -- accumulation column (Fig 4-1) ----------------------------------------

    def accumulator_seed_pulse(self, i: int) -> int:
        """Pulse at which t_i^initial = FALSE enters the top accumulator."""
        return 2 * i + self.arity

    def accumulator_exit_pulse(self, i: int) -> int:
        """Pulse at which the final t_i leaves the bottom accumulator."""
        return 2 * i + self.arity + self.rows - 1

    def tuple_from_accumulator_exit(self, pulse: int) -> int:
        """Invert :meth:`accumulator_exit_pulse`."""
        offset = pulse - self.arity - self.rows + 1
        if offset < 0 or offset % 2:
            raise SimulationError(
                f"accumulator arrival at pulse {pulse} matches no tuple"
            )
        i = offset // 2
        if i >= self.n_a:
            raise SimulationError(
                f"accumulator arrival at pulse {pulse} decodes to tuple "
                f"{i} outside relation A"
            )
        return i

    # -- run length --------------------------------------------------------------

    @property
    def comparison_pulses(self) -> int:
        """Pulses until the last t_ij has left the comparison array."""
        return self.t_exit_pulse(self.n_a - 1, self.n_b - 1) + 1

    @property
    def total_pulses(self) -> int:
        """Pulses until the last accumulated t_i has left the bottom."""
        return self.accumulator_exit_pulse(self.n_a - 1) + 1


@dataclass(frozen=True)
class FixedRelationSchedule:
    """Timing of the §8 fixed-relation variant.

    Relation B is preloaded, one tuple per row (``rows = n_b``); A
    streams downward with tuples only **one** pulse apart, so in steady
    state every processor compares on every pulse — the utilization fix
    §8 describes.
    """

    n_a: int
    n_b: int
    arity: int

    def __post_init__(self) -> None:
        if self.n_a < 1 or self.n_b < 1:
            raise SimulationError(
                f"schedules need non-empty relations (n_a={self.n_a}, "
                f"n_b={self.n_b})"
            )
        if self.arity < 1:
            raise SimulationError(f"arity must be >= 1, got {self.arity}")

    @property
    def rows(self) -> int:
        """One processor row per stored B tuple."""
        return self.n_b

    def a_entry_pulse(self, i: int, k: int) -> int:
        """Pulse at which element a[i][k] enters the top of column k."""
        return i + k

    def t_init_pulse(self, i: int, row: int) -> int:
        """Pulse at which the initial t for (a_i, b_row) enters column 0."""
        return i + row

    def meeting_pulse(self, i: int, row: int, k: int = 0) -> int:
        """Pulse at which a[i][k] visits the stored b[row][k]."""
        return i + row + k

    def t_exit_pulse(self, i: int, row: int) -> int:
        """Pulse at which t_{i,row} leaves the last comparator of ``row``."""
        return i + row + self.arity - 1

    def pair_from_exit(self, row: int, pulse: int) -> tuple[int, int]:
        """Invert :meth:`t_exit_pulse`."""
        i = pulse - row - self.arity + 1
        if not (0 <= i < self.n_a and 0 <= row < self.n_b):
            raise SimulationError(
                f"arrival (row={row}, pulse={pulse}) decodes to tuple "
                f"{i} outside relation A"
            )
        return i, row

    def accumulator_seed_pulse(self, i: int) -> int:
        """Pulse at which t_i^initial = FALSE enters the top accumulator."""
        return i + self.arity

    def accumulator_exit_pulse(self, i: int) -> int:
        """Pulse at which the final t_i leaves the bottom accumulator."""
        return i + self.arity + self.rows - 1

    def tuple_from_accumulator_exit(self, pulse: int) -> int:
        """Invert :meth:`accumulator_exit_pulse`."""
        i = pulse - self.arity - self.rows + 1
        if not 0 <= i < self.n_a:
            raise SimulationError(
                f"accumulator arrival at pulse {pulse} decodes to tuple "
                f"{i} outside relation A"
            )
        return i

    @property
    def comparison_pulses(self) -> int:
        """Pulses until the last t has left the comparison rows."""
        return self.t_exit_pulse(self.n_a - 1, self.n_b - 1) + 1

    @property
    def total_pulses(self) -> int:
        """Pulses until the last accumulated t_i has left the bottom."""
        return self.accumulator_exit_pulse(self.n_a - 1) + 1


@dataclass(frozen=True)
class DivisionSchedule:
    """Timing of the division array.

    ``n_pairs`` dividend pairs stream through ``p_rows`` dividend rows;
    each divisor row holds ``n_divisor`` processors.
    """

    n_pairs: int
    p_rows: int
    n_divisor: int

    def __post_init__(self) -> None:
        if min(self.n_pairs, self.p_rows, self.n_divisor) < 1:
            raise SimulationError(
                "the division array needs non-empty dividend and divisor"
            )

    def x_entry_pulse(self, q: int) -> int:
        """Pulse at which pair q's ``x`` enters the bottom left processor."""
        return q

    def y_entry_pulse(self, q: int) -> int:
        """Pulse at which pair q's ``y`` enters (one step behind its x)."""
        return q + 1

    def gate_pulse(self, q: int, row: int) -> int:
        """Pulse at which pair q is gated at dividend row ``row``."""
        return q + 1 + (self.p_rows - 1 - row)

    def and_inject_pulse(self, row: int) -> int:
        """Earliest pulse the AND sweep may enter divisor row ``row``.

        One pulse behind the last gated ``y`` at the row's first
        processor, so the sweep trails the dividend through every cell.
        """
        return self.n_pairs + 2 + (self.p_rows - 1 - row)

    def result_pulse(self, row: int) -> int:
        """Pulse at which row ``row``'s quotient bit leaves the right edge."""
        return self.and_inject_pulse(row) + self.n_divisor - 1

    def row_from_result(self, row: int, pulse: int) -> int:
        """Sanity-check a result arrival; returns the row."""
        if pulse != self.result_pulse(row):
            raise SimulationError(
                f"divisor row {row} produced its quotient bit on pulse "
                f"{pulse}, expected {self.result_pulse(row)}"
            )
        return row

    @property
    def total_pulses(self) -> int:
        """Pulses until the topmost row's quotient bit has exited."""
        return self.result_pulse(0) + 1
