"""The reference engine: materialize and simulate pulse by pulse.

This is the paper's semantics verbatim — every cell, wire, latch, and
pulse of the array exists and is driven by the two-phase
:class:`~repro.systolic.simulator.SystolicSimulator`.  Everything the
faster engines produce is defined as "whatever this engine produces".
"""

from __future__ import annotations

from typing import Any, Optional

from repro import obs
from repro.obs import metrics
from repro.systolic.engine.materialize import materialize
from repro.systolic.engine.plan import EngineRun, ExecutionPlan, HexPlan
from repro.systolic.metrics import ActivityMeter
from repro.systolic.simulator import SystolicSimulator

__all__ = ["PulseEngine"]


class PulseEngine:
    """Cycle-accurate execution on the simulated cell network."""

    name = "pulse"

    def run(
        self,
        plan: ExecutionPlan,
        meter: Optional[ActivityMeter] = None,
        trace: Optional[Any] = None,
    ) -> EngineRun:
        with obs.span(
            "engine.run", engine=self.name,
            plan=type(plan).__name__, pulses=plan.pulses, cells=plan.cells,
        ):
            network = materialize(plan)
            peak_firing: Optional[int] = None
            observer = trace
            firing_per_pulse: list[int] = []
            if isinstance(plan, HexPlan):
                observer = _hex_observer(firing_per_pulse, trace)
            simulator = SystolicSimulator(
                network, meter=meter, observer=observer
            )
            simulator.run(plan.pulses)
            if isinstance(plan, HexPlan):
                peak_firing = max(firing_per_pulse, default=0)
        metrics.inc("engine.runs")
        metrics.observe("engine.run.pulses", plan.pulses)
        return EngineRun(
            engine=self.name,
            pulses=plan.pulses,
            cells=len(network.cells),
            collectors=simulator.collectors,
            meter=meter,
            trace=trace,
            peak_firing=peak_firing,
        )

    def __repr__(self) -> str:
        return "PulseEngine()"


def _hex_observer(firing_per_pulse: list[int], trace: Optional[Any]):
    """Count triple-coincidences per pulse, chaining any trace observer."""

    def observer(pulse, inputs_by_cell, outputs_by_cell):
        firing = sum(
            1 for ports in inputs_by_cell.values()
            if all(ports.get(p) is not None for p in ("a_in", "b_in", "c_in"))
        )
        firing_per_pulse.append(firing)
        if trace is not None:
            trace(pulse, inputs_by_cell, outputs_by_cell)

    return observer
