"""Hexagonal-mesh geometry and cells (§2.1, ref [5]).

The hexagonally connected alternative array: three data streams flow
through a hex mesh along directions summing to zero, every cell
computing ``c ← c ⊕ (a ⊗ b)`` when a triple coincides.  This module
holds everything both engines share — the :class:`Semiring` algebra,
the :class:`HexCell` processor, the stream geometry, and the
pulse-level network builder — so the operator layer
(:mod:`repro.arrays.hexagonal`) only states the problem.

Schedule (α = β = γ = 1, δ = 0; derivation in the tests):

* stream directions ``u_a = (1, 0)``, ``u_b = (0, 1)``,
  ``u_c = (−1, −1)`` — the three hexagonal axes, summing to zero;
* ``a[i][k]`` starts at ``i·(u_b − u_a) + k·(u_c − u_a)`` and moves
  along ``u_a`` one cell per pulse (``b`` and ``c`` symmetrically);
* the triple ``(i, j, k)`` coincides in one cell at pulse
  ``i + j + k`` — and *only* scheduled triples ever coincide, so the
  array needs no guards beyond "compute when all three are present".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.systolic.cell import Cell, PortMap
from repro.systolic.streams import ScheduleFeeder
from repro.systolic.values import Token
from repro.systolic.wiring import Network

__all__ = [
    "Semiring",
    "COMPARISON_SEMIRING",
    "BOOLEAN_SEMIRING",
    "HexCell",
    "U_A",
    "U_B",
    "U_C",
    "a_start",
    "b_start",
    "c_start",
    "meeting_cell",
    "hex_horizon",
    "hex_positions",
    "hex_cell_name",
    "hex_tap_name",
    "build_hex_network",
]

#: The three hexagonal stream directions (they sum to the zero vector).
U_A = (1, 0)
U_B = (0, 1)
U_C = (-1, -1)


@dataclass(frozen=True)
class Semiring:
    """The algebra a hex cell computes over: ``c ← combine(c, interact(a, b))``."""

    name: str
    combine: Callable[[Any, Any], Any]
    interact: Callable[[Any, Any], Any]
    identity: Any


#: Tuple comparison: t_ij = AND_k (a_ik = b_jk); identity TRUE.
COMPARISON_SEMIRING = Semiring(
    name="comparison",
    combine=lambda c, x: bool(c) and bool(x),
    interact=lambda a, b: a == b,
    identity=True,
)

#: Boolean matrix product (OR of ANDs) — e.g. one step of reachability.
BOOLEAN_SEMIRING = Semiring(
    name="boolean",
    combine=lambda c, x: bool(c) or bool(x),
    interact=lambda a, b: bool(a) and bool(b),
    identity=False,
)


class HexCell(Cell):
    """One hexagonal-mesh processor: three pass-through streams.

    When tokens are present on all three inputs the cell performs the
    semiring step on the ``c`` value; any other combination just
    forwards what arrived (tokens passing through without a scheduled
    meeting).
    """

    IN_PORTS = ("a_in", "b_in", "c_in")
    OUT_PORTS = ("a_out", "b_out", "c_out")

    def __init__(self, name: str, semiring: Semiring) -> None:
        super().__init__(name)
        self.semiring = semiring

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        a = inputs.get("a_in")
        b = inputs.get("b_in")
        c = inputs.get("c_in")
        outputs: dict[str, Optional[Token]] = {}
        if a is not None:
            outputs["a_out"] = a
        if b is not None:
            outputs["b_out"] = b
        if c is not None:
            if a is not None and b is not None:
                self._check_tags(a, b, c)
                updated = self.semiring.combine(
                    c.value, self.semiring.interact(a.value, b.value)
                )
                outputs["c_out"] = Token(updated, c.tag)
            else:
                outputs["c_out"] = c
        return outputs

    def _check_tags(self, a: Token, b: Token, c: Token) -> None:
        a_tag, b_tag, c_tag = a.tag, b.tag, c.tag
        if not (
            isinstance(a_tag, tuple) and len(a_tag) == 3 and a_tag[0] == "a"
            and isinstance(b_tag, tuple) and len(b_tag) == 3 and b_tag[0] == "b"
            and isinstance(c_tag, tuple) and len(c_tag) == 3 and c_tag[0] == "c"
        ):
            return
        _, a_i, a_k = a_tag
        _, b_k, b_j = b_tag
        _, c_i, c_j = c_tag
        if a_k != b_k or a_i != c_i or b_j != c_j:
            raise self.protocol_error(
                f"unscheduled triple met: a={a_tag!r} b={b_tag!r} c={c_tag!r}"
            )


def _vadd(p: tuple[int, int], q: tuple[int, int], scale: int = 1) -> tuple[int, int]:
    return (p[0] + scale * q[0], p[1] + scale * q[1])


def _vsub(p: tuple[int, int], q: tuple[int, int]) -> tuple[int, int]:
    return (p[0] - q[0], p[1] - q[1])


def a_start(i: int, k: int) -> tuple[int, int]:
    """Start cell of element ``a[i][k]`` (injected at pulse 0)."""
    base = _vsub(U_B, U_A)
    off = _vsub(U_C, U_A)
    return (base[0] * i + off[0] * k, base[1] * i + off[1] * k)


def b_start(k: int, j: int) -> tuple[int, int]:
    """Start cell of element ``b[k][j]`` (injected at pulse 0)."""
    base = _vsub(U_A, U_B)
    off = _vsub(U_C, U_B)
    return (off[0] * k + base[0] * j, off[1] * k + base[1] * j)


def c_start(i: int, j: int) -> tuple[int, int]:
    """Start cell of accumulator ``c[i][j]`` (injected at pulse 0)."""
    bi = _vsub(U_B, U_C)
    bj = _vsub(U_A, U_C)
    return (bi[0] * i + bj[0] * j, bi[1] * i + bj[1] * j)


def meeting_cell(i: int, j: int, k: int) -> tuple[int, int]:
    """Where the (i, j, k) triple coincides, at pulse i + j + k."""
    t = i + j + k
    return _vadd(a_start(i, k), U_A, t)


def hex_horizon(n_a: int, n_b: int, m: int) -> int:
    """The last pulse on which a scheduled triple meets."""
    return (n_a - 1) + (n_b - 1) + (m - 1)


def hex_positions(n_a: int, n_b: int, m: int) -> set[tuple[int, int]]:
    """Every lattice cell any token ever occupies during the run."""
    horizon = hex_horizon(n_a, n_b, m)
    positions: set[tuple[int, int]] = set()
    for i in range(n_a):
        for k in range(m):
            start = a_start(i, k)
            for t in range(horizon + 1):
                positions.add(_vadd(start, U_A, t))
    for j in range(n_b):
        for k in range(m):
            start = b_start(k, j)
            for t in range(horizon + 1):
                positions.add(_vadd(start, U_B, t))
    for i in range(n_a):
        for j in range(n_b):
            start = c_start(i, j)
            # c streams matter only until their last meeting.
            for t in range(i + j + m):
                positions.add(_vadd(start, U_C, t))
    return positions


def hex_cell_name(pos: tuple[int, int]) -> str:
    """Canonical name of the hex processor at lattice position ``pos``."""
    return f"hex[{pos[0]},{pos[1]}]"


def hex_tap_name(pos: tuple[int, int]) -> str:
    """Canonical tap name for a ``c``-stream exit at ``pos``."""
    return f"c@{pos[0]},{pos[1]}"


def build_hex_network(
    a_rows: Sequence[Sequence[Any]],
    b_cols: Sequence[Sequence[Any]],
    semiring: Semiring,
    tagged: bool = True,
) -> tuple[Network, dict[tuple[int, int], str]]:
    """Assemble the hex mesh with feeders and final-meeting taps.

    Returns the network plus the tap map (final meeting position →
    tap name) the collector layer uses to read off ``C``.
    """
    n_a, n_b = len(a_rows), len(b_cols)
    m = len(a_rows[0])
    positions = hex_positions(n_a, n_b, m)

    network = Network("hexagonal-array")
    for pos in positions:
        network.add(HexCell(hex_cell_name(pos), semiring))
    for pos in positions:
        for direction, out_port, in_port in (
            (U_A, "a_out", "a_in"), (U_B, "b_out", "b_in"), (U_C, "c_out", "c_in"),
        ):
            neighbour = _vadd(pos, direction)
            if neighbour in positions:
                network.connect(hex_cell_name(pos), out_port,
                                hex_cell_name(neighbour), in_port)

    # Feeders: every token is injected at its start cell on pulse 0.
    # (Start positions are injective per stream — see the tests — so no
    # two tokens contend for one feeder slot.)
    schedules: dict[tuple[str, str], dict[int, Token]] = {}

    def schedule_injection(pos, port, token):
        key = (hex_cell_name(pos), port)
        schedules.setdefault(key, {})[0] = token

    for i in range(n_a):
        for k in range(m):
            schedule_injection(
                a_start(i, k), "a_in",
                Token(a_rows[i][k], ("a", i, k) if tagged else None),
            )
    for j in range(n_b):
        for k in range(m):
            schedule_injection(
                b_start(k, j), "b_in",
                Token(b_cols[j][k], ("b", k, j) if tagged else None),
            )
    for i in range(n_a):
        for j in range(n_b):
            schedule_injection(
                c_start(i, j), "c_in",
                Token(semiring.identity, ("c", i, j) if tagged else None),
            )
    for (name, port), schedule in schedules.items():
        network.feed(name, port, ScheduleFeeder(schedule), merge=True)

    # Taps: the cell of each c stream's final meeting (k = m−1).
    taps: dict[tuple[int, int], str] = {}
    for i in range(n_a):
        for j in range(n_b):
            pos = meeting_cell(i, j, m - 1)
            if pos not in taps:
                tap_name = hex_tap_name(pos)
                network.tap(tap_name, hex_cell_name(pos), "c_out")
                taps[pos] = tap_name
    return network, taps
