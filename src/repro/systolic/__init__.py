"""Systolic machine substrate: cells, wiring, and the pulse simulator.

Everything in :mod:`repro.arrays` is built from these parts: a
:class:`~repro.systolic.wiring.Network` of
:class:`~repro.systolic.cell.Cell`\\ s driven by a
:class:`~repro.systolic.simulator.SystolicSimulator` at pulse
granularity, fed and observed through
:mod:`~repro.systolic.streams`.
"""

from repro.systolic.cell import Cell, PortMap
from repro.systolic.metrics import ActivityMeter, UtilizationReport
from repro.systolic.simulator import SystolicSimulator
from repro.systolic.streams import (
    Collector,
    ConstantFeeder,
    PeriodicFeeder,
    ScheduleFeeder,
    silent,
)
from repro.systolic.trace import TraceRecorder, render_grid
from repro.systolic.values import FALSE, NULL_VALUE, TRUE, Token, tok, value_of
from repro.systolic.wiring import Endpoint, Network, Wire

__all__ = [
    "ActivityMeter",
    "Cell",
    "Collector",
    "ConstantFeeder",
    "Endpoint",
    "FALSE",
    "NULL_VALUE",
    "Network",
    "PeriodicFeeder",
    "PortMap",
    "ScheduleFeeder",
    "SystolicSimulator",
    "Token",
    "TraceRecorder",
    "TRUE",
    "UtilizationReport",
    "Wire",
    "render_grid",
    "silent",
    "tok",
    "value_of",
]
