"""Values travelling on systolic wires.

A wire either carries nothing on a given pulse (``None``) or a
:class:`Token`.  A token wraps the payload *value* — an integer element,
a boolean partial result, or :data:`NULL_VALUE` for the division array's
explicit "null value" output (§7) — plus an optional *ghost tag*.

Ghost tags do not exist in the hardware: they are verification-only
metadata (e.g. ``("a", i, k)`` = element ``k`` of tuple ``a_i``) that
cells propagate and cross-check so the test suite can prove the feeding
schedules put every datum in the right cell at the right pulse.
Production use runs untagged; tags are opt-in per feeder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["Token", "NULL_VALUE", "TRUE", "FALSE", "tok", "value_of", "tag_of"]


class _NullValue:
    """The explicit null the division array emits for non-matching rows.

    Distinct from an empty wire (``None``): a :data:`NULL_VALUE` token
    occupies a pulse slot but carries no element, mirroring §7's "some
    null value is output".
    """

    _instance: "Optional[_NullValue]" = None

    def __new__(cls) -> "_NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL_VALUE"

    def __bool__(self) -> bool:
        return False


#: Singleton explicit-null payload.
NULL_VALUE = _NullValue()


@dataclass(frozen=True)
class Token:
    """A datum on a wire during one pulse."""

    value: Any
    tag: Any = None

    def with_value(self, value: Any) -> "Token":
        """A token carrying ``value`` but keeping this token's tag."""
        return Token(value, self.tag)

    def with_tag(self, tag: Any) -> "Token":
        """A token carrying this token's value but tagged ``tag``."""
        return Token(self.value, tag)

    def __repr__(self) -> str:
        if self.tag is None:
            return f"Token({self.value!r})"
        return f"Token({self.value!r}, tag={self.tag!r})"


#: Convenient boolean tokens (untagged).
TRUE = Token(True)
FALSE = Token(False)


def tok(value: Any, tag: Any = None) -> Token:
    """Shorthand token constructor."""
    return Token(value, tag)


def value_of(token: Optional[Token]) -> Any:
    """The payload of ``token``, or ``None`` for an empty wire."""
    return None if token is None else token.value


def tag_of(token: Optional[Token]) -> Any:
    """The ghost tag of ``token``, or ``None``."""
    return None if token is None else token.tag
