"""repro — Systolic (VLSI) Arrays for Relational Database Operations.

A cycle-level, from-scratch reproduction of Kung & Lehman (CMU-CS-80-114,
SIGMOD 1980).  The public API re-exports the pieces most users need:

* the relational data model (:mod:`repro.relational`),
* the systolic operator arrays (:mod:`repro.arrays`),
* the §8 technology/performance model (:mod:`repro.perf`),
* the Fig 9-1 integrated database machine (:mod:`repro.machine`).

Quick start::

    from repro import Domain, Relation, Schema, systolic_intersection

    names = Domain("name")
    schema = Schema.of(("first", names), ("last", names))
    a = Relation.from_values(schema, [("ada", "lovelace"), ("alan", "turing")])
    b = Relation.from_values(schema, [("alan", "turing")])
    print(systolic_intersection(a, b).relation.decoded())
"""

from repro.arrays import (
    ArrayCapacity,
    blocked_intersection,
    blocked_join,
    compare_all_pairs,
    compare_tuples,
    hex_compare_all_pairs,
    systolic_difference,
    systolic_divide,
    systolic_dynamic_theta_join,
    systolic_intersection,
    systolic_join,
    systolic_projection,
    systolic_remove_duplicates,
    systolic_theta_join,
    systolic_union,
)
from repro.arrays.division import systolic_divide_general
from repro.errors import ReproError
from repro.lang import execute_plan, optimize, parse, query
from repro.patterns import match_pattern
from repro.relational import (
    Column,
    Domain,
    IntegerDomain,
    MultiRelation,
    Relation,
    Schema,
)

__version__ = "1.0.0"

__all__ = [
    "ArrayCapacity",
    "Column",
    "Domain",
    "IntegerDomain",
    "MultiRelation",
    "Relation",
    "ReproError",
    "Schema",
    "__version__",
    "blocked_intersection",
    "blocked_join",
    "compare_all_pairs",
    "compare_tuples",
    "execute_plan",
    "hex_compare_all_pairs",
    "match_pattern",
    "optimize",
    "parse",
    "query",
    "systolic_difference",
    "systolic_divide",
    "systolic_divide_general",
    "systolic_dynamic_theta_join",
    "systolic_intersection",
    "systolic_join",
    "systolic_projection",
    "systolic_remove_duplicates",
    "systolic_theta_join",
    "systolic_union",
]
