"""The pattern-match processor (§8, ref [3]).

§8: "These include a pattern-match chip [3] ... The pattern-match chip
can be viewed as a scaled-down version of the comparison array in
Section 3.  (This chip has been fabricated, tested, and found to
work.)"

A :class:`PatternCell` stores one pattern character (or a wildcard,
which matches anything — the Foster–Kung chip's "X").  Text characters
stream through at full speed; partial match results trail at half speed
(one delay latch between cells), so the result for alignment ``i``
meets ``text[i + k]`` at cell ``k`` — the same
right-place-at-the-right-time discipline as §3.1.
"""

from __future__ import annotations

from typing import Optional

from repro.systolic.cell import Cell, PortMap
from repro.systolic.values import Token

__all__ = ["PatternCell", "WILDCARD"]


class _Wildcard:
    """The pattern character that matches any text character."""

    _instance: "Optional[_Wildcard]" = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "WILDCARD"


#: Singleton wildcard pattern character.
WILDCARD = _Wildcard()


class PatternCell(Cell):
    """One pattern position: stored character, AND-chained match bit."""

    IN_PORTS = ("c_in", "r_in")
    OUT_PORTS = ("c_out", "r_out")

    def __init__(self, name: str, stored: object) -> None:
        super().__init__(name)
        self.stored = stored

    def step(self, inputs: PortMap) -> dict[str, Optional[Token]]:
        char = inputs.get("c_in")
        result = inputs.get("r_in")
        outputs: dict[str, Optional[Token]] = {}
        if char is not None:
            outputs["c_out"] = char
        if result is None:
            return outputs
        if char is None:
            raise self.protocol_error(
                "a partial match result arrived with no text character — "
                "the text/result speeds are misaligned"
            )
        matched = self.stored is WILDCARD or char.value == self.stored
        outputs["r_out"] = Token(bool(result.value) and matched, result.tag)
        return outputs
