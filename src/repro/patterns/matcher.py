"""The systolic pattern matcher — the §8 pattern-match chip, full size.

Geometry: ``m`` pattern cells in a row (pattern preloaded, one
character per cell), each followed by a delay latch on the result path.
Text characters move right one cell per pulse; partial results move
right one cell per **two** pulses (cell + latch), so the result seeded
for alignment ``i`` compares against ``text[i]``, ``text[i+1]``, … ,
``text[i+m−1]`` in successive cells:

* ``text[j]`` is at cell ``k`` on pulse ``j + k`` (char path: 1 hop/pulse);
* the alignment-``i`` result is at cell ``k`` on pulse ``i + 2k`` —
  which is exactly where ``text[i+k]`` is.

The match bit for alignment ``i`` exits the last cell on pulse
``i + 2(m−1)``; the collector maps pulses back to alignments by that
formula alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arrays.base import ArrayRun, run_array
from repro.errors import SimulationError
from repro.patterns.cells import WILDCARD, PatternCell
from repro.systolic.cells import LatchCell
from repro.systolic.metrics import ActivityMeter
from repro.systolic.streams import PeriodicFeeder, ScheduleFeeder
from repro.systolic.trace import TraceRecorder
from repro.systolic.values import Token
from repro.systolic.wiring import Network

__all__ = ["PatternMatchResult", "build_pattern_array", "match_pattern"]


@dataclass
class PatternMatchResult:
    """Outcome of one pattern-match run."""

    #: alignments (0-based text offsets) at which the pattern matches
    matches: list[int]
    #: the raw per-alignment bits, index = alignment
    bits: list[bool]
    run: ArrayRun


def _encode(text: str | Sequence[int]) -> list[object]:
    if isinstance(text, str):
        return [ord(ch) for ch in text]
    return list(text)


def _encode_pattern(
    pattern: str | Sequence[object], wildcard: Optional[str]
) -> list[object]:
    if isinstance(pattern, str):
        return [
            WILDCARD if (wildcard is not None and ch == wildcard) else ord(ch)
            for ch in pattern
        ]
    return list(pattern)


def build_pattern_array(
    text_codes: Sequence[object],
    pattern_codes: Sequence[object],
) -> tuple[Network, int]:
    """Assemble the matcher; returns (network, exit pulse offset 2(m−1))."""
    m = len(pattern_codes)
    n = len(text_codes)
    if m == 0:
        raise SimulationError("the pattern must be non-empty")
    if n < m:
        raise SimulationError(
            f"text of length {n} is shorter than the pattern ({m})"
        )
    network = Network("pattern-matcher")
    for k, stored in enumerate(pattern_codes):
        network.add(PatternCell(f"pat[{k}]", stored))
    for k in range(m - 1):
        network.add(LatchCell(f"lag[{k}]"))
    for k in range(m - 1):
        # Character path: cell to cell, full speed.
        network.connect(f"pat[{k}]", "c_out", f"pat[{k + 1}]", "c_in")
        # Result path: cell -> latch -> next cell, half speed.
        network.connect(f"pat[{k}]", "r_out", f"lag[{k}]", "d_in")
        network.connect(f"lag[{k}]", "d_out", f"pat[{k + 1}]", "r_in")
    network.tap("match", f"pat[{m - 1}]", "r_out")

    network.feed(
        "pat[0]", "c_in",
        PeriodicFeeder([Token(code) for code in text_codes], start=0, period=1),
    )
    alignments = n - m + 1
    network.feed(
        "pat[0]", "r_in",
        ScheduleFeeder({i: Token(True, ("align", i)) for i in range(alignments)}),
    )
    return network, 2 * (m - 1)


def match_pattern(
    text: str | Sequence[int],
    pattern: str | Sequence[object],
    wildcard: Optional[str] = "?",
    meter: Optional[ActivityMeter] = None,
    trace: Optional[TraceRecorder] = None,
) -> PatternMatchResult:
    """Find every alignment of ``pattern`` in ``text`` on the chip.

    String patterns may contain ``wildcard`` characters (default
    ``"?"``), which match any text character — pass ``wildcard=None``
    to disable.  Integer sequences may mix codes with
    :data:`~repro.patterns.cells.WILDCARD`.
    """
    text_codes = _encode(text)
    pattern_codes = _encode_pattern(pattern, wildcard)
    network, exit_offset = build_pattern_array(text_codes, pattern_codes)
    alignments = len(text_codes) - len(pattern_codes) + 1
    pulses = (alignments - 1) + exit_offset + 1
    simulator = run_array(network, pulses=pulses, meter=meter, trace=trace)

    bits: list[Optional[bool]] = [None] * alignments
    for pulse, token in simulator.collector("match"):
        alignment = pulse - exit_offset
        if not 0 <= alignment < alignments:
            raise SimulationError(
                f"match bit exited on pulse {pulse}, which maps to no "
                f"alignment"
            )
        if bits[alignment] is not None:
            raise SimulationError(f"alignment {alignment} exited twice")
        if token.tag is not None and token.tag != ("align", alignment):
            raise SimulationError(
                f"arrival decoded as alignment {alignment} but carries tag "
                f"{token.tag!r}"
            )
        bits[alignment] = bool(token.value)
    missing = [i for i, bit in enumerate(bits) if bit is None]
    if missing:
        raise SimulationError(
            f"alignments {missing[:8]} never exited the matcher"
        )
    final = [bool(b) for b in bits]
    cells = 2 * len(pattern_codes) - 1
    return PatternMatchResult(
        matches=[i for i, bit in enumerate(final) if bit],
        bits=final,
        run=ArrayRun(pulses=pulses, rows=1, cols=cells, cells=cells,
                     meter=meter, trace=trace),
    )
