"""The §8 pattern-match chip: a scaled-down comparison array.

The one systolic design in the paper that had already been fabricated
and tested.  Text streams through a row of pattern-holding cells at
full speed; match results trail at half speed, AND-accumulating one
comparison per cell, wildcards included.
"""

from repro.patterns.cells import WILDCARD, PatternCell
from repro.patterns.matcher import (
    PatternMatchResult,
    build_pattern_array,
    match_pattern,
)

__all__ = [
    "PatternCell",
    "PatternMatchResult",
    "WILDCARD",
    "build_pattern_array",
    "match_pattern",
]
