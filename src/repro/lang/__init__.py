"""A small relational-algebra expression language.

``parse`` turns text like ``project(join(EMP, DEPT, dept == id), name)``
into the machine's plan AST; ``execute_plan``/``query`` evaluate plans
on the software engine or the pulse-level systolic arrays.
"""

from repro.lang.compile import execute_plan, query
from repro.lang.optimize import optimize, share_common_subplans
from repro.lang.parser import parse
from repro.lang.tokens import Token, tokenize

__all__ = [
    "Token",
    "execute_plan",
    "optimize",
    "parse",
    "query",
    "share_common_subplans",
    "tokenize",
]
