"""Plan evaluation engines.

A parsed plan can execute three ways:

* ``software`` — the reference algebra (the host-CPU baseline);
* ``systolic`` — every operator on its pulse-level simulated array;
* the full machine — hand the plan to
  :class:`~repro.machine.system.SystolicDatabaseMachine` directly.

The first two are provided here as :func:`execute_plan` so tests can
assert all three agree.
"""

from __future__ import annotations

from typing import Mapping

from repro.arrays import (
    systolic_difference,
    systolic_divide,
    systolic_intersection,
    systolic_join,
    systolic_projection,
    systolic_remove_duplicates,
    systolic_theta_join,
    systolic_union,
)
from repro.errors import PlanError
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    PlanNode,
    Project,
    Select,
    Union,
)
from repro.relational import algebra
from repro.relational.relation import Relation

__all__ = ["execute_plan", "query"]


def execute_plan(
    plan: PlanNode,
    catalog: Mapping[str, Relation],
    engine: str = "software",
    backend=None,
    optimize: bool = True,
) -> Relation:
    """Evaluate a plan against named relations.

    ``engine`` selects ``"software"`` (reference algebra) or
    ``"systolic"`` (simulated arrays).  For the systolic engine,
    ``backend`` picks the array execution backend — ``"pulse"``
    (cycle-accurate cell network, the default) or ``"lattice"``
    (vectorized wavefront evaluation with identical results).

    With ``optimize=True`` (the default) the plan is first rewritten by
    :func:`repro.lang.optimize.optimize` — with the catalog's schemas,
    so schema-aware rules like join pushdown fire.  All rewrites
    preserve set semantics; pass ``optimize=False`` to execute the plan
    exactly as written.
    """
    if engine not in ("software", "systolic"):
        raise PlanError(
            f"unknown engine {engine!r}; use 'software' or 'systolic' "
            f"(or run the plan on a SystolicDatabaseMachine)"
        )
    if optimize:
        from repro.lang.optimize import optimize as optimize_plan

        plan = optimize_plan(
            plan, schemas={name: rel.schema for name, rel in catalog.items()}
        )
    return _evaluate(plan, catalog, engine, backend)


def _evaluate(
    node: PlanNode,
    catalog: Mapping[str, Relation],
    engine: str,
    backend=None,
) -> Relation:
    if isinstance(node, Base):
        try:
            return catalog[node.name]
        except KeyError:
            raise PlanError(
                f"no relation named {node.name!r} in the catalog; "
                f"have {sorted(catalog)}"
            ) from None
    inputs = [
        _evaluate(child, catalog, engine, backend) for child in node.children
    ]
    if engine == "software":
        return _software_step(node, inputs)
    return _systolic_step(node, inputs, backend)


def _software_step(node: PlanNode, inputs: list[Relation]) -> Relation:
    if isinstance(node, Intersect):
        return algebra.intersection(inputs[0], inputs[1])
    if isinstance(node, Difference):
        return algebra.difference(inputs[0], inputs[1])
    if isinstance(node, Union):
        return algebra.union(inputs[0], inputs[1])
    if isinstance(node, Dedup):
        return algebra.remove_duplicates(inputs[0].to_multi())
    if isinstance(node, Project):
        return algebra.project(inputs[0], list(node.columns))
    if isinstance(node, Join):
        if node.ops is None:
            return algebra.join(inputs[0], inputs[1], list(node.on))
        return algebra.theta_join(
            inputs[0], inputs[1], list(node.on), list(node.ops)
        )
    if isinstance(node, Divide):
        return algebra.divide(
            inputs[0], inputs[1],
            a_value=node.a_value, a_group=node.a_group, b_value=node.b_value,
        )
    if isinstance(node, Select):
        return algebra.select(inputs[0], node.column, node.op, node.value)
    raise PlanError(f"no software implementation for {node.describe()}")


def _systolic_step(
    node: PlanNode, inputs: list[Relation], backend=None
) -> Relation:
    if isinstance(node, Intersect):
        return systolic_intersection(
            inputs[0], inputs[1], backend=backend
        ).relation
    if isinstance(node, Difference):
        return systolic_difference(
            inputs[0], inputs[1], backend=backend
        ).relation
    if isinstance(node, Union):
        return systolic_union(inputs[0], inputs[1], backend=backend).relation
    if isinstance(node, Dedup):
        return systolic_remove_duplicates(
            inputs[0].to_multi(), backend=backend
        ).relation
    if isinstance(node, Project):
        return systolic_projection(
            inputs[0], list(node.columns), backend=backend
        ).relation
    if isinstance(node, Join):
        if node.ops is None:
            return systolic_join(
                inputs[0], inputs[1], list(node.on), backend=backend
            ).relation
        return systolic_theta_join(
            inputs[0], inputs[1], list(node.on), list(node.ops),
            backend=backend,
        ).relation
    if isinstance(node, Divide):
        return systolic_divide(
            inputs[0], inputs[1],
            a_value=node.a_value, a_group=node.a_group, b_value=node.b_value,
            backend=backend,
        ).relation
    if isinstance(node, Select):
        # Selection is not an array operation in the paper (§9: CPU or
        # logic-per-track disk); the software step stands in for both.
        return algebra.select(inputs[0], node.column, node.op, node.value)
    raise PlanError(f"no systolic implementation for {node.describe()}")


def query(
    source: str,
    catalog: Mapping[str, Relation],
    engine: str = "systolic",
    backend=None,
    optimize: bool = True,
) -> Relation:
    """Parse and execute an expression in one call."""
    from repro.lang.parser import parse

    return execute_plan(
        parse(source), catalog, engine=engine, backend=backend,
        optimize=optimize,
    )
