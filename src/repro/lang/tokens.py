"""Tokenizer for the relational-algebra expression language.

The language is a small functional notation over named relations::

    intersect(A, B)
    project(join(EMP, DEPT, dept == id), name, budget)
    select(EMP, salary >= 50000)
    divide(TAKES, COURSES, group = student, value = course, by = course)

Tokens: names, integers, ``#`` (positional column refs), parentheses,
commas, ``=`` (keyword arguments), and the six comparison operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "COMPARISON_TOKENS"]

#: Comparison operators, longest first so '<=' wins over '<'.
COMPARISON_TOKENS = ("==", "!=", "<=", ">=", "<", ">")

_PUNCT = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA", "#": "HASH", "=": "ASSIGN"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    text: str
    position: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r}@{self.position})"


def tokenize(source: str) -> list[Token]:
    """Lex an expression into tokens, ending with an EOF marker."""
    tokens: list[Token] = []
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char.isspace():
            index += 1
            continue
        matched = _match_operator(source, index)
        if matched is not None:
            tokens.append(Token("OP", matched, index))
            index += len(matched)
            continue
        if char in _PUNCT:
            tokens.append(Token(_PUNCT[char], char, index))
            index += 1
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            tokens.append(Token("INT", source[start:index], start))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            tokens.append(Token("NAME", source[start:index], start))
            continue
        raise ParseError(
            f"unexpected character {char!r} at position {index} in {source!r}"
        )
    tokens.append(Token("EOF", "", length))
    return tokens


def _match_operator(source: str, index: int) -> str | None:
    for op in COMPARISON_TOKENS:
        if source.startswith(op, index):
            return op
    return None
