"""Plan rewrites for the §9 machine.

A transaction spends its time in device runs and disk reads, so the
classic algebraic rewrites pay off directly:

* **redundancy removal** — ``dedup(dedup(X)) → dedup(X)``,
  ``dedup(project(X)) → project(X)`` (projection already
  deduplicates, §5), ``X ∩ X → X``, ``X ∪ X → X``;
* **projection composition** — ``project(project(X, f), g) →
  project(X, f∘g)`` when the composition is statically resolvable;
* **selection pushdown** — σ commutes with ∩, ∪, −, and dedup, and
  sinks through a join to whichever side owns the selected column, so
  selections approach the base relations, where a logic-per-track
  disk (§9, ref [8]) applies them *during the read, for free*;
* **common-subplan sharing** — structurally identical subtrees become
  one object, which the machine computes exactly once.

All rewrites preserve set semantics; the tests re-execute original and
optimized plans on random catalogs and compare.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro import obs
from repro.errors import ReproError
from repro.machine.inference import infer_schema
from repro.obs import metrics
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    PlanNode,
    Project,
    Select,
    Union,
)
from repro.relational import algebra
from repro.relational.relation import Relation
from repro.relational.schema import ColumnRef, Schema

__all__ = ["optimize", "share_common_subplans"]


def optimize(
    plan: PlanNode,
    schemas: Optional[Mapping[str, Schema]] = None,
) -> PlanNode:
    """Apply every rewrite bottom-up to a fixpoint, then share subtrees.

    ``schemas`` (base-relation name → schema) enables the rewrites that
    need static typing — pushing a selection through a join requires
    knowing which side owns the selected column.  Without it those
    rules simply don't fire.
    """
    metrics.inc("lang.optimize.calls")
    with obs.span("lang.optimize") as sp:
        passes = 0
        changed = True
        while changed:
            plan, changed = _rewrite(plan, schemas)
            passes += 1
        sp.set(passes=passes)
        return share_common_subplans(plan)


def _rewrite(
    node: PlanNode, schemas: Optional[Mapping[str, Schema]]
) -> tuple[PlanNode, bool]:
    """One bottom-up pass; returns (node, anything_changed)."""
    changed = False
    rebuilt = _rebuild_children(node, schemas)
    if rebuilt is not None:
        node, changed = rebuilt, True

    replacement = _rewrite_here(node, schemas)
    if replacement is not None:
        return replacement, True
    return node, changed


def _rebuild_children(
    node: PlanNode, schemas: Optional[Mapping[str, Schema]]
) -> Optional[PlanNode]:
    """Rewrite children; return a rebuilt node if any changed."""
    new_children = []
    any_changed = False
    for child in node.children:
        new_child, changed = _rewrite(child, schemas)
        new_children.append(new_child)
        any_changed = any_changed or changed
    if not any_changed:
        return None
    return _with_children(node, new_children)


def _with_children(node: PlanNode, children: list[PlanNode]) -> PlanNode:
    if isinstance(node, Intersect):
        return Intersect(children[0], children[1])
    if isinstance(node, Difference):
        return Difference(children[0], children[1])
    if isinstance(node, Union):
        return Union(children[0], children[1])
    if isinstance(node, Dedup):
        return Dedup(children[0])
    if isinstance(node, Project):
        return Project(children[0], node.columns)
    if isinstance(node, Join):
        return Join(children[0], children[1], on=node.on, ops=node.ops)
    if isinstance(node, Divide):
        return Divide(children[0], children[1], a_value=node.a_value,
                      a_group=node.a_group, b_value=node.b_value)
    if isinstance(node, Select):
        return Select(children[0], column=node.column, op=node.op,
                      value=node.value)
    return node  # Base has no children


def _rewrite_here(
    node: PlanNode, schemas: Optional[Mapping[str, Schema]]
) -> Optional[PlanNode]:
    """Try each local rule once; None when nothing applies."""
    # Idempotence of set operators on identical (structural) inputs.
    if isinstance(node, (Intersect, Union)) and node.left == node.right:
        return node.left
    # dedup(dedup(X)) -> dedup(X)
    if isinstance(node, Dedup) and isinstance(node.child, Dedup):
        return node.child
    # dedup(project(...)) -> project(...): projection already dedups (§5).
    if isinstance(node, Dedup) and isinstance(node.child, Project):
        return node.child
    # dedup over a set-producing operator is a no-op.
    if isinstance(node, Dedup) and isinstance(
        node.child, (Intersect, Difference, Union, Divide)
    ):
        return node.child
    # project(project(X, f), g) -> project(X, f∘g) when resolvable.
    if isinstance(node, Project) and isinstance(node.child, Project):
        composed = _compose_projections(node.child.columns, node.columns)
        if composed is not None:
            return Project(node.child.child, composed)
    # Selection pushdown.
    if isinstance(node, Select):
        pushed = _push_select(node, schemas)
        if pushed is not None:
            return pushed
    return None


def _compose_projections(
    inner: tuple[ColumnRef, ...], outer: tuple[ColumnRef, ...]
) -> Optional[tuple[ColumnRef, ...]]:
    """Map the outer column list through the inner one, if possible."""
    composed: list[ColumnRef] = []
    inner_names = [c for c in inner if isinstance(c, str)]
    for ref in outer:
        if isinstance(ref, int):
            if not 0 <= ref < len(inner):
                return None  # would have raised at execution; leave as-is
            composed.append(inner[ref])
        else:
            if ref not in inner_names:
                return None  # positional inner columns hide the name
            composed.append(ref)
    return tuple(composed)


def _push_select(
    node: Select, schemas: Optional[Mapping[str, Schema]]
) -> Optional[PlanNode]:
    child = node.child

    def selected(target: PlanNode) -> Select:
        return Select(target, column=node.column, op=node.op,
                      value=node.value)

    # σ(A ∩ B) = σA ∩ B  (membership of a selected tuple still needs B,
    # but intersection keeps only A-side tuples, so filtering A suffices).
    if isinstance(child, Intersect):
        return Intersect(selected(child.left), child.right)
    # σ(A − B) = σA − B.
    if isinstance(child, Difference):
        return Difference(selected(child.left), child.right)
    # σ(A ∪ B) = σA ∪ σB.
    if isinstance(child, Union):
        return Union(selected(child.left), selected(child.right))
    # σ(dedup(X)) = dedup(σ(X)).
    if isinstance(child, Dedup):
        return Dedup(selected(child.child))
    # σ(A ⋈ B): the predicate names exactly one output column, which the
    # join layout traces to a column of A or of B — filter that side
    # before it ever streams through the join array.
    if isinstance(child, Join) and schemas is not None:
        return _push_select_through_join(node, child, schemas)
    return None


def _push_select_through_join(
    node: Select, child: Join, schemas: Mapping[str, Schema]
) -> Optional[PlanNode]:
    try:
        left_schema = infer_schema(child.left, schemas)
        right_schema = infer_schema(child.right, schemas)
        out_schema = infer_schema(child, schemas)
        position = out_schema.resolve(node.column)
    except ReproError:
        return None  # ill-typed here; leave it for execution to report
    if position < len(left_schema):
        # Output columns [0, |A|) are A's columns in order.
        return Join(
            Select(child.left, column=position, op=node.op, value=node.value),
            child.right, on=child.on, ops=child.ops,
        )
    # The remaining output columns are B's *kept* columns (equi-join
    # drops B's join columns, θ-join only the ``==`` ones) — map the
    # output position back to B's own column position.
    left_empty = Relation(left_schema)
    right_empty = Relation(right_schema)
    if child.ops is None:
        _, _, _, b_keep = algebra.equi_join_layout(
            left_empty, right_empty, list(child.on)
        )
    else:
        _, _, _, b_keep = algebra.theta_join_layout(
            left_empty, right_empty, list(child.on), list(child.ops)
        )
    b_position = b_keep[position - len(left_schema)]
    return Join(
        child.left,
        Select(child.right, column=b_position, op=node.op, value=node.value),
        on=child.on, ops=child.ops,
    )


def share_common_subplans(plan: PlanNode) -> PlanNode:
    """Make structurally equal subtrees the same object (CSE).

    The machine keys computed results by node identity, so shared
    objects are computed once and reused (§9's "results from
    subrelations must be stored ... before they are finally combined").
    """
    pool: dict[PlanNode, PlanNode] = {}

    def canon(node: PlanNode) -> PlanNode:
        rebuilt = _with_children(node, [canon(c) for c in node.children])
        existing = pool.get(rebuilt)
        if existing is not None:
            return existing
        pool[rebuilt] = rebuilt
        return rebuilt

    return canon(plan)
