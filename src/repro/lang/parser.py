"""Recursive-descent parser: expression text → machine plan nodes.

The parser builds the same :mod:`repro.machine.plan` AST the database
machine executes, so a parsed query can run on the software engine, the
pulse-level arrays, or the full Fig 9-1 machine unchanged.

Grammar::

    expr      := NAME | func '(' args ')'
    func      := intersect | difference | union | dedup | project
               | join | divide | select
    column    := NAME | '#' INT
    condition := column OP column          (in join)
               | column OP INT             (in select)
    kwarg     := NAME '=' column           (in divide)
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.errors import ParseError
from repro.lang.tokens import Token, tokenize
from repro.obs import metrics
from repro.machine.plan import (
    Base,
    Dedup,
    Difference,
    Divide,
    Intersect,
    Join,
    PlanNode,
    Project,
    Select,
    Union,
)
from repro.relational.schema import ColumnRef

__all__ = ["parse"]

_FUNCTIONS = {
    "intersect", "difference", "union", "dedup", "project",
    "join", "divide", "select",
}


def parse(source: str) -> PlanNode:
    """Parse one expression into a plan."""
    metrics.inc("lang.parse.calls")
    with obs.span("lang.parse", chars=len(source)):
        parser = _Parser(tokenize(source), source)
        plan = parser.expression()
        parser.expect("EOF")
        return plan


class _Parser:
    def __init__(self, tokens: list[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} at position {token.position} in "
                f"{self._source!r}, found {token.kind}({token.text!r})"
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} at position {token.position} in {self._source!r} "
            f"(found {token.kind}({token.text!r}))"
        )

    # -- grammar ----------------------------------------------------------------

    def expression(self) -> PlanNode:
        token = self.expect("NAME")
        name = token.text
        if self.peek().kind != "LPAREN":
            return Base(name)
        if name not in _FUNCTIONS:
            raise ParseError(
                f"unknown function {name!r} at position {token.position}; "
                f"have {sorted(_FUNCTIONS)}"
            )
        self.expect("LPAREN")
        node = getattr(self, f"_parse_{name}")()
        self.expect("RPAREN")
        return node

    def _column(self) -> ColumnRef:
        token = self.peek()
        if token.kind == "HASH":
            self.advance()
            return int(self.expect("INT").text)
        if token.kind == "NAME":
            return self.advance().text
        raise self.error("expected a column reference (name or #index)")

    # -- per-function rules --------------------------------------------------------

    def _two_inputs(self) -> tuple[PlanNode, PlanNode]:
        left = self.expression()
        self.expect("COMMA")
        right = self.expression()
        return left, right

    def _parse_intersect(self) -> PlanNode:
        return Intersect(*self._two_inputs())

    def _parse_difference(self) -> PlanNode:
        return Difference(*self._two_inputs())

    def _parse_union(self) -> PlanNode:
        return Union(*self._two_inputs())

    def _parse_dedup(self) -> PlanNode:
        return Dedup(self.expression())

    def _parse_project(self) -> PlanNode:
        child = self.expression()
        columns: list[ColumnRef] = []
        while self.peek().kind == "COMMA":
            self.advance()
            columns.append(self._column())
        if not columns:
            raise self.error("project needs at least one column")
        return Project(child, tuple(columns))

    def _parse_join(self) -> PlanNode:
        left, right = self._two_inputs()
        on: list[tuple[ColumnRef, ColumnRef]] = []
        ops: list[str] = []
        while self.peek().kind == "COMMA":
            self.advance()
            col_a = self._column()
            op = self.expect("OP").text
            col_b = self._column()
            on.append((col_a, col_b))
            ops.append(op)
        if not on:
            raise self.error("join needs at least one 'colA OP colB' condition")
        plain = all(op == "==" for op in ops)
        return Join(left, right, on=tuple(on),
                    ops=None if plain else tuple(ops))

    def _parse_select(self) -> PlanNode:
        child = self.expression()
        self.expect("COMMA")
        column = self._column()
        op = self.expect("OP").text
        value = int(self.expect("INT").text)
        return Select(child, column=column, op=op, value=value)

    def _parse_divide(self) -> PlanNode:
        left, right = self._two_inputs()
        kwargs: dict[str, ColumnRef] = {}
        while self.peek().kind == "COMMA":
            self.advance()
            keyword = self.expect("NAME").text
            if keyword not in ("group", "value", "by"):
                raise ParseError(
                    f"divide keywords are group/value/by, got {keyword!r}"
                )
            self.expect("ASSIGN")
            kwargs[keyword] = self._column()
        return Divide(
            left, right,
            a_value=kwargs.get("value", 1),
            a_group=kwargs.get("group"),
            b_value=kwargs.get("by", 0),
        )
