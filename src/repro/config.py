"""Environment-variable parsing shared across the repro packages.

Several knobs can be set process-wide through the environment
(``REPRO_MACHINE_PARALLEL``, ``REPRO_LATTICE_CHUNK_BYTES``, ...).  The
helpers here give every such knob the same, predictable behaviour:

* an unset or empty variable means *use the default*;
* a malformed value raises :class:`~repro.errors.ConfigError` naming
  the variable and the offending text — never a bare ``ValueError``
  from ``int()`` or a silent truthiness surprise.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional, Sequence

from repro.errors import ConfigError

__all__ = ["env_flag", "env_int", "env_float", "env_choice"]

#: Spellings accepted for boolean environment flags.
_TRUE = frozenset({"1", "true", "on", "yes"})
_FALSE = frozenset({"0", "false", "off", "no"})


def env_flag(
    name: str,
    default: bool,
    environ: Optional[Mapping[str, str]] = None,
) -> bool:
    """Read a boolean flag from the environment.

    Accepts ``1/true/on/yes`` and ``0/false/off/no`` (any case,
    surrounding whitespace ignored).  Unset or empty means ``default``;
    anything else raises :class:`ConfigError`.
    """
    raw = (environ if environ is not None else os.environ).get(name)
    if raw is None:
        return default
    text = raw.strip().lower()
    if not text:
        return default
    if text in _TRUE:
        return True
    if text in _FALSE:
        return False
    raise ConfigError(
        f"{name}={raw!r} is not a boolean: use one of "
        f"{sorted(_TRUE)} or {sorted(_FALSE)}"
    )


def env_int(
    name: str,
    default: int,
    minimum: Optional[int] = None,
    environ: Optional[Mapping[str, str]] = None,
) -> int:
    """Read an integer from the environment.

    Unset or empty means ``default``.  A value that does not parse as a
    base-10 integer, or parses below ``minimum``, raises
    :class:`ConfigError` naming the variable.
    """
    raw = (environ if environ is not None else os.environ).get(name)
    if raw is None:
        return default
    text = raw.strip()
    if not text:
        return default
    try:
        value = int(text)
    except ValueError:
        raise ConfigError(
            f"{name}={raw!r} is not an integer"
        ) from None
    if minimum is not None and value < minimum:
        raise ConfigError(
            f"{name}={raw!r} must be >= {minimum}"
        )
    return value


def env_float(
    name: str,
    default: Optional[float],
    minimum: Optional[float] = None,
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[float]:
    """Read a float from the environment.

    Unset or empty means ``default`` (which may be ``None`` for knobs
    like deadlines where absence means "off").  A value that does not
    parse as a float, is not finite, or falls below ``minimum``, raises
    :class:`ConfigError` naming the variable.
    """
    raw = (environ if environ is not None else os.environ).get(name)
    if raw is None:
        return default
    text = raw.strip()
    if not text:
        return default
    try:
        value = float(text)
    except ValueError:
        raise ConfigError(
            f"{name}={raw!r} is not a number"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise ConfigError(f"{name}={raw!r} must be finite")
    if minimum is not None and value < minimum:
        raise ConfigError(
            f"{name}={raw!r} must be >= {minimum}"
        )
    return value


def env_choice(
    name: str,
    default: str,
    choices: Sequence[str],
    environ: Optional[Mapping[str, str]] = None,
) -> str:
    """Read an enumerated string from the environment.

    Matching is case-insensitive (the canonical lower-case spelling is
    returned).  Unset or empty means ``default``; any other value
    raises :class:`ConfigError` naming the accepted spellings.
    """
    raw = (environ if environ is not None else os.environ).get(name)
    if raw is None:
        return default
    text = raw.strip().lower()
    if not text:
        return default
    if text in choices:
        return text
    raise ConfigError(
        f"{name}={raw!r} is not one of {sorted(choices)}"
    )
