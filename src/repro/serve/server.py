"""The asyncio serving loop over an :class:`EnginePool`.

One :class:`ReproServer` owns one pool.  Each accepted connection gets
a protocol handler coroutine; queries — the only slow verb — hop onto
the default thread-pool executor, where the pool's admission gate,
plan cache, and per-query machine state do their work.  The asyncio
side stays single-threaded and non-blocking, so hellos, stats probes,
and pings keep flowing while queries execute.
"""

from __future__ import annotations

import asyncio
import functools
import re
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import ReproError
from repro.lang import optimize, parse
from repro.machine.pool import EnginePool
from repro.relational.csv_io import DomainRegistry
from repro.store import RelationStore
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode_line,
    relation_from_wire,
    relation_to_wire,
)

__all__ = ["ReproServer", "MAX_LINE_BYTES"]

#: Tenants of a persistent server become directory names.
_TENANT_DIR_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")


class ReproServer:
    """Serves the line protocol of :mod:`repro.serve.protocol` over TCP.

    ``await start()`` binds the socket (port 0 picks a free port;
    read the result back from :attr:`address`), ``await stop()``
    closes it and waits for in-flight connections to finish.  The
    server can also be used as an async context manager.
    """

    def __init__(
        self,
        pool: Optional[EnginePool] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 1,
        shard_strategy: str = "hash",
        store_dir: Union[str, Path, None] = None,
        **pool_kwargs: Any,
    ) -> None:
        self.pool = pool if pool is not None else EnginePool(**pool_kwargs)
        self._host = host
        self._port = port
        #: shards > 1 routes every tenant's relations and queries
        #: through a sharded session (docs/SHARDING.md); ``store`` then
        #: honours the optional ``key``/``replicate`` request fields.
        self.shards = shards
        self.shard_strategy = shard_strategy
        #: persistence root: each tenant gets ``store_dir/<tenant>`` as
        #: a :class:`~repro.store.RelationStore` attached to its
        #: catalog, and ``store`` requests may set ``persist: true`` —
        #: persisted relations survive server restarts.
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self._sessions: dict[str, Any] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()
        #: one domain registry per tenant — wire relations naming the
        #: same domain stay join-compatible within a tenant.
        self._registries: dict[str, DomainRegistry] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port,
            limit=MAX_LINE_BYTES,
        )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); raises before :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise ReproError("server is not listening")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, then drain in-flight connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        tenant = "default"
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                    response, tenant, closing = await self._dispatch(
                        request, tenant
                    )
                except ReproError as exc:
                    response, closing = _error(exc), False
                except Exception as exc:  # defensive: never kill the loop
                    response, closing = _error(exc), False
                writer.write(encode_line(response))
                await writer.drain()
                if closing:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: dict[str, Any], tenant: str
    ) -> tuple[dict[str, Any], str, bool]:
        """Handle one request; returns (response, tenant, closing)."""
        op = request.get("op")
        if op == "hello":
            tenant = str(request.get("tenant", "default"))
            self._catalog(tenant)  # materialize eagerly
            return {"ok": True, "tenant": tenant}, tenant, False
        if op == "ping":
            return {"ok": True, "pong": True}, tenant, False
        if op == "bye":
            return {"ok": True, "bye": True}, tenant, True
        if op == "stats":
            return {"ok": True, "stats": self.pool.stats()}, tenant, False
        if op == "health":
            # The heartbeat: cheap enough to probe every few seconds —
            # gate occupancy, the per-query deadline, and the fault
            # plan's injection/retry ledger when chaos is active.
            pool = self.pool
            return (
                {
                    "ok": True,
                    "status": "ok",
                    "admission": pool.gate.stats(),
                    "query_deadline": pool.query_deadline,
                    "shards": self.shards,
                    "faults": (
                        pool.faults.snapshot()
                        if pool.faults is not None else None
                    ),
                },
                tenant, False,
            )
        if op == "store" or op == "preload":
            name = request.get("name")
            if not isinstance(name, str) or not name:
                raise ReproError(f"{op} needs a relation 'name'")
            relation = relation_from_wire(
                request.get("relation"), self._registry(tenant)
            )
            persist = bool(request.get("persist", False))
            if persist and op != "store":
                raise ReproError("persist applies to 'store', not 'preload'")
            if persist and self.shards > 1:
                raise ReproError(
                    "persist is not supported on a sharded server "
                    "(relations are partitioned across shard machines)"
                )
            if persist and self.store_dir is None:
                raise ReproError(
                    "this server has no persistence root; start it with "
                    "store_dir= (CLI: repro serve --store-dir DIR)"
                )
            if self.shards > 1:
                session = self._session(tenant)
                placement = {
                    "key": request.get("key"),
                    "replicate": bool(request.get("replicate", False)),
                }
                if op == "store":
                    session.store(name, relation, **placement)
                else:
                    session.preload(name, relation, **placement)
            else:
                catalog = self._catalog(tenant)
                if persist:
                    catalog.persist(name, relation)
                elif op == "store":
                    catalog.store(name, relation)
                else:
                    catalog.preload(name, relation)
            return (
                {"ok": True, "name": name, "rows": len(relation),
                 "persisted": persist},
                tenant, False,
            )
        if op == "query":
            expr = request.get("expr")
            if not isinstance(expr, str) or not expr:
                raise ReproError("query needs an algebra 'expr'")
            plan = optimize(parse(expr))
            loop = asyncio.get_running_loop()
            if self.shards > 1:
                call = functools.partial(
                    self._session(tenant).run_many,
                    [plan],
                    pipeline=bool(request.get("pipeline", True)),
                    priority=int(request.get("priority", 0)),
                    timeout=request.get("timeout"),
                )
            else:
                call = functools.partial(
                    self.pool.execute,
                    self._catalog(tenant),
                    plan,
                    pipeline=bool(request.get("pipeline", True)),
                    priority=int(request.get("priority", 0)),
                    timeout=request.get("timeout"),
                )
            results, report = await loop.run_in_executor(None, call)
            result = results[0]
            return (
                {
                    "ok": True,
                    "relation": relation_to_wire(result),
                    "rows": len(result),
                    "makespan_ms": report.makespan * 1e3,
                },
                tenant, False,
            )
        raise ReproError(f"unknown op {op!r}")

    def _registry(self, tenant: str) -> DomainRegistry:
        return self._registries.setdefault(tenant, {})

    def _catalog(self, tenant: str):
        """The tenant's catalog, store-attached when persistence is on.

        Attaching is idempotent and happens on first touch, so a
        freshly restarted server sees every relation a previous process
        persisted under ``store_dir/<tenant>`` without any replay.
        """
        catalog = self.pool.catalog(tenant)
        if (
            self.store_dir is not None
            and catalog.disk.backing_store is None
        ):
            if not _TENANT_DIR_RE.match(tenant):
                raise ReproError(
                    f"tenant {tenant!r} is not filesystem-safe; a "
                    f"persistent server needs tenants matching "
                    f"{_TENANT_DIR_RE.pattern}"
                )
            catalog.attach_store(RelationStore(self.store_dir / tenant))
        return catalog

    def _session(self, tenant: str):
        """The tenant's sharded session (server-lifetime, lazily made)."""
        session = self._sessions.get(tenant)
        if session is None:
            session = self.pool.session(
                tenant, shards=self.shards,
                shard_strategy=self.shard_strategy,
            )
            self._sessions[tenant] = session
        return session


def _error(exc: Exception) -> dict[str, Any]:
    return {"ok": False, "error": str(exc), "kind": type(exc).__name__}
