"""A line-protocol serving front-end over the engine pool.

§9 ends with one machine absorbing "a set of transactions"; this
package puts a network edge on that machine.  ``repro serve`` (or
:class:`ReproServer` in-process) listens on a TCP port and speaks a
newline-delimited JSON protocol (:mod:`repro.serve.protocol`); each
connection binds to a tenant and issues relational-algebra queries
that the shared :class:`~repro.machine.pool.EnginePool` admits,
compiles, and executes.  :class:`ServiceClient` is the matching
blocking client.  Everything is standard library — asyncio streams on
the server, a plain socket on the client.
"""

from repro.serve.client import ServiceClient
from repro.serve.protocol import (
    decode_line,
    encode_line,
    relation_from_wire,
    relation_to_wire,
)
from repro.serve.server import ReproServer

__all__ = [
    "ReproServer",
    "ServiceClient",
    "decode_line",
    "encode_line",
    "relation_from_wire",
    "relation_to_wire",
]
